"""Cross-application integration: the same program through all three
placement applications, with consistent structural facts."""

import pytest

from repro.commgen import generate_communication
from repro.prefetch import generate_prefetches
from repro.regpromo import promote_registers

PROGRAM = """
real grid(10000)
real sums(100)
integer map(1000)
distribute grid(block)
    do t = 1, steps
        do k = 1, n
            sums(1) = sums(1) + grid(map(k))
        enddo
        do m = 1, n
            grid(m) = ...
        enddo
    enddo
"""


def test_communication_view():
    text = generate_communication(PROGRAM).annotated_source()
    # grid is distributed: its gather is fetched per step (the update
    # steals it); sums is replicated: no communication at all
    assert "READ_Send{grid(map(1:n))}" in text
    assert "sums" not in text.split("READ")[1]
    assert "WRITE_Send{grid(1:n)}" in text


def test_prefetch_view():
    text = generate_prefetches(PROGRAM).annotated_source()
    # the cache does not care about distribution: map and grid sections
    # are prefetched, the sums accumulator line too
    assert "PREFETCH{map(1:n)}" in text
    assert "PREFETCH{grid(map(1:n))}" in text


def test_register_view():
    text = promote_registers(PROGRAM).annotated_source()
    # only the accumulator is a loop-invariant point
    assert "LOAD{sums(1)}" in text
    assert "STORE{sums(1)}" in text
    assert "LOAD{grid" not in text


def test_views_do_not_interfere():
    # each pipeline parses its own copy; running all three on the same
    # source must give identical results in any order
    first = generate_communication(PROGRAM).annotated_source()
    promote_registers(PROGRAM)
    generate_prefetches(PROGRAM)
    second = generate_communication(PROGRAM).annotated_source()
    assert first == second
