"""End-to-end integration tests on larger realistic programs.

Every program runs through the complete pipeline (parse → graph →
problems → solve → postpass → annotate), the placements are validated
with the path-replay checker, and the annotated program is executed on
the simulator (which itself raises on unmatched receives — a second,
independent balance check along the executed path).
"""

import pytest

from repro import (
    ConditionPolicy,
    MachineModel,
    check_placement,
    generate_communication,
    naive_communication,
    simulate,
)

PROGRAMS = {
    "two-phase gather/scatter": """
real x(1000)
real y(1000)
integer idx(1000)
distribute x(block)
distribute y(block)
    do t = 1, steps
        do i = 1, n
            y(i) = x(idx(i))
        enddo
        do j = 1, n
            x(j) = y(j)
        enddo
    enddo
""",
    "branchy kernel": """
real x(1000)
distribute x(block)
    do i = 1, n
        if test(i) then
            u = x(i)
        else
            w = x(i + 1)
        endif
    enddo
    if cond then
        do k = 1, n
            v = x(k)
        enddo
    endif
""",
    "nested loops with early exit": """
real x(1000)
distribute x(block)
    do i = 1, n
        do j = 1, n
            u = x(j)
            if test(j) goto 50
        enddo
    enddo
50  w = x(1)
""",
    "reduction plus reads": """
real acc(1000)
real x(1000)
integer e(1000)
distribute acc(block)
distribute x(block)
    do k = 1, n
        acc(e(k)) = acc(e(k)) + x(k)
    enddo
    do l = 1, n
        u = acc(e(l))
    enddo
""",
    "write then branchy reads": """
real x(1000)
integer a(1000)
distribute x(block)
    do i = 1, n
        x(a(i)) = ...
    enddo
    if c1 then
        do j = 1, n
            u = x(j)
        enddo
    else
        if c2 then
            w = x(5)
        endif
    endif
""",
}


@pytest.mark.parametrize("name", list(PROGRAMS))
def test_pipeline_placements_check_out(name):
    source = PROGRAMS[name]
    result = generate_communication(source)
    for problem, placement in (
        (result.read_problem, result.read_placement),
        (result.write_problem, result.write_placement),
    ):
        report = check_placement(result.analyzed.ifg, problem, placement,
                                 max_paths=150, min_trips=1)
        assert report.ok(ignore=("safety", "redundant")), f"{name}: {report}"
        all_paths = check_placement(result.analyzed.ifg, problem, placement,
                                    max_paths=150)
        assert not all_paths.by_kind("balance"), f"{name}: {all_paths}"


@pytest.mark.parametrize("name", list(PROGRAMS))
@pytest.mark.parametrize("branch", ["always", "never", "random"])
def test_pipeline_simulates_cleanly(name, branch):
    source = PROGRAMS[name]
    result = generate_communication(source)
    machine = MachineModel(latency=50, time_per_element=1, message_overhead=5)
    bindings = {"n": 16, "steps": 3}
    # the simulator raises on receive-without-send: executing IS a check
    metrics = simulate(result.annotated_program, machine, bindings,
                       ConditionPolicy(branch, seed=7))
    assert metrics.work_time > 0


@pytest.mark.parametrize("name", list(PROGRAMS))
def test_gnt_beats_naive_on_full_trips(name):
    # branch="never": loops run to completion (no early exits) — the
    # regime vectorized communication is optimized for.
    source = PROGRAMS[name]
    gnt = generate_communication(source)
    naive = naive_communication(source)
    machine = MachineModel(latency=50, time_per_element=1, message_overhead=5)
    bindings = {"n": 16, "steps": 3}
    gnt_metrics = simulate(gnt.annotated_program, machine, bindings,
                           ConditionPolicy("never"))
    naive_metrics = simulate(naive.annotated_program, machine, bindings,
                             ConditionPolicy("never"))
    assert gnt_metrics.messages <= naive_metrics.messages, name
    assert gnt_metrics.total_time <= naive_metrics.total_time, name


def test_early_exit_overcommunication_tradeoff():
    """When an always-taken jump exits the loop on the first iteration,
    the hoisted vectorized READ over-fetches relative to naive
    element-wise communication — the trade the paper accepts for
    communication (§2: 'we generally rather accept the risk of slight
    overcommunication than not hoist')."""
    source = PROGRAMS["nested loops with early exit"]
    gnt = generate_communication(source)
    naive = naive_communication(source)
    machine = MachineModel(latency=50, time_per_element=1, message_overhead=5)
    bindings = {"n": 16}
    gnt_metrics = simulate(gnt.annotated_program, machine, bindings,
                           ConditionPolicy("always"))
    naive_metrics = simulate(naive.annotated_program, machine, bindings,
                             ConditionPolicy("always"))
    assert gnt_metrics.volume > naive_metrics.volume   # the over-fetch
    # ... while on full trips GNT wins decisively:
    gnt_full = simulate(generate_communication(source).annotated_program,
                        machine, bindings, ConditionPolicy("never"))
    naive_full = simulate(naive_communication(source).annotated_program,
                          machine, bindings, ConditionPolicy("never"))
    assert gnt_full.total_time < naive_full.total_time / 5


def test_annotated_output_reparses():
    """The annotated text (minus the comm statements) must still be a
    valid program — printer/annotator produce well-formed structure."""
    from repro.lang.parser import parse

    for name, source in PROGRAMS.items():
        result = generate_communication(source)
        text = result.annotated_source()
        stripped = "\n".join(
            line for line in text.splitlines()
            if not line.strip().lstrip("0123456789 ").startswith(
                ("READ", "WRITE", "PREFETCH", "WAIT"))
        )
        parse(stripped)  # must not raise


def test_owner_computes_variant_checks_out():
    for name, source in PROGRAMS.items():
        result = generate_communication(source, owner_computes=True)
        assert "WRITE" not in result.annotated_source(), name
        report = check_placement(result.analyzed.ifg, result.read_problem,
                                 result.read_placement, max_paths=100,
                                 min_trips=1)
        assert report.ok(ignore=("safety", "redundant")), f"{name}: {report}"
