"""Utility module tests."""

import pytest

from repro.util import OrderedSet, format_set, indent_block
from repro.util.errors import ParseError, ReproError, SolverError


def test_ordered_set_preserves_insertion_order():
    s = OrderedSet([3, 1, 2, 1])
    assert list(s) == [3, 1, 2]
    s.add(0)
    assert list(s) == [3, 1, 2, 0]


def test_ordered_set_discard_and_contains():
    s = OrderedSet("abc")
    s.discard("b")
    s.discard("zz")  # no error
    assert "a" in s and "b" not in s
    assert len(s) == 2


def test_ordered_set_first():
    assert OrderedSet([7, 8]).first() == 7
    with pytest.raises(KeyError):
        OrderedSet().first()


def test_ordered_set_equality_with_plain_sets():
    assert OrderedSet([1, 2]) == {2, 1}
    assert OrderedSet([1]) != {1, 2}


def test_ordered_set_update_and_copy():
    s = OrderedSet([1])
    s.update([2, 3])
    t = s.copy()
    t.add(4)
    assert list(s) == [1, 2, 3]
    assert list(t) == [1, 2, 3, 4]


def test_ordered_set_unhashable():
    with pytest.raises(TypeError):
        hash(OrderedSet())


def test_format_set_sorted_and_empty():
    assert format_set(["b", "a"]) == "{a, b}"
    assert format_set([]) == "{}"
    assert format_set([], empty="-") == "-"


def test_indent_block():
    assert indent_block("a\nb") == "    a\n    b"
    assert indent_block("a", levels=2, width=2) == "    a"
    assert indent_block("a\n\nb") == "    a\n\n    b"  # blank lines kept bare


def test_error_hierarchy():
    assert issubclass(ParseError, ReproError)
    assert issubclass(SolverError, ReproError)


def test_parse_error_location_formatting():
    error = ParseError("bad token", line=3, column=7)
    assert "line 3" in str(error) and "column 7" in str(error)
    assert str(ParseError("oops")) == "oops"
