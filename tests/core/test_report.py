"""Report module tests."""

from repro.core.report import (
    membership_listing,
    placement_listing,
    solution_report,
    span_listing,
)


def test_membership_listing_matches_paper_style(fig11, fig11_solution):
    lines = membership_listing(fig11, fig11_solution, variables=["STEAL"])
    assert "y_b ∈ STEAL({2, 3})" in lines


def test_membership_listing_timed_variables(fig11, fig11_solution):
    lines = membership_listing(fig11, fig11_solution, variables=["RES_in"])
    assert "x_k ∈ RES_in^eager({1})" in lines
    assert "y_b ∈ RES_in^eager({6, 10})" in lines
    assert "x_k ∈ RES_in^lazy({12})" in lines


def test_placement_listing(fig11, fig11_placement):
    lines = placement_listing(fig11, fig11_placement)
    assert any("node   1 before eager  {x_k}" in line.replace("eager", "eager ")
               or "eager" in line for line in lines)
    assert len(lines) == 4


def test_span_listing(fig11, fig11_placement):
    lines = span_listing(fig11, fig11_placement)
    assert lines
    assert all("span" in line for line in lines)


def test_full_report(fig11, fig11_read_problem, fig11_solution, fig11_placement):
    text = solution_report(fig11, fig11_read_problem, fig11_solution,
                           fig11_placement, title="READ")
    assert "=== READ ===" in text
    assert "universe:" in text
    assert "initial variables:" in text
    assert "region spans:" in text


def test_report_without_placement(fig11, fig11_read_problem, fig11_solution):
    text = solution_report(fig11, fig11_read_problem, fig11_solution)
    assert "placements:" not in text


def test_cli_explain(tmp_path):
    import io

    from repro.cli import main
    from repro.testing.programs import FIG11_SOURCE

    path = tmp_path / "f.f"
    path.write_text(FIG11_SOURCE)
    out = io.StringIO()
    assert main(["explain", str(path)], out=out) == 0
    text = out.getvalue()
    assert "READ problem (BEFORE)" in text
    assert "WRITE problem (AFTER)" in text
    assert "RES_in^eager" in text
    out = io.StringIO()
    assert main(["explain", str(path), "--problem", "read"], out=out) == 0
    assert "WRITE problem" not in out.getvalue()
