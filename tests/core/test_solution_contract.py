"""The cross-backend solution-store contract (API-drift regressions).

The reference :class:`~repro.core.solution.Solution` and the kernel
backends' :class:`~repro.core.kernel.slots.SlotSolution` (both storage
engines) must stay drop-in interchangeable.  Two behaviors drifted once
and are pinned here:

* ``set_bits`` accepts *any* node — ``SlotSolution`` used to raise a
  bare ``KeyError`` for nodes outside its plan where the reference
  store accepted them silently;
* ``nodes_with`` returns deterministic view preorder on every backend —
  the reference store used to return insertion order (the S1/S2 sweeps
  insert in REVERSEPREORDER), so reports rendered differently per
  backend.
"""

import pytest

from repro.core.kernel import bitmatrix
from repro.core.kernel.plan import plan_for
from repro.core.kernel.slots import SlotSolution
from repro.core.problem import Direction, Timing
from repro.core.solution import Solution
from repro.core.solver import make_view, solve
from repro.graph.cfg import Node, NodeKind
from repro.testing.generator import random_analyzed_program, random_problem

BACKENDS = ["reference", "planned", "vector"]


def instance(seed=5):
    analyzed = random_analyzed_program(seed, size=14, goto_probability=0.4)
    problem = random_problem(analyzed, seed=seed, direction=Direction.BEFORE)
    view = make_view(analyzed.ifg, Direction.BEFORE)
    return analyzed, problem, view


def all_stores():
    """One store of every kind over the same instance."""
    analyzed, problem, view = instance()
    plan = plan_for(view)
    stores = [Solution(problem, view), SlotSolution(problem, view, plan)]
    if bitmatrix.numpy() is not None:
        stores.append(SlotSolution(problem, view, plan, engine="numpy"))
    return analyzed, problem, view, stores


def test_set_bits_accepts_nodes_outside_the_plan():
    analyzed, problem, view, stores = all_stores()
    stranger = Node(990001, NodeKind.STMT, name="stranger")
    assert stranger not in set(view.nodes_preorder())
    for store in stores:
        store.set_bits("TAKE", stranger, 0b11)
        assert store.bits("TAKE", stranger) == 0b11
        store.set_bits("TAKE", stranger, 0)  # overwrite, not accumulate
        assert store.bits("TAKE", stranger) == 0
        store.set_bits("RES_in", stranger, 0b1, timing=Timing.EAGER)
        assert store.bits("RES_in", stranger, timing=Timing.EAGER) == 0b1


def test_set_bits_still_rejects_unknown_variable_names():
    _, problem, view, stores = all_stores()
    node = view.nodes_preorder()[0]
    for store in stores:
        with pytest.raises(KeyError):
            store.set_bits("NO_SUCH_VARIABLE", node, 0b1)


@pytest.mark.parametrize("backend", BACKENDS)
def test_nodes_with_is_view_preorder(backend):
    analyzed, problem, view = instance()
    solution = solve(analyzed.ifg, problem, view=view, backend=backend)
    order = {node: i for i, node in enumerate(view.nodes_preorder())}
    element = next(iter(problem.universe))
    for name in ("TAKE", "GIVE", "STEAL", "BLOCK"):
        nodes = solution.nodes_with(name, element)
        ranks = [order[node] for node in nodes]
        assert ranks == sorted(ranks), (backend, name)


def test_nodes_with_identical_across_backends():
    analyzed, problem, view = instance()
    solutions = {backend: solve(analyzed.ifg, problem, view=view,
                                backend=backend)
                 for backend in BACKENDS}
    for element in problem.universe:
        for name in ("TAKE", "GIVE", "STEAL", "TAKE_loc", "GIVE_loc"):
            expected = solutions["reference"].nodes_with(name, element)
            for backend in ("planned", "vector"):
                assert (solutions[backend].nodes_with(name, element)
                        == expected), (backend, name, element)


def test_nodes_with_appends_side_table_nodes_in_insertion_order():
    _, problem, view, stores = all_stores()
    element = next(iter(problem.universe))
    bit = problem.universe.bit(element)
    strangers = [Node(990010 + i, NodeKind.STMT, name=f"stranger-{i}")
                 for i in range(3)]
    for store in stores:
        for node in strangers:
            store.set_bits("GIVE", node, bit)
        tail = store.nodes_with("GIVE", element)[-len(strangers):]
        assert tail == strangers
