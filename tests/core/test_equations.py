"""Per-equation behavior tests (Figure 13, Equations 1-15).

Each test pins one equation's defining behavior on a minimal program,
by inspecting the solved dataflow variables.
"""

import pytest

from repro.core import Problem, solve
from repro.core.problem import Timing
from repro.testing.programs import analyze_source


def solved(source, annotate):
    analyzed = analyze_source(source)
    problem = Problem()
    annotate(analyzed, problem)
    return analyzed, problem, solve(analyzed.ifg, problem)


LOOP = "a = 1\ndo i = 1, n\ns = 1\ng = 2\nenddo\nu = x(1)"


def test_eq1_steal_summarizes_loop_body():
    analyzed, problem, sol = solved(
        LOOP, lambda ap, p: p.add_steal(ap.node_named("s ="), "e"))
    header = analyzed.node_named("do i")
    assert "e" in sol.elements("STEAL", header)


def test_eq1_steal_not_propagated_when_resupplied():
    # stolen then re-taken (take counts as resupply) inside the loop:
    # the loop as a whole does not steal — provided the resupply is not
    # the latch itself (Eq 10's give-subtraction happens on the edge
    # *out of* a node, and Eq 1 reads the latch's STEAL_loc raw).
    analyzed, problem, sol = solved(
        "do i = 1, n\ns = 1\ng = x(1)\nz = 2\nenddo",
        lambda ap, p: (p.add_steal(ap.node_named("s ="), "e"),
                       p.add_take(ap.node_named("g ="), "e")),
    )
    header = analyzed.node_named("do i")
    assert "e" not in sol.elements("STEAL", header)


def test_eq1_latch_resupply_is_summarized_conservatively():
    # When the resupply IS the latch, the loop summary keeps both the
    # steal and the give; downstream the steal wins (Eq 13), which is
    # the only safe answer under zero-trip uncertainty.
    analyzed, problem, sol = solved(
        "do i = 1, n\ns = 1\ng = x(1)\nenddo",
        lambda ap, p: (p.add_steal(ap.node_named("s ="), "e"),
                       p.add_take(ap.node_named("g ="), "e")),
    )
    header = analyzed.node_named("do i")
    assert "e" in sol.elements("STEAL", header)
    assert "e" in sol.elements("GIVE", header)
    from repro.core.problem import Timing as T
    assert "e" not in sol.elements("GIVEN_out", header, T.EAGER)


def test_eq2_give_summarizes_loop_body():
    analyzed, problem, sol = solved(
        LOOP, lambda ap, p: p.add_give(ap.node_named("g ="), "e"))
    header = analyzed.node_named("do i")
    assert "e" in sol.elements("GIVE", header)


def test_eq2_steal_after_give_cancels():
    analyzed, problem, sol = solved(
        "do i = 1, n\ng = 1\ns = 2\nenddo",
        lambda ap, p: (p.add_give(ap.node_named("g ="), "e"),
                       p.add_steal(ap.node_named("s ="), "e")),
    )
    header = analyzed.node_named("do i")
    assert "e" not in sol.elements("GIVE", header)
    assert "e" in sol.elements("STEAL", header)


def test_eq3_block_includes_steal_give_and_nested():
    analyzed, problem, sol = solved(
        LOOP,
        lambda ap, p: (p.add_steal(ap.node_named("s ="), "e1"),
                       p.add_give(ap.node_named("g ="), "e2")),
    )
    header = analyzed.node_named("do i")
    block = sol.elements("BLOCK", header)
    assert {"e1", "e2"} <= block


def test_eq4_taken_out_empty_at_exit():
    analyzed, problem, sol = solved(
        "u = x(1)", lambda ap, p: p.add_take(ap.node_named("u ="), "e"))
    assert sol.elements("TAKEN_out", analyzed.ifg.cfg.exit) == frozenset()


def test_eq4_taken_out_is_path_intersection():
    analyzed, problem, sol = solved(
        "a = 1\nif t then\nu = x(1)\nelse\nb = 2\nendif",
        lambda ap, p: p.add_take(ap.node_named("u ="), "e"))
    # consumed on the then path only -> not guaranteed from the branch
    branch = analyzed.node_named("if t")
    assert "e" not in sol.elements("TAKEN_out", branch)
    assert "e" not in sol.elements("TAKEN_in", analyzed.node_named("a ="))


def test_eq4_synthetic_edges_guard_jumps():
    # Consumption inside a loop that can be jumped past: the node before
    # the loop must not consider it guaranteed (safety, §4.2).
    source = (
        "a = 1\n"
        "do i = 1, n\n"
        "if t goto 9\n"
        "u = x(1)\n"
        "enddo\n"
        "9 b = 2\n"
    )
    analyzed, problem, sol = solved(
        source, lambda ap, p: p.add_take(ap.node_named("u ="), "e"))
    # the jump can skip u on every trip: TAKEN_out of the *header* via
    # the synthetic edge still sees the consumption as not guaranteed
    # before the jump test
    before = analyzed.node_named("a =")
    assert "e" not in sol.elements("TAKEN_out", before)


def test_eq5_hoists_guaranteed_loop_consumption():
    analyzed, problem, sol = solved(
        "do i = 1, n\nu = x(1)\nenddo",
        lambda ap, p: p.add_take(ap.node_named("u ="), "e"))
    header = analyzed.node_named("do i")
    assert "e" in sol.elements("TAKE", header)


def test_eq5_steal_at_header_blocks_hoisting():
    analyzed = analyze_source("do i = 1, n\nu = x(1)\nenddo")
    problem = Problem()
    problem.add_take(analyzed.node_named("u ="), "e")
    problem.add_steal(analyzed.node_named("do i"), "e")
    sol = solve(analyzed.ifg, problem)
    header = analyzed.node_named("do i")
    assert "e" not in sol.elements("TAKE", header)


def test_eq6_taken_in_excludes_blocked():
    analyzed, problem, sol = solved(
        "s = 1\nu = x(1)",
        lambda ap, p: (p.add_steal(ap.node_named("s ="), "e"),
                       p.add_take(ap.node_named("u ="), "e")),
    )
    stealer = analyzed.node_named("s =")
    # e is consumed after the steal, so it IS taken-out of the stealer,
    # but the stealer's own BLOCK keeps it out of TAKEN_in
    assert "e" in sol.elements("TAKEN_out", stealer)
    assert "e" not in sol.elements("TAKEN_in", stealer)


def test_eq9_consumption_counts_as_production():
    analyzed, problem, sol = solved(
        "u = x(1)\nw = 2",
        lambda ap, p: p.add_take(ap.node_named("u ="), "e"))
    consumer = analyzed.node_named("u =")
    assert "e" in sol.elements("GIVE_loc", consumer)


def test_eq10_resupply_stops_steal_propagation():
    analyzed, problem, sol = solved(
        "s = 1\nu = x(1)\nw = 2",
        lambda ap, p: (p.add_steal(ap.node_named("s ="), "e"),
                       p.add_take(ap.node_named("u ="), "e")),
    )
    last = analyzed.node_named("w =")
    assert "e" not in sol.elements("STEAL_loc", last)
    assert "e" in sol.elements("STEAL_loc", analyzed.node_named("u ="))


def test_eq11_meet_requires_all_predecessors(fig11, fig11_solution):
    # y_b produced on both branch paths (nodes 6 and 10) -> available at
    # their join (node 11) in the eager solution
    assert "y_b" in fig11_solution.elements("GIVEN_in", fig11.node(11),
                                            Timing.EAGER)


def test_eq11_first_child_inherits_header_minus_steal():
    # e is available before the loop; the body steals it but w's take
    # resupplies it (not at the latch — z follows), so the loop summary
    # does not steal and the first child inherits the availability.
    analyzed, problem, sol = solved(
        "u = x(1)\ndo i = 1, n\ns = 1\nw = x(1)\nz = 2\nenddo",
        lambda ap, p: (p.add_take(ap.node_named("u ="), "e"),
                       p.add_steal(ap.node_named("s ="), "e"),
                       p.add_take(ap.node_named("w ="), "e")),
    )
    body_first = analyzed.node_named("s =")
    assert "e" in sol.elements("GIVEN_in", body_first, Timing.EAGER)


def test_eq11_first_child_does_not_inherit_unresupplied_steal():
    # same shape but nothing resupplies: the inheritance is cut by the
    # STEAL(header) subtraction (the documented Eq 11 deviation).
    analyzed, problem, sol = solved(
        "u = x(1)\ndo i = 1, n\ns = 1\nw = x(1)\nz = 2\nenddo",
        lambda ap, p: (p.add_take(ap.node_named("u ="), "e"),
                       p.add_steal(ap.node_named("z ="), "e")),
    )
    body_first = analyzed.node_named("s =")
    assert "e" not in sol.elements("GIVEN_in", body_first, Timing.EAGER)


def test_eq12_eager_includes_downstream_lazy_does_not():
    analyzed, problem, sol = solved(
        "a = 1\nu = x(1)",
        lambda ap, p: p.add_take(ap.node_named("u ="), "e"))
    first = analyzed.node_named("a =")
    assert "e" in sol.elements("GIVEN", first, Timing.EAGER)
    assert "e" not in sol.elements("GIVEN", first, Timing.LAZY)


def test_eq13_given_out_removes_steal():
    analyzed, problem, sol = solved(
        "u = x(1)\ns = 1\nw = x(1)",
        lambda ap, p: (p.add_take(ap.node_named("u ="), "e"),
                       p.add_steal(ap.node_named("s ="), "e"),
                       p.add_take(ap.node_named("w ="), "e")),
    )
    stealer = analyzed.node_named("s =")
    assert "e" not in sol.elements("GIVEN_out", stealer, Timing.EAGER)
    # forcing re-production before w
    assert "e" in sol.elements("RES_in", analyzed.node_named("w ="),
                               Timing.EAGER)


def test_eq14_res_in_is_given_minus_given_in():
    analyzed, problem, sol = solved(
        "a = 1\nu = x(1)",
        lambda ap, p: p.add_take(ap.node_named("u ="), "e"))
    entry = analyzed.ifg.cfg.entry
    assert sol.elements("RES_in", entry, Timing.EAGER) == frozenset({"e"})
    # downstream nodes inherit availability, so no further production
    assert sol.bits("RES_in", analyzed.node_named("a ="), Timing.EAGER) == 0


def test_eq15_res_out_patches_partial_availability():
    # give on the then path only, consumer after the join: the else
    # path's exit must produce (Eq 11's third term + Eq 15).
    analyzed, problem, sol = solved(
        "if t then\ng = 1\nelse\nb = 2\nendif\nu = x(1)",
        lambda ap, p: (p.add_give(ap.node_named("g ="), "e"),
                       p.add_take(ap.node_named("u ="), "e")),
    )
    producers = [
        n for n in analyzed.ifg.real_nodes()
        if sol.bits("RES_out", n, Timing.EAGER) or sol.bits("RES_in", n, Timing.EAGER)
    ]
    assert producers, "the else path must produce e"
    give_node = analyzed.node_named("g =")
    then_side = {give_node}
    assert all(node not in then_side for node in producers)
