"""Complete dataflow-state snapshot of the §4 READ instance.

Every nonempty (variable, timing, element) → node-set triple of the
Figure 12 instance, frozen.  Complements the golden-value tests (which
pin the paper's listed values) by covering the *whole* state, so any
equation change — however subtle — surfaces here as a diff.
"""

import pytest

from repro.core import solve
from repro.core.problem import Timing
from repro.core.solution import SHARED_VARIABLES, TIMED_VARIABLES
from tests.conftest import make_fig11_read_problem

FULL_STATE = {
    ("STEAL", None, "y_b"): [2, 3],
    ("GIVE", None, "x_k"): [12],
    ("GIVE", None, "y_a"): [2, 3],
    ("GIVE", None, "y_b"): [12],
    ("BLOCK", None, "x_k"): [12],
    ("BLOCK", None, "y_a"): [2, 3],
    ("BLOCK", None, "y_b"): [2, 3, 12],
    ("TAKEN_out", None, "x_k"): [1, 2, 6, 7, 9, 10, 11],
    ("TAKEN_out", None, "y_b"): [2, 6, 7, 9, 10, 11],
    ("TAKE", None, "x_k"): [12, 13],
    ("TAKE", None, "y_b"): [12, 13],
    ("TAKEN_in", None, "x_k"): [1, 2, 6, 7, 9, 10, 11, 12, 13],
    ("TAKEN_in", None, "y_b"): [6, 7, 9, 10, 11, 12, 13],
    ("BLOCK_loc", None, "y_a"): [1, 2, 3],
    ("BLOCK_loc", None, "y_b"): [1, 2, 3],
    ("TAKE_loc", None, "x_k"): [1, 2, 6, 7, 9, 10, 11, 12, 13],
    ("TAKE_loc", None, "y_b"): [6, 7, 9, 10, 11, 12, 13],
    ("GIVE_loc", None, "x_k"): [12, 13, 14],
    ("GIVE_loc", None, "y_a"): [2, 3, 4, 5, 6, 7, 9, 10, 11, 12, 14],
    ("GIVE_loc", None, "y_b"): [12, 13, 14],
    ("STEAL_loc", None, "y_b"): [2, 3, 4, 5, 6, 7, 9, 10, 11, 12],
    ("GIVEN_in", "eager", "x_k"): [2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14],
    ("GIVEN_in", "eager", "y_a"): [4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14],
    ("GIVEN_in", "eager", "y_b"): [7, 8, 9, 11, 12, 13, 14],
    ("GIVEN", "eager", "x_k"): [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14],
    ("GIVEN", "eager", "y_a"): [4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14],
    ("GIVEN", "eager", "y_b"): [6, 7, 8, 9, 10, 11, 12, 13, 14],
    ("GIVEN_out", "eager", "x_k"): [1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14],
    ("GIVEN_out", "eager", "y_a"): [2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14],
    ("GIVEN_out", "eager", "y_b"): [6, 7, 8, 9, 10, 11, 12, 13, 14],
    ("RES_in", "eager", "x_k"): [1],
    ("RES_in", "eager", "y_b"): [6, 10],
    ("GIVEN_in", "lazy", "x_k"): [13, 14],
    ("GIVEN_in", "lazy", "y_a"): [4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14],
    ("GIVEN_in", "lazy", "y_b"): [13, 14],
    ("GIVEN", "lazy", "x_k"): [12, 13, 14],
    ("GIVEN", "lazy", "y_a"): [4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14],
    ("GIVEN", "lazy", "y_b"): [12, 13, 14],
    ("GIVEN_out", "lazy", "x_k"): [12, 13, 14],
    ("GIVEN_out", "lazy", "y_a"): [2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14],
    ("GIVEN_out", "lazy", "y_b"): [12, 13, 14],
    ("RES_in", "lazy", "x_k"): [12],
    ("RES_in", "lazy", "y_b"): [12],
}


def test_complete_state_matches_snapshot(fig11):
    problem = make_fig11_read_problem(fig11)
    solution = solve(fig11.ifg, problem)

    actual = {}
    timings = {None: None, "eager": Timing.EAGER, "lazy": Timing.LAZY}
    for name in SHARED_VARIABLES:
        for element in ("x_k", "y_a", "y_b"):
            nodes = fig11.numbers(solution.nodes_with(name, element))
            if nodes:
                actual[(name, None, element)] = nodes
    for timing_name in ("eager", "lazy"):
        for name in TIMED_VARIABLES:
            for element in ("x_k", "y_a", "y_b"):
                nodes = fig11.numbers(
                    solution.nodes_with(name, element, timings[timing_name]))
                if nodes:
                    actual[(name, timing_name, element)] = nodes
    assert actual == FULL_STATE


def test_snapshot_is_internally_consistent():
    """Cheap cross-checks inside the frozen snapshot itself."""
    # RES_in ⊆ GIVEN − GIVEN_in at the same timing
    for timing in ("eager", "lazy"):
        for element in ("x_k", "y_a", "y_b"):
            res = set(FULL_STATE.get(("RES_in", timing, element), []))
            given = set(FULL_STATE.get(("GIVEN", timing, element), []))
            given_in = set(FULL_STATE.get(("GIVEN_in", timing, element), []))
            assert res == given - given_in, (timing, element)
    # TAKEN_in ⊇ TAKE
    for element in ("x_k", "y_b"):
        take = set(FULL_STATE[("TAKE", None, element)])
        taken_in = set(FULL_STATE[("TAKEN_in", None, element)])
        assert take <= taken_in
