"""Checker tests: hand-written *bad* placements must be caught.

These are the left (incorrect) sides of the paper's criteria figures
4–7, recreated as explicit placements over small programs.
"""

from repro.core import Problem, check_placement, solve
from repro.core.placement import Placement, Position
from repro.core.problem import Direction, Timing
from repro.testing.programs import analyze_source


def scenario(source="if t then\na = 1\nelse\nb = 2\nendif\nu = x(1)"):
    analyzed = analyze_source(source)
    problem = Problem()
    problem.add_take(analyzed.node_named("u ="), "x1")
    return analyzed, problem


def test_figure4_unbalanced_double_lazy_detected():
    # one EAGER followed by two LAZY productions on the same path
    analyzed, problem = scenario("a = 1\nb = 2\nu = x(1)")
    placement = Placement.empty(analyzed.ifg, problem)
    placement.add(analyzed.node_named("a ="), Position.BEFORE, Timing.EAGER, "x1")
    placement.add(analyzed.node_named("b ="), Position.BEFORE, Timing.LAZY, "x1")
    placement.add(analyzed.node_named("u ="), Position.BEFORE, Timing.LAZY, "x1")
    report = check_placement(analyzed.ifg, problem, placement)
    assert report.by_kind("balance"), report.summary()


def test_figure4_eager_never_closed_detected():
    analyzed, problem = scenario("a = 1\nu = x(1)")
    placement = Placement.empty(analyzed.ifg, problem)
    placement.add(analyzed.node_named("a ="), Position.BEFORE, Timing.EAGER, "x1")
    # no LAZY at all -> consumption unsatisfied AND region never closed
    report = check_placement(analyzed.ifg, problem, placement)
    kinds = {v.kind for v in report.violations}
    assert "balance" in kinds and "sufficiency" in kinds


def test_figure5_unsafe_production_detected():
    # production on the branch with no consumer (C2)
    analyzed, problem = scenario()
    placement = Placement.empty(analyzed.ifg, problem)
    for name in ("a =", "b ="):
        placement.add(analyzed.node_named(name), Position.BEFORE, Timing.EAGER, "x1")
        placement.add(analyzed.node_named(name), Position.BEFORE, Timing.LAZY, "x1")
    placement.add(analyzed.node_named("u ="), Position.BEFORE, Timing.EAGER, "x1")
    # 'u =' consumes, but double production means one path had a wasted
    # production... actually here each path produces once then the extra
    # eager at the consumer is redundant and unbalanced.
    report = check_placement(analyzed.ifg, problem, placement)
    assert not report.ok()


def test_figure6_insufficient_production_detected():
    # production on only one branch; consumer after the join (C3)
    analyzed, problem = scenario()
    placement = Placement.empty(analyzed.ifg, problem)
    placement.add(analyzed.node_named("a ="), Position.BEFORE, Timing.EAGER, "x1")
    placement.add(analyzed.node_named("a ="), Position.BEFORE, Timing.LAZY, "x1")
    report = check_placement(analyzed.ifg, problem, placement)
    sufficiency = report.by_kind("sufficiency")
    assert sufficiency and sufficiency[0].element == "x1"


def test_figure7_redundant_production_detected():
    analyzed, problem = scenario("u = x(1)\nw = x(1)")
    problem.add_take(analyzed.node_named("w ="), "x1")
    placement = Placement.empty(analyzed.ifg, problem)
    for name in ("u =", "w ="):
        placement.add(analyzed.node_named(name), Position.BEFORE, Timing.EAGER, "x1")
        placement.add(analyzed.node_named(name), Position.BEFORE, Timing.LAZY, "x1")
    report = check_placement(analyzed.ifg, problem, placement)
    assert report.by_kind("redundant")


def test_steal_between_production_and_consumer_detected():
    analyzed = analyze_source("a = 1\ns = 2\nu = x(1)")
    problem = Problem()
    problem.add_take(analyzed.node_named("u ="), "x1")
    problem.add_steal(analyzed.node_named("s ="), "x1")
    placement = Placement.empty(analyzed.ifg, problem)
    placement.add(analyzed.node_named("a ="), Position.BEFORE, Timing.EAGER, "x1")
    placement.add(analyzed.node_named("a ="), Position.BEFORE, Timing.LAZY, "x1")
    report = check_placement(analyzed.ifg, problem, placement)
    kinds = {v.kind for v in report.violations}
    assert "sufficiency" in kinds     # consumer sees destroyed element
    assert "safety" in kinds          # production destroyed unconsumed


def test_steal_inside_open_region_detected():
    analyzed = analyze_source("a = 1\ns = 2\nu = x(1)")
    problem = Problem()
    problem.add_take(analyzed.node_named("u ="), "x1")
    problem.add_steal(analyzed.node_named("s ="), "x1")
    placement = Placement.empty(analyzed.ifg, problem)
    placement.add(analyzed.node_named("a ="), Position.BEFORE, Timing.EAGER, "x1")
    placement.add(analyzed.node_named("u ="), Position.BEFORE, Timing.LAZY, "x1")
    report = check_placement(analyzed.ifg, problem, placement)
    balance = report.by_kind("balance")
    assert any("destruction inside" in v.message for v in balance)


def test_correct_placement_passes():
    analyzed, problem = scenario("a = 1\nu = x(1)")
    solution = solve(analyzed.ifg, problem)
    placement = Placement(analyzed.ifg, problem, solution)
    report = check_placement(analyzed.ifg, problem, placement)
    assert report.ok()
    assert report.summary().startswith("OK")


def test_report_formatting():
    analyzed, problem = scenario("a = 1\nu = x(1)")
    placement = Placement.empty(analyzed.ifg, problem)  # nothing produced
    report = check_placement(analyzed.ifg, problem, placement)
    assert not report.ok()
    text = str(report)
    assert "C3" in text and "x1" in text
    assert "sufficiency=1" in report.summary()


def test_header_entry_production_not_replayed_on_back_edge(fig11,
                                                           fig11_read_problem,
                                                           fig11_placement):
    # The lazy receive sits before the k-loop header (node 12); iterating
    # the loop must not re-trigger it (that would double-receive).
    report = check_placement(fig11.ifg, fig11_read_problem, fig11_placement,
                             max_paths=300)
    assert report.ok(ignore=("safety",)), str(report)
    assert not report.by_kind("balance")
