"""Synthetic-node post-pass tests (§5.4)."""

from repro.core import Problem, check_placement, solve
from repro.core.placement import Placement, Position
from repro.core.postpass import shift_synthetic_productions
from repro.core.problem import Timing
from repro.testing.programs import analyze_source


def test_fig11_moves_loop_exit_send_to_do_j(fig11, fig11_read_problem,
                                            fig11_solution):
    placement = Placement(fig11.ifg, fig11_read_problem, fig11_solution)
    moves = shift_synthetic_productions(placement)
    moved_pairs = {(fig11.number(a), fig11.number(b)) for a, b in moves}
    # The send at synthetic node 6 shifts onto node 7 (before `do j`),
    # exactly where Figure 14 prints it.
    assert (6, 7) in moved_pairs
    assert placement.at(fig11.node(7), Position.BEFORE, Timing.EAGER) == {"y_b"}
    assert placement.at(fig11.node(6), Position.BEFORE, Timing.EAGER) == set()


def test_fig11_landing_pad_production_stays(fig11, fig11_read_problem,
                                            fig11_solution):
    placement = Placement(fig11.ifg, fig11_read_problem, fig11_solution)
    shift_synthetic_productions(placement)
    # Node 10 (the goto landing pad) has no conflict-free neighbor: its
    # successor 11 has two predecessors and its predecessor 4 has two
    # successors.  The production must stay and materialize a block.
    assert placement.at(fig11.node(10), Position.BEFORE, Timing.EAGER) == {"y_b"}


def test_postpass_preserves_correctness(fig11, fig11_read_problem,
                                        fig11_solution):
    placement = Placement(fig11.ifg, fig11_read_problem, fig11_solution)
    before = check_placement(fig11.ifg, fig11_read_problem, placement)
    shift_synthetic_productions(placement)
    after = check_placement(fig11.ifg, fig11_read_problem, placement)
    assert after.ok(ignore=("safety",)), str(after)
    assert len(after.by_kind("safety")) == len(before.by_kind("safety"))


def test_no_moves_without_synthetic_productions():
    analyzed = analyze_source("a = 1\nu = x(1)")
    problem = Problem()
    problem.add_take(analyzed.node_named("u ="), "x1")
    solution = solve(analyzed.ifg, problem)
    placement = Placement(analyzed.ifg, problem, solution)
    assert shift_synthetic_productions(placement) == []


def test_postpass_is_idempotent(fig11, fig11_read_problem, fig11_solution):
    placement = Placement(fig11.ifg, fig11_read_problem, fig11_solution)
    shift_synthetic_productions(placement)
    assert shift_synthetic_productions(placement) == []
