"""Placement wrapper tests."""

from repro.core import Problem, solve
from repro.core.placement import Placement, Position, Production
from repro.core.problem import Direction, Timing
from repro.testing.programs import analyze_source


def test_before_problem_res_in_maps_to_before(fig11, fig11_placement):
    # RES_in^eager(1) = {x_k}: production before node 1.
    assert fig11_placement.at(fig11.node(1), Position.BEFORE, Timing.EAGER) == {"x_k"}
    assert fig11_placement.at(fig11.node(1), Position.AFTER, Timing.EAGER) == set()


def test_after_problem_res_in_maps_to_after():
    analyzed = analyze_source("u = x(1)\na = 2")
    problem = Problem(direction=Direction.AFTER)
    definition = analyzed.node_named("u =")
    problem.add_take(definition, "x1")
    solution = solve(analyzed.ifg, problem)
    placement = Placement(analyzed.ifg, problem, solution)
    # The write-back must happen *after* the defining statement.
    positions = {p.position for p in placement.productions()}
    assert positions == {Position.AFTER}


def test_productions_order_and_content(fig11, fig11_placement):
    productions = fig11_placement.productions()
    assert all(isinstance(p, Production) for p in productions)
    as_tuples = [
        (fig11.number(p.node), p.position.value, p.timing.value, tuple(sorted(p.elements)))
        for p in productions
    ]
    assert as_tuples == [
        (1, "before", "eager", ("x_k",)),
        (6, "before", "eager", ("y_b",)),
        (10, "before", "eager", ("y_b",)),
        (12, "before", "lazy", ("x_k", "y_b")),
    ]


def test_production_count_and_filter(fig11, fig11_placement):
    assert fig11_placement.production_count() == 4
    assert fig11_placement.production_count(Timing.EAGER) == 3
    assert fig11_placement.production_count(Timing.LAZY) == 1


def test_move_merges(fig11, fig11_read_problem, fig11_solution):
    placement = Placement(fig11.ifg, fig11_read_problem, fig11_solution)
    placement.move(fig11.node(6), Position.BEFORE, Timing.EAGER,
                   fig11.node(7), Position.BEFORE)
    assert placement.at(fig11.node(6), Position.BEFORE, Timing.EAGER) == set()
    assert placement.at(fig11.node(7), Position.BEFORE, Timing.EAGER) == {"y_b"}


def test_empty_and_add():
    analyzed = analyze_source("u = x(1)")
    problem = Problem()
    node = analyzed.node_named("u =")
    problem.add_take(node, "x1")
    placement = Placement.empty(analyzed.ifg, problem)
    assert placement.productions() == []
    placement.add(node, Position.BEFORE, Timing.EAGER, "x1")
    placement.add(node, Position.BEFORE, Timing.LAZY, "x1")
    assert placement.production_count() == 2


def test_str_rendering(fig11_placement):
    text = str(fig11_placement)
    assert "eager@before" in text and "x_k" in text


def test_sites_for(fig11, fig11_placement):
    sites = fig11_placement.sites_for("y_b", Timing.EAGER)
    assert fig11.numbers([node for node, _ in sites]) == [6, 10]
    assert all(position is Position.BEFORE for _, position in sites)
    all_timings = fig11_placement.sites_for("x_k")
    assert len(all_timings) == 2  # eager at 1, lazy at 12


def test_report_by_criterion():
    from repro.core import Problem, check_placement
    from repro.testing.programs import analyze_source

    analyzed = analyze_source("u = x(1)")
    problem = Problem()
    problem.add_take(analyzed.node_named("u ="), "e")
    empty = Placement.empty(analyzed.ifg, problem)
    report = check_placement(analyzed.ifg, problem, empty)
    assert report.by_criterion("C3")
    assert not report.by_criterion("C1")
