"""check_placement_dual: one enumeration, both min-trip verdicts.

The hot-path fix in ``_solve_write`` replaced two ``check_placement``
calls (one per ``min_trips`` value) with one ``check_placement_dual``
call that enumerates and replays paths once.  These tests pin the dual
report to the two single reports it replaced.
"""

from repro.core import Problem, check_placement, solve
from repro.core.checker import check_placement_dual
from repro.core.placement import Placement
from repro.testing.generator import random_analyzed_program, random_problem
from repro.testing.programs import FIG11_SOURCE, analyze_source


def report_key(report):
    return (sorted((v.kind, v.criterion, str(v.node), str(v.element))
                   for v in report.violations),
            report.paths_checked, report.truncated)


def solved_placement(analyzed, problem):
    solution = solve(analyzed.ifg, problem)
    return Placement(analyzed.ifg, problem, solution)


def solved_instance(source):
    analyzed = analyze_source(source)
    problem = Problem()
    problem.add_take(analyzed.node_named("u ="), "x1")
    return analyzed, problem, solved_placement(analyzed, problem)


def assert_dual_matches_single(analyzed, problem, placement, max_paths=200):
    full, min_trip = check_placement_dual(analyzed.ifg, problem, placement,
                                          max_paths=max_paths)
    single_full = check_placement(analyzed.ifg, problem, placement,
                                  max_paths=max_paths, min_trips=0)
    assert report_key(full) == report_key(single_full)
    # holds even when the full enumeration truncates: the dual checker
    # then switches to a dedicated min_trips=1 enumeration, which is
    # exactly what the single call runs
    single_trip = check_placement(analyzed.ifg, problem, placement,
                                  max_paths=max_paths, min_trips=1)
    assert report_key(min_trip) == report_key(single_trip)


def test_dual_matches_single_on_branchy_program():
    assert_dual_matches_single(
        *solved_instance("if t then\na = 1\nelse\nb = 2\nendif\nu = x(1)"))


def test_dual_matches_single_on_loops():
    assert_dual_matches_single(*solved_instance(
        "do i = 1, n\na = x(i)\nenddo\nu = x(1)"))


def test_dual_matches_single_on_fig11():
    analyzed = analyze_source(FIG11_SOURCE)
    problem = Problem()
    problem.add_take(analyzed.node_named("... = x(k + 10)"), "x1")
    assert_dual_matches_single(analyzed, problem,
                               solved_placement(analyzed, problem))


def test_dual_matches_single_on_random_instances():
    for seed in range(6):
        analyzed = random_analyzed_program(seed, size=20, max_depth=3)
        problem = random_problem(analyzed, seed=seed, n_elements=4)
        assert_dual_matches_single(analyzed, problem,
                                   solved_placement(analyzed, problem),
                                   max_paths=120)


def test_min_trip_report_is_a_path_subset():
    analyzed, problem, placement = solved_instance(
        "do i = 1, n\na = x(i)\nenddo\nu = x(1)")
    full, min_trip = check_placement_dual(analyzed.ifg, problem, placement)
    assert min_trip.paths_checked <= full.paths_checked
    assert len(min_trip.violations) <= len(full.violations)


def test_truncated_enumeration_does_not_starve_the_min_trip_verdict():
    """Regression: generator seed 304 produces a graph whose first 150
    bounded paths are *all* zero-trip prefixes.  Filtering them used to
    leave the min-trip report with zero paths — a vacuously clean
    sufficiency verdict that let ``_solve_write`` certify an
    insufficient optimistic placement."""
    from repro.commgen.pipeline import prepare_communication
    from repro.lang.printer import format_program
    from repro.testing.generator import ArrayProgramGenerator

    source = format_program(ArrayProgramGenerator(304).program(14))
    prepared = prepare_communication(source)
    ifg = prepared.analyzed.ifg
    problem = prepared.write_problem
    placement = prepared.write_placement
    full, min_trip = check_placement_dual(ifg, problem, placement,
                                          max_paths=150)
    assert full.truncated
    assert min_trip.paths_checked > 0  # never a vacuous verdict
    assert_dual_matches_single(prepared.analyzed, problem, placement,
                               max_paths=150)


def test_seed_304_write_placement_is_sufficient_end_to_end():
    """The pipeline-level symptom of the starved verdict: 18 C3
    violations on the write problem under the default optimistic jump
    treatment.  With the dual checker fixed, certification fails and the
    solve falls back to the conservative treatment, which is clean."""
    from repro.commgen import generate_communication
    from repro.lang.printer import format_program
    from repro.testing.generator import ArrayProgramGenerator

    source = format_program(ArrayProgramGenerator(304).program(14))
    result = generate_communication(source)
    for problem, placement in [
        (result.read_problem, result.read_placement),
        (result.write_problem, result.write_placement),
    ]:
        report = check_placement(result.analyzed.ifg, problem, placement,
                                 max_paths=100, min_trips=1)
        hard = [v for v in report.violations
                if v.kind not in ("safety", "redundant")]
        assert not hard, str(report)
