"""BitMatrix storage: int ↔ uint64-word round-trips, exactly.

The vector backend's whole correctness story rests on
``repro.core.kernel.bitmatrix`` converting between Python ``int``
bitsets and little-endian word rows without losing a bit — most easily
broken right at word boundaries, so the suite pins universes of 63, 64
and 65 elements (and a couple of multi-word widths) on both sides of
every conversion, plus the :class:`NumpyColumn` sequence-protocol view
the rest of the codebase consumes.
"""

import random

import pytest

from repro.core.kernel import bitmatrix
from repro.core.kernel.bitmatrix import (NumpyColumn, WORD_BITS, pack_column,
                                         pack_int, unpack_column, unpack_row,
                                         words_for)

np = bitmatrix.numpy()
needs_numpy = pytest.mark.skipif(np is None, reason="NumPy unavailable")

#: The word-boundary universes the ISSUE calls out, plus multi-word.
BOUNDARY_BITS = (1, 63, 64, 65, 127, 128, 130)


def sample_bitsets(n_bits, count=32, seed=7):
    rng = random.Random(seed)
    edge = [0, 1, (1 << n_bits) - 1, 1 << (n_bits - 1)]
    return edge + [rng.getrandbits(n_bits) for _ in range(count)]


@pytest.mark.parametrize("n_bits", BOUNDARY_BITS)
def test_words_for_covers_every_bit(n_bits):
    words = words_for(n_bits)
    assert words * WORD_BITS >= n_bits
    assert (words - 1) * WORD_BITS < n_bits


def test_words_for_empty_universe_is_one_word():
    assert words_for(0) == 1


@pytest.mark.parametrize("n_bits", BOUNDARY_BITS)
def test_pack_int_is_little_endian_and_sized(n_bits):
    words = words_for(n_bits)
    raw = pack_int((1 << n_bits) - 1, words)
    assert len(raw) == words * 8
    assert int.from_bytes(raw, "little") == (1 << n_bits) - 1


@needs_numpy
@pytest.mark.parametrize("n_bits", BOUNDARY_BITS)
def test_row_round_trip(n_bits):
    words = words_for(n_bits)
    for bits in sample_bitsets(n_bits):
        row = np.frombuffer(pack_int(bits, words), dtype=np.uint64)
        assert unpack_row(row) == bits


@needs_numpy
@pytest.mark.parametrize("n_bits", BOUNDARY_BITS)
def test_column_round_trip(n_bits):
    words = words_for(n_bits)
    values = sample_bitsets(n_bits)
    matrix = pack_column(values, words)
    assert matrix.shape == (len(values), words)
    assert matrix.dtype == np.uint64
    assert unpack_column(matrix) == values


@needs_numpy
def test_numpy_column_view_reads_and_writes():
    n_bits = 65
    words = words_for(n_bits)
    values = sample_bitsets(n_bits)
    column = NumpyColumn(pack_column(values, words))

    assert len(column) == len(values)
    assert list(column) == values
    assert column[3] == values[3]
    assert column[1:4] == values[1:4]
    assert column == values  # sequence equality against a plain list

    column[2] = 0b101 << 62  # straddles the first word boundary
    assert column[2] == 0b101 << 62
    replacement = sample_bitsets(n_bits, seed=11)
    column[:] = replacement
    assert list(column) == replacement


@needs_numpy
def test_numpy_column_writes_land_in_the_backing_matrix():
    words = words_for(64)
    matrix = pack_column([0, 0], words)
    column = NumpyColumn(matrix)
    column[1] = (1 << 64) - 1
    assert int(matrix[1, 0]) == (1 << 64) - 1
    assert int(matrix[0, 0]) == 0


def test_numpy_accessor_honors_monkeypatched_absence(monkeypatch):
    monkeypatch.setattr(bitmatrix, "_np", None)
    assert bitmatrix.numpy() is None
