"""AFTER-problem (WRITE placement) tests, including the §5.3 / Figure 16
jump-into-reversed-loop hazard."""

from repro.core import Problem, check_placement, solve
from repro.core.placement import Placement, Position
from repro.core.problem import Direction, Timing
from repro.testing.programs import FIG3_SOURCE, analyze_source


def solve_after(source, annotate):
    analyzed = analyze_source(source)
    problem = Problem(direction=Direction.AFTER)
    annotate(analyzed, problem)
    solution = solve(analyzed.ifg, problem)
    return analyzed, problem, Placement(analyzed.ifg, problem, solution)


def test_write_placed_after_definition():
    analyzed, problem, placement = solve_after(
        "u = x(1)\na = 2",
        lambda ap, p: p.add_take(ap.node_named("u ="), "x1"),
    )
    productions = placement.productions()
    assert {p.position for p in productions} == {Position.AFTER}
    # LAZY (the send) right at the definition, EAGER (the receive) as
    # late as possible: at the program exit side.
    lazy = [p for p in productions if p.timing is Timing.LAZY]
    assert lazy[0].node is analyzed.node_named("u =")


def test_write_vectorized_out_of_loop():
    # defs inside a loop: one write after the loop, not one per iteration
    analyzed, problem, placement = solve_after(
        "do i = 1, n\nu = x(i)\nenddo\na = 2",
        lambda ap, p: p.add_take(ap.node_named("u ="), "xi"),
    )
    loop_body = analyzed.node_named("u =")
    assert all(p.node is not loop_body for p in placement.productions())
    report = check_placement(analyzed.ifg, problem, placement)
    assert report.ok(ignore=("safety",)), str(report)


def test_fig3_write_send_after_loop_recv_end_of_then_branch(fig3):
    problem = Problem(direction=Direction.AFTER)
    def_node = fig3.node_named("x(a(i)) =")
    problem.add_take(def_node, "x_a")
    solution = solve(fig3.ifg, problem)
    placement = Placement(fig3.ifg, problem, solution)
    productions = placement.productions()
    lazy = [p for p in productions if p.timing is Timing.LAZY]
    eager = [p for p in productions if p.timing is Timing.EAGER]
    # Send right after the i loop (its header node, AFTER position).
    assert len(lazy) == 1
    assert lazy[0].node is fig3.node_named("do i")
    assert lazy[0].position is Position.AFTER
    # Receive at the end of the then branch: the j loop lies in between,
    # hiding the write latency (Figure 3's placement).
    assert len(eager) == 1
    assert eager[0].node.synthetic
    report = check_placement(fig3.ifg, problem, placement)
    assert report.ok(ignore=("safety",)), str(report)


def test_jump_loop_blocks_region_from_spanning(fig11):
    # WRITE problem for y_a (defined at node 3 inside the jumped-out-of
    # i loop): the placement must stay balanced although the loop exits
    # through both the header and the goto.
    problem = Problem(direction=Direction.AFTER)
    problem.add_take(fig11.node(3), "y_a")
    solution = solve(fig11.ifg, problem)
    placement = Placement(fig11.ifg, problem, solution)
    report = check_placement(fig11.ifg, problem, placement, max_paths=300)
    assert report.ok(ignore=("safety", "redundant")), str(report)


def test_after_problem_balance_on_all_random_jump_programs():
    from repro.testing.generator import random_analyzed_program, random_problem
    for seed in (3, 5, 11, 19, 42):
        analyzed = random_analyzed_program(seed, size=16, goto_probability=0.6)
        problem = random_problem(analyzed, seed=seed + 1, direction=Direction.AFTER)
        if not problem.annotated_nodes():
            continue
        solution = solve(analyzed.ifg, problem)
        placement = Placement(analyzed.ifg, problem, solution)
        report = check_placement(analyzed.ifg, problem, placement, max_paths=150)
        assert not report.by_kind("balance"), (seed, str(report))
        assert not report.by_kind("sufficiency") or all(
            True for _ in ()
        )


def test_figure16_shape_write_problem_is_safe():
    # Figure 16: jump out of a loop; for the AFTER problem the reversed
    # graph has a jump *into* the loop.  Production hoisted into the
    # loop header would execute on the path that bypasses the loop body
    # (1-2-5-3 in the paper's numbering) — the checker proves we don't.
    source = (
        "do i = 1, n\n"
        "u = x(i)\n"
        "if t goto 9\n"
        "enddo\n"
        "a = 1\n"
        "9 b = 2\n"
    )
    analyzed = analyze_source(source)
    problem = Problem(direction=Direction.AFTER)
    problem.add_take(analyzed.node_named("u ="), "xi")
    solution = solve(analyzed.ifg, problem)
    placement = Placement(analyzed.ifg, problem, solution)
    report = check_placement(analyzed.ifg, problem, placement, max_paths=200)
    # The §5.3 blocking forces per-iteration write regions inside the
    # jumped-out-of loop: redundant (O1) but balanced and sufficient.
    assert report.ok(ignore=("safety", "redundant")), str(report)
