"""Solution store API tests."""

import pytest

from repro.core import Problem, solve
from repro.core.problem import Timing
from repro.core.solution import SHARED_VARIABLES, TIMED_VARIABLES, Solution
from repro.graph.views import ForwardView
from repro.testing.programs import analyze_source


@pytest.fixture
def small():
    analyzed = analyze_source("a = 1\nu = x(1)")
    problem = Problem()
    problem.add_take(analyzed.node_named("u ="), "e")
    return analyzed, problem, solve(analyzed.ifg, problem)


def test_variable_name_sets():
    assert len(SHARED_VARIABLES) == 10
    assert len(TIMED_VARIABLES) == 5
    assert "TAKE" in SHARED_VARIABLES and "RES_in" in TIMED_VARIABLES


def test_bits_default_to_empty(small):
    analyzed, problem, solution = small
    node = analyzed.node_named("a =")
    fresh = Solution(problem, ForwardView(analyzed.ifg))
    assert fresh.bits("TAKE", node) == 0


def test_timed_variable_requires_timing(small):
    analyzed, problem, solution = small
    node = analyzed.node_named("u =")
    with pytest.raises(KeyError):
        solution.bits("RES_in", node)  # no timing given


def test_elements_roundtrip(small):
    analyzed, problem, solution = small
    node = analyzed.node_named("u =")
    assert solution.elements("TAKE", node) == frozenset({"e"})


def test_nodes_with(small):
    analyzed, problem, solution = small
    nodes = solution.nodes_with("RES_in", "e", Timing.EAGER)
    assert nodes == [analyzed.ifg.cfg.entry]


def test_format_node_lists_all_variables(small):
    analyzed, problem, solution = small
    text = solution.format_node(analyzed.node_named("u ="))
    for name in SHARED_VARIABLES:
        assert name in text
    assert "RES_in^eager" in text and "RES_in^lazy" in text


def test_set_bits_overwrites(small):
    analyzed, problem, solution = small
    node = analyzed.node_named("a =")
    solution.set_bits("TAKE", node, 0b1)
    assert solution.bits("TAKE", node) == 0b1
    solution.set_bits("TAKE", node, 0)
    assert solution.bits("TAKE", node) == 0
