"""Interval-scoped solve memoization (``repro.core.kernel.incremental``).

The driver-level behavior (delta compiles byte-identical to cold ones)
lives in ``tests/batch/test_compile_delta.py``; these tests pin the
memo's own contracts: whole-solve replay is bit-identical, preset
(splice) solves equal plain solves, fragments are refused wherever the
fixpoint makes them unsound, and write verdicts round-trip.
"""

import pytest

from repro.batch.cache import PipelineCache
from repro.core.kernel.incremental import (
    IncrementalSolveMemo,
    fragment_regions,
    graph_signature,
)
from repro.core.kernel.plan import plan_for
from repro.core.kernel.planned import PlannedSolver, build_operand_columns
from repro.core.problem import Direction
from repro.core.reference import solutions_equal
from repro.core.solver import make_view, solve
from repro.testing.generator import random_analyzed_program, random_problem
from repro.util.errors import SolverError


def instance(seed=3, size=24, **problem_kwargs):
    analyzed = random_analyzed_program(seed, size=size)
    problem = random_problem(analyzed, seed=seed, n_elements=4,
                             **problem_kwargs)
    return analyzed, problem


# -- whole-solve memoization --------------------------------------------------

def test_whole_solve_replay_is_bit_identical():
    analyzed, problem = instance()
    direct = solve(analyzed.ifg, problem, backend="planned")
    memo = IncrementalSolveMemo(PipelineCache())
    first = memo.solve(analyzed.ifg, problem)
    again = memo.solve(analyzed.ifg, problem)
    assert memo.stats["whole_misses"] == 1
    assert memo.stats["whole_hits"] == 1
    nodes = analyzed.ifg.nodes()
    assert solutions_equal(direct, first, nodes)
    assert solutions_equal(direct, again, nodes)


def test_whole_key_separates_problems_and_rounds():
    analyzed, problem = instance()
    other = random_problem(analyzed, seed=99, n_elements=4)
    memo = IncrementalSolveMemo(PipelineCache())
    memo.solve(analyzed.ifg, problem)
    memo.solve(analyzed.ifg, other)
    assert memo.stats["whole_hits"] == 0  # different problem, no alias
    assert memo.stats["whole_misses"] == 2


def test_memo_shares_entries_through_the_cache():
    analyzed, problem = instance()
    cache = PipelineCache()
    IncrementalSolveMemo(cache).solve(analyzed.ifg, problem)
    second = IncrementalSolveMemo(cache)  # fresh memo, same cache
    replay = second.solve(analyzed.ifg, problem)
    assert second.stats["whole_hits"] == 1
    direct = solve(analyzed.ifg, problem, backend="planned")
    assert solutions_equal(direct, replay, analyzed.ifg.nodes())


def test_applies_only_to_the_planned_backend():
    memo = IncrementalSolveMemo(PipelineCache())
    assert memo.applies("planned")
    assert memo.applies(None)  # the default backend is planned
    assert not memo.applies("reference")


def test_graph_signature_is_stable_and_structural():
    analyzed, _ = instance()
    again = random_analyzed_program(3, size=24)
    other = random_analyzed_program(4, size=24)
    assert graph_signature(analyzed.ifg) == graph_signature(again.ifg)
    assert graph_signature(analyzed.ifg) != graph_signature(other.ifg)


# -- preset (fragment splice) solves ------------------------------------------

def test_preset_solve_equals_plain_solve():
    analyzed, problem = instance(seed=5, size=30)
    view = make_view(analyzed.ifg, problem.direction)
    plan = plan_for(view)
    if plan.requires_iteration:
        pytest.skip("instance needs a non-iterating plan")
    plain = PlannedSolver(view, problem, plan=plan).run()
    regions = fragment_regions(plan)
    assert regions, "instance needs at least one loop"
    header, strict = regions[0]
    from repro.core.solution import SHARED_VARIABLES as names
    preset = {
        slot: tuple(plain.column(name)[slot] for name in names)
        for slot in strict
    }
    spliced = PlannedSolver(view, problem, plan=plan, preset=preset).run()
    for name in names:
        assert spliced.column(name) == plain.column(name), name


def test_preset_is_rejected_for_iterating_plans():
    # backward problems over graphs with jumps need the sparse fixpoint;
    # presetting bundles there would freeze a non-final state
    for seed in range(20):
        analyzed, problem = instance(seed=seed, direction=Direction.AFTER)
        view = make_view(analyzed.ifg, problem.direction)
        plan = plan_for(view)
        if not plan.requires_iteration:
            continue
        with pytest.raises(SolverError):
            PlannedSolver(view, problem, plan=plan, preset={1: (0,) * 10})
        return
    pytest.skip("no iterating instance found in the seed range")


def test_no_fragments_stored_for_iterating_plans():
    for seed in range(20):
        analyzed, problem = instance(seed=seed, direction=Direction.AFTER)
        view = make_view(analyzed.ifg, problem.direction)
        if not plan_for(view).requires_iteration:
            continue
        memo = IncrementalSolveMemo(PipelineCache())
        memo.solve(analyzed.ifg, problem)
        assert memo.stats["fragments_stored"] == 0
        assert memo.stats["interval_misses"] == 0  # never even probed
        return
    pytest.skip("no iterating instance found in the seed range")


def test_fragment_regions_are_closed_and_disjoint():
    analyzed, problem = instance(seed=5, size=30)
    view = make_view(analyzed.ifg, problem.direction)
    plan = plan_for(view)
    if plan.requires_iteration:
        pytest.skip("instance needs a non-iterating plan")
    regions = fragment_regions(plan)
    assert regions
    for index, (header, strict) in enumerate(regions):
        members = set(strict)
        assert header not in members  # strict subtree: header excluded
        # the eligibility invariant: nothing outside the region feeds it
        for slot in strict:
            for succ in list(plan.succs_e[slot]) + list(plan.succs_fjs[slot]):
                assert succ in members
        # regions are properly nested or disjoint, like the intervals
        for _, other in regions[index + 1:]:
            others = set(other)
            overlap = members & others
            assert (not overlap or members <= others
                    or others <= members)


# -- write-verdict memoization ------------------------------------------------

def test_write_verdict_round_trips_through_the_cache():
    analyzed, problem = instance()
    view = make_view(analyzed.ifg, problem.direction)
    memo = IncrementalSolveMemo(PipelineCache())
    assert memo.write_verdict(analyzed.ifg, problem, view, None,
                             "optimistic") is None
    memo.store_write_verdict(analyzed.ifg, problem, view, None,
                             "optimistic", True)
    assert memo.write_verdict(analyzed.ifg, problem, view, None,
                             "optimistic") is True
    # a different checker mode is a different verdict
    assert memo.write_verdict(analyzed.ifg, problem, view, None,
                             "conservative") is None
