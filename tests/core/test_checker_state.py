"""Unit tests of the checker's per-path replay state machine."""

import pytest

from repro.core.checker import _State
from repro.core.lattice import Universe


@pytest.fixture
def state():
    return _State(Universe(["e", "f"]), path_index=0)


def bit(state, element):
    return state.universe.bit(element)


def test_clean_region_lifecycle(state):
    state.produce_eager("n1", bit(state, "e"))
    assert state.open == bit(state, "e")
    state.produce_lazy("n2", bit(state, "e"))
    assert state.open == 0
    assert state.avail == bit(state, "e")
    state.consume("n3", bit(state, "e"))
    state.finish("n4")
    assert state.violations == []


def test_double_eager_flagged(state):
    state.produce_eager("n1", bit(state, "e"))
    state.produce_eager("n2", bit(state, "e"))
    kinds = [v.kind for v in state.violations]
    assert "balance" in kinds


def test_lazy_without_eager_flagged(state):
    state.produce_lazy("n1", bit(state, "e"))
    assert [v.criterion for v in state.violations] == ["C1"]


def test_unclosed_region_flagged_at_finish(state):
    state.produce_eager("n1", bit(state, "e"))
    state.finish("end")
    assert any("never completed" in v.message for v in state.violations)


def test_redundant_production_flagged(state):
    state.give("n0", bit(state, "e"))
    state.produce_eager("n1", bit(state, "e"))
    assert [v.criterion for v in state.violations] == ["O1"]


def test_consume_unavailable_flagged(state):
    state.consume("n1", bit(state, "e"))
    assert [v.criterion for v in state.violations] == ["C3"]


def test_steal_inside_region_flagged(state):
    state.produce_eager("n1", bit(state, "e"))
    state.steal("n2", bit(state, "e"))
    assert any("inside an open production region" in v.message
               for v in state.violations)


def test_unconsumed_production_is_c2(state):
    state.produce_eager("n1", bit(state, "e"))
    state.produce_lazy("n2", bit(state, "e"))
    state.finish("end")
    assert [v.criterion for v in state.violations] == ["C2"]


def test_production_destroyed_before_use_is_c2(state):
    state.produce_eager("n1", bit(state, "e"))
    state.produce_lazy("n2", bit(state, "e"))
    state.steal("n3", bit(state, "e"))
    assert any(v.criterion == "C2" and "destroyed" in v.message
               for v in state.violations)


def test_give_does_not_count_as_pending(state):
    state.give("n1", bit(state, "e"))
    state.finish("end")
    assert state.violations == []  # free production needs no consumer


def test_elements_tracked_independently(state):
    state.produce_eager("n1", bit(state, "e") | bit(state, "f"))
    state.produce_lazy("n2", bit(state, "e"))
    state.consume("n3", bit(state, "e"))
    state.finish("end")
    # only f's region is unclosed
    assert all(v.element == "f" for v in state.violations)
