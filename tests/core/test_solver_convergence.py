"""Regression tests for the backward consumption fixpoint paths.

Two bugs are pinned down here:

* the ``max_rounds=None`` path used to *silently* return when the
  natural-bound loop exhausted without converging — now it verifies
  convergence and raises :class:`SolverError`;
* the budget-exceeded probe used to call ``_sweep_consumption()`` —
  mutating the solution (and granting a free extra sweep) *before*
  deciding whether to raise.  The check is now side-effect-free, and
  the tracer lets us assert the exact mutating-sweep count.
"""

import pytest

from repro import Direction, Problem, analyze_source, tracing
from repro.core.solver import GiveNTakeSolver
from repro.graph.views import BackwardView
from repro.testing.programs import FIG11_SOURCE
from repro.util.errors import SolverBudgetError, SolverError


def after_instance():
    """A backward instance that requires the consumption iteration
    (FIG11 has a jump out of the ``i`` loop)."""
    analyzed = analyze_source(FIG11_SOURCE)
    problem = Problem(direction=Direction.AFTER)
    problem.add_take(analyzed.node_named("y(a(i))"), "y(a(1:n))")
    view = BackwardView(analyzed.ifg)
    assert view.requires_consumption_iteration
    return view, problem


def snapshot(solution):
    """All shared dataflow variables, for exact state comparison."""
    return {name: dict(store) for name, store in solution._shared.items()}


class StuckSolver(GiveNTakeSolver):
    """A solver whose consumption sweeps claim change forever but never
    write anything — so the stored state genuinely is not a fixpoint
    (TAKE is stored as 0 where the problem has take_init bits)."""

    def _sweep_consumption(self):
        self._consumption_sweeps += 1
        return True


def test_exhausted_natural_bound_raises_instead_of_silent_return():
    # Pre-fix, the max_rounds=None path fell out of the loop and
    # returned the unconverged solution without a word.
    view, problem = after_instance()
    with pytest.raises(SolverError) as excinfo:
        StuckSolver(view, problem).run()
    assert not isinstance(excinfo.value, SolverBudgetError)
    assert "natural bound" in str(excinfo.value)


def test_exhausted_explicit_budget_raises_budget_error():
    view, problem = after_instance()
    with pytest.raises(SolverBudgetError) as excinfo:
        StuckSolver(view, problem, max_rounds=2).run()
    assert "2 rounds" in str(excinfo.value)


def test_budget_probe_is_side_effect_free():
    """``max_rounds=0``: the initial sweep already converges on this
    instance, and the decision must come from the non-mutating check —
    exactly one mutating consumption sweep, not a probe sweep."""
    view, problem = after_instance()
    with tracing() as collector:
        GiveNTakeSolver(view, problem, max_rounds=0).run()
    assert collector.counters()["sweeps"]["consumption"] == 1
    checks = collector.events("solver", "convergence_check")
    assert len(checks) == 1 and checks[0]["converged"]
    run = collector.events("solver", "run")[-1]
    assert run["consumption_sweeps"] == 1
    assert run["converged"] and run["convergence_checked"]


def test_budget_probe_does_not_inflate_equation_counts():
    """The convergence check's evaluations are a check, not part of the
    elimination order: per-equation counts stay at one sweep's worth."""
    view, problem = after_instance()
    with tracing() as collector:
        GiveNTakeSolver(view, problem, max_rounds=0).run()
    nodes = len(view.nodes_preorder())  # ROOT included
    counts = collector.counters()["equation_evaluations"]
    for number in range(1, 9):
        assert counts[number] == nodes, number
    for number in (9, 10):
        assert counts[number] == nodes - 1, number


def test_convergence_check_does_not_mutate_the_solution():
    view, problem = after_instance()
    solver = GiveNTakeSolver(view, problem)
    solver._sweep_consumption()
    before = snapshot(solver.solution)
    solver._consumption_converged()
    assert snapshot(solver.solution) == before


def test_raising_run_leaves_budgeted_state_intact():
    """When the budget is exhausted, the solution must hold exactly what
    the budgeted sweeps computed — the probe must not have swept again."""
    view, problem = after_instance()
    stuck = StuckSolver(view, problem, max_rounds=1)
    with pytest.raises(SolverBudgetError):
        stuck.run()
    # StuckSolver never writes, so any nonempty store would have to come
    # from the (removed) mutating probe sweep.
    assert all(store == {} for store in snapshot(stuck.solution).values())


def test_default_run_still_converges_with_iteration():
    view, problem = after_instance()
    with tracing() as collector:
        GiveNTakeSolver(view, problem).run()
    run = collector.events("solver", "run")[-1]
    assert run["converged"]
    assert run["consumption_sweeps"] == 2  # initial + 1 quiescent round
    assert not run["convergence_checked"]  # loop converged on its own
