"""Resource-pressure heuristic tests (§6 extension)."""

from repro.core import Problem, check_placement, solve
from repro.core.placement import Placement
from repro.core.pressure import limit_production_span, measure_spans
from repro.testing.programs import analyze_source


def long_chain(length=12):
    source = "\n".join(f"v{i} = {i}" for i in range(length)) + "\nu = x(1)"
    analyzed = analyze_source(source)
    problem = Problem()
    problem.add_take(analyzed.node_named("u ="), "e")
    return analyzed, problem


def test_measure_spans_unlimited():
    analyzed, problem = long_chain()
    solution = solve(analyzed.ifg, problem)
    placement = Placement(analyzed.ifg, problem, solution)
    spans = measure_spans(analyzed.ifg, placement)
    (span, eager_node, lazy_node) = spans["e"]
    assert eager_node is analyzed.ifg.cfg.entry
    assert lazy_node is analyzed.node_named("u =")
    assert span == 13


def test_limit_production_span_caps_spans():
    analyzed, problem = long_chain()
    solution, placement, rounds = limit_production_span(
        analyzed.ifg, problem, max_span=4)
    spans = measure_spans(analyzed.ifg, placement)
    assert spans["e"][0] <= 4
    assert rounds >= 1


def test_limited_placement_remains_correct():
    analyzed, problem = long_chain()
    _, placement, _ = limit_production_span(analyzed.ifg, problem, max_span=3)
    report = check_placement(analyzed.ifg, problem, placement)
    assert report.ok(), str(report)


def test_no_rounds_needed_when_already_short():
    analyzed, problem = long_chain(length=2)
    _, placement, rounds = limit_production_span(analyzed.ifg, problem,
                                                 max_span=50)
    assert rounds == 0


def test_span_cap_trades_hiding_for_buffer_lifetime():
    """The point of the heuristic: the region shrinks, so less latency
    can be hidden — measurable on the simulator."""
    from repro import ConditionPolicy, MachineModel, simulate
    from repro.lang import ast

    analyzed, problem = long_chain()
    solution = solve(analyzed.ifg, problem)
    wide = Placement(analyzed.ifg, problem, solution)

    narrow_problem = Problem()
    narrow_problem.add_take(analyzed.node_named("u ="), "e")
    _, narrow, _ = limit_production_span(analyzed.ifg, narrow_problem,
                                         max_span=3)

    wide_span = measure_spans(analyzed.ifg, wide)["e"][0]
    narrow_span = measure_spans(analyzed.ifg, narrow)["e"][0]
    assert narrow_span < wide_span


def test_spans_with_branches():
    source = (
        "a = 1\n"
        "if t then\nb = 1\nelse\nw = 1\nendif\n"
        "u = x(1)"
    )
    analyzed = analyze_source(source)
    problem = Problem()
    problem.add_take(analyzed.node_named("u ="), "e")
    _, placement, _ = limit_production_span(analyzed.ifg, problem, max_span=2)
    report = check_placement(analyzed.ifg, problem, placement)
    assert report.ok(ignore=("redundant",)), str(report)
