"""Path enumeration tests."""

from repro.core.paths import enumerate_paths, path_edge_types
from repro.graph.interval_graph import EdgeType
from repro.testing.programs import analyze_source


def test_straightline_single_path():
    analyzed = analyze_source("a = 1\nb = 2")
    paths = enumerate_paths(analyzed.ifg)
    assert len(paths) == 1
    assert paths[0][0] is analyzed.ifg.cfg.entry
    assert paths[0][-1] is analyzed.ifg.cfg.exit


def test_branch_two_paths():
    analyzed = analyze_source("if t then\na = 1\nelse\nb = 2\nendif")
    assert len(enumerate_paths(analyzed.ifg)) == 2


def test_loop_trip_counts():
    analyzed = analyze_source("do i = 1, n\na = 1\nenddo")
    paths = enumerate_paths(analyzed.ifg, max_node_visits=3)
    body = analyzed.node_named("a =")
    trip_counts = sorted(p.count(body) for p in paths)
    assert trip_counts == [0, 1, 2]  # zero-trip, one-trip, two-trip


def test_min_trips_excludes_zero_trip():
    analyzed = analyze_source("do i = 1, n\na = 1\nenddo")
    paths = enumerate_paths(analyzed.ifg, max_node_visits=3, min_trips=1)
    body = analyzed.node_named("a =")
    assert sorted(p.count(body) for p in paths) == [1, 2]


def test_min_trips_applies_to_nested_loops():
    analyzed = analyze_source("do i = 1, n\ndo j = 1, n\na = 1\nenddo\nenddo")
    paths = enumerate_paths(analyzed.ifg, max_node_visits=3, min_trips=1)
    body = analyzed.node_named("a =")
    assert all(p.count(body) >= 1 for p in paths)


def test_max_paths_cap():
    source = "\n".join("if t then\na = 1\nendif" for _ in range(12))
    analyzed = analyze_source(source)
    assert len(enumerate_paths(analyzed.ifg, max_paths=50)) == 50


def test_paths_follow_real_edges(fig11):
    for path in enumerate_paths(fig11.ifg, max_paths=30):
        for i in range(len(path) - 1):
            assert fig11.ifg.cfg.has_edge(path[i], path[i + 1])


def test_path_edge_types(fig11):
    paths = enumerate_paths(fig11.ifg, max_paths=5)
    types = path_edge_types(fig11.ifg, paths[0])
    assert len(types) == len(paths[0]) - 1
    assert all(isinstance(t, EdgeType) for t in types)


def test_goto_paths_present(fig11):
    # some path must traverse the JUMP edge (4 -> 10)
    node4, node10 = fig11.node(4), fig11.node(10)
    paths = enumerate_paths(fig11.ifg)
    assert any(
        node10 in p and p[p.index(node10) - 1] is node4 for p in paths if node10 in p
    )
