"""Zero-trip loop semantics: hoisting, blocking, and the strict mode."""

from repro.core import Problem, check_placement, solve
from repro.core.placement import Placement
from repro.core.problem import Direction
from repro.testing.programs import analyze_source


SOURCE = "a = 1\ndo k = 1, n\nu = x(k)\nenddo"


def run(hoist, trust, min_trips):
    analyzed = analyze_source(SOURCE)
    problem = Problem(hoist_zero_trip=hoist, trust_loop_side_effects=trust)
    problem.add_take(analyzed.node_named("u ="), "xk")
    solution = solve(analyzed.ifg, problem)
    placement = Placement(analyzed.ifg, problem, solution)
    report = check_placement(analyzed.ifg, problem, placement,
                             min_trips=min_trips)
    return analyzed, placement, report


def test_default_hoisting_overproduces_only_on_zero_trip_paths():
    analyzed, placement, report_all = run(True, True, min_trips=0)
    assert report_all.by_kind("safety")         # the zero-trip path
    assert report_all.ok(ignore=("safety",))
    _, _, report_hot = run(True, True, min_trips=1)
    assert report_hot.ok(), str(report_hot)     # strict C2 on >=1-trip paths


def test_no_hoist_mode_is_strictly_safe_on_all_paths():
    analyzed, placement, report = run(False, False, min_trips=0)
    # Only O1 redundancy remains (per-iteration re-production is the
    # documented cost of blocking regions at loop boundaries).
    assert report.ok(ignore=("redundant",)), str(report)
    # and the production indeed stays inside the loop
    consumer = analyzed.node_named("u =")
    assert all(p.node is consumer for p in placement.productions())


def test_per_header_blocking_equivalent_to_global_for_single_loop():
    analyzed = analyze_source(SOURCE)
    problem = Problem()
    problem.add_take(analyzed.node_named("u ="), "xk")
    problem.block_hoisting(analyzed.node_named("do k"))
    solution = solve(analyzed.ifg, problem)
    placement = Placement(analyzed.ifg, problem, solution)
    report = check_placement(analyzed.ifg, problem, placement, min_trips=0)
    assert report.ok(), str(report)


def test_untrusted_side_effects_reproduce_after_loop():
    # A give inside a possibly zero-trip loop must not satisfy a
    # consumer after the loop in strict mode.
    source = "do i = 1, n\ng = 1\nenddo\nu = x(1)"
    analyzed = analyze_source(source)
    problem = Problem(trust_loop_side_effects=False)
    problem.add_give(analyzed.node_named("g ="), "x1")
    problem.add_take(analyzed.node_named("u ="), "x1")
    solution = solve(analyzed.ifg, problem)
    placement = Placement(analyzed.ifg, problem, solution)
    report = check_placement(analyzed.ifg, problem, placement, min_trips=0)
    # strict mode may re-produce (redundantly on 1-trip paths) but is
    # sufficient everywhere
    assert not report.by_kind("sufficiency"), str(report)
    assert placement.productions()  # it did have to produce


def test_trusted_side_effects_skip_production_but_fail_zero_trip():
    source = "do i = 1, n\ng = 1\nenddo\nu = x(1)"
    analyzed = analyze_source(source)
    problem = Problem()  # defaults: trust side effects
    problem.add_give(analyzed.node_named("g ="), "x1")
    problem.add_take(analyzed.node_named("u ="), "x1")
    solution = solve(analyzed.ifg, problem)
    placement = Placement(analyzed.ifg, problem, solution)
    # the paper's semantics: no production at all (the give covers it) ...
    assert placement.productions() == []
    # ... which is exact on >=1-trip paths,
    assert check_placement(analyzed.ifg, problem, placement, min_trips=1).ok()
    # and (knowingly) insufficient on the zero-trip path for atomic
    # elements — loop-parametric elements are empty there instead.
    report = check_placement(analyzed.ifg, problem, placement, min_trips=0)
    assert report.by_kind("sufficiency")
