"""Universe / bitset lattice tests."""

import pytest

from repro.core.lattice import Universe, meet_over, union_over
from repro.util.errors import SolverError


def test_add_and_index():
    universe = Universe()
    assert universe.add("a") == 0
    assert universe.add("b") == 1
    assert universe.add("a") == 0  # idempotent
    assert len(universe) == 2
    assert "a" in universe and "c" not in universe


def test_constructor_elements():
    universe = Universe(["x", "y"])
    assert list(universe) == ["x", "y"]


def test_bits_and_members_roundtrip():
    universe = Universe(["a", "b", "c"])
    bits = universe.bits(["a", "c"])
    assert universe.members(bits) == ["a", "c"]
    assert universe.frozen(bits) == frozenset({"a", "c"})


def test_bit_singleton():
    universe = Universe(["a", "b"])
    assert universe.bit("b") == 2


def test_top_and_bottom():
    universe = Universe(["a", "b", "c"])
    assert universe.bottom == 0
    assert universe.top == 0b111
    assert Universe().top == 0


def test_unknown_element_raises():
    universe = Universe(["a"])
    with pytest.raises(SolverError):
        universe.bit("zzz")


def test_element_lookup_by_index():
    universe = Universe(["a", "b"])
    assert universe.element(1) == "b"
    assert universe.index("b") == 1


def test_format_stable():
    universe = Universe(["a", "b"])
    assert universe.format(universe.top) == "{a, b}"
    assert universe.format(0) == "{}"


def test_union_over():
    assert union_over([0b01, 0b10]) == 0b11
    assert union_over([]) == 0


def test_meet_over_paper_convention():
    # The meet over *no* neighbors is the empty set, not top (paper §4).
    assert meet_over([]) == 0
    assert meet_over([0b11, 0b10]) == 0b10
    assert meet_over([0b01]) == 0b01


def test_hashable_elements_of_any_type():
    universe = Universe()
    universe.add(("array", 3))
    universe.add(42)
    assert universe.bits([("array", 3), 42]) == 0b11


def test_members_sparse_bitsets():
    # the set-bit iteration must see exactly the set bits, in universe
    # order, including the highest element and gaps
    universe = Universe([f"e{i}" for i in range(70)])
    bits = universe.bits(["e0", "e13", "e69"])
    assert universe.members(bits) == ["e0", "e13", "e69"]
    assert universe.members(0) == []
    assert universe.members(universe.bit("e69")) == ["e69"]
    assert universe.members(universe.top) == [f"e{i}" for i in range(70)]


def test_members_matches_naive_shift_loop():
    universe = Universe(list("abcdefgh"))
    for bits in range(1 << len(universe)):
        naive, index, rest = [], 0, bits
        while rest:
            if rest & 1:
                naive.append(universe.element(index))
            rest >>= 1
            index += 1
        assert universe.members(bits) == naive


# -- freeze: late interning must fail loudly --------------------------------

def test_freeze_blocks_new_elements():
    universe = Universe(["a", "b"])
    top_before = universe.top
    universe.freeze()
    with pytest.raises(SolverError):
        universe.add("c")
    # existing bitsets were not invalidated
    assert universe.top == top_before
    assert len(universe) == 2


def test_freeze_allows_existing_elements():
    universe = Universe(["a", "b"]).freeze()
    assert universe.add("a") == 0  # idempotent re-intern is fine
    assert universe.bit("b") == 2
    assert universe.is_frozen


def test_freeze_is_idempotent_and_chains():
    universe = Universe(["a"])
    assert universe.freeze() is universe
    assert universe.freeze() is universe


def test_problem_freeze_rejects_late_take():
    from repro.core.problem import Problem

    problem = Problem()
    node = object()
    problem.add_take(node, "x")
    problem.freeze()
    with pytest.raises(SolverError):
        problem.add_take(node, "brand-new")
    # known elements can still be referenced at new nodes
    problem.add_steal(object(), "x")


def test_pipeline_problems_are_frozen():
    from repro.commgen.pipeline import prepare_communication
    from repro.testing.programs import FIG11_SOURCE

    prepared = prepare_communication(FIG11_SOURCE)
    assert prepared.read_problem.universe.is_frozen
    assert prepared.write_problem.universe.is_frozen
    with pytest.raises(SolverError):
        prepared.read_problem.universe.add("late-element")
