"""Universe / bitset lattice tests."""

import pytest

from repro.core.lattice import Universe, meet_over, union_over
from repro.util.errors import SolverError


def test_add_and_index():
    universe = Universe()
    assert universe.add("a") == 0
    assert universe.add("b") == 1
    assert universe.add("a") == 0  # idempotent
    assert len(universe) == 2
    assert "a" in universe and "c" not in universe


def test_constructor_elements():
    universe = Universe(["x", "y"])
    assert list(universe) == ["x", "y"]


def test_bits_and_members_roundtrip():
    universe = Universe(["a", "b", "c"])
    bits = universe.bits(["a", "c"])
    assert universe.members(bits) == ["a", "c"]
    assert universe.frozen(bits) == frozenset({"a", "c"})


def test_bit_singleton():
    universe = Universe(["a", "b"])
    assert universe.bit("b") == 2


def test_top_and_bottom():
    universe = Universe(["a", "b", "c"])
    assert universe.bottom == 0
    assert universe.top == 0b111
    assert Universe().top == 0


def test_unknown_element_raises():
    universe = Universe(["a"])
    with pytest.raises(SolverError):
        universe.bit("zzz")


def test_element_lookup_by_index():
    universe = Universe(["a", "b"])
    assert universe.element(1) == "b"
    assert universe.index("b") == 1


def test_format_stable():
    universe = Universe(["a", "b"])
    assert universe.format(universe.top) == "{a, b}"
    assert universe.format(0) == "{}"


def test_union_over():
    assert union_over([0b01, 0b10]) == 0b11
    assert union_over([]) == 0


def test_meet_over_paper_convention():
    # The meet over *no* neighbors is the empty set, not top (paper §4).
    assert meet_over([]) == 0
    assert meet_over([0b11, 0b10]) == 0b10
    assert meet_over([0b01]) == 0b01


def test_hashable_elements_of_any_type():
    universe = Universe()
    universe.add(("array", 3))
    universe.add(42)
    assert universe.bits([("array", 3), 42]) == 0b11
