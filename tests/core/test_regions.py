"""Production-region extraction tests."""

from repro.core import Problem, solve
from repro.core.placement import Placement
from repro.core.regions import Region, extract_regions, region_summary
from repro.core.problem import Direction
from repro.testing.programs import FIG11_SOURCE, analyze_source
from tests.conftest import make_fig11_read_problem


def regions_for(source, annotate, direction=Direction.BEFORE, **kwargs):
    analyzed = analyze_source(source)
    problem = Problem(direction=direction)
    annotate(analyzed, problem)
    solution = solve(analyzed.ifg, problem)
    placement = Placement(analyzed.ifg, problem, solution)
    return analyzed, extract_regions(analyzed.ifg, problem, placement, **kwargs)


def test_straightline_window_counts_work():
    analyzed, regions = regions_for(
        "a = 1\nb = 2\nu = x(1)",
        lambda ap, p: p.add_take(ap.node_named("u ="), "e"))
    assert len(regions) == 1
    (region,) = regions
    assert region.element == "e"
    assert region.work == 2  # a and b execute inside the window
    assert not region.degenerate


def test_degenerate_region_at_consumer():
    analyzed, regions = regions_for(
        "s = 1\nu = x(1)",
        lambda ap, p: (p.add_steal(ap.node_named("s ="), "e"),
                       p.add_take(ap.node_named("u ="), "e")))
    assert all(r.degenerate for r in regions)


def test_every_path_yields_a_region_per_element(fig11, fig11_read_problem,
                                                fig11_placement):
    regions = extract_regions(fig11.ifg, fig11_read_problem, fig11_placement,
                              max_paths=50)
    # x_k's region exists on every path; y_b too (send at 6 or at 10)
    by_element = {}
    for region in regions:
        by_element.setdefault(str(region.element), set()).add(region.path_index)
    assert by_element["x_k"] == by_element["y_b"]
    # x_k's window spans the i loop: positive work whenever any loop
    # iterates (only the all-loops-zero-trip paths are degenerate)
    x_k_regions = [r for r in regions if str(r.element) == "x_k"]
    assert sum(1 for r in x_k_regions if r.work > 0) > len(x_k_regions) / 2
    from repro.core.regions import region_summary
    _, mean_work, _ = region_summary(x_k_regions)
    assert mean_work > 1.0


def test_after_problem_regions():
    analyzed, regions = regions_for(
        "u = x(1)\na = 1\nb = 2",
        lambda ap, p: p.add_take(ap.node_named("u ="), "x1"),
        direction=Direction.AFTER)
    assert len(regions) == 1
    assert regions[0].work == 2  # the write-back window covers a and b


def test_region_summary():
    analyzed, regions = regions_for(
        "a = 1\nu = x(1)",
        lambda ap, p: p.add_take(ap.node_named("u ="), "e"))
    count, mean_work, degenerate_share = region_summary(regions)
    assert count == 1
    assert mean_work == 1.0
    assert degenerate_share == 0.0
    assert region_summary([]) == (0, 0.0, 0.0)


def test_atomic_placement_is_all_degenerate():
    # emulate atomicity: both timings at the consumer
    from repro.core.placement import Position
    from repro.core.problem import Timing

    analyzed = analyze_source("a = 1\nu = x(1)")
    problem = Problem()
    consumer = analyzed.node_named("u =")
    problem.add_take(consumer, "e")
    placement = Placement.empty(analyzed.ifg, problem)
    placement.add(consumer, Position.BEFORE, Timing.EAGER, "e")
    placement.add(consumer, Position.BEFORE, Timing.LAZY, "e")
    regions = extract_regions(analyzed.ifg, problem, placement)
    assert regions and all(r.degenerate for r in regions)
