"""Problem description tests."""

import pytest

from repro.core.problem import Direction, Problem, Timing
from repro.core.solver import make_view
from repro.graph.views import BackwardView, ForwardView
from repro.util.errors import SolverError
from repro.testing.programs import analyze_source


def test_add_and_query():
    analyzed = analyze_source("x = 1\ny = 2")
    a, b = [n for n in analyzed.ifg.real_nodes() if n.kind.value == "stmt"]
    problem = Problem()
    problem.add_take(a, "e1", "e2")
    problem.add_steal(b, "e1")
    problem.add_give(b, "e3")
    u = problem.universe
    assert problem.take_init(a) == u.bits(["e1", "e2"])
    assert problem.steal_init(b) == u.bit("e1")
    assert problem.give_init(b) == u.bit("e3")
    assert problem.take_init(b) == 0


def test_annotated_nodes_deduplicated():
    analyzed = analyze_source("x = 1")
    node = next(n for n in analyzed.ifg.real_nodes() if n.kind.value == "stmt")
    problem = Problem()
    problem.add_take(node, "e")
    problem.add_steal(node, "e")
    assert problem.annotated_nodes() == [node]


def test_block_hoisting_tracks_growing_universe():
    analyzed = analyze_source("do i = 1, n\nx = 1\nenddo")
    header = next(n for n in analyzed.ifg.real_nodes() if n.kind.value == "header")
    problem = Problem()
    problem.block_hoisting(header)          # universe is empty here
    problem.add_take(header, "late_element")  # universe grows afterwards
    assert problem.steal_init(header) & problem.universe.bit("late_element")


def test_block_hoisting_specific_elements():
    analyzed = analyze_source("do i = 1, n\nx = 1\nenddo")
    header = next(n for n in analyzed.ifg.real_nodes() if n.kind.value == "header")
    problem = Problem()
    problem.add_take(header, "a", "b")
    problem.block_hoisting(header, ["a"])
    assert problem.steal_init(header) == problem.universe.bit("a")


def test_validate_against_rejects_foreign_nodes():
    analyzed = analyze_source("x = 1")
    other = analyze_source("y = 2")
    node = next(n for n in other.ifg.real_nodes() if n.kind.value == "stmt")
    problem = Problem()
    problem.add_take(node, "e")
    view = ForwardView(analyzed.ifg)
    with pytest.raises(SolverError):
        problem.validate_against(view)


def test_make_view_by_direction(fig11):
    assert isinstance(make_view(fig11.ifg, Direction.BEFORE), ForwardView)
    assert isinstance(make_view(fig11.ifg, Direction.AFTER), BackwardView)


def test_default_flags():
    problem = Problem()
    assert problem.hoist_zero_trip is True
    assert problem.trust_loop_side_effects is True
    assert problem.direction is Direction.BEFORE


def test_timing_enum_values():
    assert {t.value for t in Timing} == {"eager", "lazy"}
