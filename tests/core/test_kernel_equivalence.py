"""Planned and vector backends ≡ reference backend, bit for bit.

The compiled kernels re-derive the whole solve — schedules, operand
bitsets, the sparse backward fixpoint — so their contract is blunt: for
every program, problem, direction and timing they must produce
*exactly* the reference solver's solution, which in turn equals the
chaotic fixpoint (``test_reference_solver.py``).  Hypothesis drives
jump-heavy and nested zero-trip shapes through all three backends (the
vector backend through both its scalar and, when NumPy is present, its
word-parallel matrix engine); the Figure 16 after-jumps shape gets a
dedicated sparse-fixpoint regression and a per-backend budget-parity
sweep.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.problem import Direction, Problem, Timing
from repro.core.reference import differences, solutions_equal, solve_iterative
from repro.core.solution import SHARED_VARIABLES, TIMED_VARIABLES
from repro.core.solver import make_view, solve
from repro.obs.collector import tracing
from repro.testing.generator import random_analyzed_program, random_problem
from repro.testing.graphs import loop_with_jump

SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

program_seeds = st.integers(min_value=0, max_value=10_000)
problem_seeds = st.integers(min_value=0, max_value=10_000)


def assert_backends_agree(ifg, problem):
    from repro.core.kernel import bitmatrix
    from repro.core.kernel.vector import VectorSolver

    view = make_view(ifg, problem.direction)
    planned = solve(ifg, problem, view=view, backend="planned")
    reference = solve(ifg, problem, view=view, backend="reference")
    nodes = view.nodes_preorder()
    assert solutions_equal(planned, reference, nodes), differences(
        planned, reference, nodes)[:10]
    # The vector backend, through whatever engine it auto-selects ...
    vector = solve(ifg, problem, view=view, backend="vector")
    assert solutions_equal(vector, reference, nodes), differences(
        vector, reference, nodes)[:10]
    # ... and through the word-parallel matrix engine explicitly (the
    # auto pick runs small instances on the scalar engine, which would
    # otherwise leave the matrix kernels out of the sweep entirely).
    if bitmatrix.numpy() is not None:
        matrix = VectorSolver(view, problem, engine="numpy").run()
        assert solutions_equal(matrix, reference, nodes), differences(
            matrix, reference, nodes)[:10]
    # ... and all of them equal the chaotic-iteration fixpoint.
    fixpoint = solve_iterative(ifg, problem, view=view)
    assert solutions_equal(planned, fixpoint, nodes), differences(
        planned, fixpoint, nodes)[:10]
    return planned, reference


@given(seed=program_seeds, problem_seed=problem_seeds,
       direction=st.sampled_from(list(Direction)))
@settings(**SETTINGS)
def test_backends_agree_on_random_programs(seed, problem_seed, direction):
    analyzed = random_analyzed_program(seed, size=14)
    problem = random_problem(analyzed, seed=problem_seed,
                             direction=direction)
    assert_backends_agree(analyzed.ifg, problem)


@given(seed=program_seeds, problem_seed=problem_seeds,
       direction=st.sampled_from(list(Direction)))
@settings(**SETTINGS)
def test_backends_agree_on_jump_heavy_programs(seed, problem_seed, direction):
    """Jumps out of loops exercise the sparse backward fixpoint."""
    analyzed = random_analyzed_program(seed, size=16, goto_probability=0.6)
    problem = random_problem(analyzed, seed=problem_seed,
                             direction=direction, take_probability=0.5)
    assert_backends_agree(analyzed.ifg, problem)


@given(seed=program_seeds, problem_seed=problem_seeds,
       hoist=st.booleans())
@settings(**SETTINGS)
def test_backends_agree_on_nested_zero_trip_loops(seed, problem_seed, hoist):
    """Deep nesting with hoisting on/off flips the steal0 header term."""
    analyzed = random_analyzed_program(seed, size=16, max_depth=4,
                                       goto_probability=0.0)
    problem = random_problem(analyzed, seed=problem_seed,
                             direction=Direction.BEFORE)
    problem.hoist_zero_trip = hoist
    assert_backends_agree(analyzed.ifg, problem)


@pytest.mark.parametrize("direction", list(Direction))
def test_slot_solution_duck_types_the_reference_solution(direction):
    analyzed = random_analyzed_program(2, size=14, goto_probability=0.4)
    problem = random_problem(analyzed, seed=9, direction=direction)
    planned, reference = assert_backends_agree(analyzed.ifg, problem)
    node = analyzed.ifg.real_nodes()[0]
    element = next(iter(problem.universe))
    for name in SHARED_VARIABLES:
        assert planned.bits(name, node) == reference.bits(name, node)
        assert planned.elements(name, node) == reference.elements(name, node)
        assert (set(planned.nodes_with(name, element))
                == set(reference.nodes_with(name, element)))
    for name in TIMED_VARIABLES:
        for timing in Timing:
            assert (planned.bits(name, node, timing)
                    == reference.bits(name, node, timing))
    assert planned.format_node(node) == reference.format_node(node)


def figure16_instance():
    """The §5.3 jump-into-the-landing-pad shape (Figures 11/16): an
    AFTER problem on a loop a jump leaves, forcing the consumption
    iteration."""
    sketch = loop_with_jump()
    problem = Problem(direction=Direction.AFTER)
    problem.add_take(sketch["work"], "a")
    problem.add_take(sketch["target"], "a", "b")
    problem.add_give(sketch["landing"], "b")
    view = make_view(sketch.ifg, Direction.AFTER)
    assert view.requires_consumption_iteration
    return sketch, problem, view


def test_figure16_sparse_fixpoint_converges_and_matches_reference():
    sketch, problem, view = figure16_instance()
    with tracing() as collector:
        planned = solve(sketch.ifg, problem, view=view, backend="planned")
        reference = solve(sketch.ifg, problem, view=view,
                          backend="reference")
    nodes = view.nodes_preorder()
    assert solutions_equal(planned, reference, nodes), differences(
        planned, reference, nodes)[:10]

    planned_run, reference_run = collector.events("solver", "run")
    assert planned_run["backend"] == "planned"
    # Converged constructively (drained worklist), no budget probe.
    assert planned_run["converged"]
    # The sparse fixpoint did run — and did strictly less work than the
    # dense re-sweeps it replaces.
    assert planned_run["full_sweeps"] == 1
    assert planned_run["sparse_rounds"] >= 1
    bundles = planned_run["sparse_evaluations"]["bundles"]
    assert bundles <= planned_run["nodes"] * planned_run["sparse_rounds"]
    # Identical convergence trajectory: same sweep/round totals as the
    # reference solver's dense iteration.
    assert (planned_run["consumption_sweeps"]
            == reference_run["consumption_sweeps"])
    assert planned_run["rounds"] == reference_run["rounds"]


@pytest.mark.parametrize("backend", ["planned", "vector"])
@pytest.mark.parametrize("max_rounds", [0, 1, 2])
def test_figure16_budget_outcomes_match_reference(backend, max_rounds):
    """Whatever a round budget does to the reference solver — succeed,
    or raise with a message — the compiled backends do identically."""
    from repro.util.errors import SolverBudgetError

    sketch, problem, view = figure16_instance()

    def outcome(backend):
        try:
            solve(sketch.ifg, problem, view=view, max_rounds=max_rounds,
                  backend=backend)
            return "converged"
        except SolverBudgetError as error:
            return str(error)

    assert outcome(backend) == outcome("reference")
