"""SolverPlan structure tests: slots, schedules, bundles, caching.

The planned backend's correctness is established differentially in
``test_kernel_equivalence.py``; here we pin down the *plan* itself —
the compile-once data a :class:`~repro.core.kernel.plan.SolverPlan`
extracts from a view — and the two caching layers (plans on the graph,
views on the graph) that make it a one-time cost.
"""

import pickle

import pytest

from repro.core.kernel import SolverPlan, plan_for
from repro.core.reference import solutions_equal
from repro.core.solver import solve
from repro.graph.views import BackwardView, ForwardView, cached_view
from repro.testing.generator import random_analyzed_program, random_problem


@pytest.fixture(scope="module", params=["before", "after"])
def plan_case(request):
    analyzed = random_analyzed_program(3, size=18)
    view = (ForwardView(analyzed.ifg) if request.param == "before"
            else BackwardView(analyzed.ifg))
    return analyzed, view, SolverPlan(view)


def test_slots_are_view_preorder_positions(plan_case):
    _, view, plan = plan_case
    order = view.nodes_preorder()
    assert plan.nodes == tuple(order)
    assert all(plan.slot_of[node] == i for i, node in enumerate(order))
    assert plan.n == len(order)
    assert plan.nodes[plan.root_slot] is view.root


def test_children_keep_forward_order(plan_case):
    """Eqs 9/10 must see children in the view's order (S2's FORWARD)."""
    _, view, plan = plan_case
    for s, node in enumerate(plan.nodes):
        assert plan.children[s] == tuple(plan.slot_of[c]
                                         for c in view.children(node))
        # headers precede their interval in preorder
        assert all(c > s for c in plan.children[s])


def test_parent_inverts_children(plan_case):
    _, _, plan = plan_case
    assert plan.parent[plan.root_slot] == -1
    for s in range(plan.n):
        for c in plan.children[s]:
            assert plan.parent[c] == s
    # every non-root slot is somebody's child
    assert all(plan.parent[s] >= 0 for s in range(plan.n)
               if s != plan.root_slot)


def test_adjacency_matches_view(plan_case):
    _, view, plan = plan_case
    for s, node in enumerate(plan.nodes):
        for letters, flat in (("E", plan.succs_e), ("F", plan.succs_f),
                              ("EF", plan.succs_ef), ("FJ", plan.succs_fj),
                              ("FJS", plan.succs_fjs)):
            assert flat[s] == tuple(plan.slot_of[x]
                                    for x in view.succs(node, letters))
        assert plan.preds_fj[s] == tuple(plan.slot_of[x]
                                         for x in view.preds(node, "FJ"))


def test_dependents_invert_reads(plan_case):
    _, _, plan = plan_case
    for s in range(plan.n):
        assert s not in plan.reads[s]
        for d in plan.reads[s]:
            assert s in plan.dependents[d]
    for d in range(plan.n):
        for s in plan.dependents[d]:
            assert d in plan.reads[s]


def test_seeds_are_exactly_the_downward_readers(plan_case):
    """A bundle is a seed iff it reads a *lower* slot — the only value
    the descending sweep cannot have refreshed before reaching it."""
    _, _, plan = plan_case
    expected = tuple(sorted(
        (s for s in range(plan.n) if any(d < s for d in plan.reads[s])),
        reverse=True))
    assert plan.seeds == expected
    assert list(plan.seeds) == sorted(plan.seeds, reverse=True)


def test_iteration_flag_and_bound_come_from_the_view():
    analyzed = random_analyzed_program(3, size=18)
    forward = SolverPlan(ForwardView(analyzed.ifg))
    assert not forward.requires_iteration
    assert forward.natural_bound is None
    backward = SolverPlan(BackwardView(analyzed.ifg))
    if backward.requires_iteration:
        assert backward.natural_bound >= 1


def test_plan_cached_per_shape_on_the_graph():
    ifg = random_analyzed_program(5, size=14).ifg
    before = plan_for(cached_view(ifg, "before"))
    after = plan_for(cached_view(ifg, "after"))
    optimistic = plan_for(cached_view(ifg, "after", blocked=False))
    assert plan_for(cached_view(ifg, "before")) is before
    assert plan_for(cached_view(ifg, "after")) is after
    # blocked/unblocked backward views are different shapes
    assert optimistic is not after
    assert plan_for(BackwardView(ifg)) is after  # keyed by shape, not object
    assert ifg.__dict__["_solver_plans"].keys() == {
        ("before",), ("after", True), ("after", False)}


def test_cached_view_returns_one_instance_per_shape():
    ifg = random_analyzed_program(5, size=14).ifg
    assert cached_view(ifg, "before") is cached_view(ifg, "before")
    assert cached_view(ifg, "after") is cached_view(ifg, "after")
    assert cached_view(ifg, "after") is not cached_view(ifg, "after",
                                                        blocked=False)


def test_plans_survive_graph_pickling():
    """Batch cache snapshots pickle the graph; the plans ride along and
    the unpickled graph solves planned-vs-reference identically."""
    analyzed = random_analyzed_program(7, size=16)
    problem = random_problem(analyzed, seed=7, n_elements=4)
    plan_for(cached_view(analyzed.ifg, "before"))
    # One dump keeps the graph/problem node identities shared, exactly
    # as the batch cache snapshots them.
    ifg, problem = pickle.loads(pickle.dumps((analyzed.ifg, problem)))
    assert ("before",) in ifg.__dict__["_solver_plans"]
    planned = solve(ifg, problem, backend="planned")
    reference = solve(ifg, problem, backend="reference")
    assert solutions_equal(planned, reference, ifg.nodes())
