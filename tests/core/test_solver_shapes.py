"""Solver behavior on small canonical shapes — these mirror the paper's
criteria Figures 4–10 (each figure's *right side* is what GIVE-N-TAKE
must produce)."""

import pytest

from repro.core import Problem, solve
from repro.core.placement import Placement, Position
from repro.core.problem import Direction, Timing
from repro.testing.programs import analyze_source


def placed(source, build_problem):
    analyzed = analyze_source(source)
    problem = Problem()
    build_problem(analyzed, problem)
    solution = solve(analyzed.ifg, problem)
    return analyzed, problem, Placement(analyzed.ifg, problem, solution)


def node_named(analyzed, prefix):
    return analyzed.node_named(prefix)


def eager_nodes(analyzed, placement, element):
    return [
        p.node for p in placement.productions(Timing.EAGER) if element in p.elements
    ]


def lazy_nodes(analyzed, placement, element):
    return [
        p.node for p in placement.productions(Timing.LAZY) if element in p.elements
    ]


def test_straightline_eager_at_entry_lazy_at_consumer():
    analyzed, problem, placement = placed(
        "a = 1\nb = 2\nu = x(1)",
        lambda ap, p: p.add_take(node_named(ap, "u ="), "x1"),
    )
    (eager,) = eager_nodes(analyzed, placement, "x1")
    (lazy,) = lazy_nodes(analyzed, placement, "x1")
    assert eager.kind.value == "entry"          # as early as possible (O3)
    assert lazy is node_named(analyzed, "u =")  # as late as possible (O3')


def test_production_placed_after_steal():
    analyzed, problem, placement = placed(
        "a = 1\nb = 2\nu = x(1)",
        lambda ap, p: (
            p.add_take(node_named(ap, "u ="), "x1"),
            p.add_steal(node_named(ap, "b ="), "x1"),
        ),
    )
    (eager,) = eager_nodes(analyzed, placement, "x1")
    # Cannot send above the destroyer.
    assert eager is node_named(analyzed, "u =")


def test_figure5_safety_no_production_on_consumer_free_branch():
    # take only in the then branch: the else path must stay clean (C2).
    analyzed, problem, placement = placed(
        "if t then\nu = x(1)\nelse\nw = 2\nendif",
        lambda ap, p: p.add_take(node_named(ap, "u ="), "x1"),
    )
    for production in placement.productions():
        assert production.node is not node_named(analyzed, "w =")
    # everything lands on the then side (the branch node's take path)
    then_node = node_named(analyzed, "u =")
    assert eager_nodes(analyzed, placement, "x1") == [then_node]


def test_figure6_sufficiency_production_on_both_paths():
    # consumer after the join: each incoming path needs production (C3).
    analyzed, problem, placement = placed(
        "if t then\na = 1\nelse\nb = 2\nendif\nu = x(1)",
        lambda ap, p: p.add_take(node_named(ap, "u ="), "x1"),
    )
    # hoisted above the branch: one production, covering both paths (O2)
    (eager,) = eager_nodes(analyzed, placement, "x1")
    assert eager.kind.value == "entry"


def test_figure7_no_reproduction_of_available_items():
    # two consumers in a row: produce once (O1).
    analyzed, problem, placement = placed(
        "u = x(1)\nw = x(1)",
        lambda ap, p: (
            p.add_take(node_named(ap, "u ="), "x1"),
            p.add_take(node_named(ap, "w ="), "x1"),
        ),
    )
    assert len(eager_nodes(analyzed, placement, "x1")) == 1
    assert len(lazy_nodes(analyzed, placement, "x1")) == 1


def test_figure8_single_producer_hoisted_above_branch():
    # consumers on both branches: hoist one production above (O2).
    analyzed, problem, placement = placed(
        "if t then\nu = x(1)\nelse\nw = x(1)\nendif",
        lambda ap, p: (
            p.add_take(node_named(ap, "u ="), "x1"),
            p.add_take(node_named(ap, "w ="), "x1"),
        ),
    )
    eager = eager_nodes(analyzed, placement, "x1")
    assert len(eager) == 1
    assert eager[0].kind.value == "entry"


def test_give_suppresses_production():
    # Figure 3 flavor: a free production satisfies the consumer.
    analyzed, problem, placement = placed(
        "a = 1\nu = x(1)",
        lambda ap, p: (
            p.add_give(node_named(ap, "a ="), "x1"),
            p.add_take(node_named(ap, "u ="), "x1"),
        ),
    )
    assert placement.productions() == []


def test_give_on_one_branch_only_balances_via_res_out():
    # give on the then path only; consumer after the join.  The else
    # path needs production, and balance must hold on both paths.
    analyzed, problem, placement = placed(
        "if t then\na = 1\nelse\nb = 2\nendif\nu = x(1)",
        lambda ap, p: (
            p.add_give(node_named(ap, "a ="), "x1"),
            p.add_take(node_named(ap, "u ="), "x1"),
        ),
    )
    from repro.core import check_placement
    report = check_placement(analyzed.ifg, problem, placement)
    assert report.ok(ignore=("safety",)), str(report)
    # and nothing is produced on the give path (no redundancy)
    give_node = node_named(analyzed, "a =")
    for production in placement.productions():
        assert production.node is not give_node


def test_loop_consumption_hoisted_out_of_zero_trip_loop():
    # Figure 2 flavor: production hoisted above a potentially zero-trip
    # loop, receive still before the loop (once), not per iteration.
    analyzed, problem, placement = placed(
        "a = 1\ndo k = 1, n\nu = x(k)\nenddo",
        lambda ap, p: p.add_take(node_named(ap, "u ="), "xk"),
    )
    (eager,) = eager_nodes(analyzed, placement, "xk")
    (lazy,) = lazy_nodes(analyzed, placement, "xk")
    assert eager.kind.value == "entry"          # above the loop, latency hidden
    assert lazy is node_named(analyzed, "do k")  # right before the loop
    (lazy_production,) = [p for p in placement.productions(Timing.LAZY)]
    assert lazy_production.position is Position.BEFORE


def test_block_hoisting_keeps_production_inside_loop():
    analyzed = analyze_source("a = 1\ndo k = 1, n\nu = x(k)\nenddo")
    problem = Problem()
    consumer = analyzed.node_named("u =")
    problem.add_take(consumer, "xk")
    problem.block_hoisting(analyzed.node_named("do k"))
    solution = solve(analyzed.ifg, problem)
    placement = Placement(analyzed.ifg, problem, solution)
    for production in placement.productions():
        assert production.node is consumer


def test_steal_inside_loop_forces_reproduction_each_iteration():
    analyzed, problem, placement = placed(
        "do k = 1, n\ns = 1\nu = x(k)\nenddo",
        lambda ap, p: (
            p.add_steal(node_named(ap, "s ="), "xk"),
            p.add_take(node_named(ap, "u ="), "xk"),
        ),
    )
    # production must stay inside the loop, between the steal and the take
    for production in placement.productions():
        assert production.node is node_named(analyzed, "u =")


def test_solution_variable_dump(fig11, fig11_solution):
    text = fig11_solution.format_node(fig11.node(13))
    assert "TAKE" in text and "GIVEN^eager" in text
