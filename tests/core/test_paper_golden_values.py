"""Every dataflow-variable membership the paper lists in §4 for the READ
instance on the Figure 12 graph.

These are the strongest correctness anchors available: the paper gives
the exact node sets for 13 variables and 3 universe elements (x_k = the
portion referenced by ``x(k+10)``, y_a = ``y(a(i))``, y_b = ``y(b(k))``).

Three listed values are *internally inconsistent* with the paper's own
equations and are tested against the equation-derived values instead —
see the errata note at the bottom and DESIGN.md.
"""

import pytest

from repro.core.problem import Timing


def nodes(fig11, solution, name, element, timing=None):
    return fig11.numbers(solution.nodes_with(name, element, timing))


EAGER, LAZY = Timing.EAGER, Timing.LAZY

GOLDEN = [
    # §4.1 initial propagation (S1)
    ("STEAL", "y_b", None, [2, 3]),
    ("BLOCK", "y_a", None, [2, 3]),
    ("TAKEN_out", "x_k", None, [1, 2, 6, 7, 9, 10, 11]),
    ("TAKEN_out", "y_b", None, [2, 6, 7, 9, 10, 11]),
    ("TAKE", "x_k", None, [12, 13]),
    ("TAKE", "y_b", None, [12, 13]),
    ("TAKEN_in", "x_k", None, [1, 2, 6, 7, 9, 10, 11, 12, 13]),
    ("TAKEN_in", "y_b", None, [6, 7, 9, 10, 11, 12, 13]),
    ("BLOCK_loc", "y_a", None, [1, 2, 3]),
    ("BLOCK_loc", "y_b", None, [1, 2, 3]),
    ("TAKE_loc", "x_k", None, [1, 2, 6, 7, 9, 10, 11, 12, 13]),
    ("TAKE_loc", "y_b", None, [6, 7, 9, 10, 11, 12, 13]),
    # §4.3 blocking consumption (S2)
    ("GIVE_loc", "x_k", None, [12, 13, 14]),
    ("GIVE_loc", "y_b", None, [12, 13, 14]),
    # §4.4 placing production (S3)
    ("GIVEN_in", "x_k", EAGER, list(range(2, 15))),
    ("GIVEN_in", "y_a", EAGER, list(range(4, 15))),
    ("GIVEN_in", "y_b", EAGER, [7, 8, 9, 11, 12, 13, 14]),
    ("GIVEN", "x_k", EAGER, list(range(1, 15))),
    ("GIVEN", "y_a", EAGER, list(range(4, 15))),
    ("GIVEN", "y_b", EAGER, list(range(6, 15))),
    ("GIVEN_out", "x_k", EAGER, list(range(1, 15))),
    ("GIVEN_out", "y_a", EAGER, list(range(2, 15))),
    ("GIVEN_out", "y_b", EAGER, list(range(6, 15))),
    ("GIVEN_in", "x_k", LAZY, [13, 14]),
    ("GIVEN_in", "y_b", LAZY, [13, 14]),
    ("GIVEN_in", "y_a", LAZY, list(range(4, 15))),
    ("GIVEN", "x_k", LAZY, [12, 13, 14]),
    ("GIVEN", "y_b", LAZY, [12, 13, 14]),
    ("GIVEN", "y_a", LAZY, list(range(4, 15))),
    ("GIVEN_out", "x_k", LAZY, [12, 13, 14]),
    ("GIVEN_out", "y_b", LAZY, [12, 13, 14]),
    ("GIVEN_out", "y_a", LAZY, list(range(2, 15))),
    # §4.5 result variables (S4): the READ_Send / READ_Recv placements
    ("RES_in", "x_k", EAGER, [1]),
    ("RES_in", "y_b", EAGER, [6, 10]),
    ("RES_in", "x_k", LAZY, [12]),
    ("RES_in", "y_b", LAZY, [12]),
]


@pytest.mark.parametrize(
    "name,element,timing,expected",
    GOLDEN,
    ids=[f"{n}-{e}-{t.value if t else 'shared'}" for n, e, t, _ in GOLDEN],
)
def test_golden_value(fig11, fig11_solution, name, element, timing, expected):
    assert nodes(fig11, fig11_solution, name, element, timing) == expected


def test_res_out_empty_everywhere(fig11, fig11_solution):
    # "In Figure 12, there is no production needed on exit."
    for timing in Timing:
        for node in fig11.ifg.real_nodes():
            assert fig11_solution.bits("RES_out", node, timing) == 0


def test_give_propagates_ya_for_free(fig11, fig11_solution):
    # y(a(i)) = ... produces y_a as a side effect; GIVE summarizes the
    # loop at its header.
    assert "y_a" in fig11_solution.elements("GIVE", fig11.node(2))
    assert "y_a" in fig11_solution.elements("GIVE_loc", fig11.node(3))


# ---------------------------------------------------------------------------
# Errata: three §4 listings conflict with the paper's own equations.
# ---------------------------------------------------------------------------

def test_errata_block_contains_kloop_header(fig11, fig11_solution):
    """Paper lists y_b ∈ BLOCK({2,3}) only, but its own Eq 2/3 give
    GIVE(12) ⊇ GIVE_loc(13) ∋ y_b (Eq 9 counts consumed items as
    produced), hence y_b ∈ BLOCK(12)."""
    assert nodes(fig11, fig11_solution, "BLOCK", "y_b") == [2, 3, 12]


def test_errata_give_loc_propagates_past_node_11(fig11, fig11_solution):
    """Paper lists y_a ∈ GIVE_loc({2..7, 9..11}); Eq 9's intersection
    over PREDS^FJ(12) = {11} necessarily carries y_a into node 12 (and
    then 14)."""
    assert nodes(fig11, fig11_solution, "GIVE_loc", "y_a") == [
        2, 3, 4, 5, 6, 7, 9, 10, 11, 12, 14]


def test_errata_steal_loc_excludes_exit(fig11, fig11_solution):
    """Paper lists y_b ∈ STEAL_loc(14), but also y_b ∈ GIVE_loc(12);
    by Eq 10, STEAL_loc(14) ⊆ STEAL_loc(12) − GIVE_loc(12), which cannot
    contain y_b.  The two listings are mutually inconsistent; we follow
    the equations."""
    assert nodes(fig11, fig11_solution, "STEAL_loc", "y_b") == [
        2, 3, 4, 5, 6, 7, 9, 10, 11, 12]
