"""One-pass elimination vs naive fixpoint iteration.

The paper's §5 claim: an evaluation order exists in which each equation
is computed once and the result is already the fixpoint.  We verify the
one-pass solver's output equals the chaotic-iteration fixpoint exactly,
variable by variable, on the paper's example and on random programs in
both directions.
"""

import pytest

from repro.core.problem import Direction
from repro.core.reference import differences, solve_iterative, solutions_equal
from repro.core.solver import make_view, solve
from repro.testing.generator import random_analyzed_program, random_problem
from tests.conftest import make_fig11_read_problem


def assert_same(ifg, problem):
    view = make_view(ifg, problem.direction)
    one_pass = solve(ifg, problem, view=view)
    fixpoint = solve_iterative(ifg, problem, view=view)
    nodes = view.nodes_preorder()
    assert solutions_equal(one_pass, fixpoint, nodes), differences(
        one_pass, fixpoint, nodes)[:10]


def test_fig11_read_instance(fig11):
    assert_same(fig11.ifg, make_fig11_read_problem(fig11))


@pytest.mark.parametrize("seed", range(10))
@pytest.mark.parametrize("direction", list(Direction))
def test_random_programs(seed, direction):
    analyzed = random_analyzed_program(seed, size=14, goto_probability=0.4)
    problem = random_problem(analyzed, seed=seed * 3 + 1, direction=direction)
    assert_same(analyzed.ifg, problem)


@pytest.mark.parametrize("seed", range(4))
def test_random_programs_strict_mode(seed):
    analyzed = random_analyzed_program(seed, size=14)
    problem = random_problem(analyzed, seed=seed + 17)
    problem.hoist_zero_trip = False
    problem.trust_loop_side_effects = False
    assert_same(analyzed.ifg, problem)


def test_iterative_raises_on_budget_exhaustion(fig11):
    from repro.util.errors import SolverError

    problem = make_fig11_read_problem(fig11)
    with pytest.raises(SolverError):
        solve_iterative(fig11.ifg, problem, max_rounds=1)
