"""Vector backend specifics: engines, budgets, memo, observability.

Bit-identity against the reference solver is swept by
``test_kernel_equivalence.py``; this file pins what is unique to the
vector backend — engine auto-selection and forcing, the pure-int
fallback when NumPy is hidden, preset/budget error parity with the
planned kernel, the memoized replay path, and the ``solver/run`` event
extensions (engine, word counts, schedule depth).
"""

import pytest

from repro.batch.cache import PipelineCache
from repro.core.kernel import bitmatrix
from repro.core.kernel.incremental import IncrementalSolveMemo
from repro.core.kernel.planned import PlannedSolver
from repro.core.kernel.vector import (AUTO_MATRIX_THRESHOLD, VectorSolver,
                                      schedule_for)
from repro.core.problem import Direction, Problem
from repro.core.reference import differences, solutions_equal
from repro.core.solver import make_view, solve
from repro.obs.collector import tracing
from repro.obs.profile import run_satisfies_each_equation_once
from repro.testing.generator import random_analyzed_program, random_problem
from repro.testing.graphs import loop_with_jump
from repro.util.errors import SolverError

np = bitmatrix.numpy()
needs_numpy = pytest.mark.skipif(np is None, reason="NumPy unavailable")


def jumpy_instance(seed=4, n_elements=8):
    analyzed = random_analyzed_program(seed, size=16, goto_probability=0.6)
    problem = random_problem(analyzed, seed=seed, n_elements=n_elements,
                             direction=Direction.AFTER)
    view = make_view(analyzed.ifg, Direction.AFTER)
    return analyzed, problem, view


# -- engine selection ---------------------------------------------------------

def test_auto_engine_takes_scalar_path_on_small_instances():
    _, problem, view = jumpy_instance()
    solver = VectorSolver(view, problem)
    assert solver.engine == "int"  # tiny slot*words, NumPy or not


@needs_numpy
def test_auto_engine_takes_matrix_path_on_bulk_instances():
    from repro.testing.generator import wide_analyzed_program

    analyzed = wide_analyzed_program(0, loops=30, body=30)
    problem = random_problem(analyzed, seed=0, n_elements=4096,
                             direction=Direction.BEFORE)
    view = make_view(analyzed.ifg, Direction.BEFORE)
    solver = VectorSolver(view, problem)
    assert solver.plan.n * solver.solution.words >= AUTO_MATRIX_THRESHOLD
    assert solver.engine == "numpy"
    solution = solver.run()
    reference = solve(analyzed.ifg, problem, view=view, backend="reference")
    nodes = view.nodes_preorder()
    assert solutions_equal(solution, reference, nodes), differences(
        solution, reference, nodes)[:10]


def test_unknown_engine_raises():
    _, problem, view = jumpy_instance()
    with pytest.raises(SolverError, match="unknown vector engine"):
        VectorSolver(view, problem, engine="simd")


def test_forced_numpy_engine_without_numpy_raises(monkeypatch):
    monkeypatch.setattr(bitmatrix, "_np", None)
    _, problem, view = jumpy_instance()
    with pytest.raises(SolverError, match="NumPy is unavailable"):
        VectorSolver(view, problem, engine="numpy")


def test_fallback_path_with_numpy_hidden_is_bit_identical(monkeypatch):
    analyzed, problem, view = jumpy_instance()
    reference = solve(analyzed.ifg, problem, view=view, backend="reference")
    monkeypatch.setattr(bitmatrix, "_np", None)
    solver = VectorSolver(view, problem)
    assert solver.engine == "int"
    solution = solver.run()
    assert solution.engine == "list"
    nodes = view.nodes_preorder()
    assert solutions_equal(solution, reference, nodes), differences(
        solution, reference, nodes)[:10]


@needs_numpy
def test_forced_engines_agree_with_each_other():
    analyzed, problem, view = jumpy_instance(seed=9, n_elements=130)
    nodes = view.nodes_preorder()
    scalar = VectorSolver(view, problem, engine="int").run()
    matrix = VectorSolver(view, problem, engine="numpy").run()
    reference = solve(analyzed.ifg, problem, view=view, backend="reference")
    for solution in (scalar, matrix):
        assert solutions_equal(solution, reference, nodes), differences(
            solution, reference, nodes)[:10]


# -- error parity with the planned kernel -------------------------------------

def test_preset_on_iterating_plan_matches_planned_error():
    sketch = loop_with_jump()
    problem = Problem(direction=Direction.AFTER)
    problem.add_take(sketch["work"], "a")
    view = make_view(sketch.ifg, Direction.AFTER)
    assert view.requires_consumption_iteration
    preset = {0: tuple([0] * 10)}
    with pytest.raises(SolverError) as planned_error:
        PlannedSolver(view, problem, preset=preset)
    with pytest.raises(SolverError) as vector_error:
        VectorSolver(view, problem, preset=preset)
    assert str(vector_error.value) == str(planned_error.value)


# -- memoized replay ----------------------------------------------------------

def test_memo_applies_to_vector_backend():
    assert IncrementalSolveMemo.applies("vector")
    assert IncrementalSolveMemo.applies("planned")
    assert not IncrementalSolveMemo.applies("reference")


@pytest.mark.parametrize("engine_hidden", [False, True])
def test_memo_round_trips_vector_solves(monkeypatch, engine_hidden):
    if engine_hidden:
        monkeypatch.setattr(bitmatrix, "_np", None)
    analyzed, problem, view = jumpy_instance(seed=12)
    reference = solve(analyzed.ifg, problem, view=view, backend="reference")
    memo = IncrementalSolveMemo(PipelineCache())
    first = memo.solve(analyzed.ifg, problem, view=view, backend="vector")
    second = memo.solve(analyzed.ifg, problem, view=view, backend="vector")
    assert memo.stats["whole_misses"] == 1
    assert memo.stats["whole_hits"] == 1
    nodes = view.nodes_preorder()
    for solution in (first, second):
        assert solutions_equal(solution, reference, nodes), differences(
            solution, reference, nodes)[:10]


# -- observability ------------------------------------------------------------

def test_run_event_reports_engine_and_word_ops():
    analyzed, problem, view = jumpy_instance()
    with tracing() as collector:
        solve(analyzed.ifg, problem, view=view, backend="vector")
    run = collector.events("solver", "run")[-1]
    assert run["backend"] == "vector"
    assert run["engine"] in ("numpy", "int")
    assert run["words"] >= 1
    assert run["word_ops"] >= 0
    assert run["schedule_levels"]["s1"] >= 1
    assert run["schedule_levels"]["s3"] >= 1
    assert run_satisfies_each_equation_once(run)


@needs_numpy
def test_matrix_engine_counts_word_ops():
    analyzed, problem, view = jumpy_instance(seed=9, n_elements=130)
    with tracing() as collector:
        VectorSolver(view, problem, engine="numpy").run()
    run = collector.events("solver", "run")[-1]
    assert run["engine"] == "numpy"
    assert run["words"] == 3  # 130 elements -> three 64-bit words
    assert run["word_ops"] > 0
    assert run_satisfies_each_equation_once(run)


def test_schedule_is_cached_per_plan():
    _, problem, view = jumpy_instance()
    solver = VectorSolver(view, problem)
    assert schedule_for(solver.plan) is solver.schedule
