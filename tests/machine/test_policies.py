"""Condition policy and model tests."""

from repro.machine import ConditionPolicy, MachineModel, simulate


def test_random_policy_is_seeded_deterministic():
    program = "\n".join("if t then\na = 1\nendif" for _ in range(8))
    first = simulate(program, policy=ConditionPolicy("random", seed=3))
    second = simulate(program, policy=ConditionPolicy("random", seed=3))
    assert first.work_time == second.work_time


def test_random_policy_probability_extremes():
    program = "\n".join("if t then\na = 1\nendif" for _ in range(20))
    all_true = simulate(program,
                        policy=ConditionPolicy("random", seed=1, probability=1.0))
    all_false = simulate(program,
                         policy=ConditionPolicy("random", seed=1, probability=0.0))
    assert all_true.work_time == 20
    assert all_false.work_time == 0


def test_transfer_time_model():
    machine = MachineModel(latency=100, time_per_element=2)
    assert machine.transfer_time(10) == 120
    assert machine.transfer_time(0) == 100


def test_model_is_frozen():
    import dataclasses

    machine = MachineModel()
    try:
        machine.latency = 5
        mutated = True
    except dataclasses.FrozenInstanceError:
        mutated = False
    assert not mutated


def test_comm_time_and_totals():
    from repro.machine.metrics import ExecutionMetrics

    metrics = ExecutionMetrics(messages=2, volume=10, work_time=50,
                               overhead_time=5, exposed_latency=20,
                               hidden_latency=30)
    assert metrics.total_time == 75
    assert metrics.comm_time == 25
    assert "messages=2" in metrics.summary()


def test_speedup_with_zero_time():
    from repro.machine.metrics import ExecutionMetrics

    empty = ExecutionMetrics()
    busy = ExecutionMetrics(work_time=10)
    assert empty.speedup_over(busy) == float("inf")
