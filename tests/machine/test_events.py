"""Executor timeline events — ordering, monotone clocks, and latency
accounting, with and without the retry protocol in play.

Every message must tell a coherent story through the obs stream:
``send -> transmit (-> timeout -> retry -> transmit)* -> recv``, with
clocks that never run backwards and a final ``recv`` whose exposed and
hidden parts add up to the surviving transmission's transfer time.
"""

from collections import defaultdict

import pytest

from repro.machine import (
    ConditionPolicy,
    FaultPlan,
    MachineModel,
    RetryPolicy,
    Simulator,
)
from repro.lang import ast
from repro.lang.parser import parse
from repro.obs import tracing


def overlap_program():
    """Two messages with work between their sends and receives."""
    program = parse("do i = 1, n\na = 1\nenddo\nu = 1\n")
    program.body.insert(0, ast.Comm("read", "send", ["x(1:n)"]))
    program.body.insert(1, ast.Comm("write", "send", ["y(1:n)"]))
    program.body.insert(3, ast.Comm("read", "recv", ["x(1:n)"]))
    program.body.append(ast.Comm("write", "recv", ["y(1:n)"]))
    return program


def traced_run(faults=None, retry=None, n=8, machine=None):
    with tracing() as collector:
        # the simulator binds the active collector at construction
        simulator = Simulator(overlap_program(), machine or MachineModel(),
                              {"n": n}, ConditionPolicy("never"),
                              faults, retry)
        metrics = simulator.run()
    return metrics, collector.events("machine")


def per_message(events):
    stories = defaultdict(list)
    for event in events:
        if "message" in event:
            stories[event["message"]].append(event)
    return stories


def story_names(events):
    return [e["name"] for e in events]


def assert_well_formed(story):
    """send, one or more transmits, timeouts each answered by a retry
    plus retransmit (except a final exhausted one), one recv."""
    names = story_names(story)
    assert names[0] == "send"
    assert names[1] == "transmit"
    assert names[-1] == "recv"
    assert names.count("recv") == 1
    body = names[2:-1]
    while body:
        assert body[:3] == ["timeout", "retry", "transmit"], names
        body = body[3:]


def test_clean_run_tells_a_three_event_story():
    metrics, events = traced_run()
    stories = per_message(events)
    assert len(stories) == metrics.messages == 2
    for story in stories.values():
        assert story_names(story) == ["send", "transmit", "recv"]
    assert metrics.retries == 0
    assert not any(e["name"] in ("timeout", "retry") for e in events)


def test_clocks_are_monotone_within_and_across_messages():
    metrics, events = traced_run(FaultPlan(seed=4, drop_probability=0.5),
                                 RetryPolicy(max_retries=16, timeout=60.0))
    del metrics
    clocks = [e["clock"] for e in events if "clock" in e]
    assert clocks == sorted(clocks)
    assert clocks  # the run actually emitted timeline events


def test_retry_story_interleaves_timeout_retry_retransmit():
    metrics, events = traced_run(FaultPlan(seed=4, drop_probability=0.5),
                                 RetryPolicy(max_retries=16, timeout=60.0))
    assert metrics.retries > 0  # the seed must actually bite
    stories = per_message(events)
    for story in stories.values():
        assert_well_formed(story)
    assert sum(story_names(s).count("retry")
               for s in stories.values()) == metrics.retries
    assert sum(story_names(s).count("timeout")
               for s in stories.values()) == metrics.timeouts
    # each retransmission was announced by exactly one retry event
    assert sum(story_names(s).count("transmit") for s in stories.values()) \
        == metrics.messages + metrics.retries


def test_retry_timeouts_back_off_exponentially():
    metrics, events = traced_run(FaultPlan(seed=4, drop_probability=0.5),
                                 RetryPolicy(max_retries=16, timeout=60.0,
                                             backoff=2.0))
    assert metrics.retries > 0
    for story in per_message(events).values():
        retries = [e for e in story if e["name"] == "retry"]
        for event in retries:
            assert event["next_timeout"] == 60.0 * 2.0 ** event["attempt"]


def test_recv_accounts_exposed_plus_hidden_as_the_final_transfer():
    for faults, retry in (
        (None, None),
        (FaultPlan(seed=4, drop_probability=0.5),
         RetryPolicy(max_retries=16, timeout=60.0)),
        (FaultPlan(seed=11, delay_jitter=30.0), None),
    ):
        metrics, events = traced_run(faults, retry)
        stories = per_message(events)
        for story in stories.values():
            surviving = [e for e in story if e["name"] == "transmit"][-1]
            (recv,) = [e for e in story if e["name"] == "recv"]
            assert recv["exposed"] + recv["hidden"] == \
                pytest.approx(surviving["transfer"])
            assert recv["clock"] >= surviving["ready"]
        # the exposed/hidden split in the metrics is the event totals,
        # plus pure timeout stall on the exposed side
        exposed = sum(e["exposed"] for e in events if e["name"] == "recv")
        hidden = sum(e["hidden"] for e in events if e["name"] == "recv")
        assert exposed + metrics.timeout_wait == \
            pytest.approx(metrics.exposed_latency)
        assert hidden == pytest.approx(metrics.hidden_latency)


def test_transmit_events_account_all_wire_time():
    metrics, events = traced_run(FaultPlan(seed=4, drop_probability=0.5),
                                 RetryPolicy(max_retries=16, timeout=60.0))
    transmits = [e for e in events if e["name"] == "transmit"]
    assert sum(e["transfer"] for e in transmits) == \
        pytest.approx(metrics.wire_time)
    assert len(transmits) == len(metrics.transfers)
    # dropped attempts occupied the channel too
    assert sum(1 for e in transmits if e["dropped"]) == \
        metrics.dropped_messages


def test_run_event_reports_makespan_and_occupancy():
    metrics, events = traced_run()
    (run_event,) = [e for e in events if e["name"] == "run"]
    assert run_event["makespan"] == metrics.total_time
    for key, value in metrics.occupancy().items():
        assert run_event[key] == value
