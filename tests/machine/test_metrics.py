"""ExecutionMetrics unit tests — notably the 0/0 speedup regression.

``speedup_over`` used to return inf for two zero-cost runs (0/0); two
equally costless runs are equally fast, so the ratio is 1.0.
"""

import math

from repro.machine.metrics import ExecutionMetrics


def test_speedup_zero_over_zero_is_one():
    assert ExecutionMetrics().speedup_over(ExecutionMetrics()) == 1.0


def test_speedup_zero_cost_over_busy_is_infinite():
    busy = ExecutionMetrics(work_time=10.0)
    assert ExecutionMetrics().speedup_over(busy) == math.inf


def test_speedup_busy_over_zero_cost_is_zero():
    busy = ExecutionMetrics(work_time=10.0)
    assert busy.speedup_over(ExecutionMetrics()) == 0.0


def test_speedup_regular_ratio():
    fast = ExecutionMetrics(work_time=5.0)
    slow = ExecutionMetrics(work_time=15.0, overhead_time=5.0)
    assert fast.speedup_over(slow) == 4.0
    assert slow.speedup_over(fast) == 0.25


def test_total_time_components():
    metrics = ExecutionMetrics(work_time=3.0, overhead_time=2.0,
                               exposed_latency=5.0, hidden_latency=100.0)
    assert metrics.total_time == 10.0  # hidden latency costs nothing
    assert metrics.comm_time == 7.0
