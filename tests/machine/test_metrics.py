"""ExecutionMetrics unit tests — notably the 0/0 speedup regression.

``speedup_over`` used to return inf for two zero-cost runs (0/0); two
equally costless runs are equally fast, so the ratio is 1.0.
"""

import math

from repro.machine.metrics import ExecutionMetrics


def test_speedup_zero_over_zero_is_one():
    assert ExecutionMetrics().speedup_over(ExecutionMetrics()) == 1.0


def test_speedup_zero_cost_over_busy_is_infinite():
    busy = ExecutionMetrics(work_time=10.0)
    assert ExecutionMetrics().speedup_over(busy) == math.inf


def test_speedup_busy_over_zero_cost_is_zero():
    busy = ExecutionMetrics(work_time=10.0)
    assert busy.speedup_over(ExecutionMetrics()) == 0.0


def test_speedup_regular_ratio():
    fast = ExecutionMetrics(work_time=5.0)
    slow = ExecutionMetrics(work_time=15.0, overhead_time=5.0)
    assert fast.speedup_over(slow) == 4.0
    assert slow.speedup_over(fast) == 0.25


def test_total_time_components():
    metrics = ExecutionMetrics(work_time=3.0, overhead_time=2.0,
                               exposed_latency=5.0, hidden_latency=100.0)
    assert metrics.total_time == 10.0  # hidden latency costs nothing
    assert metrics.comm_time == 7.0


# -- channel occupancy ------------------------------------------------------

def test_wire_busy_time_unions_overlapping_transfers():
    metrics = ExecutionMetrics()
    metrics.record_transfer(0.0, 10.0)
    metrics.record_transfer(5.0, 12.0)   # overlaps the first
    metrics.record_transfer(20.0, 25.0)  # disjoint
    metrics.record_transfer(21.0, 23.0)  # contained in the third
    assert metrics.wire_time == 10.0 + 7.0 + 5.0 + 2.0
    assert metrics.wire_busy_time == 12.0 + 5.0


def test_peak_in_flight_counts_concurrent_messages():
    metrics = ExecutionMetrics()
    metrics.record_transfer(0.0, 10.0)
    metrics.record_transfer(2.0, 8.0)
    metrics.record_transfer(4.0, 6.0)
    metrics.record_transfer(20.0, 30.0)
    assert metrics.peak_in_flight == 3


def test_wire_idle_time_never_negative():
    metrics = ExecutionMetrics(work_time=4.0)
    metrics.record_transfer(0.0, 100.0)  # longer than the makespan
    assert metrics.wire_idle_time == 0.0
    idle = ExecutionMetrics(work_time=50.0)
    idle.record_transfer(0.0, 10.0)
    assert idle.wire_idle_time == 40.0


def test_overlap_ratio_is_hidden_over_total_latency():
    metrics = ExecutionMetrics(hidden_latency=30.0, exposed_latency=10.0)
    assert metrics.overlap_ratio == 0.75
    assert ExecutionMetrics().overlap_ratio == 0.0


def test_occupancy_dict_is_flat_and_complete():
    metrics = ExecutionMetrics(work_time=10.0, hidden_latency=5.0,
                               exposed_latency=5.0)
    metrics.record_transfer(0.0, 10.0)
    occupancy = metrics.occupancy()
    assert occupancy == {
        "wire_time": 10.0,
        "wire_busy_time": 10.0,
        "wire_idle_time": 5.0,
        "peak_in_flight": 1,
        "overlap_ratio": 0.5,
    }
