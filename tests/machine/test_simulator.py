"""Machine simulator tests."""

import pytest

from repro.machine import ConditionPolicy, MachineModel, Simulator, simulate
from repro.util.errors import AnalysisError


def test_work_accounting():
    metrics = simulate("a = 1\nb = 2\nu = 3")
    assert metrics.work_time == 3
    assert metrics.messages == 0


def test_do_loop_trip_count():
    metrics = simulate("do i = 1, n\na = 1\nenddo", bindings={"n": 7})
    assert metrics.work_time == 7


def test_zero_trip_loop_executes_nothing():
    metrics = simulate("do i = 5, 4\na = 1\nenddo")
    assert metrics.work_time == 0


def test_do_loop_with_step():
    metrics = simulate("do i = 1, 10, 3\na = 1\nenddo")
    assert metrics.work_time == 4  # i = 1, 4, 7, 10


def test_parameters_feed_bindings():
    metrics = simulate("parameter n = 3\ndo i = 1, n\na = 1\nenddo")
    assert metrics.work_time == 3


def test_if_condition_policies():
    program = "if t then\na = 1\nelse\nb = 1\nb = 1\nendif"
    assert simulate(program, policy=ConditionPolicy("always")).work_time == 1
    assert simulate(program, policy=ConditionPolicy("never")).work_time == 2


def test_arithmetic_conditions_evaluated():
    program = "if n > 3 then\na = 1\nendif"
    assert simulate(program, bindings={"n": 5}).work_time == 1
    assert simulate(program, bindings={"n": 1}).work_time == 0


def test_goto_out_of_loop():
    program = (
        "do i = 1, n\n"
        "a = 1\n"
        "if i == 3 goto 9\n"
        "enddo\n"
        "b = 1\n"
        "9 u = 1\n"
    )
    metrics = simulate(program, bindings={"n": 100})
    # three iterations of a=1, skip b=1, execute u=1
    assert metrics.work_time == 4


def test_send_recv_latency_hidden_behind_work():
    machine = MachineModel(latency=10, time_per_element=0, message_overhead=0)
    program = (
        "read_send_marker = 0\n"  # placeholder work
        "do i = 1, 20\na = 1\nenddo\n"
    )
    # hand-build: send, 20 units of work, recv
    from repro.lang import ast
    from repro.lang.parser import parse
    prog = parse(program)
    prog.body.insert(0, ast.Comm("read", "send", ["x(1:5)"]))
    prog.body.append(ast.Comm("read", "recv", ["x(1:5)"]))
    metrics = simulate(prog, machine)
    assert metrics.exposed_latency == 0
    assert metrics.hidden_latency == 10
    assert metrics.messages == 1


def test_recv_immediately_after_send_exposes_latency():
    machine = MachineModel(latency=10, time_per_element=2, message_overhead=1)
    from repro.lang import ast
    from repro.lang.parser import parse
    prog = parse("a = 1")
    prog.body.insert(0, ast.Comm("read", "send", ["x(1:4)"]))
    prog.body.insert(1, ast.Comm("read", "recv", ["x(1:4)"]))
    metrics = simulate(prog, machine)
    assert metrics.exposed_latency == 10 + 2 * 4
    assert metrics.volume == 4
    assert metrics.overhead_time == 1


def test_atomic_comm_exposes_everything():
    machine = MachineModel(latency=10, time_per_element=1, message_overhead=0)
    from repro.lang import ast
    from repro.lang.parser import parse
    prog = parse("a = 1")
    prog.body.insert(0, ast.Comm("read", None, ["x(1:5)"]))
    metrics = simulate(prog, machine)
    assert metrics.exposed_latency == 15
    assert metrics.messages == 1


def test_vectorized_recv_completes_multiple_sends():
    from repro.lang import ast
    from repro.lang.parser import parse
    prog = parse("a = 1")
    prog.body.insert(0, ast.Comm("read", "send", ["x(1:5)"]))
    prog.body.insert(1, ast.Comm("read", "send", ["y(1:5)"]))
    prog.body.append(ast.Comm("read", "recv", ["x(1:5)", "y(1:5)"]))
    metrics = simulate(prog)
    assert metrics.messages == 2
    assert metrics.volume == 10


def test_recv_without_send_raises():
    from repro.lang import ast
    from repro.lang.parser import parse
    prog = parse("a = 1")
    prog.body.append(ast.Comm("read", "recv", ["x(1:5)"]))
    with pytest.raises(AnalysisError):
        simulate(prog)


def test_partial_section_size_uses_current_index():
    # y(a(1:i)) evaluated where i is bound by the enclosing loop
    from repro.lang import ast
    from repro.lang.parser import parse
    prog = parse("do i = 1, 4\na = 1\nenddo")
    loop = prog.body[0]
    loop.body.append(ast.Comm("write", None, ["y(a(1:i))"]))
    metrics = simulate(prog)
    assert metrics.volume == 1 + 2 + 3 + 4


def test_unbound_variable_raises():
    with pytest.raises(AnalysisError):
        simulate("do i = 1, n\na = 1\nenddo")


def test_metrics_speedup_and_summary():
    fast = simulate("a = 1")
    slow = simulate("a = 1\nb = 1\nu = 1")
    assert slow.speedup_over(fast) < 1 < fast.speedup_over(slow)
    assert "messages=0" in fast.summary()


# -- receive/send pairing (_find_entry) -------------------------------------

def pairing_program(sends, recv):
    from repro.lang import ast
    from repro.lang.parser import parse
    prog = parse("a = 1")
    for position, section in enumerate(sends):
        prog.body.insert(position, ast.Comm("read", "send", [section]))
    prog.body.append(ast.Comm("read", "recv", [recv]))
    return prog


def leftover(simulator):
    return simulator.machine_state()["outstanding"]


def test_receive_pairing_prefers_the_exact_section():
    # two partial sends of x; the receive names the later one verbatim,
    # so the earlier send must stay outstanding
    sim = Simulator(pairing_program(["x(1:8)", "x(9:16)"], "x(9:16)"),
                    MachineModel())
    sim.run()
    assert (("read x", "1"), 1) in leftover(sim)
    assert (("read x", "9"), 1) not in leftover(sim)


def test_receive_pairing_matches_the_canonical_section():
    # no exact text match: x(1:n) at n=64 renders as x(1:64), which the
    # receive names.  It must pair with that entry, not with whichever
    # partial section of x was sent first.
    sim = Simulator(pairing_program(["x(1:32)", "x(1:n)"], "x(1:64)"),
                    MachineModel(), {"n": 64})
    sim.run()
    remaining = leftover(sim)
    assert (("read x", "32"), 1) in remaining
    assert (("read x", "64"), 1) not in remaining


def test_receive_pairing_falls_back_to_first_of_array():
    # neither exact nor canonical match (a partial y(a(1:i))-style
    # receive): the first-inserted entry of the array wins
    sim = Simulator(pairing_program(["x(1:8)", "x(9:16)"], "x(3:4)"),
                    MachineModel())
    sim.run()
    remaining = leftover(sim)
    assert (("read x", "9"), 1) in remaining
    assert (("read x", "1"), 1) not in remaining


def test_receive_pairing_is_deterministic():
    def digest():
        sim = Simulator(pairing_program(["x(1:32)", "x(1:n)"], "x(1:64)"),
                        MachineModel(), {"n": 64})
        sim.run()
        return sim.state_digest()

    assert digest() == digest()
