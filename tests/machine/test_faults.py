"""Fault injection and the retry/backoff protocol."""

import pytest

from repro.machine import (
    ConditionPolicy,
    FaultPlan,
    MachineModel,
    RetryPolicy,
    simulate,
)
from repro.lang import ast
from repro.lang.parser import parse
from repro.util.errors import CommunicationTimeoutError, FaultSpecError


def send_recv_program():
    """send x(1:n); some work; recv x(1:n)."""
    program = parse("do i = 1, n\na = 1\nenddo\nu = 1\n")
    program.body.insert(0, ast.Comm("read", "send", ["x(1:n)"]))
    program.body.insert(2, ast.Comm("read", "recv", ["x(1:n)"]))
    return program


def run(faults=None, retry=None, n=8, machine=None):
    return simulate(send_recv_program(), machine or MachineModel(),
                    {"n": n}, ConditionPolicy("never"),
                    faults=faults, retry=retry)


def test_no_faults_is_the_old_behavior():
    baseline = run()
    assert baseline.retries == 0
    assert baseline.timeouts == 0
    assert not baseline.faults_observed
    assert "retries" not in baseline.summary()


def test_drop_then_recover():
    # seed chosen so not every roll drops: eventually a send survives
    metrics = run(FaultPlan(seed=1, drop_probability=0.5),
                  RetryPolicy(max_retries=16, timeout=50.0))
    assert metrics.dropped_messages == metrics.retries > 0 or \
        metrics.dropped_messages == 0
    assert metrics.timeouts == metrics.retries
    assert metrics.timeout_wait <= metrics.exposed_latency


def test_retries_exhausted_raises():
    with pytest.raises(CommunicationTimeoutError):
        run(FaultPlan(seed=0, drop_probability=1.0),
            RetryPolicy(max_retries=2, timeout=50.0))


def test_exponential_backoff_grows_the_wait():
    # a recoverable run that needed a second retry waited longer than
    # the initial timeout: the deadline doubled per attempt
    recovered = run(FaultPlan(seed=3, drop_probability=0.7),
                    RetryPolicy(max_retries=32, timeout=100.0))
    assert recovered.retries >= 1
    if recovered.retries >= 2:
        assert recovered.timeout_wait > 100.0


def test_duplicates_are_counted_and_harmless():
    metrics = run(FaultPlan(seed=0, duplicate_probability=1.0))
    assert metrics.duplicated_messages == metrics.messages > 0
    assert metrics.retries == 0
    assert metrics.total_time == run().total_time


def test_delay_jitter_adds_wire_time():
    plain = run()
    jittered = run(FaultPlan(seed=0, delay_jitter=500.0))
    assert jittered.fault_delay > 0
    assert jittered.exposed_latency >= plain.exposed_latency


def test_crash_window_drops_messages():
    # a node that crashes on every roll never comes back: fatal
    plan = FaultPlan(seed=0, crash_probability=1.0, crash_duration=10_000.0)
    with pytest.raises(CommunicationTimeoutError):
        run(plan, RetryPolicy(max_retries=2, timeout=50.0))
    # intermittent crash with short downtime: a later retry succeeds
    short = FaultPlan(seed=1, crash_probability=0.5, crash_duration=30.0)
    metrics = run(short, RetryPolicy(max_retries=16, timeout=50.0))
    assert metrics.crashes >= 1
    assert metrics.retries >= 1


def test_same_seed_same_metrics():
    plan = FaultPlan(seed=7, drop_probability=0.4, duplicate_probability=0.2,
                     delay_jitter=40.0, crash_probability=0.1,
                     crash_duration=120.0)
    retry = RetryPolicy(max_retries=16, timeout=80.0)
    assert run(plan, retry) == run(plan, retry)


def test_different_seed_different_faults():
    a = run(FaultPlan(seed=1, delay_jitter=100.0))
    b = run(FaultPlan(seed=2, delay_jitter=100.0))
    assert a.fault_delay != b.fault_delay


def test_atomic_communication_recovers_too():
    program = parse("u = 1\n")
    program.body.insert(0, ast.Comm("read", None, ["x(1:n)"]))
    metrics = simulate(program, MachineModel(), {"n": 4},
                       faults=FaultPlan(seed=1, drop_probability=0.5),
                       retry=RetryPolicy(max_retries=16, timeout=50.0))
    assert metrics.messages == 1


def test_fault_spec_parsing():
    plan = FaultPlan.parse("drop=0.2, dup=0.1, jitter=50, crash=0.05, "
                           "downtime=100, seed=9")
    assert plan.drop_probability == 0.2
    assert plan.duplicate_probability == 0.1
    assert plan.delay_jitter == 50.0
    assert plan.crash_probability == 0.05
    assert plan.crash_duration == 100.0
    assert plan.seed == 9
    assert plan.active


def test_fault_spec_rejects_unknown_keys():
    with pytest.raises(FaultSpecError):
        FaultPlan.parse("lose=0.5")
    with pytest.raises(FaultSpecError):
        FaultPlan.parse("drop")
    with pytest.raises(FaultSpecError):
        FaultPlan.parse("drop=lots")


def test_fault_plan_validates_probabilities():
    with pytest.raises(FaultSpecError):
        FaultPlan(drop_probability=1.5)
    with pytest.raises(FaultSpecError):
        FaultPlan(delay_jitter=-1.0)


def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_retries=-1)
    with pytest.raises(ValueError):
        RetryPolicy(timeout=0.0)
    with pytest.raises(ValueError):
        RetryPolicy(backoff=0.5)
