"""The batch equivalence suite: cached, parallel compilation must be
observably identical to serial uncached compilation.

Two properties are pinned down over a generator corpus:

* **Byte equality** — annotated sources and placement counts from
  ``compile_many(jobs=N, cache=...)`` (cold and warm) match a serial
  uncached run exactly.
* **Trace equality** — ``stable_form`` traces (wall-clock fields
  stripped) are equal too: a cache hit replays the stored prepare-phase
  trace, so warmth is invisible to trace consumers.

Plus the mutation regression the cache exists for: annotating a cached
program must never leak spliced READ/WRITE statements back into the
cache (see ``docs/scaling.md``).
"""

import pytest

from repro.batch import BatchOptions, PipelineCache, compile_many, compile_one
from repro.batch.driver import PREPARED_NAMESPACE
from repro.lang import ast
from repro.obs.bench import batch_corpus
from repro.testing.programs import FIG11_SOURCE


@pytest.fixture(scope="module")
def corpus():
    """A small deterministic generator corpus with real array traffic."""
    return batch_corpus(n_programs=6, size=10, seed=3)


def observable(result):
    """Everything a batch consumer can see, minus wall-clock noise."""
    return [(p.name, p.ok, p.annotated_source, p.reads, p.writes, p.trace)
            for p in result.programs]


def test_serial_cached_equals_serial_uncached(corpus):
    options = BatchOptions(trace=True)
    baseline = compile_many(corpus, jobs=1, options=options)
    cache = PipelineCache()
    cold = compile_many(corpus, jobs=1, cache=cache, options=options)
    warm = compile_many(corpus, jobs=1, cache=cache, options=options)
    assert warm.cache_hits == len(corpus)
    assert observable(cold) == observable(baseline)
    assert observable(warm) == observable(baseline)


def test_parallel_cached_equals_serial_uncached(corpus, tmp_path):
    options = BatchOptions(trace=True)
    baseline = compile_many(corpus, jobs=1, options=options)
    cache = PipelineCache(directory=str(tmp_path))
    cold = compile_many(corpus, jobs=2, cache=cache, options=options)
    warm = compile_many(corpus, jobs=2, cache=cache, options=options)
    assert observable(cold) == observable(baseline)
    assert observable(warm) == observable(baseline)
    assert warm.cache_hits == len(corpus)


def test_repeated_runs_are_deterministic(corpus):
    first = compile_many(corpus, jobs=1)
    second = compile_many(corpus, jobs=1)
    assert observable(first) == observable(second)


# -- the mutation regression ------------------------------------------------


def comm_statements(program):
    return [s for s in ast.walk_statements(program.body)
            if isinstance(s, ast.Comm)]


def test_cache_never_serves_a_mutated_ast():
    """Annotation splices READ/WRITE statements into the analyzed AST in
    place; a cache that handed out the live object would make the second
    compile see the first compile's communication as real code."""
    cache = PipelineCache()
    first = compile_one("fig11", FIG11_SOURCE, cache=cache)
    second = compile_one("fig11", FIG11_SOURCE, cache=cache)
    assert second.cache_hit
    # byte-identical output — no doubled or shifted communication
    assert second.annotated_source == first.annotated_source
    assert (second.reads, second.writes) == (first.reads, first.writes)
    # the stored snapshot is still pristine: no Comm statements leaked in
    key = cache.key(FIG11_SOURCE, trace=False,
                    **BatchOptions().prepare_kwargs())
    entry = cache.get(PREPARED_NAMESPACE, key)
    assert entry is not None
    assert comm_statements(entry["prepared"].analyzed.program) == []


def test_many_reuses_stay_pristine(corpus):
    cache = PipelineCache()
    runs = [compile_many(corpus, jobs=1, cache=cache) for _ in range(3)]
    baseline = observable(runs[0])
    for run in runs[1:]:
        assert observable(run) == baseline
    # reads/writes stable across reuses proves no accumulation
    counts = [(p.reads, p.writes) for p in runs[0].programs]
    assert all(c != (0, 0) for c in counts) or counts  # corpus has traffic
    assert [(p.reads, p.writes) for p in runs[2].programs] == counts
