"""``compile_delta``: incremental recompilation against a warm cache.

The contract under test (``docs/scaling.md``): a delta compile of any
edited text is **byte-identical** to a cold compile of the same text,
while the intervals the edit did not touch replay from the cache
(whole-solve hits or fragment splices) instead of re-solving.
"""

import pytest

from repro.batch import (
    MERKLE_NAMESPACE,
    PipelineCache,
    compile_delta,
    compile_one,
    source_fingerprint,
)
from repro.lang.printer import format_program
from repro.testing.edits import EDIT_KINDS, EditModel
from repro.testing.generator import ArrayProgramGenerator


def generated(seed, size=24):
    return format_program(ArrayProgramGenerator(seed=seed).program(size=size))


def test_compile_delta_requires_a_cache():
    with pytest.raises(ValueError, match="PipelineCache"):
        compile_delta("p", generated(0), None)


def test_scalar_edit_replays_whole_intervals():
    base = generated(7, size=30)
    edited = base.replace("+ 1", "+ 2", 1)
    assert edited != base
    cache = PipelineCache()
    assert compile_one("p", base, cache=cache).ok
    delta = compile_delta("p", edited, cache,
                          base_digest=source_fingerprint(base))
    cold = compile_one("p", edited, cache=None)
    assert delta.ok and cold.ok
    assert delta.annotated_source == cold.annotated_source
    incr = delta.incremental
    assert incr["whole_hits"] > 0  # array refs unchanged -> same problems
    assert incr["digest"] == source_fingerprint(edited)
    assert incr["base"] == source_fingerprint(base)


def test_delta_reports_changed_interval_counts():
    base = generated(7, size=30)
    edited = base.replace("+ 1", "+ 2", 1)
    cache = PipelineCache()
    compile_one("p", base, cache=cache)
    delta = compile_delta("p", edited, cache,
                          base_digest=source_fingerprint(base))
    incr = delta.incremental
    assert incr["intervals_total"] > 0
    assert 0 < incr["intervals_changed"] < incr["intervals_total"]


def test_delta_without_base_digest_still_replays():
    base = generated(7, size=30)
    edited = base.replace("+ 1", "+ 2", 1)
    cache = PipelineCache()
    compile_one("p", base, cache=cache)
    delta = compile_delta("p", edited, cache)
    assert delta.ok
    incr = delta.incremental
    assert incr["base"] is None
    assert "intervals_changed" not in incr  # diagnostics need the base
    assert incr["whole_hits"] > 0  # the replay itself is content-addressed


def test_unknown_base_digest_degrades_to_no_diagnostics():
    edited = generated(7, size=30).replace("+ 1", "+ 2", 1)
    cache = PipelineCache()
    delta = compile_delta("p", edited, cache, base_digest="0" * 64)
    assert delta.ok
    assert "intervals_changed" not in delta.incremental


def test_every_compile_stores_a_merkle_record():
    cache = PipelineCache()
    base = generated(3)
    compile_one("p", base, cache=cache)
    record = cache.get(MERKLE_NAMESPACE, source_fingerprint(base))
    assert isinstance(record, list) and record == sorted(record)


def test_parse_error_is_data_not_a_crash():
    cache = PipelineCache()
    delta = compile_delta("broken", "do i = 1,\n", cache)
    assert not delta.ok
    assert delta.error_type == "ParseError"


# -- the randomized differential suite (docs/scaling.md) ----------------------

@pytest.mark.parametrize("seed", range(6))
def test_random_edit_sequences_are_byte_identical(seed):
    """Cumulative mixed edits: every delta must equal its cold compile
    byte for byte, and untouched intervals must hit the cache."""
    base = generated(seed, size=24)
    model = EditModel(seed=seed)
    cache = PipelineCache()
    assert compile_one("p", base, cache=cache).ok
    current = base
    reuse_hits = 0
    for kind, edited in model.edit_sequence(base, 4):
        delta = compile_delta("p", edited, cache,
                              base_digest=source_fingerprint(current))
        cold = compile_one("p", edited, cache=None)
        assert delta.ok and cold.ok, (kind, delta.error or cold.error)
        assert delta.annotated_source == cold.annotated_source, kind
        incr = delta.incremental
        reuse_hits += incr["whole_hits"] + incr["interval_hits"]
        current = edited
    assert reuse_hits > 0  # untouched intervals really replayed


def test_structure_changing_edits_splice_fragments():
    """Inserting statements at top level leaves loop intervals intact;
    their solves must come back as whole hits or fragment splices."""
    base = generated(1, size=24)
    model = EditModel(seed=42)
    cache = PipelineCache()
    compile_one("p", base, cache=cache)
    edited = model.insert(base)
    assert edited is not None
    delta = compile_delta("p", edited, cache,
                          base_digest=source_fingerprint(base))
    cold = compile_one("p", edited, cache=None)
    assert delta.annotated_source == cold.annotated_source
    incr = delta.incremental
    assert incr["whole_hits"] + incr["interval_hits"] > 0


def test_edits_inside_nested_loops_stay_identical():
    """Force the edit into a loop body (subscript changes on distributed
    arrays change the enclosing interval's problem)."""
    ran = 0
    for seed in range(8):
        base = generated(seed, size=24)
        model = EditModel(seed=seed + 100)
        edited = model.subscript(base)
        if edited is None:
            continue
        ran += 1
        cache = PipelineCache()
        compile_one("p", base, cache=cache)
        delta = compile_delta("p", edited, cache,
                              base_digest=source_fingerprint(base))
        cold = compile_one("p", edited, cache=None)
        assert delta.ok and cold.ok
        assert delta.annotated_source == cold.annotated_source
    assert ran >= 4  # the corpus really exercised this edit kind


def test_all_edit_kinds_covered_by_the_model():
    assert set(EDIT_KINDS) == {"scalar_rhs", "subscript", "insert", "delete"}
