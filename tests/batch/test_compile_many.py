"""compile_one / compile_many: outcomes, errors, options, the cache."""

import pytest

from repro.batch import (
    BatchOptions,
    PipelineCache,
    compile_many,
    compile_one,
    resolve_jobs,
)
from repro.commgen.pipeline import generate_communication
from repro.testing.programs import FIG1_SOURCE, FIG11_SOURCE


def small_corpus():
    return [("fig11", FIG11_SOURCE), ("fig1", FIG1_SOURCE)]


def test_compile_one_matches_direct_pipeline():
    compiled = compile_one("fig11", FIG11_SOURCE)
    result = generate_communication(FIG11_SOURCE)
    assert compiled.ok
    assert compiled.annotated_source == result.annotated_source()
    assert (compiled.reads, compiled.writes) == result.communication_count()
    assert not compiled.cache_hit
    assert compiled.duration_s > 0


def test_compile_one_captures_parse_errors():
    compiled = compile_one("bad", "program p\nthis is not fortran\n")
    assert not compiled.ok
    assert compiled.error_type == "ParseError"
    assert compiled.error
    assert compiled.annotated_source is None


def test_compile_many_serial_preserves_order_and_counts():
    result = compile_many(small_corpus(), jobs=1)
    assert [p.name for p in result.programs] == ["fig11", "fig1"]
    assert result.ok_count == 2 and result.error_count == 0
    assert result.jobs == 1
    assert result.programs_per_second > 0
    assert "2/2 programs ok" in result.summary()


def test_compile_many_accepts_dict_input():
    result = compile_many({"fig11": FIG11_SOURCE}, jobs=1)
    assert result.ok_count == 1
    assert result.programs[0].name == "fig11"


def test_one_bad_program_never_kills_the_corpus():
    corpus = small_corpus() + [("broken", "program p\n???\n")]
    result = compile_many(corpus, jobs=1)
    assert result.ok_count == 2 and result.error_count == 1
    assert [p.name for p in result.errors()] == ["broken"]
    assert "1 failed" in result.summary()


def test_cache_hits_on_second_run():
    cache = PipelineCache()
    first = compile_many(small_corpus(), jobs=1, cache=cache)
    second = compile_many(small_corpus(), jobs=1, cache=cache)
    assert first.cache_hits == 0
    assert second.cache_hits == 2
    assert all(p.cache_hit for p in second.programs)
    # cached outcomes are indistinguishable from fresh ones
    for fresh, cached in zip(first.programs, second.programs):
        assert cached.annotated_source == fresh.annotated_source
        assert (cached.reads, cached.writes) == (fresh.reads, fresh.writes)


def test_parallel_equals_serial(tmp_path):
    cache = PipelineCache(directory=str(tmp_path))
    serial = compile_many(small_corpus(), jobs=1)
    parallel = compile_many(small_corpus(), jobs=2, cache=cache)
    assert parallel.ok_count == serial.ok_count == 2
    for s, p in zip(serial.programs, parallel.programs):
        assert p.name == s.name
        assert p.annotated_source == s.annotated_source
    # the parent reconstructs hit totals from worker-reported flags
    assert parallel.cache_stats is not None
    warm = compile_many(small_corpus(), jobs=2, cache=cache)
    assert warm.cache_hits == 2


def test_resolve_jobs_zero_means_one_per_cpu():
    import os

    assert resolve_jobs(0) == (os.cpu_count() or 1)
    assert resolve_jobs(-3) == (os.cpu_count() or 1)
    assert resolve_jobs(1) == 1
    assert resolve_jobs(7) == 7
    assert resolve_jobs("2") == 2  # argparse hands over ints, but be lenient


def test_compile_many_jobs_zero_resolves_to_cpu_count():
    result = compile_many(small_corpus(), jobs=0)
    assert result.ok_count == 2
    assert result.jobs == resolve_jobs(0)


def test_hardened_mode_reports_rung():
    options = BatchOptions(hardened=True)
    result = compile_many(small_corpus(), jobs=1, options=options)
    assert result.ok_count == 2
    for program in result.programs:
        assert program.rung == "balanced"
        assert not program.degraded
    assert result.degraded_count == 0


def test_trace_option_attaches_stable_payloads():
    options = BatchOptions(trace=True)
    compiled = compile_one("fig11", FIG11_SOURCE, options=options)
    assert compiled.ok and compiled.trace is not None
    assert compiled.trace["events"]
    # stable form: no wall-clock fields survive
    for event in compiled.trace["events"]:
        assert not any(key.endswith("_s") for key in event)


def test_batch_options_reject_unknown_pipeline_keys():
    with pytest.raises(ValueError, match="owner_compute"):
        BatchOptions(pipeline={"owner_compute": True})  # typo'd key


def test_pipeline_options_participate_in_the_cache_key():
    cache = PipelineCache()
    compile_one("fig11", FIG11_SOURCE, cache=cache,
                options=BatchOptions(pipeline={"owner_computes": False}))
    other = compile_one("fig11", FIG11_SOURCE, cache=cache,
                        options=BatchOptions(pipeline={"owner_computes": True}))
    assert not other.cache_hit  # different options must not alias


def test_as_dict_is_json_shaped():
    import json

    result = compile_many(small_corpus()[:1], jobs=1, cache=PipelineCache())
    payload = result.as_dict()
    json.dumps(payload)  # must be serializable as-is
    assert payload["ok"] == 1
    assert payload["programs"][0]["name"] == "fig11"
    # a cold compile misses "analyzed", "prepared", and the incremental
    # solve/fragment/verdict probes; stores add the merkle record on top
    assert payload["cache"]["misses"] == 7
    assert payload["cache"]["stores"] == 8
    assert payload["programs"][0]["incremental"]["whole_misses"] == 2
