"""PipelineCache: content addressing, snapshot semantics, persistence."""

import os
import time

import pytest

from repro.batch.cache import (
    CACHE_SCHEMA,
    TMP_SWEEP_AGE_S,
    PipelineCache,
    source_fingerprint,
)


SOURCE = "program p\nend\n"


def test_fingerprint_is_stable_and_content_addressed():
    a = source_fingerprint(SOURCE, owner_computes=False)
    b = source_fingerprint(SOURCE, owner_computes=False)
    assert a == b
    assert len(a) == 64  # sha256 hex


def test_fingerprint_sensitive_to_text_and_options():
    base = source_fingerprint(SOURCE, owner_computes=False)
    assert source_fingerprint(SOURCE + " ", owner_computes=False) != base
    assert source_fingerprint(SOURCE, owner_computes=True) != base
    assert source_fingerprint(SOURCE) != base


def test_fingerprint_ignores_option_order():
    assert (source_fingerprint(SOURCE, a=1, b=2)
            == source_fingerprint(SOURCE, b=2, a=1))


def test_fingerprint_includes_schema():
    # the schema string participates in the hash, so bumping it orphans
    # old entries rather than deserializing a stale layout
    assert CACHE_SCHEMA in ("repro-batch-cache/1",) or CACHE_SCHEMA
    assert source_fingerprint(SOURCE) != source_fingerprint(CACHE_SCHEMA + SOURCE)


def test_get_put_roundtrip_and_stats():
    cache = PipelineCache()
    key = cache.key(SOURCE, option=1)
    assert cache.get("ns", key) is None
    cache.put("ns", key, {"value": [1, 2, 3]})
    assert cache.get("ns", key) == {"value": [1, 2, 3]}
    stats = cache.stats()
    assert stats["hits"] == 1 and stats["misses"] == 1 and stats["stores"] == 1
    assert cache.hit_rate == 0.5


def test_namespaces_are_isolated():
    cache = PipelineCache()
    key = cache.key(SOURCE)
    cache.put("analyzed", key, "frontend")
    assert cache.get("prepared", key) is None
    assert cache.get("analyzed", key) == "frontend"


def test_hits_return_fresh_copies():
    # the defense against in-place mutation: every get materializes a
    # private object graph, and put snapshots at store time
    cache = PipelineCache()
    key = cache.key(SOURCE)
    state = {"body": ["stmt"]}
    cache.put("ns", key, state)
    state["body"].append("mutated-after-put")

    first = cache.get("ns", key)
    assert first == {"body": ["stmt"]}  # put-time snapshot, not live object
    first["body"].append("mutated-after-get")
    second = cache.get("ns", key)
    assert second == {"body": ["stmt"]}
    assert second is not first


def test_disk_persistence_across_instances(tmp_path):
    directory = str(tmp_path / "cache")
    writer = PipelineCache(directory=directory)
    key = writer.key(SOURCE, size=3)
    writer.put("ns", key, ("solved", 42))

    reader = PipelineCache(directory=directory)  # fresh process stand-in
    assert len(reader) == 0
    assert reader.get("ns", key) == ("solved", 42)
    assert reader.hits == 1


def test_memory_eviction_keeps_disk_entries(tmp_path):
    cache = PipelineCache(directory=str(tmp_path), max_memory_entries=2)
    keys = [cache.key(f"{SOURCE}{i}") for i in range(4)]
    for i, key in enumerate(keys):
        cache.put("ns", key, i)
    assert len(cache) == 2  # LRU-evicted down to the bound
    # evicted entries still hit through the disk layer
    assert cache.get("ns", keys[0]) == 0


def test_corrupt_disk_entry_is_a_miss_not_a_crash(tmp_path):
    # a writer killed mid-write, a torn disk, a copied cache directory:
    # the snapshot file exists but no longer unpickles
    directory = str(tmp_path)
    writer = PipelineCache(directory=directory)
    key = writer.key(SOURCE)
    writer.put("ns", key, {"value": 1})
    path = writer._path("ns", key)
    with open(path, "wb") as handle:
        handle.write(b"\x80\x05 not a pickle")

    reader = PipelineCache(directory=directory)
    assert reader.get("ns", key) is None  # miss, not UnpicklingError
    stats = reader.stats()
    assert stats["corrupt"] == 1 and stats["misses"] == 1
    assert not tmp_path.joinpath(os.path.basename(path)).exists()  # evicted
    # the next put heals the slot
    reader.put("ns", key, {"value": 2})
    assert reader.get("ns", key) == {"value": 2}


def test_truncated_disk_entry_counts_as_corrupt(tmp_path):
    cache = PipelineCache(directory=str(tmp_path))
    key = cache.key(SOURCE)
    payload = cache.put("ns", key, ("solved", 42))
    path = cache._path("ns", key)
    with open(path, "wb") as handle:
        handle.write(payload[: len(payload) // 2])  # torn write

    fresh = PipelineCache(directory=str(tmp_path))
    assert fresh.get("ns", key) is None
    assert fresh.corrupt == 1
    assert not os.path.exists(path)


def test_corrupt_memory_entry_is_evicted():
    cache = PipelineCache()
    key = cache.key(SOURCE)
    cache.put("ns", key, 1)
    cache._memory[("ns", key)] = b"garbage"
    assert cache.get("ns", key) is None
    assert ("ns", key) not in cache._memory
    assert cache.stats()["corrupt"] == 1


def test_clear_resets_corrupt_counter(tmp_path):
    cache = PipelineCache(directory=str(tmp_path))
    key = cache.key(SOURCE)
    cache.put("ns", key, 1)
    cache._memory[("ns", key)] = b"garbage"
    cache.get("ns", key)
    assert cache.corrupt == 1
    cache.clear()
    assert cache.stats()["corrupt"] == 0


def _orphan_tmp(tmp_path, name="deadbeef.tmp", age_s=2 * TMP_SWEEP_AGE_S):
    """A ``*.tmp`` staging file whose writer 'crashed' ``age_s`` ago."""
    path = tmp_path / name
    path.write_bytes(b"half a pickle")
    stamp = time.time() - age_s
    os.utime(path, (stamp, stamp))
    return path


def test_open_sweeps_orphaned_tmp_files(tmp_path):
    # regression: a worker killed between mkstemp and the atomic rename
    # (crash mid-write) leaks its staging file forever; opening a cache
    # on the directory must heal it
    seeder = PipelineCache(directory=str(tmp_path))
    key = seeder.key(SOURCE)
    seeder.put("ns", key, 1)
    orphan = _orphan_tmp(tmp_path)

    cache = PipelineCache(directory=str(tmp_path))
    assert not orphan.exists()
    assert cache.swept_tmp == 1
    assert cache.stats()["swept_tmp"] == cache.swept_tmp
    assert cache.get("ns", key) == 1  # real entries untouched


def test_sweep_spares_fresh_tmp_from_live_writers(tmp_path):
    # a young staging file may belong to a writer in a sibling process
    # that is mid-put right now — the age gate must leave it alone
    fresh = tmp_path / "inflight.tmp"
    fresh.write_bytes(b"being written")
    cache = PipelineCache(directory=str(tmp_path))
    assert fresh.exists()
    assert cache.swept_tmp == 0


def test_sweep_ignores_non_tmp_files(tmp_path):
    entry = _orphan_tmp(tmp_path, name="not-a-staging-file.pickle")
    cache = PipelineCache(directory=str(tmp_path))
    assert entry.exists()
    assert cache.swept_tmp == 0


def test_crashed_writer_then_reopen_round_trips(tmp_path):
    # end to end: orphan present, cache opens, sweeps, and normal
    # operation (including new atomic writes) proceeds
    _orphan_tmp(tmp_path)
    cache = PipelineCache(directory=str(tmp_path))
    key = cache.key(SOURCE, run=2)
    cache.put("ns", key, {"solved": True})
    assert [name for name in os.listdir(tmp_path)
            if name.endswith(".tmp")] == []
    fresh = PipelineCache(directory=str(tmp_path))
    assert fresh.get("ns", key) == {"solved": True}


def test_clear_resets_memory_and_counters(tmp_path):
    cache = PipelineCache(directory=str(tmp_path))
    key = cache.key(SOURCE)
    cache.put("ns", key, 1)
    cache.get("ns", key)
    cache.clear()
    assert len(cache) == 0
    assert cache.stats()["hits"] == 0 and cache.stats()["stores"] == 0
    # on-disk entries survive clear()
    assert cache.get("ns", key) == 1


def test_clear_resets_swept_tmp_counter(tmp_path):
    # regression: clear() reset every counter except swept_tmp, so a
    # cleared cache kept reporting sweeps from a previous lifetime
    _orphan_tmp(tmp_path)
    cache = PipelineCache(directory=str(tmp_path))
    assert cache.swept_tmp == 1
    cache.clear()
    assert cache.swept_tmp == 0
    assert cache.stats()["swept_tmp"] == 0


def test_lru_hot_entry_survives_eviction():
    # regression: the in-memory layer evicted in pure insertion order,
    # so the hottest entry died first once the cache filled up
    cache = PipelineCache(max_memory_entries=2)
    hot, cold, new = (cache.key(f"{SOURCE}{i}") for i in range(3))
    cache.put("ns", hot, "hot")
    cache.put("ns", cold, "cold")
    assert cache.get("ns", hot) == "hot"  # touch: hot is now most recent
    cache.put("ns", new, "new")  # evicts cold, not hot
    assert cache.get("ns", hot) == "hot"
    assert cache.get("ns", new) == "new"
    assert cache.get("ns", cold) is None  # memory-only: evicted for good


def test_fingerprint_rejects_non_primitive_options():
    # regression: arbitrary objects were silently folded via repr(), so
    # two semantically equal options could alias or split cache keys
    # depending on their repr stability
    with pytest.raises(TypeError, match="option"):
        source_fingerprint(SOURCE, pipeline={"solver_backend": "planned"})
    with pytest.raises(TypeError, match="option"):
        source_fingerprint(SOURCE, callback=lambda: None)
    with pytest.raises(TypeError, match="option"):
        source_fingerprint(SOURCE, nested=(1, (2, 3)))
    # the primitive vocabulary (and flat tuples of it) stays legal
    assert source_fingerprint(SOURCE, a=True, b=2, c=2.5, d="x", e=None,
                              f=("p", 1, None))
