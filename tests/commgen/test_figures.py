"""End-to-end reproduction of the paper's annotated figures.

These tests pin the *exact* annotated output of the pipeline for the
paper's three worked examples (Figures 2, 3, and 14).
"""

import pytest

from repro.commgen import generate_communication
from repro.testing.programs import FIG1_SOURCE, FIG3_SOURCE, FIG11_SOURCE


def lines_of(source, **kwargs):
    result = generate_communication(source, **kwargs)
    return [line.strip() for line in result.annotated_source().splitlines()
            if line.strip()]


def assert_in_order(lines, *needles):
    position = -1
    for needle in needles:
        matches = [i for i, line in enumerate(lines)
                   if line == needle and i > position]
        assert matches, f"{needle!r} not found after position {position} in:\n" + \
            "\n".join(lines)
        position = matches[0]


def test_figure2_read_placement():
    lines = lines_of(FIG1_SOURCE)
    # one vectorized send hoisted to the very top (above the i loop)
    assert_in_order(
        lines,
        "READ_Send{x(a(1:n))}",
        "do i = 1, n",
        "if test then",
        "READ_Recv{x(a(1:n))}",
        "do k = 1, n",
        "else",
        "READ_Recv{x(a(1:n))}",
        "do l = 1, n",
    )
    # exactly one send, two receives (one per branch)
    assert lines.count("READ_Send{x(a(1:n))}") == 1
    assert lines.count("READ_Recv{x(a(1:n))}") == 2


def test_figure3_write_and_give_for_free():
    lines = lines_of(FIG3_SOURCE)
    assert_in_order(
        lines,
        "if test then",
        "x(a(i)) = ...",
        "WRITE_Send{x(a(1:n))}",
        "WRITE_Recv{x(a(1:n))}",
        "READ_Send{x(6:n + 5)}",
        "READ_Recv{x(6:n + 5)}",
        "do j = 1, n",
        "else",
        "READ_Send{x(6:n + 5)}",
        "READ_Recv{x(6:n + 5)}",
        "endif",
        "do k = 1, n",
    )
    # give-for-free: x(6:n+5) is NOT re-read inside the then branch
    # after the local definition... it IS read (different portion), but
    # x(a(1:n)) itself is never READ anywhere.
    assert not any("READ" in line and "x(a(1:n))" in line for line in lines)


def test_figure14_full_annotation():
    lines = lines_of(FIG11_SOURCE)
    assert_in_order(
        lines,
        "READ_Send{x(11:n + 10)}",
        "do i = 1, n",
        "y(a(i)) = ...",
        "if test(i) then",
        "WRITE_Send{y(a(1:i))}",       # partial section: early exit
        "WRITE_Recv{y(a(1:i))}",
        "READ_Send{y(b(1:n))}",
        "goto 77",
        "endif",
        "enddo",
        "WRITE_Send{y(a(1:n))}",
        "WRITE_Recv{y(a(1:n))}",
        "READ_Send{y(b(1:n))}",
        "do j = 1, n",
        "enddo",
        "77  READ_Recv{x(11:n + 10), y(b(1:n))}",
        "do k = 1, n",
    )


def test_figure14_label_carried_by_receive():
    result = generate_communication(FIG11_SOURCE)
    text = result.annotated_source()
    assert "77  READ_Recv" in text
    # the original do k statement lost its label to the receive
    for line in text.splitlines():
        if "do k" in line:
            assert not line.strip().startswith("77")


def test_counts(fig11):
    result = generate_communication(FIG11_SOURCE)
    reads, writes = result.communication_count()
    assert reads == 4   # send x, send y_b (x2 paths), recv both
    assert writes == 4  # send/recv on normal exit + send/recv on jump path


def test_atomic_mode_places_single_operations():
    result = generate_communication(FIG1_SOURCE, split_messages=False)
    text = result.annotated_source()
    assert "READ{x(a(1:n))}" in text
    assert "READ_Send" not in text and "READ_Recv" not in text


def test_owner_computes_drops_writes_and_gives():
    result = generate_communication(FIG11_SOURCE, owner_computes=True)
    text = result.annotated_source()
    assert "WRITE" not in text
    assert "READ" in text


def test_conservative_after_jumps_mode_stays_balanced():
    from repro.core import check_placement
    result = generate_communication(FIG11_SOURCE, after_jumps="conservative")
    report = check_placement(result.analyzed.ifg, result.write_problem,
                             result.write_placement, max_paths=200)
    assert not report.by_kind("balance"), str(report)
    assert not report.by_kind("sufficiency"), str(report)


def test_pipeline_placements_verify():
    from repro.core import check_placement
    result = generate_communication(FIG11_SOURCE)
    for problem, placement in (
        (result.read_problem, result.read_placement),
        (result.write_problem, result.write_placement),
    ):
        report = check_placement(result.analyzed.ifg, problem, placement,
                                 max_paths=200, min_trips=1)
        assert report.ok(ignore=("safety", "redundant")), str(report)
