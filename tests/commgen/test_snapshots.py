"""Exact-output snapshots of the paper's three figure programs.

Any placement, ordering, or rendering regression shows up here as a
readable diff against the paper's published output.
"""

import textwrap

from repro.commgen import generate_communication
from repro.testing.programs import FIG1_SOURCE, FIG3_SOURCE, FIG11_SOURCE


def normalized(text):
    return "\n".join(line.rstrip() for line in text.strip().splitlines())


FIG2_EXPECTED = """
    real x(100)
    real y(100)
    real z(100)
    integer a(100)
    distribute x(block)
    READ_Send{x(a(1:n))}
    do i = 1, n
        y(i) = ...
    enddo
    if test then
        do j = 1, n
            z(j) = ...
        enddo
        READ_Recv{x(a(1:n))}
        do k = 1, n
            ... = x(a(k))
        enddo
    else
        READ_Recv{x(a(1:n))}
        do l = 1, n
            ... = x(a(l))
        enddo
    endif
"""

FIG3_EXPECTED = """
    real x(100)
    integer a(100)
    distribute x(block)
    if test then
        do i = 1, n
            x(a(i)) = ...
        enddo
        WRITE_Send{x(a(1:n))}
        WRITE_Recv{x(a(1:n))}
        READ_Send{x(6:n + 5)}
        READ_Recv{x(6:n + 5)}
        do j = 1, n
            ... = x(j + 5)
        enddo
    else
        READ_Send{x(6:n + 5)}
        READ_Recv{x(6:n + 5)}
    endif
    do k = 1, n
        ... = x(k + 5)
    enddo
"""

FIG14_EXPECTED = """
    real x(100)
    real y(100)
    integer a(100)
    integer b(100)
    distribute x(block)
    distribute y(block)
    READ_Send{x(11:n + 10)}
    do i = 1, n
        y(a(i)) = ...
        if test(i) then
            WRITE_Send{y(a(1:i))}
            WRITE_Recv{y(a(1:i))}
            READ_Send{y(b(1:n))}
            goto 77
        endif
    enddo
    WRITE_Send{y(a(1:n))}
    WRITE_Recv{y(a(1:n))}
    READ_Send{y(b(1:n))}
    do j = 1, n
        ... = ...
    enddo
77  READ_Recv{x(11:n + 10), y(b(1:n))}
    do k = 1, n
        ... = x(k + 10) + y(b(k))
    enddo
"""


def test_figure2_snapshot():
    actual = generate_communication(FIG1_SOURCE).annotated_source()
    assert normalized(actual) == normalized(FIG2_EXPECTED)


def test_figure3_snapshot():
    actual = generate_communication(FIG3_SOURCE).annotated_source()
    assert normalized(actual) == normalized(FIG3_EXPECTED)


def test_figure14_snapshot():
    actual = generate_communication(FIG11_SOURCE).annotated_source()
    assert normalized(actual) == normalized(FIG14_EXPECTED)
