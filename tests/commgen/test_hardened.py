"""The self-checking, gracefully degrading pipeline."""

import pytest

from repro.commgen import (
    HardenedPipeline,
    ResourceBudget,
    generate_communication,
    harden_communication,
)
from repro.commgen.hardened import RUNGS
from repro.core import check_placement
from repro.core.solver import GiveNTakeSolver
from repro.graph.views import ForwardView
from repro.testing.programs import FIG1_SOURCE, FIG3_SOURCE, FIG11_SOURCE
from repro.util.errors import ParseError, SolverBudgetError

IRREDUCIBLE = "if t goto 5\ndo i = 1, n\n5 a = 1\nenddo\n"


def test_well_behaved_program_stays_on_the_top_rung():
    hardened = harden_communication(FIG11_SOURCE)
    assert hardened.rung == "balanced"
    assert not hardened.report.degraded
    assert hardened.report.reason is None
    # identical output to the plain pipeline
    plain = generate_communication(FIG11_SOURCE)
    assert hardened.annotated_source() == plain.annotated_source()


@pytest.mark.parametrize("source", [FIG1_SOURCE, FIG3_SOURCE, FIG11_SOURCE])
def test_paper_figures_certify_on_the_chosen_rung(source):
    hardened = harden_communication(source)
    attempt = hardened.report.attempts[-1]
    assert attempt.ok
    if hardened.rung != "naive":
        result = hardened.result
        for problem, placement in ((result.read_problem, result.read_placement),
                                   (result.write_problem,
                                    result.write_placement)):
            report = check_placement(result.analyzed.ifg, problem, placement)
            assert not report.by_criterion("C1")


def test_irreducible_input_is_split_not_rejected():
    hardened = harden_communication(IRREDUCIBLE)
    report = hardened.report
    assert report.split_irreducible
    assert report.splits  # the duplicated node is named
    assert hardened.annotated_source()  # produced something runnable


def test_parse_errors_still_raise():
    with pytest.raises(ParseError):
        harden_communication("do i = 1, n\n")  # missing enddo


def test_report_structure():
    report = harden_communication(FIG11_SOURCE).report
    data = report.as_dict()
    assert data["rung"] in RUNGS
    assert isinstance(data["attempts"], list)
    assert all(a["rung"] in RUNGS for a in data["attempts"])
    assert "rung=" in report.summary()


def test_truncated_certification_is_reported():
    hardened = harden_communication(
        FIG11_SOURCE, budget=ResourceBudget(check_paths=1))
    assert hardened.report.truncated
    assert "truncated" in hardened.report.summary()


def test_degrades_when_balanced_rung_fails(monkeypatch):
    """Force the top rung to produce an unbalanced placement: the ladder
    must fall through to a rung that certifies instead of raising."""
    import repro.commgen.hardened as hardened_mod

    real = hardened_mod.generate_communication

    def sabotage(source, **kwargs):
        result = real(source, **kwargs)
        if kwargs.get("after_jumps") != "conservative":
            # drop one production: C1 balance now fails on replay
            # (on every backend — the fault is in the placement, not
            # the kernel, so the reference retry cannot mask it)
            placement = result.read_placement
            production = placement.productions()[0]
            placement._set(production.node, production.position,
                           production.timing, 0)
        return result

    monkeypatch.setattr(hardened_mod, "generate_communication", sabotage)
    hardened = HardenedPipeline().run(FIG11_SOURCE)
    assert hardened.report.degraded
    assert hardened.rung in ("conservative", "naive")
    assert "rejected" in hardened.report.reason
    first = hardened.report.attempts[0]
    assert not first.ok and first.reason.startswith("checker:")


def test_degrades_on_pipeline_exception(monkeypatch):
    import repro.commgen.hardened as hardened_mod
    from repro.util.errors import SolverError

    real = hardened_mod.generate_communication

    def explode(source, **kwargs):
        if kwargs.get("after_jumps") != "conservative":
            raise SolverError("injected failure")
        return real(source, **kwargs)

    monkeypatch.setattr(hardened_mod, "generate_communication", explode)
    hardened = HardenedPipeline().run(FIG11_SOURCE)
    assert hardened.rung == "conservative"
    assert "SolverError" in hardened.report.reason


def test_degrades_all_the_way_to_naive(monkeypatch):
    import repro.commgen.hardened as hardened_mod
    from repro.util.errors import SolverError

    def always_explode(source, **kwargs):
        raise SolverError("nothing works")

    monkeypatch.setattr(hardened_mod, "generate_communication", always_explode)
    hardened = HardenedPipeline().run(FIG11_SOURCE)
    assert hardened.rung == "naive"
    assert hardened.report.degraded
    # the naive rung is balanced by construction and still runnable
    from repro.machine import ConditionPolicy, simulate
    metrics = simulate(hardened.annotated_program, bindings={"n": 4},
                       policy=ConditionPolicy("never"))
    assert metrics.messages > 0


def test_solver_budget_guard_raises_when_not_converged(fig11,
                                                       fig11_read_problem):
    """The iteration guard fires when the fixpoint will not settle
    within the budget (stubbed: a sweep that always reports change)."""

    class IteratingView(ForwardView):
        @property
        def requires_consumption_iteration(self):
            return True

    solver = GiveNTakeSolver(IteratingView(fig11.ifg), fig11_read_problem,
                             max_rounds=2)
    solver._sweep_consumption = lambda: True
    with pytest.raises(SolverBudgetError):
        solver.run()


def test_budget_is_recorded_not_global():
    small = HardenedPipeline(budget=ResourceBudget(check_paths=5))
    large = HardenedPipeline(budget=ResourceBudget(check_paths=500))
    assert small.budget.check_paths == 5
    assert large.budget.check_paths == 500
    # both certify Figure 11 on the top rung regardless
    assert small.run(FIG11_SOURCE).rung == "balanced"
    assert large.run(FIG11_SOURCE).rung == "balanced"


def test_owner_computes_mode_supported():
    hardened = harden_communication(FIG3_SOURCE, owner_computes=True)
    assert hardened.report.attempts[-1].ok
    assert "WRITE" not in hardened.annotated_source()


def test_accepts_parsed_programs():
    from repro.lang.parser import parse

    hardened = harden_communication(parse(FIG11_SOURCE))
    assert hardened.rung == "balanced"


def test_kernel_fault_retries_on_reference_before_degrading(monkeypatch):
    """A solver-kernel fault must not cost a rung: the same rung is
    retried on the reference backend, succeeds, and the run does not
    count as degraded."""
    from repro.core.kernel.planned import PlannedSolver
    from repro.util.errors import SolverError

    def kernel_fault(self):
        raise SolverError("injected kernel fault")

    monkeypatch.setattr(PlannedSolver, "run", kernel_fault)
    hardened = HardenedPipeline().run(FIG11_SOURCE)
    assert hardened.rung == "balanced"
    assert not hardened.report.degraded
    assert hardened.report.reason is None
    first, second = hardened.report.attempts[:2]
    assert not first.ok and "injected kernel fault" in first.reason
    assert first.backend in (None, "planned")
    assert second.ok and second.backend == "reference"
    # identical output to the plain pipeline on the reference backend
    plain = generate_communication(FIG11_SOURCE, solver_backend="reference")
    assert hardened.annotated_source() == plain.annotated_source()


def test_explicit_reference_backend_skips_the_retry():
    hardened = HardenedPipeline(solver_backend="reference").run(FIG11_SOURCE)
    assert hardened.rung == "balanced"
    assert len(hardened.report.attempts) == 1
    assert hardened.report.attempts[0].backend == "reference"
