"""Naive baseline tests."""

from repro.commgen import naive_communication
from repro.testing.programs import FIG1_SOURCE, FIG11_SOURCE


def test_naive_reads_inside_loops():
    result = naive_communication(FIG1_SOURCE)
    text = result.annotated_source()
    lines = [line.strip() for line in text.splitlines()]
    k_index = lines.index("do k = 1, n")
    # the send/recv pair sits inside the loop, element-wise
    assert lines[k_index + 1] == "READ_Send{x(a(k))}"
    assert lines[k_index + 2] == "READ_Recv{x(a(k))}"


def test_naive_writes_after_defs():
    result = naive_communication(FIG11_SOURCE)
    lines = [line.strip() for line in result.annotated_source().splitlines()]
    def_index = lines.index("y(a(i)) = ...")
    assert lines[def_index + 1] == "WRITE_Send{y(a(i))}"
    assert lines[def_index + 2] == "WRITE_Recv{y(a(i))}"


def test_naive_ignores_replicated_arrays():
    result = naive_communication("real x(10)\nu = x(1)")
    assert "READ" not in result.annotated_source()


def test_naive_message_count_scales_with_trips():
    from repro.machine import ConditionPolicy, simulate

    result = naive_communication(FIG1_SOURCE)
    for n in (4, 16):
        metrics = simulate(result.annotated_program, bindings={"n": n},
                           policy=ConditionPolicy("always"))
        assert metrics.messages == n  # one per iteration of the k loop
