"""Problem construction rules (takes/steals/gives from accesses)."""

from repro.analysis.ownership import OwnershipModel
from repro.analysis.references import collect_accesses
from repro.commgen.problems import (
    build_read_problem,
    build_write_problem,
    communicated_descriptors,
)
from repro.lang.symbols import SymbolTable
from repro.testing.programs import FIG11_SOURCE, analyze_source


def setup(source, owner_computes=False):
    analyzed = analyze_source(source)
    symbols = SymbolTable.from_program(analyzed.program)
    ownership = OwnershipModel(symbols, owner_computes=owner_computes)
    accesses, _ = collect_accesses(analyzed, symbols)
    return analyzed, ownership, accesses


def descriptor_named(problem, text):
    return next(d for d in problem.universe if d.format() == text)


def test_fig11_read_problem_matches_golden_instance(fig11):
    analyzed, ownership, accesses = setup(FIG11_SOURCE)
    problem = build_read_problem(accesses, ownership)
    x_k = descriptor_named(problem, "x(11:n + 10)")
    y_a = descriptor_named(problem, "y(a(1:n))")
    y_b = descriptor_named(problem, "y(b(1:n))")
    node3 = analyzed.node(3)
    node13 = analyzed.node(13)
    u = problem.universe
    # takes at the k-loop body
    assert problem.take_init(node13) == u.bits([x_k, y_b])
    # the def gives its own portion and steals the conflicting one
    assert problem.give_init(node3) == u.bit(y_a)
    assert problem.steal_init(node3) & u.bit(y_b)
    # x portions are not disturbed by a def of y
    assert not problem.steal_init(node3) & u.bit(x_k)


def test_owner_computes_steals_own_portion():
    _, ownership, accesses = setup(FIG11_SOURCE, owner_computes=True)
    problem = build_read_problem(accesses, ownership)
    y_a = descriptor_named(problem, "y(a(1:n))")
    def_access = next(a for a in accesses if a.is_def)
    assert problem.give_init(def_access.node) == 0
    assert problem.steal_init(def_access.node) & problem.universe.bit(y_a)


def test_indirection_array_def_steals_indirect_sections():
    analyzed, ownership, accesses = setup(
        "real x(100)\ninteger a(100)\ndistribute x(block)\n"
        "do k = 1, n\nu = x(a(k))\nenddo\n"
        "a(1) = 2\n"
        "do l = 1, n\nw = x(a(l))\nenddo\n"
    )
    problem = build_read_problem(accesses, ownership)
    x_a = descriptor_named(problem, "x(a(1:n))")
    def_node = analyzed.node_named("a(1) =")
    assert problem.steal_init(def_node) & problem.universe.bit(x_a)


def test_write_problem_takes_at_defs(fig11):
    analyzed, ownership, accesses = setup(FIG11_SOURCE)
    problem = build_write_problem(accesses, ownership)
    y_a = descriptor_named(problem, "y(a(1:n))")
    assert problem.take_init(analyzed.node(3)) == problem.universe.bit(y_a)
    # reads never take in the write problem
    assert problem.take_init(analyzed.node(13)) == 0


def test_write_problem_read_coupling(fig11):
    from repro.core.placement import Placement
    from repro.core.solver import solve

    analyzed, ownership, accesses = setup(FIG11_SOURCE)
    read_problem = build_read_problem(accesses, ownership)
    read_solution = solve(analyzed.ifg, read_problem)
    read_placement = Placement(analyzed.ifg, read_problem, read_solution)
    problem = build_write_problem(accesses, ownership,
                                  read_placement=read_placement)
    y_a = descriptor_named(problem, "y(a(1:n))")
    bit = problem.universe.bit(y_a)
    # the read-send sites of y(b(1:n)) steal the conflicting write-back
    stealers = [n for n in problem.annotated_nodes()
                if problem.steal_init(n) & bit]
    assert stealers, "read coupling produced no steals"


def test_communicated_descriptors_order_and_uniqueness():
    _, ownership, accesses = setup(FIG11_SOURCE)
    descriptors = communicated_descriptors(accesses, ownership)
    formatted = [d.format() for d in descriptors]
    assert formatted == ["y(a(1:n))", "x(11:n + 10)", "y(b(1:n))"]


def test_replicated_only_program_has_empty_universe():
    _, ownership, accesses = setup("real x(100)\nu = x(1)\nx(2) = 3")
    problem = build_read_problem(accesses, ownership)
    assert len(problem.universe) == 0
    assert problem.annotated_nodes() == []
