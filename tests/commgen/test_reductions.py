"""Reduction communication tests (§6: "WRITEs combined with different
reduction operations (such as summation)")."""

from repro.analysis.references import collect_accesses, detect_reduction
from repro.commgen import generate_communication
from repro.lang.parser import parse
from repro.testing.programs import analyze_source

SCATTER_ADD = """
real y(100)
integer b(100)
distribute y(block)
    do k = 1, n
        y(b(k)) = y(b(k)) + 1
    enddo
    u = 1
"""


def test_detect_reduction_forms():
    def stmt(text):
        return parse(text).body[0]

    assert detect_reduction(stmt("y(i) = y(i) + 1")) == "sum"
    assert detect_reduction(stmt("y(i) = 2 * y(i)")) == "prod"
    assert detect_reduction(stmt("y(i) = y(i) * 2")) == "prod"
    assert detect_reduction(stmt("y(i) = 1 + y(i)")) == "sum"
    assert detect_reduction(stmt("y(i) = y(j) + 1")) is None
    assert detect_reduction(stmt("y(i) = y(i) - 1")) is None  # not commutative
    assert detect_reduction(stmt("s = s + 1")) is None  # scalar target


def test_scatter_add_becomes_write_sum():
    result = generate_communication(SCATTER_ADD)
    text = result.annotated_source()
    assert "WRITE_Sum_Send{y(b(1:n))}" in text
    assert "WRITE_Sum_Recv{y(b(1:n))}" in text
    # and the old values are NOT fetched: no READ at all
    assert "READ" not in text


def test_reduction_does_not_give_for_free():
    # After a reduction, a local read of the portion must re-fetch: the
    # local value is only a partial contribution.
    source = SCATTER_ADD + "    do l = 1, n\n        w = y(b(l))\n    enddo\n"
    result = generate_communication(source)
    text = result.annotated_source()
    assert "READ_Send{y(b(1:n))}" in text
    assert "READ_Recv{y(b(1:n))}" in text
    # and the read happens after the write-back completes (C3 coupling):
    lines = [line.strip() for line in text.splitlines()]
    assert lines.index("WRITE_Sum_Recv{y(b(1:n))}") < lines.index(
        "READ_Send{y(b(1:n))}")


def test_mixed_plain_and_reduction_falls_back():
    source = """
real y(100)
integer b(100)
distribute y(block)
    do k = 1, n
        y(b(k)) = y(b(k)) + 1
    enddo
    do l = 1, n
        y(b(l)) = 0
    enddo
"""
    text = generate_communication(source).annotated_source()
    assert "WRITE_Send{y(b(1:n))}" in text
    assert "WRITE_Sum" not in text


def test_reduction_accesses_skip_target_read():
    analyzed = analyze_source(SCATTER_ADD)
    accesses, _ = collect_accesses(analyzed)
    y_accesses = [a for a in accesses if a.array == "y"]
    assert len(y_accesses) == 1
    assert y_accesses[0].is_def and y_accesses[0].reduction == "sum"


def test_reduction_write_vectorized_out_of_loop():
    result = generate_communication(SCATTER_ADD)
    lines = [line.strip() for line in result.annotated_source().splitlines()]
    enddo = lines.index("enddo")
    assert lines[enddo + 1] == "WRITE_Sum_Send{y(b(1:n))}"
