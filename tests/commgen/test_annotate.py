"""Annotator placement-strategy unit tests."""

import pytest

from repro.commgen import generate_communication
from repro.commgen.annotate import Annotator
from repro.core.placement import Placement, Position
from repro.core.problem import Direction, Problem, Timing
from repro.testing.programs import analyze_source


def annotate_manual(source, place, kind="read", direction=Direction.BEFORE,
                    **apply_kwargs):
    """Build an empty placement, let ``place`` fill it, annotate."""
    analyzed = analyze_source(source)
    problem = Problem(direction=direction)
    placement = Placement.empty(analyzed.ifg, problem)
    place(analyzed, problem, placement)
    annotator = Annotator(analyzed)
    annotator.apply(placement, kind, **apply_kwargs)
    from repro.lang.printer import format_program

    return [line.strip() for line in
            format_program(analyzed.program).splitlines() if line.strip()]


class FakeDescriptor:
    """A minimal printable descriptor for hand-built placements."""

    def __init__(self, text):
        self.text = text

    def format(self, partial_vars=frozenset(), local_vars=frozenset()):
        if partial_vars:
            return self.text + "|partial"
        return self.text

    def __str__(self):
        return self.text

    def __hash__(self):
        return hash(self.text)

    def __eq__(self, other):
        return isinstance(other, FakeDescriptor) and self.text == other.text

    def __lt__(self, other):
        return self.text < other.text


def test_before_and_after_statement_positions():
    def place(analyzed, problem, placement):
        d = FakeDescriptor("D")
        problem.universe.add(d)
        node = analyzed.node_named("b =")
        placement.add(node, Position.BEFORE, Timing.EAGER, d)
        placement.add(node, Position.AFTER, Timing.LAZY, d)

    lines = annotate_manual("a = 1\nb = 2\nu = 3", place)
    index = lines.index("b = 2")
    assert lines[index - 1] == "READ_Send{D}"
    assert lines[index + 1] == "READ_Recv{D}"


def test_header_after_means_after_the_loop():
    def place(analyzed, problem, placement):
        d = FakeDescriptor("D")
        problem.universe.add(d)
        placement.add(analyzed.node_named("do i"), Position.AFTER,
                      Timing.EAGER, d)

    lines = annotate_manual("do i = 1, n\na = 1\nenddo\nb = 2", place)
    assert lines.index("READ_Send{D}") == lines.index("enddo") + 1


def test_label_node_takes_the_label():
    source = "if t goto 9\na = 1\n9 b = 2"

    def place(analyzed, problem, placement):
        d = FakeDescriptor("D")
        problem.universe.add(d)
        label_node = next(n for n in analyzed.ifg.real_nodes()
                          if n.kind.value == "label")
        placement.add(label_node, Position.BEFORE, Timing.EAGER, d)

    lines = annotate_manual(source, place)
    assert any(line.startswith("9") and "READ_Send{D}" in line
               for line in lines)
    assert not any(line.startswith("9") and "b = 2" in line for line in lines)


def test_landing_pad_wraps_ifgoto():
    source = "do i = 1, n\nif t goto 9\na = 1\nenddo\n9 b = 2"

    def place(analyzed, problem, placement):
        d = FakeDescriptor("D")
        problem.universe.add(d)
        landing = next(n for n in analyzed.ifg.real_nodes()
                       if analyzed.ifg.preds(n, "J"))
        placement.add(landing, Position.BEFORE, Timing.EAGER, d)

    lines = annotate_manual(source, place)
    start = lines.index("if t then")
    assert lines[start + 1] == "READ_Send{D|partial}"  # partial sections
    assert lines[start + 2] == "goto 9"
    assert lines[start + 3] == "endif"


def test_entry_production_lands_after_declarations():
    source = "real x(10)\nparameter n = 3\na = 1"

    def place(analyzed, problem, placement):
        d = FakeDescriptor("D")
        problem.universe.add(d)
        placement.add(analyzed.ifg.cfg.entry, Position.BEFORE, Timing.EAGER, d)

    lines = annotate_manual(source, place)
    assert lines.index("READ_Send{D}") > lines.index("parameter n = 3")
    assert lines.index("READ_Send{D}") < lines.index("a = 1")


def test_exit_production_appends():
    def place(analyzed, problem, placement):
        d = FakeDescriptor("D")
        problem.universe.add(d)
        placement.add(analyzed.ifg.cfg.exit, Position.BEFORE, Timing.EAGER, d)

    lines = annotate_manual("a = 1", place)
    assert lines[-1] == "READ_Send{D}"


def test_one_per_section_splits_statements():
    def place(analyzed, problem, placement):
        d1, d2 = FakeDescriptor("A"), FakeDescriptor("B")
        problem.universe.add(d1)
        problem.universe.add(d2)
        node = analyzed.node_named("a =")
        placement.add(node, Position.BEFORE, Timing.EAGER, d1, d2)

    merged = annotate_manual("a = 1", place)
    assert "READ_Send{A, B}" in merged
    split = annotate_manual("a = 1", place, one_per_section=True)
    assert "READ_Send{A}" in split and "READ_Send{B}" in split


def test_latch_placement_goes_to_loop_body_end():
    # a latch (synthesized back-edge source) production executes once
    # per iteration: textually at the end of the loop body
    source = "do i = 1, n\nif t then\na = 1\nelse\nb = 2\nendif\nenddo"

    def place(analyzed, problem, placement):
        d = FakeDescriptor("D")
        problem.universe.add(d)
        from repro.graph.cfg import NodeKind
        latch = next(n for n in analyzed.ifg.real_nodes()
                     if n.kind is NodeKind.LATCH)
        placement.add(latch, Position.BEFORE, Timing.EAGER, d)

    lines = annotate_manual(source, place)
    assert lines.index("READ_Send{D}") == lines.index("endif") + 1
    assert lines.index("READ_Send{D}") < lines.index("enddo")


def test_unconditional_goto_landing_pad():
    source = "a = 1\ngoto 9\n9 b = 2"

    def place(analyzed, problem, placement):
        d = FakeDescriptor("D")
        problem.universe.add(d)
        from repro.graph.cfg import NodeKind
        goto_node = analyzed.node_named("goto")
        # place directly at the goto statement's node (no landing pad
        # exists for a single-target unconditional goto: not critical)
        placement.add(goto_node, Position.BEFORE, Timing.EAGER, d)

    lines = annotate_manual(source, place)
    assert lines.index("READ_Send{D}") < lines.index("goto 9")


def test_write_before_read_at_shared_point(fig3):
    from repro.testing.programs import FIG3_SOURCE

    lines = [line.strip() for line in generate_communication(
        FIG3_SOURCE).annotated_source().splitlines()]
    write_recv = lines.index("WRITE_Recv{x(a(1:n))}")
    read_send = lines.index("READ_Send{x(6:n + 5)}")
    assert write_recv < read_send
