"""Task-DAG extraction: pins, windows, edges, concretization."""

import pytest

from repro.commgen import generate_communication
from repro.machine import ConditionPolicy
from repro.sched import build_task_graph
from repro.sched.scenarios import FAN_SOURCE, GATHER_SOURCE
from repro.testing.programs import FIG11_SOURCE


def graph_for(source, bindings=None, branch="never"):
    result = generate_communication(source)
    return build_task_graph(result.annotated_program, None,
                            bindings or {"n": 8}, ConditionPolicy(branch))


@pytest.fixture(scope="module")
def fan_graph():
    return graph_for(FAN_SOURCE)


def test_compute_spine_is_a_chain(fan_graph):
    spine = fan_graph.compute_spine
    assert len(spine) > 0
    for a, b in zip(spine, spine[1:]):
        assert b in fan_graph.succs[a]
        assert a in fan_graph.preds[b]


def test_task_kinds_partition_the_trace(fan_graph):
    for position, task in enumerate(fan_graph.tasks):
        assert task.index == position
        assert task.kind in ("compute", "send", "recv")


def test_sends_are_pinned_after_their_eager_compute(fan_graph):
    for task in fan_graph.comm_tasks():
        if task.kind != "send":
            continue
        gap = fan_graph.natural_gap[task.index]
        if gap == 0:
            assert task.pin_after is None
        else:
            assert task.pin_after == fan_graph.compute_spine[gap - 1]
            assert task.pin_after in fan_graph.preds[task.index]


def test_comm_tasks_precede_their_first_consumer(fan_graph):
    for task in fan_graph.comm_tasks():
        for consumer in task.consumers:
            compute = fan_graph.tasks[consumer]
            assert compute.kind == "compute"
            assert consumer > task.index
            assert compute.arrays & task.arrays
            assert consumer in fan_graph.succs[task.index]


def test_every_receive_depends_on_its_send(fan_graph):
    for group in fan_graph.groups.values():
        assert fan_graph.tasks[group.send].kind == "send"
        for recv in group.recvs:
            assert fan_graph.tasks[recv].kind == "recv"
            assert group.send in fan_graph.preds[recv]


def test_trace_order_kept_between_comms_on_shared_arrays(fan_graph):
    comms = fan_graph.comm_tasks()
    for i, a in enumerate(comms):
        for b in comms[i + 1:]:
            if a.arrays & b.arrays:
                assert b.index in fan_graph.succs[a.index]


def test_sections_are_concretized_under_the_bindings():
    graph = graph_for(FAN_SOURCE, bindings={"n": 8})
    sections = [s for g in graph.groups.values() for s in g.sections]
    assert "x1(1:8)" in sections
    assert not any("n" in s for s in sections)


def test_windows_report_slack(fan_graph):
    windows = fan_graph.windows()
    assert len(windows) == len(fan_graph.groups)
    # the write-backs feeding the end consumers have computation
    # between their EAGER and LAZY points to hide behind
    assert any(w["slack_work"] > 0 for w in windows)
    for window in windows:
        if window["lazy_index"] is not None:
            assert window["lazy_index"] > window["eager_index"]


def test_gather_recv_is_shared_across_groups():
    graph = graph_for(GATHER_SOURCE)
    read_recvs = [t for t in graph.comm_tasks()
                  if t.kind == "recv" and t.comm_kind == "read"]
    assert len(read_recvs) == 1
    assert len(read_recvs[0].groups) == 6


def test_branch_policy_changes_the_trace():
    result = generate_communication(FIG11_SOURCE)
    taken = build_task_graph(result.annotated_program, None, {"n": 8},
                             ConditionPolicy("always"))
    skipped = build_task_graph(result.annotated_program, None, {"n": 8},
                               ConditionPolicy("never"))
    assert len(taken.tasks) != len(skipped.tasks)


def test_timing_provenance_survives_into_tasks(fan_graph):
    timings = {t.timing for t in fan_graph.comm_tasks()}
    assert "EAGER" in timings or "LAZY" in timings
