"""Differential execution: the naive schedule reproduces the plain
simulation bit for bit, and every overlap schedule lands in the same
final machine state — clean and under seeded faults."""

import pytest

from repro.commgen import generate_communication
from repro.machine import ConditionPolicy, FaultPlan, MachineModel, Simulator
from repro.machine.model import RetryPolicy
from repro.sched import (
    ScheduleRunner,
    build_task_graph,
    compare_schedules,
    naive_schedule,
)
from repro.sched.scenarios import SCENARIOS, run_scenario


def annotated(source):
    return generate_communication(source).annotated_program


@pytest.mark.parametrize("scenario", SCENARIOS, ids=lambda s: s.name)
def test_naive_schedule_reproduces_the_simulator_exactly(scenario):
    program = annotated(scenario.source)
    machine = scenario.machine_model()
    graph = build_task_graph(program, machine, dict(scenario.bindings),
                             ConditionPolicy(scenario.branch, scenario.seed))
    simulator = Simulator(program, machine, dict(scenario.bindings),
                          ConditionPolicy(scenario.branch, scenario.seed))
    expected = simulator.run()
    runner = ScheduleRunner(naive_schedule(graph), machine)
    actual = runner.run()
    assert actual == expected  # full metrics, transfer log included
    assert runner.machine_state() == simulator.machine_state()
    assert runner.state_digest() == simulator.state_digest()


def test_naive_schedule_reproduces_faulty_runs_exactly():
    scenario = next(s for s in SCENARIOS if s.name == "fan")
    program = annotated(scenario.source)
    machine = scenario.machine_model()
    faults = FaultPlan(drop_probability=0.5, seed=5)
    retry = RetryPolicy(max_retries=16, timeout=150.0)
    graph = build_task_graph(program, machine, dict(scenario.bindings),
                             ConditionPolicy("never"))
    simulator = Simulator(program, machine, dict(scenario.bindings),
                          ConditionPolicy("never"), faults, retry)
    expected = simulator.run()
    assert expected.retries > 0  # the fault plan actually bit
    runner = ScheduleRunner(naive_schedule(graph), machine, faults, retry)
    assert runner.run() == expected
    assert runner.machine_state() == simulator.machine_state()


@pytest.mark.parametrize("scenario", SCENARIOS, ids=lambda s: s.name)
def test_overlap_state_identical_under_every_fault_variant(scenario):
    for label, comparison in run_scenario(scenario):
        assert comparison.states_match, (scenario.name, label)
        assert comparison.certified, (scenario.name, label)
        assert (comparison.overlap.total_time
                <= comparison.naive.total_time), (scenario.name, label)


def test_overlap_differential_on_generator_programs():
    from repro.lang.printer import format_program
    from repro.testing.generator import ArrayProgramGenerator

    checked = 0
    for seed in range(6):
        source = format_program(
            ArrayProgramGenerator(seed=seed).program(size=12))
        try:
            program = annotated(source)
        except Exception:
            continue  # not every generated program places communication
        comparison = compare_schedules(program, MachineModel(latency=150.0),
                                       {"n": 6}, branch="always")
        assert comparison.states_match, seed
        assert comparison.certified, seed
        checked += 1
    assert checked >= 3


def test_comparison_summary_mentions_the_verdict():
    scenario = SCENARIOS[0]
    comparison = compare_schedules(annotated(scenario.source),
                                   scenario.machine_model(),
                                   dict(scenario.bindings))
    text = comparison.summary()
    assert "state=identical" in text
    assert "certified=ok" in text
    assert "naive" in text
