"""Schedule transformations: hoist/sink/coalesce/split, legality,
and the C1/C3 re-certification (including sabotage)."""

import pytest

from repro.commgen import generate_communication
from repro.machine import ConditionPolicy, MachineModel
from repro.sched import (
    build_task_graph,
    certify_schedule,
    naive_schedule,
    overlap_schedule,
)
from repro.sched.overlap import Schedule
from repro.sched.scenarios import BULK_SOURCE, FAN_SOURCE, GATHER_SOURCE
from repro.sched.taskgraph import copy_task


def graph_for(source, bindings=None):
    result = generate_communication(source)
    return build_task_graph(result.annotated_program, None,
                            bindings or {"n": 8}, ConditionPolicy("never"))


def positions(schedule):
    """Task index -> slot, for original (unsplit, unmerged) tasks."""
    return {task.index: slot for slot, task in enumerate(schedule.tasks)}


def test_naive_schedule_is_the_trace_order(subtests=None):
    graph = graph_for(FAN_SOURCE)
    naive = naive_schedule(graph)
    assert [t.index for t in naive.tasks] == [t.index for t in graph.tasks]


def test_overlap_keeps_the_compute_spine():
    graph = graph_for(FAN_SOURCE)
    schedule = overlap_schedule(graph, MachineModel(latency=400.0))
    spine = [t.index for t in schedule.tasks if t.kind == "compute"]
    assert tuple(spine) == graph.compute_spine


def test_overlap_is_topologically_valid():
    graph = graph_for(FAN_SOURCE)
    schedule = overlap_schedule(graph, MachineModel(latency=400.0),
                                coalesce=False, split=False)
    slot = positions(schedule)
    for task in graph.tasks:
        for pred in graph.preds[task.index]:
            assert slot[pred] < slot[task.index], (pred, task.index)


def test_receives_sink_toward_their_consumers():
    graph = graph_for(FAN_SOURCE)
    schedule = overlap_schedule(graph, MachineModel(latency=400.0),
                                coalesce=False, split=False)
    assert schedule.stats["sunk"] > 0
    naive_slot = positions(naive_schedule(graph))
    slot = positions(schedule)

    def computes_before(slots, task_index, tasks):
        return sum(1 for t in tasks[:slots[task_index]]
                   if t.kind == "compute")

    sunk = 0
    for task in graph.comm_tasks():
        if task.kind != "recv":
            continue
        before = sum(1 for t in naive_schedule(graph).tasks[:naive_slot[task.index]]
                     if t.kind == "compute")
        after = sum(1 for t in schedule.tasks[:slot[task.index]]
                    if t.kind == "compute")
        assert after >= before
        sunk += after > before
    assert sunk == schedule.stats["sunk"]


def test_split_cuts_bulk_messages_into_chunks():
    graph = graph_for(BULK_SOURCE, bindings={"n": 1024})
    machine = MachineModel(latency=400.0, time_per_element=4.0)
    schedule = overlap_schedule(graph, machine, coalesce=False)
    assert schedule.stats["split_chunks"] >= 2
    bulk = next(g for g in graph.groups.values() if g.volume >= 1024)
    chunks = [t for t in schedule.tasks
              if t.kind == "send" and bulk.id in t.groups]
    assert len(chunks) == schedule.stats["split_chunks"]
    # the chunks partition the original range exactly
    covered = []
    for chunk in chunks:
        for arg in chunk.args:
            lo, hi = arg.split("(")[1].rstrip(")").split(":")
            covered.extend(range(int(lo), int(hi) + 1))
    assert sorted(covered) == list(range(1, 1025))
    # and the receive was rewritten to wait on every chunk
    recv = next(t for t in schedule.tasks
                if t.kind == "recv" and bulk.id in t.groups)
    assert len(recv.args) >= schedule.stats["split_chunks"]
    assert certify_schedule(schedule).ok()


def test_coalesce_merges_sends_sharing_a_receive():
    graph = graph_for(GATHER_SOURCE, bindings={"n": 64})
    machine = MachineModel(latency=200.0, message_overhead=120.0)
    schedule = overlap_schedule(graph, machine, split=False)
    assert schedule.stats["coalesced"] == 5
    merged = [t for t in schedule.tasks
              if t.kind == "send" and len(t.groups) == 6]
    assert len(merged) == 1
    assert len(merged[0].args) == 6
    assert certify_schedule(schedule).ok()


def test_coalesce_respects_the_volume_penalty():
    # tiny overhead: merging k messages saves (k-1)*overhead but
    # serializes their volumes on one wire transfer — not worth it
    graph = graph_for(GATHER_SOURCE, bindings={"n": 64})
    machine = MachineModel(latency=200.0, message_overhead=0.5,
                           time_per_element=1.0)
    schedule = overlap_schedule(graph, machine, split=False)
    assert schedule.stats["coalesced"] == 0


def test_certify_accepts_both_standard_schedules():
    graph = graph_for(FAN_SOURCE)
    assert certify_schedule(naive_schedule(graph)).ok()
    assert certify_schedule(
        overlap_schedule(graph, MachineModel(latency=400.0))).ok()


# -- sabotage: the checker must catch hand-broken schedules -----------------

def broken(graph, tasks):
    return Schedule(name="sabotaged", tasks=tasks, graph=graph)


@pytest.fixture(scope="module")
def fan_graph():
    return graph_for(FAN_SOURCE)


def test_certify_flags_a_dropped_send(fan_graph):
    tasks = [t for t in fan_graph.tasks
             if not (t.kind == "send" and t.comm_kind == "write")]
    report = certify_schedule(broken(fan_graph, tasks))
    assert report.by_criterion("C1")


def test_certify_flags_a_reordered_spine(fan_graph):
    tasks = list(fan_graph.tasks)
    computes = [i for i, t in enumerate(tasks) if t.kind == "compute"]
    a, b = computes[0], computes[-1]
    tasks[a], tasks[b] = tasks[b], tasks[a]
    report = certify_schedule(broken(fan_graph, tasks))
    assert any(v.element == "<spine>" for v in report.by_criterion("C3"))


def test_certify_flags_a_receive_after_its_consumer(fan_graph):
    tasks = list(fan_graph.tasks)
    recv_slot = next(i for i, t in enumerate(tasks)
                     if t.kind == "recv" and t.consumers)
    tasks.append(tasks.pop(recv_slot))
    report = certify_schedule(broken(fan_graph, tasks))
    assert report.by_criterion("C3")


def test_certify_flags_a_hoist_past_the_eager_pin(fan_graph):
    tasks = list(fan_graph.tasks)
    send_slot = next(i for i, t in enumerate(tasks)
                     if t.kind == "send" and t.pin_after is not None)
    tasks.insert(0, tasks.pop(send_slot))
    report = certify_schedule(broken(fan_graph, tasks))
    assert report.by_criterion("C3")


def test_certify_flags_redundant_extra_traffic(fan_graph):
    tasks = list(fan_graph.tasks)
    send = next(t for t in tasks if t.kind == "send")
    tasks.append(copy_task(send))
    report = certify_schedule(broken(fan_graph, tasks))
    assert report.by_criterion("O1") or report.by_criterion("C1")
