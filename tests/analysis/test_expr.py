"""Symbolic expression tests."""

import pytest

from repro.analysis.expr import NonAffineError, SymExpr, SymRange
from repro.lang.parser import parse
from repro.util.errors import AnalysisError


def expr_of(text):
    return SymExpr.from_ast(parse(f"x = {text}").body[0].value)


def test_constants_and_vars():
    assert expr_of("5").const == 5
    assert expr_of("5").is_constant
    e = expr_of("k")
    assert e.coefficient("k") == 1 and e.const == 0


def test_affine_combination():
    e = expr_of("2 * k + 10 - j")
    assert e.coefficient("k") == 2
    assert e.coefficient("j") == -1
    assert e.const == 10


def test_multiplication_by_constant_either_side():
    assert expr_of("k * 3") == expr_of("3 * k")


def test_nonaffine_rejected():
    with pytest.raises(NonAffineError):
        expr_of("k * j")
    with pytest.raises(NonAffineError):
        expr_of("k / 2")


def test_cancellation():
    e = expr_of("k - k + 1")
    assert e.is_constant and e.const == 1


def test_substitute():
    e = expr_of("2 * k + 1")
    result = e.substitute("k", expr_of("j + 3"))
    assert result == expr_of("2 * j + 7")


def test_substitute_range_positive_coefficient():
    e = expr_of("k + 10")
    rng = e.substitute_range("k", SymExpr.number(1), SymExpr.var("n"))
    assert rng.lo == expr_of("11")
    assert rng.hi == expr_of("n + 10")


def test_substitute_range_negative_coefficient_swaps_bounds():
    e = expr_of("10 - k")
    rng = e.substitute_range("k", SymExpr.number(1), SymExpr.var("n"))
    assert rng.lo == expr_of("10 - n")
    assert rng.hi == expr_of("9")


def test_substitute_range_absent_var_is_point():
    e = expr_of("j + 1")
    rng = e.substitute_range("k", SymExpr.number(1), SymExpr.var("n"))
    assert rng.is_point


def test_evaluate():
    assert expr_of("2 * k + 1").evaluate({"k": 5}) == 11
    with pytest.raises(AnalysisError):
        expr_of("k").evaluate({})


def test_str_rendering():
    assert str(expr_of("k + 10")) == "k + 10"
    assert str(expr_of("0")) == "0"
    assert str(expr_of("2 * k")) == "2*k"


def test_range_size():
    rng = SymRange(expr_of("1"), expr_of("n"))
    assert rng.size({"n": 7}) == 7
    assert rng.size({"n": 0}) == 0  # empty on zero-trip


def test_equality_and_hash():
    assert expr_of("k + 1") == expr_of("1 + k")
    assert hash(expr_of("k + 1")) == hash(expr_of("1 + k"))
    assert SymRange(expr_of("1"), expr_of("n")) == SymRange(expr_of("1"), expr_of("n"))
