"""Reference collection and ownership tests."""

from repro.analysis.ownership import OwnershipModel
from repro.analysis.references import collect_accesses
from repro.lang.symbols import SymbolTable
from repro.testing.programs import FIG11_SOURCE, analyze_source


def test_collects_reads_and_defs(fig11):
    accesses, _ = collect_accesses(fig11)
    by_array = {}
    for access in accesses:
        by_array.setdefault(access.array, []).append(access)
    assert {a.is_def for a in by_array["y"]} == {True, False}
    assert all(not a.is_def for a in by_array["x"])
    # subscript arrays are recorded as reads
    assert "a" in by_array and "b" in by_array


def test_access_nodes_match_statements(fig11):
    accesses, _ = collect_accesses(fig11)
    def_access = next(a for a in accesses if a.is_def)
    assert def_access.node is fig11.node(3)
    assert def_access.descriptor.format() == "y(a(1:n))"


def test_descriptors_of_fig11(fig11):
    accesses, _ = collect_accesses(fig11)
    formatted = {a.descriptor.format() for a in accesses if a.array in "xy"}
    assert "x(11:n + 10)" in formatted
    assert "y(a(1:n))" in formatted
    assert "y(b(1:n))" in formatted


def test_loop_context_tracks_nesting():
    analyzed = analyze_source(
        "real x(100)\n"
        "do i = 1, n\n"
        "do j = 1, m\n"
        "u = x(i + j)\n"
        "enddo\n"
        "enddo"
    )
    accesses, _ = collect_accesses(analyzed)
    access = next(a for a in accesses if a.array == "x")
    assert access.context.variables() == ["i", "j"]
    # both loop variables substituted
    assert access.descriptor.format() == "x(2:m + n)"


def test_ownership_replicated_never_communicates(fig11):
    accesses, _ = collect_accesses(fig11)
    symbols = SymbolTable.from_program(fig11.program)
    ownership = OwnershipModel(symbols)
    for access in accesses:
        if access.array in ("a", "b"):  # replicated index arrays
            assert not ownership.read_needs_communication(access)
            assert not ownership.def_needs_writeback(access)


def test_ownership_owner_computes_disables_writeback(fig11):
    accesses, _ = collect_accesses(fig11)
    symbols = SymbolTable.from_program(fig11.program)
    strict = OwnershipModel(symbols, owner_computes=True)
    relaxed = OwnershipModel(symbols, owner_computes=False)
    def_access = next(a for a in accesses if a.is_def)
    assert relaxed.def_needs_writeback(def_access)
    assert relaxed.def_gives_locally(def_access)
    assert not strict.def_needs_writeback(def_access)
    assert not strict.def_gives_locally(def_access)


def test_do_bounds_are_scanned():
    analyzed = analyze_source(
        "real x(100)\ndistribute x(block)\n"
        "do i = 1, x(3)\nu = 1\nenddo"
    )
    accesses, _ = collect_accesses(analyzed)
    bound_access = next(a for a in accesses if a.array == "x")
    assert not bound_access.is_def
    assert bound_access.node.name.startswith("do i")
