"""Multi-dimensional section tests."""

from repro.analysis.sections import MultiSection, section_conflicts
from repro.analysis.value_numbering import LoopContext, ValueNumbering
from repro.commgen import generate_communication
from repro.lang import ast
from repro.lang.parser import parse
from repro.lang.symbols import SymbolTable
from repro.machine import MachineModel, simulate

DECLS = "real g(10000)\ninteger a(100)\n"


def descriptor(text, loops=()):
    symbols = SymbolTable.from_program(parse(DECLS))
    numbering = ValueNumbering(symbols)
    context = LoopContext.from_loops(
        [(var, ast.Num(1), ast.Var(hi)) for var, hi in loops])
    ref = parse(f"u = {text}").body[0].value
    return numbering.descriptor(ref, context)


def test_two_dim_normalization():
    d = descriptor("g(i, j)", [("i", "n"), ("j", "m")])
    assert isinstance(d, MultiSection)
    assert d.format() == "g(1:n, 1:m)"


def test_mixed_point_and_range_dimensions():
    d = descriptor("g(k, 5)", [("k", "n")])
    assert d.format() == "g(1:n, 5)"


def test_value_number_identity_across_loops_2d():
    d1 = descriptor("g(i, j)", [("i", "n"), ("j", "m")])
    d2 = descriptor("g(p, q)", [("p", "n"), ("q", "m")])
    assert d1 == d2


def test_per_dimension_disjointness():
    row1 = descriptor("g(1, j)", [("j", "m")])
    row2 = descriptor("g(2, j)", [("j", "m")])
    assert not section_conflicts(row1, row2)  # disjoint first dimension
    overlapping = descriptor("g(i, j)", [("i", "n"), ("j", "m")])
    assert section_conflicts(row1, overlapping)


def test_shifted_columns_conflict():
    d1 = descriptor("g(i, j)", [("i", "n"), ("j", "m")])
    d2 = descriptor("g(i + 1, j)", [("i", "n"), ("j", "m")])
    assert section_conflicts(d1, d2)  # 2:n+1 overlaps 1:n


def test_local_rendering_2d():
    d = descriptor("g(i, j)", [("i", "n"), ("j", "m")])
    assert d.format(local_vars=frozenset({"i", "j"})) == "g(i, j)"
    # only one loop local: stays vectorized
    assert d.format(local_vars=frozenset({"j"})) == "g(1:n, 1:m)"


def test_size_is_product_of_dimensions():
    d = descriptor("g(i, j)", [("i", "n"), ("j", "m")])
    assert d.size({"n": 8, "m": 4}) == 32
    point_dim = descriptor("g(k, 5)", [("k", "n")])
    assert point_dim.size({"n": 8}) == 8


def test_indirect_multi_dim_falls_back():
    d = descriptor("g(a(i), j)", [("i", "n"), ("j", "m")])
    assert d.format() == "g(1:10000)"  # conservative whole array


def test_end_to_end_2d_stencil():
    source = """
real g(10000)
real h(10000)
distribute g(block)
    do i = 1, n
        do j = 1, m
            h(i, j) = g(i, j) + g(i + 1, j)
        enddo
    enddo
"""
    result = generate_communication(source)
    text = result.annotated_source()
    assert "READ_Send{g(1:n, 1:m), g(2:n + 1, 1:m)}" in text
    metrics = simulate(result.annotated_program, MachineModel(),
                       {"n": 8, "m": 4})
    assert metrics.messages == 1
    assert metrics.volume == 32 + 32
