"""Section descriptor and value numbering tests."""

from repro.analysis.sections import (
    AffineSection,
    IndirectSection,
    PointSection,
    section_conflicts,
)
from repro.analysis.value_numbering import LoopContext, ValueNumbering
from repro.analysis.expr import SymExpr, SymRange
from repro.lang.parser import parse
from repro.lang.symbols import SymbolTable
from repro.lang import ast


DECLS = "real x(100)\nreal y(100)\ninteger a(100)\ninteger b(100)\n"


def vn_and_context(loops=()):
    symbols = SymbolTable.from_program(parse(DECLS))
    numbering = ValueNumbering(symbols)
    context = LoopContext.from_loops(
        [(var, ast.Num(lo), ast.Var(hi)) for var, lo, hi in loops])
    return numbering, context


def ref(text):
    return parse(f"u = {text}").body[0].value


def test_point_section_for_invariant_subscript():
    numbering, context = vn_and_context()
    descriptor = numbering.descriptor(ref("x(5)"), context)
    assert isinstance(descriptor, PointSection)
    assert descriptor.format() == "x(5)"


def test_affine_section_from_loop_normalization():
    numbering, context = vn_and_context([("k", 1, "n")])
    descriptor = numbering.descriptor(ref("x(k + 10)"), context)
    assert isinstance(descriptor, AffineSection)
    assert descriptor.format() == "x(11:n + 10)"


def test_indirect_section():
    numbering, context = vn_and_context([("k", 1, "n")])
    descriptor = numbering.descriptor(ref("x(a(k))"), context)
    assert isinstance(descriptor, IndirectSection)
    assert descriptor.format() == "x(a(1:n))"


def test_value_number_identity_across_loop_variables():
    # x(a(k)) in the k loop and x(a(l)) in the l loop: same value number
    # (Figure 2's merge).
    numbering, k_context = vn_and_context([("k", 1, "n")])
    _, l_context = vn_and_context([("l", 1, "n")])
    dk = numbering.descriptor(ref("x(a(k))"), k_context)
    dl = numbering.descriptor(ref("x(a(l))"), l_context)
    assert dk == dl
    assert dk is numbering.descriptor(ref("x(a(l))"), l_context)  # interned


def test_different_ranges_get_different_value_numbers():
    numbering, c1 = vn_and_context([("k", 1, "n")])
    _, c2 = vn_and_context([("k", 1, "m")])
    assert numbering.descriptor(ref("x(k)"), c1) != numbering.descriptor(ref("x(k)"), c2)


def test_nested_loop_uses_innermost_variable():
    numbering, context = vn_and_context([("i", 1, "n"), ("j", 1, "m")])
    descriptor = numbering.descriptor(ref("x(j)"), context)
    assert descriptor.format() == "x(1:m)"


def test_nonaffine_falls_back_to_whole_array():
    numbering, context = vn_and_context([("k", 1, "n")])
    descriptor = numbering.descriptor(ref("x(k * k)"), context)
    assert descriptor.format() == "x(1:100)"


def test_partial_rendering_for_early_exit():
    numbering, context = vn_and_context([("i", 1, "n")])
    descriptor = numbering.descriptor(ref("y(a(i))"), context)
    assert descriptor.format() == "y(a(1:n))"
    assert descriptor.format(partial_vars=frozenset({"i"})) == "y(a(1:i))"


def test_conflicts_same_array_conservative():
    numbering, context = vn_and_context([("k", 1, "n")])
    d1 = numbering.descriptor(ref("x(a(k))"), context)
    d2 = numbering.descriptor(ref("x(k + 10)"), context)
    assert section_conflicts(d1, d2)


def test_no_conflict_across_arrays():
    numbering, context = vn_and_context()
    d1 = numbering.descriptor(ref("x(5)"), context)
    d2 = numbering.descriptor(ref("y(5)"), context)
    assert not section_conflicts(d1, d2)


def test_disjoint_constant_points_do_not_conflict():
    numbering, context = vn_and_context()
    d1 = numbering.descriptor(ref("x(5)"), context)
    d2 = numbering.descriptor(ref("x(6)"), context)
    assert not section_conflicts(d1, d2)
    assert section_conflicts(d1, d1)


def test_disjoint_constant_ranges_do_not_conflict():
    a = AffineSection("x", SymRange(SymExpr.number(1), SymExpr.number(5)))
    b = AffineSection("x", SymRange(SymExpr.number(6), SymExpr.number(9)))
    c = AffineSection("x", SymRange(SymExpr.number(5), SymExpr.number(7)))
    assert not section_conflicts(a, b)
    assert section_conflicts(a, c)


def test_sizes_under_bindings():
    numbering, context = vn_and_context([("k", 1, "n")])
    affine = numbering.descriptor(ref("x(k + 10)"), context)
    indirect = numbering.descriptor(ref("x(a(k))"), context)
    point = numbering.descriptor(ref("x(5)"), context)
    env = {"n": 12}
    assert affine.size(env) == 12
    assert indirect.size(env) == 12
    assert point.size(env) == 1
