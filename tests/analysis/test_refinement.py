"""Symbolic disjointness refinement tests (§6 dependence extension)."""

from repro.analysis.expr import SymExpr, SymRange
from repro.analysis.sections import AffineSection, PointSection, section_conflicts
from repro.commgen import generate_communication


def affine(array, lo_text, hi_text):
    def parse_expr(text):
        from repro.lang.parser import parse
        return SymExpr.from_ast(parse(f"q = {text}").body[0].value)

    return AffineSection(array, SymRange(parse_expr(lo_text), parse_expr(hi_text)))


def test_symbolic_halves_are_disjoint():
    first = affine("x", "1", "n")
    second = affine("x", "n + 1", "2 * n")
    assert not section_conflicts(first, second)
    assert not section_conflicts(second, first)


def test_overlapping_symbolic_ranges_conflict():
    first = affine("x", "1", "n")
    second = affine("x", "n", "2 * n")  # shares x(n)
    assert section_conflicts(first, second)


def test_unknown_relation_is_conservative():
    first = affine("x", "1", "n")
    second = affine("x", "m", "2 * m")
    assert section_conflicts(first, second)


def test_refine_false_is_fully_conservative():
    first = affine("x", "1", "n")
    second = affine("x", "n + 1", "2 * n")
    assert section_conflicts(first, second, refine=False)


def test_point_vs_symbolic_range():
    point = PointSection("x", SymExpr.number(0))
    rng = affine("x", "1", "n")
    assert not section_conflicts(point, rng)


def test_refinement_avoids_false_steal_end_to_end():
    """Defining the lower half must not invalidate a previously read,
    provably disjoint upper half."""
    source = """
real x(200)
distribute x(block)
    do k = 1, n
        u = x(k + n)
    enddo
    do i = 1, n
        x(i) = 1
    enddo
    do l = 1, n
        w = x(l + n)
    enddo
"""
    refined = generate_communication(source).annotated_source()
    conservative = generate_communication(
        source, refine_sections=False).annotated_source()
    # refined: one READ pair suffices (no steal in between)
    assert refined.count("READ_Send{x(n + 1:2*n)}") == 1
    # conservative: the def of x(1:n) steals and forces a re-read
    assert conservative.count("READ_Send{x(n + 1:2*n)}") == 2
