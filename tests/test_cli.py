"""Command-line interface tests."""

import io

import pytest

from repro.cli import main
from repro.testing.programs import FIG11_SOURCE


@pytest.fixture
def fig11_file(tmp_path):
    path = tmp_path / "fig11.f"
    path.write_text(FIG11_SOURCE)
    return str(path)


def run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


def test_annotate(fig11_file):
    code, output = run(["annotate", fig11_file])
    assert code == 0
    assert "READ_Send{x(11:n + 10)}" in output
    assert "read and" in output  # the summary comment


def test_annotate_atomic(fig11_file):
    code, output = run(["annotate", fig11_file, "--atomic"])
    assert code == 0
    assert "READ{" in output and "READ_Send" not in output


def test_annotate_owner_computes(fig11_file):
    code, output = run(["annotate", fig11_file, "--owner-computes"])
    assert code == 0
    assert "WRITE" not in output


def test_graph_listing(fig11_file):
    code, output = run(["graph", fig11_file])
    assert code == 0
    assert "header" in output
    assert "(4, 10) JUMP" in output


def test_graph_dot(fig11_file):
    code, output = run(["graph", fig11_file, "--dot"])
    assert code == 0
    assert output.startswith("digraph")


def test_simulate_gnt_vs_naive(fig11_file):
    code, gnt = run(["simulate", fig11_file, "--n", "16", "--branch", "never"])
    assert code == 0
    code, naive = run(["simulate", fig11_file, "--n", "16", "--branch",
                       "never", "--naive"])
    assert code == 0
    gnt_messages = int(gnt.split("messages=")[1].split()[0])
    naive_messages = int(naive.split("messages=")[1].split()[0])
    assert gnt_messages < naive_messages


def test_pre_report(tmp_path):
    path = tmp_path / "cse.f"
    path.write_text("u = a + b\nv = a + b\n")
    code, output = run(["pre", str(path)])
    assert code == 0
    assert "a + b:" in output
    assert "GNT evaluates at" in output


def test_pre_no_expressions(tmp_path):
    path = tmp_path / "empty.f"
    path.write_text("u = 1\n")
    code, output = run(["pre", str(path)])
    assert code == 0
    assert "no candidate expressions" in output


def test_missing_file_error():
    code, _ = run(["annotate", "/nonexistent/path.f"])
    assert code == 1


def test_parse_error_reported(tmp_path):
    path = tmp_path / "bad.f"
    path.write_text("do i = 1, n\n")  # missing enddo
    code, _ = run(["annotate", str(path)])
    assert code == 1


def test_irreducible_program_reported(tmp_path):
    path = tmp_path / "irr.f"
    path.write_text("if t goto 5\ndo i = 1, n\n5 a = 1\nenddo\n")
    code, _ = run(["graph", str(path)])
    assert code == 1


def test_annotate_no_hoist(fig11_file):
    code, output = run(["annotate", fig11_file, "--no-hoist"])
    assert code == 0
    # nothing is hoisted above the loops: the sends live inside them
    top = output.split("do i")[0]
    assert "READ_Send" not in top


def test_annotate_conservative_jumps(fig11_file):
    code, output = run(["annotate", fig11_file, "--conservative-jumps"])
    assert code == 0
    # the conservative §5.3 mode keeps per-iteration write regions
    assert output.count("WRITE_Send") >= 1


def test_stdin_input(monkeypatch):
    import sys
    monkeypatch.setattr(sys, "stdin", io.StringIO("u = 1\n"))
    code, output = run(["graph", "-"])
    assert code == 0
    assert "u = 1" in output
