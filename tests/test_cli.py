"""Command-line interface tests."""

import io

import pytest

from repro.cli import main
from repro.testing.programs import FIG11_SOURCE


@pytest.fixture
def fig11_file(tmp_path):
    path = tmp_path / "fig11.f"
    path.write_text(FIG11_SOURCE)
    return str(path)


def run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


def test_annotate(fig11_file):
    code, output = run(["annotate", fig11_file])
    assert code == 0
    assert "READ_Send{x(11:n + 10)}" in output
    assert "read and" in output  # the summary comment


def test_annotate_atomic(fig11_file):
    code, output = run(["annotate", fig11_file, "--atomic"])
    assert code == 0
    assert "READ{" in output and "READ_Send" not in output


def test_annotate_owner_computes(fig11_file):
    code, output = run(["annotate", fig11_file, "--owner-computes"])
    assert code == 0
    assert "WRITE" not in output


def test_graph_listing(fig11_file):
    code, output = run(["graph", fig11_file])
    assert code == 0
    assert "header" in output
    assert "(4, 10) JUMP" in output


def test_graph_dot(fig11_file):
    code, output = run(["graph", fig11_file, "--dot"])
    assert code == 0
    assert output.startswith("digraph")


def test_simulate_gnt_vs_naive(fig11_file):
    code, gnt = run(["simulate", fig11_file, "--n", "16", "--branch", "never"])
    assert code == 0
    code, naive = run(["simulate", fig11_file, "--n", "16", "--branch",
                       "never", "--naive"])
    assert code == 0
    gnt_messages = int(gnt.split("messages=")[1].split()[0])
    naive_messages = int(naive.split("messages=")[1].split()[0])
    assert gnt_messages < naive_messages


def test_simulate_overlap_schedule(fig11_file):
    code, output = run(["simulate", fig11_file, "--n", "16", "--branch",
                        "never", "--schedule", "overlap"])
    assert code == 0
    assert "naive:" in output
    assert "overlap:" in output
    assert "state=identical" in output
    assert "certified=ok" in output


def test_simulate_overlap_schedule_with_faults(fig11_file):
    code, output = run(["simulate", fig11_file, "--n", "16", "--branch",
                        "never", "--schedule", "overlap",
                        "--faults", "drop=0.2,seed=7", "--retries", "8"])
    assert code == 0
    assert "state=identical" in output


def test_pre_report(tmp_path):
    path = tmp_path / "cse.f"
    path.write_text("u = a + b\nv = a + b\n")
    code, output = run(["pre", str(path)])
    assert code == 0
    assert "a + b:" in output
    assert "GNT evaluates at" in output


def test_pre_no_expressions(tmp_path):
    path = tmp_path / "empty.f"
    path.write_text("u = 1\n")
    code, output = run(["pre", str(path)])
    assert code == 0
    assert "no candidate expressions" in output


def test_missing_file_error():
    code, _ = run(["annotate", "/nonexistent/path.f"])
    assert code == 2


def test_parse_error_reported(tmp_path):
    path = tmp_path / "bad.f"
    path.write_text("do i = 1, n\n")  # missing enddo
    code, _ = run(["annotate", str(path)])
    assert code == 2


def test_irreducible_program_reported(tmp_path):
    path = tmp_path / "irr.f"
    path.write_text("if t goto 5\ndo i = 1, n\n5 a = 1\nenddo\n")
    code, _ = run(["graph", str(path)])
    assert code == 2


# -- error hygiene: every subcommand exits 2 with one clean line ------------

def assert_clean_failure(capsys, argv):
    code, _ = run(argv)
    err = capsys.readouterr().err
    assert code == 2
    assert err.startswith("error: ")
    assert err.count("\n") == 1  # exactly one line
    assert "Traceback" not in err


@pytest.fixture
def bad_file(tmp_path):
    path = tmp_path / "bad.f"
    path.write_text("do i = 1, n\n")  # missing enddo -> ParseError
    return str(path)


def test_annotate_error_hygiene(capsys, bad_file):
    assert_clean_failure(capsys, ["annotate", bad_file])


def test_graph_error_hygiene(capsys, bad_file):
    assert_clean_failure(capsys, ["graph", bad_file])


def test_simulate_error_hygiene(capsys, bad_file):
    assert_clean_failure(capsys, ["simulate", bad_file])


def test_pre_error_hygiene(capsys, bad_file):
    assert_clean_failure(capsys, ["pre", bad_file])


def test_explain_error_hygiene(capsys, bad_file):
    assert_clean_failure(capsys, ["explain", bad_file])


def test_bad_fault_spec_error_hygiene(capsys, fig11_file):
    assert_clean_failure(
        capsys, ["simulate", fig11_file, "--faults", "unknown=1"])


def test_bad_retry_policy_error_hygiene(capsys, fig11_file):
    assert_clean_failure(
        capsys, ["simulate", fig11_file, "--timeout", "-5"])
    assert_clean_failure(
        capsys, ["simulate", fig11_file, "--retries", "-1"])


# -- hardened pipeline and fault injection ----------------------------------

def test_annotate_hardened(fig11_file):
    code, output = run(["annotate", fig11_file, "--hardened"])
    assert code == 0
    assert "READ_Send" in output
    assert "rung=balanced" in output


def test_annotate_hardened_irreducible(tmp_path):
    path = tmp_path / "irr.f"
    path.write_text("if t goto 5\ndo i = 1, n\n5 a = 1\nenddo\n")
    code, output = run(["annotate", str(path), "--hardened"])
    assert code == 0  # degrades via node splitting instead of failing
    assert "irreducible" in output


def test_simulate_hardened_with_faults(fig11_file):
    code, output = run([
        "simulate", fig11_file, "--n", "16", "--branch", "never",
        "--hardened", "--faults", "drop=0.4,seed=3", "--retries", "8",
    ])
    assert code == 0
    assert "rung=balanced" in output
    retries = int(output.split("retries=")[1].split()[0])
    timeouts = int(output.split("timeouts=")[1].split()[0])
    assert retries > 0 and timeouts >= retries


def test_simulate_faults_deterministic(fig11_file):
    argv = ["simulate", fig11_file, "--n", "16", "--branch", "never",
            "--faults", "drop=0.3,dup=0.2,jitter=25,seed=9"]
    first = run(argv)
    second = run(argv)
    assert first == second


def test_simulate_retries_exhausted(capsys, fig11_file):
    # drop everything and forbid retries: a clean one-line timeout error
    assert_clean_failure(
        capsys, ["simulate", fig11_file, "--faults", "drop=1.0",
                 "--retries", "0"])


def test_annotate_no_hoist(fig11_file):
    code, output = run(["annotate", fig11_file, "--no-hoist"])
    assert code == 0
    # nothing is hoisted above the loops: the sends live inside them
    top = output.split("do i")[0]
    assert "READ_Send" not in top


def test_annotate_conservative_jumps(fig11_file):
    code, output = run(["annotate", fig11_file, "--conservative-jumps"])
    assert code == 0
    # the conservative §5.3 mode keeps per-iteration write regions
    assert output.count("WRITE_Send") >= 1


# -- observability: profile and --trace -------------------------------------

def test_profile_human_summary(fig11_file):
    code, output = run(["profile", fig11_file])
    assert code == 0
    assert "each-equation-once (all runs): yes" in output
    assert "solver run 1:" in output and "solver run 2:" in output


def test_profile_json(fig11_file):
    import json
    code, output = run(["profile", fig11_file, "--json"])
    assert code == 0
    payload = json.loads(output)
    assert payload["schema"] == "repro-trace/1"
    assert payload["summary"]["each_equation_once"] is True


def test_profile_hardened_simulate(fig11_file):
    code, output = run(["profile", fig11_file, "--hardened", "--simulate",
                        "--n", "8"])
    assert code == 0
    assert "hardened rung balanced: ok" in output
    assert "machine timeline:" in output


def test_profile_events_listing(fig11_file):
    code, output = run(["profile", fig11_file, "--events"])
    assert code == 0
    assert "solver   run" in output


def test_profile_error_hygiene(capsys, bad_file):
    assert_clean_failure(capsys, ["profile", bad_file])


def test_annotate_trace_flag(fig11_file):
    code, output = run(["annotate", fig11_file, "--trace"])
    assert code == 0
    assert "READ_Send" in output  # the normal output is still there
    assert "each-equation-once (all runs): yes" in output


def test_annotate_trace_json_file(tmp_path, fig11_file):
    import json
    trace_path = tmp_path / "trace.json"
    code, output = run(["annotate", fig11_file,
                        "--trace-json", str(trace_path)])
    assert code == 0
    assert "trace" not in output  # JSON goes to the file, not stdout
    payload = json.loads(trace_path.read_text())
    assert payload["schema"] == "repro-trace/1"
    assert payload["counters"]["equation_evaluations"]["1"] > 0


def test_simulate_trace_includes_machine_timeline(fig11_file):
    code, output = run(["simulate", fig11_file, "--n", "8", "--trace"])
    assert code == 0
    assert "machine timeline:" in output
    assert "send=" in output and "recv=" in output


def test_simulate_trace_json_stdout(fig11_file):
    import json
    code, output = run(["simulate", fig11_file, "--n", "8",
                        "--trace-json", "-"])
    assert code == 0
    json_start = output.index("{")
    payload = json.loads(output[json_start:])
    assert payload["summary"]["machine"]["timeline_counts"]["send"] > 0


def test_untraced_commands_leave_no_collector(fig11_file):
    from repro.obs import NULL, current_collector
    code, _ = run(["annotate", fig11_file])
    assert code == 0
    assert current_collector() is NULL


def test_stdin_input(monkeypatch):
    import sys
    monkeypatch.setattr(sys, "stdin", io.StringIO("u = 1\n"))
    code, output = run(["graph", "-"])
    assert code == 0
    assert "u = 1" in output


# -- batch compilation -------------------------------------------------------

@pytest.fixture
def corpus_dir(tmp_path):
    directory = tmp_path / "corpus"
    directory.mkdir()
    (directory / "fig11.f").write_text(FIG11_SOURCE)
    (directory / "tiny.f").write_text("real x(10)\ndistribute x(block)\n"
                                      "u = x(1)\n")
    (directory / "notes.txt").write_text("not a program")  # must be skipped
    return str(directory)


def test_batch_directory(corpus_dir):
    code, output = run(["batch", corpus_dir])
    assert code == 0
    assert "fig11.f: reads=" in output
    assert "tiny.f: reads=" in output
    assert "notes.txt" not in output
    assert "2/2 programs ok" in output


def test_batch_warm_cache_marks_hits(tmp_path, corpus_dir):
    cache_dir = str(tmp_path / "cache")
    code, cold = run(["batch", corpus_dir, "--cache", cache_dir])
    assert code == 0 and "[cached]" not in cold
    code, warm = run(["batch", corpus_dir, "--cache", cache_dir])
    assert code == 0
    assert warm.count("[cached]") == 2
    assert "cache hits=2" in warm


def test_batch_exit_code_on_per_program_failure(tmp_path, corpus_dir):
    import os
    path = os.path.join(corpus_dir, "bad.f")
    with open(path, "w") as handle:
        handle.write("do i = 1, n\n")  # missing enddo
    code, output = run(["batch", corpus_dir])
    assert code == 1  # per-program failure, not a CLI error
    assert "bad.f: error:" in output
    assert "2/3 programs ok" in output
    assert "fig11.f: reads=" in output  # the rest still compiled


def test_batch_quiet_prints_only_summary(corpus_dir):
    code, output = run(["batch", corpus_dir, "--quiet"])
    assert code == 0
    assert output.count("\n") == 1
    assert "programs ok" in output


def test_batch_json(corpus_dir):
    import json
    code, output = run(["batch", corpus_dir, "--json", "--no-cache"])
    assert code == 0
    payload = json.loads(output)
    assert payload["ok"] == 2
    assert payload["cache"] is None
    assert {p["name"].rsplit("/", 1)[-1] for p in payload["programs"]} == \
        {"fig11.f", "tiny.f"}


def test_batch_hardened_reports_rung(corpus_dir):
    code, output = run(["batch", corpus_dir, "--hardened"])
    assert code == 0
    assert output.count("[rung=balanced]") == 2


def test_batch_explicit_files(fig11_file):
    code, output = run(["batch", fig11_file, "--jobs", "2"])
    assert code == 0
    assert "1/1 programs ok" in output


def test_batch_empty_directory_error_hygiene(capsys, tmp_path):
    empty = tmp_path / "empty"
    empty.mkdir()
    assert_clean_failure(capsys, ["batch", str(empty)])


# -- incremental recompilation ------------------------------------------------

@pytest.fixture
def edited_pair(tmp_path):
    from repro.lang.printer import format_program
    from repro.testing.generator import ArrayProgramGenerator

    base = format_program(ArrayProgramGenerator(seed=7).program(size=30))
    edited = base.replace("+ 1", "+ 2", 1)
    assert edited != base
    base_path = tmp_path / "base.f"
    edited_path = tmp_path / "edited.f"
    base_path.write_text(base)
    edited_path.write_text(edited)
    return str(base_path), str(edited_path)


def test_delta_prints_annotation_and_summary(edited_pair):
    from repro.commgen.pipeline import generate_communication

    base_path, edited_path = edited_pair
    code, output = run(["delta", base_path, edited_path])
    assert code == 0
    with open(edited_path) as handle:
        direct = generate_communication(handle.read()).annotated_source()
    assert output.startswith(direct)
    trailer = output[len(direct):]
    assert trailer.startswith("! delta: ")
    assert "intervals changed" in trailer
    assert "whole-solve hits" in trailer


def test_delta_json(edited_pair):
    import json

    base_path, edited_path = edited_pair
    code, output = run(["delta", base_path, edited_path, "--json"])
    assert code == 0
    payload = json.loads(output)
    assert payload["ok"] is True
    incr = payload["incremental"]
    assert incr["whole_hits"] > 0
    assert 0 < incr["intervals_changed"] <= incr["intervals_total"]


def test_delta_with_persistent_cache(tmp_path, edited_pair):
    base_path, edited_path = edited_pair
    cache_dir = str(tmp_path / "cache")
    code, _ = run(["delta", base_path, edited_path, "--cache", cache_dir])
    assert code == 0
    code, output = run(["delta", base_path, edited_path,
                        "--cache", cache_dir])
    assert code == 0
    assert "! delta: " in output


def test_delta_base_parse_error_is_per_program(tmp_path, bad_file,
                                               fig11_file):
    code, output = run(["delta", bad_file, fig11_file])
    assert code == 1
    assert "error:" in output and "Traceback" not in output


def test_delta_error_hygiene(capsys, tmp_path, fig11_file):
    assert_clean_failure(
        capsys, ["delta", str(tmp_path / "missing.f"), fig11_file])


def test_annotate_solver_backend_is_bit_identical(fig11_file):
    default = run(["annotate", fig11_file])
    reference = run(["annotate", fig11_file, "--solver-backend", "reference"])
    planned = run(["annotate", fig11_file, "--solver-backend", "planned"])
    assert reference[0] == 0 and planned[0] == 0
    assert default[1] == reference[1] == planned[1]


def test_profile_solver_backend(fig11_file):
    code, output = run(["profile", fig11_file,
                        "--solver-backend", "reference"])
    assert code == 0 and "backend=reference" in output
    code, output = run(["profile", fig11_file])
    assert code == 0 and "backend=planned" in output


def test_batch_solver_backend(fig11_file):
    code, output = run(["batch", fig11_file,
                        "--solver-backend", "reference"])
    assert code == 0
    assert "1/1 programs ok" in output


def test_batch_jobs_zero_means_one_per_cpu(fig11_file):
    code, output = run(["batch", fig11_file, "--jobs", "0"])
    assert code == 0
    assert "1/1 programs ok" in output


# -- the compile service: repro serve / repro request -------------------------

@pytest.fixture(scope="module")
def service():
    from repro.service import ServiceConfig, ThreadedServer

    config = ServiceConfig(port=0, workers=2, pool="thread")
    with ThreadedServer(config) as server:
        yield server


def request_argv(service, *argv):
    return ["request", *argv, "--port", str(service.port)]


def test_request_ping(service):
    code, output = run(request_argv(service, "ping"))
    assert code == 0
    assert output.startswith("pong from 127.0.0.1:")
    assert "repro-service/1" in output


def test_request_compile_prints_annotated_source(service, fig11_file):
    code, output = run(request_argv(service, "compile", fig11_file))
    assert code == 0
    assert "READ_Send{x(11:n + 10)}" in output
    assert "read and" in output and "write placements" in output


def test_request_compile_matches_annotate_locally(service, fig11_file):
    _, local = run(["annotate", fig11_file])
    _, remote = run(request_argv(service, "compile", fig11_file))
    # identical annotated source and summary; the service may only
    # append a "[cached]" marker to the summary line
    assert remote.startswith(local.rstrip("\n"))


def test_request_compile_json(service, fig11_file):
    import json

    code, output = run(request_argv(service, "compile", fig11_file,
                                    "--json"))
    assert code == 0
    payload = json.loads(output)
    assert payload["ok"] is True and payload["reads"] > 0


def test_request_compile_hardened(service, fig11_file):
    code, output = run(request_argv(service, "compile", fig11_file,
                                    "--hardened"))
    assert code == 0
    assert "[rung=balanced]" in output


def test_request_compile_per_program_failure_exits_one(service, bad_file):
    code, output = run(request_argv(service, "compile", bad_file))
    assert code == 1
    assert "error:" in output


def test_request_batch_directory(service, corpus_dir):
    code, output = run(request_argv(service, "batch", corpus_dir))
    assert code == 0
    assert "fig11.f: reads=" in output
    assert "2/2 programs ok" in output


def test_request_status_json(service, fig11_file):
    import json

    run(request_argv(service, "compile", fig11_file))
    code, output = run(request_argv(service, "status", "--json"))
    assert code == 0
    payload = json.loads(output)
    assert payload["server"]["pool"] == "thread"
    assert payload["requests"]["completed"] >= 1


def test_request_status_pretty_prints_by_default(service, fig11_file):
    run(request_argv(service, "compile", fig11_file))
    code, output = run(request_argv(service, "status"))
    assert code == 0
    assert "service 127.0.0.1:" in output
    assert "requests: received=" in output
    assert "supervision: pool_rebuilds=0 requeued=0" in output
    assert "latency: p50=" in output


def test_request_compile_needs_a_file(capsys, service):
    assert_clean_failure(capsys, request_argv(service, "compile"))


def test_request_refused_connection_error_hygiene(capsys):
    # a port nothing listens on: one clean line, no traceback
    assert_clean_failure(capsys, ["request", "ping", "--port", "1"])


def test_request_drain_shuts_the_server_down():
    import socket

    from repro.service import ServiceConfig, ThreadedServer

    config = ServiceConfig(port=0, workers=1, pool="thread")
    with ThreadedServer(config) as server:
        code, output = run(["request", "drain", "--port", str(server.port)])
        assert code == 0
        assert output.startswith("drained:")
        import time
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline:
            try:
                socket.create_connection(("127.0.0.1", server.port),
                                         timeout=0.5).close()
            except OSError:
                break
            time.sleep(0.02)
        else:
            pytest.fail("server still accepting after drain")


@pytest.fixture(scope="module")
def fleet():
    from repro.fleet import LocalFleet

    with LocalFleet(n_shards=2) as local:
        yield local


def test_request_status_against_a_fleet_pretty_prints_the_shard_table(
        fleet, fig11_file):
    run(["request", "compile", fig11_file, "--port", str(fleet.port)])
    code, output = run(["request", "status", "--port", str(fleet.port)])
    assert code == 0
    assert "fleet router 127.0.0.1:" in output
    assert "2 shards" in output
    assert "requests: received=" in output and "forwards=" in output
    assert "shard-0" in output and "shard-1" in output
    assert "closed" in output


def test_request_drain_against_a_fleet_reports_per_shard_outcomes():
    from repro.fleet import LocalFleet

    with LocalFleet(n_shards=2) as local:
        code, output = run(["request", "drain", "--port", str(local.port)])
        assert code == 0
        assert output.startswith("fleet drained:")
        assert "shard-0: drained" in output
        assert "shard-1: drained" in output


def test_serve_parser_round_trip():
    from repro.cli import build_parser

    args = build_parser().parse_args(
        ["serve", "--port", "0", "--workers", "3", "--pool", "thread",
         "--queue-limit", "5", "--deadline", "1.5", "--hardened",
         "--no-cache"])
    assert args.command == "serve"
    assert args.port == 0 and args.workers == 3 and args.pool == "thread"
    assert args.queue_limit == 5 and args.deadline == 1.5
    assert args.hardened and args.no_cache


def test_fleet_parser_round_trip():
    from repro.cli import build_parser

    args = build_parser().parse_args(
        ["fleet", "--shards", "4", "--port", "0", "--workers", "2",
         "--pool", "thread", "--queue-limit", "8", "--hedge", "0.2",
         "--heartbeat", "0.1"])
    assert args.command == "fleet"
    assert args.shards == 4 and args.workers == 2
    assert args.hedge == 0.2 and args.heartbeat == 0.1


def test_serve_defaults_to_the_service_port():
    from repro.cli import build_parser
    from repro.service import DEFAULT_PORT

    args = build_parser().parse_args(["serve"])
    assert args.port == DEFAULT_PORT
    args = build_parser().parse_args(["request", "ping"])
    assert args.port == DEFAULT_PORT
