"""Register promotion tests (§1's unified load/store claim)."""

from repro.regpromo import promote_registers
from repro.regpromo.pipeline import build_load_problem, build_store_problem


def annotated(source):
    return promote_registers(source).annotated_source()


def lines_of(source):
    return [line.strip() for line in annotated(source).splitlines()
            if line.strip()]


def test_accumulator_load_before_store_after():
    lines = lines_of(
        "real s(100)\n"
        "do i = 1, n\ns(1) = s(1) + w(i)\nenddo")
    assert lines.index("LOAD{s(1)}") < lines.index("do i = 1, n")
    assert lines.index("STORE{s(1)}") > lines.index("enddo")


def test_load_hoisted_store_sunk_around_loop():
    lines = lines_of(
        "real x(100)\n"
        "do i = 1, n\nu = x(5)\nx(5) = u + 1\nenddo\nw = x(5)")
    assert lines[1] == "LOAD{x(5)}"              # before the loop
    assert lines[-1] == "STORE{x(5)}"            # after the last use
    # exactly one of each — all in-loop traffic is register traffic
    assert sum(1 for l in lines if l.startswith("LOAD")) == 1
    assert sum(1 for l in lines if l.startswith("STORE")) == 1


def test_same_point_read_served_by_register():
    # the read after the def needs no LOAD (give-for-free) and the STORE
    # may be deferred past it (the register forwards)
    lines = lines_of("real x(100)\nx(5) = 1\nw = x(5)")
    assert "LOAD{x(5)}" not in lines
    assert lines[-1] == "STORE{x(5)}"


def test_aliasing_read_fences_the_store():
    # x(j) may alias x(5): the store must reach memory before the read
    lines = lines_of("real x(100)\nx(5) = 1\nw = x(j)")
    store = lines.index("STORE{x(5)}")
    read = lines.index("w = x(j)")
    assert store < read
    # and x(j) itself is loaded (it is a point, j loop-invariant)
    assert "LOAD{x(j)}" in lines


def test_aliasing_def_invalidates_register():
    # a def through x(j) may clobber x(5): reload before the later use
    lines = lines_of("real x(100)\nu = x(5)\nx(j) = 1\nw = x(5)")
    loads = [i for i, l in enumerate(lines) if l == "LOAD{x(5)}"]
    assert len(loads) == 2
    assert loads[0] < lines.index("x(j) = 1") < loads[1]


def test_distinct_constant_points_do_not_alias():
    lines = lines_of("real x(100)\nu = x(5)\nx(6) = 1\nw = x(5)")
    assert sum(1 for l in lines if l == "LOAD{x(5)}") == 1


def test_sections_are_not_promoted():
    # x(i) inside the loop varies: not register material
    lines = lines_of("real x(100)\ndo i = 1, n\nu = x(i)\nenddo")
    assert not any(l.startswith(("LOAD", "STORE")) for l in lines)


def test_branchy_promotion_is_balanced():
    from repro.core import check_placement

    source = (
        "real x(100)\n"
        "if t then\nu = x(5)\nelse\nx(5) = 2\nendif\n"
        "w = x(5)"
    )
    result = promote_registers(source)
    for problem, placement in (
        (result.load_problem, result.load_placement),
        (result.store_problem, result.store_placement),
    ):
        report = check_placement(result.analyzed.ifg, problem, placement,
                                 min_trips=1)
        assert report.ok(ignore=("safety", "redundant")), str(report)


def test_memory_traffic_reduction_measured():
    from repro.machine import MachineModel, simulate

    source = (
        "real s(100)\n"
        "do i = 1, n\ns(1) = s(1) + w(i)\nenddo"
    )
    promoted = promote_registers(source)
    machine = MachineModel(latency=20, time_per_element=0, message_overhead=1)
    metrics = simulate(promoted.annotated_program, machine, {"n": 100})
    # 1 LOAD + 1 STORE instead of 200 in-loop accesses
    assert metrics.messages == 2


def test_counts_api():
    result = promote_registers(
        "real x(100)\nu = x(5)\nx(7) = 2\n")
    assert result.load_count() == 1
    assert result.store_count() == 1
