"""PRE baseline tests: LCM and Morel-Renvoise on canonical shapes."""

from repro.pre import (
    build_cse_problem,
    gnt_pre_placement,
    lazy_code_motion,
    morel_renvoise,
)
from repro.pre.gnt_pre import lazy_insertion_nodes
from repro.testing.programs import analyze_source


def run_all(source):
    analyzed = analyze_source(source)
    problem, _ = build_cse_problem(analyzed)
    return (
        analyzed,
        problem,
        lazy_code_motion(analyzed.ifg, problem),
        morel_renvoise(analyzed.ifg, problem),
        gnt_pre_placement(analyzed.ifg, problem),
    )


def test_full_redundancy_eliminated():
    analyzed, problem, lcm, mr, gnt = run_all("u = a + b\nv = a + b")
    second = analyzed.node_named("v =")
    assert second in lcm.delete_nodes
    assert second in mr.delete_nodes
    assert lcm.insertion_count() == 0
    assert mr.insertion_count() == 0
    # GNT: one lazy production at the first use only
    assert lazy_insertion_nodes(gnt, "a + b") == [analyzed.node_named("u =")]


def test_diamond_join_redundancy():
    analyzed, problem, lcm, mr, gnt = run_all(
        "if t then\nu = a + b\nelse\nw = a + b\nendif\nv = a + b")
    join = analyzed.node_named("v =")
    assert join in lcm.delete_nodes
    assert join in mr.delete_nodes
    assert lcm.insertion_count() == 0


def test_partial_redundancy_insertion_on_empty_branch():
    analyzed, problem, lcm, mr, gnt = run_all(
        "if t then\nu = a + b\nendif\nv = a + b")
    join = analyzed.node_named("v =")
    assert join in lcm.delete_nodes
    assert join in mr.delete_nodes
    # insertion on the synthesized else edge for both classical methods
    lcm_nodes = lcm.node_insertions_for("a + b")
    assert len(lcm_nodes) == 1 and lcm_nodes[0].synthetic
    mr_nodes = mr.node_insertions_for("a + b")
    assert len(mr_nodes) == 1 and mr_nodes[0].synthetic


def test_kill_blocks_elimination():
    analyzed, problem, lcm, mr, gnt = run_all("u = a + b\na = 1\nv = a + b")
    assert analyzed.node_named("v =") not in lcm.delete_nodes
    assert analyzed.node_named("v =") not in mr.delete_nodes


def test_zero_trip_loop_classical_pre_does_not_hoist():
    analyzed, problem, lcm, mr, gnt = run_all("do i = 1, n\nu = a + b\nenddo")
    # LCM/MR: no insertion outside the loop, use not deleted
    assert lcm.insertion_count() == 0
    assert mr.insertion_count() == 0
    assert analyzed.node_named("u =") not in lcm.delete_nodes
    # GIVE-N-TAKE hoists to (before) the loop header
    assert lazy_insertion_nodes(gnt, "a + b") == [analyzed.node_named("do i")]


def test_loop_with_guaranteed_use_after():
    # use both inside and after the loop: classical PRE may still place
    # conservatively; GNT keeps a single production before the loop.
    analyzed, problem, lcm, mr, gnt = run_all(
        "do i = 1, n\nu = a + b\nenddo\nv = a + b")
    gnt_nodes = lazy_insertion_nodes(gnt, "a + b")
    assert gnt_nodes == [analyzed.node_named("do i")]


def test_entry_anticipated_expression_inserted_at_entry():
    analyzed, problem, lcm, mr, gnt = run_all("v = a + b\nw = a + b")
    # LCM semantics: laterin stops at the first use; nothing inserted,
    # first computation kept.
    assert analyzed.node_named("v =") not in lcm.delete_nodes
    assert analyzed.node_named("w =") in lcm.delete_nodes


def test_lcm_variables_exposed():
    analyzed, problem, lcm, mr, gnt = run_all("u = a + b")
    assert "ANTIN" in lcm.variables and "AVOUT" in lcm.variables
    assert "PPIN" in mr.variables


def test_gnt_matches_lcm_dynamic_cost_on_random_programs():
    """On random structured programs the LAZY GNT evaluation count along
    each >=1-trip path never exceeds classical LCM's (GNT may do better
    thanks to zero-trip hoisting, never worse)."""
    from repro.core.paths import enumerate_paths
    from repro.pre.gnt_pre import evaluations_on_path
    from repro.testing.generator import random_analyzed_program

    for seed in range(6):
        analyzed = random_analyzed_program(seed, size=12, goto_probability=0.0)
        problem, _ = build_cse_problem(analyzed)
        # enrich: add a shared expression at several nodes
        source_nodes = [n for n in analyzed.ifg.real_nodes()
                        if n.kind.value == "stmt"][:4]
        for node in source_nodes:
            problem.add_take(node, "x + y")
        lcm = lazy_code_motion(analyzed.ifg, problem)
        gnt = gnt_pre_placement(analyzed.ifg, problem)
        for path in enumerate_paths(analyzed.ifg, max_paths=40, min_trips=1):
            gnt_cost = evaluations_on_path(gnt, problem, path, analyzed.ifg)
            lcm_cost = _lcm_cost(lcm, problem, path)
            assert gnt_cost <= lcm_cost, (seed, gnt_cost, lcm_cost)


def _lcm_cost(lcm, problem, path):
    """Dynamic evaluations under LCM: inserted computations executed on
    the path plus original uses not deleted."""
    cost = 0
    nodes_on_path = path
    edges_on_path = list(zip(path, path[1:]))
    for edge in edges_on_path:
        cost += bin(lcm.insert_edges.get(edge, 0)).count("1")
    entry_edge_bits = lcm.insert_edges.get((None, path[0]), 0)
    cost += bin(entry_edge_bits).count("1")
    for node in nodes_on_path:
        remaining = problem.take_init(node) & ~lcm.delete_nodes.get(node, 0)
        cost += bin(remaining).count("1")
    return cost
