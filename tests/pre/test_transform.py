"""CSE transformation tests, including semantic equivalence."""

import pytest

from repro.lang import ast
from repro.lang.parser import parse
from repro.pre.transform import eliminate_common_subexpressions
from repro.testing.programs import analyze_source


def transformed(source):
    return eliminate_common_subexpressions(analyze_source(source))


def lines_of(result):
    return [line.strip() for line in result.transformed_source().splitlines()
            if line.strip()]


def evaluate(program_text, env):
    """A tiny scalar interpreter: executes assignments/ifs/loops over
    integer variables; returns the final environment."""
    program = parse(program_text)
    env = dict(env)

    def value(expr):
        if isinstance(expr, ast.Num):
            return expr.value
        if isinstance(expr, ast.Var):
            return env[expr.name]
        if isinstance(expr, ast.BinOp):
            left, right = value(expr.left), value(expr.right)
            return {
                "+": left + right, "-": left - right, "*": left * right,
                "/": left // right if right else 0,
                "<": left < right, ">": left > right,
                "<=": left <= right, ">=": left >= right,
                "==": left == right, "!=": left != right,
            }[expr.op]
        raise AssertionError(f"unexpected {expr!r}")

    def run(body):
        for stmt in body:
            if isinstance(stmt, ast.Assign) and isinstance(stmt.target, ast.Var):
                env[stmt.target.name] = value(stmt.value)
            elif isinstance(stmt, ast.Do):
                i = value(stmt.lo)
                while i <= value(stmt.hi):
                    env[stmt.var] = i
                    run(stmt.body)
                    i += value(stmt.step)
            elif isinstance(stmt, ast.If):
                run(stmt.then_body if value(stmt.cond) else stmt.else_body)

    run(program.executables())
    return {k: v for k, v in env.items() if not k.startswith("__")}


def test_full_redundancy_single_evaluation():
    lines = lines_of(transformed("u = a + b\nv = a + b"))
    assert lines == ["__cse0 = a + b", "u = __cse0", "v = __cse0"]


def test_partial_redundancy_materializes_else():
    lines = lines_of(transformed("if t then\nu = a + b\nendif\nv = a + b"))
    assert lines.count("__cse0 = a + b") == 2  # then branch + new else
    assert "v = __cse0" in lines
    assert "else" in lines


def test_loop_invariant_hoisted():
    lines = lines_of(transformed("do i = 1, n\nu = a + b\nenddo"))
    assert lines[0] == "__cse0 = a + b"   # above the (zero-trip) loop
    assert "u = __cse0" in lines


def test_kill_forces_reevaluation():
    lines = lines_of(transformed("u = a + b\na = 1\nv = a + b"))
    assert lines.count("__cse0 = a + b") == 2
    kill = lines.index("a = 1")
    assert lines.index("__cse0 = a + b", kill) > kill


def test_nested_subexpressions():
    result = transformed("u = a + b\nv = (a + b) * c\nw = (a + b) * c")
    lines = lines_of(result)
    # a+b and (a+b)*c are both expressions; the temp for a+b feeds the
    # temp for the product
    assert any(l.startswith("__cse") and "* c" in l for l in lines)


SEMANTIC_CASES = [
    "u = a + b\nv = a + b",
    "if a < b then\nu = a + b\nelse\nu = a - b\nendif\nv = a + b",
    "do i = 1, 3\nu = a + b\ns = s + u\nenddo",
    "u = a + b\na = 7\nv = a + b\nw = v * 2",
    "do i = 1, 2\ndo j = 1, 2\nt = a * b\ns = s + t\nenddo\nenddo",
]


@pytest.mark.parametrize("source", SEMANTIC_CASES)
def test_semantic_equivalence(source):
    env = {"a": 3, "b": 4, "s": 0, "n": 3}
    original = evaluate(source, env)
    result = transformed(source)
    rewritten = evaluate(result.transformed_source(), env)
    assert rewritten == original


def test_temporaries_map_exposed():
    result = transformed("u = a + b\nv = a + b")
    assert result.temporaries == {"a + b": "__cse0"}
    assert result.evaluation_sites("a + b")


# ---------------------------------------------------------------------------
# The LCM-driven transform: same redundancy elimination, no zero-trip
# hoisting — the paper's headline contrast, now visible as source diffs.
# ---------------------------------------------------------------------------

def lcm_transformed(source):
    from repro.pre.transform import eliminate_with_lcm

    return eliminate_with_lcm(analyze_source(source))


def test_lcm_matches_gnt_on_plain_redundancy():
    gnt = lines_of(transformed("u = a + b\nv = a + b"))
    lcm = lines_of(lcm_transformed("u = a + b\nv = a + b"))
    assert [l.replace("__lcm", "__cse") for l in lcm] == gnt


def test_lcm_does_not_hoist_zero_trip_loop():
    lines = lines_of(lcm_transformed("do i = 1, n\nu = a + b\nenddo"))
    assert lines == ["do i = 1, n", "u = a + b", "enddo"]
    # ... while GNT hoists:
    gnt_lines = lines_of(transformed("do i = 1, n\nu = a + b\nenddo"))
    assert gnt_lines[0] == "__cse0 = a + b"


def test_lcm_materializes_else_branch_too():
    lines = lines_of(lcm_transformed(
        "if t then\nu = a + b\nendif\nv = a + b"))
    assert lines.count("__lcm0 = a + b") == 2
    assert "v = __lcm0" in lines


@pytest.mark.parametrize("source", SEMANTIC_CASES)
def test_lcm_transform_semantic_equivalence(source):
    env = {"a": 3, "b": 4, "s": 0, "n": 3}
    original = evaluate(source, env)
    result = lcm_transformed(source)
    rewritten = evaluate(result.transformed_source(), env)
    assert rewritten == original


@pytest.mark.parametrize("source", SEMANTIC_CASES)
def test_gnt_and_lcm_transforms_agree_semantically(source):
    env = {"a": 2, "b": 9, "s": 1, "n": 3}
    gnt = evaluate(transformed(source).transformed_source(), env)
    lcm = evaluate(lcm_transformed(source).transformed_source(), env)
    assert gnt == lcm
