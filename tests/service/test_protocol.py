"""Wire protocol and configuration: framing, validation, error mapping."""

import pytest

from repro.batch.driver import BatchOptions
from repro.service.config import POOL_KINDS, ServiceConfig
from repro.service.protocol import (
    E_BUSY,
    E_INTERNAL,
    ERROR_CODES,
    REQUEST_TYPES,
    ProtocolError,
    ServiceError,
    decode_message,
    encode_message,
    error_response,
    ok_response,
    parse_request,
    raise_for_error,
    request_deadline,
    request_options,
)
from repro.util.errors import ReproError


# -- framing ------------------------------------------------------------------

def test_encode_decode_roundtrip():
    payload = {"type": "compile", "id": 7, "source": "program p\nend\n"}
    line = encode_message(payload)
    assert line.endswith(b"\n") and line.count(b"\n") == 1
    assert decode_message(line) == payload


def test_encode_is_deterministic():
    # key-sorted compact JSON: the same message always frames identically
    assert (encode_message({"b": 1, "a": 2})
            == encode_message({"a": 2, "b": 1})
            == b'{"a":2,"b":1}\n')


def test_decode_rejects_non_json_and_non_objects():
    with pytest.raises(ProtocolError, match="undecodable"):
        decode_message(b"not json\n")
    with pytest.raises(ProtocolError, match="JSON object"):
        decode_message(b"[1, 2]\n")
    with pytest.raises(ProtocolError, match="undecodable"):
        decode_message(b"\xff\xfe\n")


def test_parse_request_validates_type():
    assert parse_request(b'{"type": "ping"}\n')["type"] == "ping"
    with pytest.raises(ProtocolError, match="unknown request type"):
        parse_request(b'{"type": "explode"}\n')
    with pytest.raises(ProtocolError, match="unknown request type"):
        parse_request(b'{"source": "..."}\n')  # missing type entirely


# -- responses ----------------------------------------------------------------

def test_ok_and_error_responses_echo_request_identity():
    request = {"type": "compile", "id": 42}
    ok = ok_response(request, result={"ok": True})
    assert ok["id"] == 42 and ok["type"] == "compile" and ok["ok"] is True
    err = error_response(request, E_BUSY, "full", retry_after_s=0.25)
    assert err["id"] == 42 and err["ok"] is False
    assert err["error"]["code"] == E_BUSY
    assert err["retry_after_s"] == 0.25


def test_raise_for_error_passes_ok_and_raises_errors():
    ok = {"ok": True, "result": 1}
    assert raise_for_error(ok) is ok
    with pytest.raises(ServiceError) as excinfo:
        raise_for_error({"ok": False,
                         "error": {"code": E_BUSY, "message": "full"},
                         "retry_after_s": 0.5})
    assert excinfo.value.code == E_BUSY
    assert excinfo.value.retry_after_s == 0.5
    # a malformed error response still raises, with the internal code
    with pytest.raises(ServiceError) as excinfo:
        raise_for_error({"ok": False})
    assert excinfo.value.code == E_INTERNAL


def test_service_errors_are_repro_errors():
    # so the CLI's one-line error handling applies unchanged
    assert issubclass(ServiceError, ReproError)
    assert issubclass(ProtocolError, ReproError)
    assert all(isinstance(code, str) for code in ERROR_CODES)
    assert set(REQUEST_TYPES) == {"ping", "compile", "compile_delta",
                                  "batch", "status", "drain"}


# -- per-request options ------------------------------------------------------

def test_request_options_default_to_config():
    config = ServiceConfig(hardened=True, split_messages=False)
    options = request_options({"type": "compile"}, config)
    assert isinstance(options, BatchOptions)
    assert options.hardened is True
    assert options.split_messages is False


def test_request_options_override_config():
    config = ServiceConfig(hardened=False,
                           pipeline={"owner_computes": False})
    options = request_options(
        {"options": {"hardened": True,
                     "pipeline": {"owner_computes": True}}}, config)
    assert options.hardened is True
    assert options.pipeline["owner_computes"] is True


def test_request_options_reject_unknown_keys():
    config = ServiceConfig()
    with pytest.raises(ProtocolError, match="unknown option"):
        request_options({"options": {"hardend": True}}, config)  # typo
    with pytest.raises(ProtocolError, match="JSON object"):
        request_options({"options": [1]}, config)
    with pytest.raises(ProtocolError, match="owner_compute"):
        request_options({"options": {"pipeline": {"owner_compute": 1}}},
                        config)


def test_request_deadline_validation():
    config = ServiceConfig(deadline_s=2.0)
    assert request_deadline({}, config) == 2.0
    assert request_deadline({"deadline_s": 0.5}, config) == 0.5
    assert request_deadline({}, ServiceConfig()) is None
    for bad in (0, -1, "soon", True):
        with pytest.raises(ProtocolError, match="positive number"):
            request_deadline({"deadline_s": bad}, config)


# -- configuration ------------------------------------------------------------

def test_config_validates_eagerly():
    with pytest.raises(ValueError, match="pool"):
        ServiceConfig(pool="fibers")
    with pytest.raises(ValueError, match="queue_limit"):
        ServiceConfig(queue_limit=0)
    with pytest.raises(ValueError, match="deadline_s"):
        ServiceConfig(deadline_s=-1)
    with pytest.raises(ValueError, match="owner_compute"):
        ServiceConfig(pipeline={"owner_compute": True})  # typo'd key


def test_config_as_dict_is_complete():
    config = ServiceConfig(port=7777, workers=2, pool="thread")
    payload = config.as_dict()
    assert payload["port"] == 7777
    assert payload["workers"] == 2
    assert payload["pool"] in POOL_KINDS
    assert set(payload) == {
        "host", "port", "workers", "pool", "queue_limit", "deadline_s",
        "hardened", "split_messages", "pipeline", "cache_dir", "use_cache",
        "max_retry_after_s",
    }
