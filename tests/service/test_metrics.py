"""ServiceMetrics: admission accounting, latency phases, the snapshot."""

import json
from types import SimpleNamespace

import pytest

from repro.obs import TraceCollector, tracing
from repro.service.metrics import PHASES, ServiceMetrics


def compiled(ok=True, cache_hit=False, duration_s=0.01):
    """A CompiledProgram stand-in: observe() only reads these fields."""
    return SimpleNamespace(ok=ok, cache_hit=cache_hit, duration_s=duration_s)


def test_admission_counters_and_queue_depth():
    metrics = ServiceMetrics()
    metrics.receive()
    metrics.admit(2)
    metrics.admit(1)
    assert metrics.received == 1
    assert metrics.admitted == 3
    assert metrics.queue_depth == 3 and metrics.queue_peak == 3
    metrics.release(2)
    assert metrics.queue_depth == 1
    assert metrics.queue_peak == 3  # peak is sticky
    metrics.release(5)
    assert metrics.queue_depth == 0  # never goes negative


def test_rejections_bucket_by_code():
    metrics = ServiceMetrics()
    metrics.reject("busy")
    metrics.reject("busy", units=3)
    metrics.reject("draining")
    metrics.reject("bad_request")
    metrics.expire_deadline(units=2)
    metrics.internal_error()
    assert metrics.rejected_busy == 4
    assert metrics.rejected_draining == 1
    assert metrics.bad_requests == 1
    assert metrics.deadline_expired == 2
    assert metrics.internal_errors == 1


def test_observe_splits_latency_into_phases():
    metrics = ServiceMetrics()
    metrics.observe(compiled(duration_s=0.02), total_s=0.05)
    assert metrics.completed == 1 and metrics.failed == 0
    assert metrics.latency["compile_s"].count == 1
    assert metrics.latency["compile_s"].max_value == 0.02
    # queue time is everything that was not the compile itself
    assert metrics.latency["queue_s"].max_value == pytest.approx(0.03)
    assert metrics.latency["total_s"].max_value == 0.05


def test_observe_clamps_clock_skew():
    metrics = ServiceMetrics()
    # worker wall-clock can exceed event-loop residence under load
    metrics.observe(compiled(duration_s=0.1), total_s=0.05)
    assert metrics.latency["queue_s"].max_value == 0.0


def test_cache_hit_rate():
    metrics = ServiceMetrics()
    assert metrics.cache_hit_rate == 0.0
    metrics.observe(compiled(cache_hit=False), total_s=0.01)
    metrics.observe(compiled(cache_hit=True), total_s=0.01)
    metrics.observe(compiled(cache_hit=True), total_s=0.01)
    assert metrics.cache_lookups == 3 and metrics.cache_hits == 2
    assert metrics.cache_hit_rate == 2 / 3


def test_failed_compiles_count_separately():
    metrics = ServiceMetrics()
    metrics.observe(compiled(ok=False), total_s=0.01)
    assert metrics.completed == 0 and metrics.failed == 1


def test_snapshot_is_json_shaped_and_complete():
    metrics = ServiceMetrics()
    metrics.receive()
    metrics.admit()
    metrics.observe(compiled(), total_s=0.01)
    metrics.release()
    snap = metrics.snapshot(server={"pool": "thread", "workers": 2})
    json.dumps(snap)
    assert snap["requests"] == {"received": 1, "admitted": 1,
                               "completed": 1, "failed": 0,
                               "inflight": 0, "queue_peak": 1}
    assert set(snap["latency"]) == set(PHASES)
    assert snap["latency"]["total_s"]["count"] == 1
    assert snap["server"]["pool"] == "thread"
    assert snap["uptime_s"] >= 0.0
    assert "store" not in snap["cache"]  # only merged when a cache exists


def test_snapshot_merges_cache_store_stats():
    from repro.batch import PipelineCache

    cache = PipelineCache()
    cache.put("ns", cache.key("x"), 1)
    snap = ServiceMetrics().snapshot(cache=cache)
    assert snap["cache"]["store"]["stores"] == 1
    assert "corrupt" in snap["cache"]["store"]


def test_metrics_mirror_into_the_obs_collector():
    metrics = ServiceMetrics()
    with tracing(TraceCollector()) as obs:
        metrics.admit(2)
        metrics.reject("busy")
        metrics.observe(compiled(cache_hit=True), total_s=0.01)
    decisions = [event["decision"]
                 for event in obs.events("service", "admission")]
    assert decisions == ["admitted", "busy"]
    counters = obs.counters()["service"]
    assert counters["admitted"] == 2
    assert counters["rejected_busy"] == 1
    assert counters["completed"] == 1
    assert counters["cache_hits"] == 1


def test_disabled_collector_records_nothing():
    metrics = ServiceMetrics()
    metrics.admit()  # no tracing active: must not blow up
    metrics.observe(compiled(), total_s=0.01)
    assert metrics.completed == 1
