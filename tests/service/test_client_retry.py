"""ServiceClient resilience: retries across restarts and severed links.

:meth:`ServiceClient.compile_retrying` is the fleet's contract with its
callers — compiles are pure functions of (source, options), so a request
that may or may not have completed can always be resent.  These tests
exercise the three transient failures it must ride out: a server that
restarts between requests (refused dials), a connection severed
mid-session (reset / clean close with no reply), and ``busy``
backpressure (covered in ``test_server.py``); and check that the plain,
non-retrying calls surface those same failures loudly.
"""

import asyncio
import threading
import time

import pytest

from repro.commgen.pipeline import generate_communication
from repro.service import (
    ServiceClient,
    ServiceConfig,
    ThreadedServer,
)
from repro.service.client import ServiceConnectionError
from repro.testing.programs import FIG11_SOURCE


EXPECTED = generate_communication(FIG11_SOURCE).annotated_source()


def thread_config(port=0):
    return ServiceConfig(host="127.0.0.1", port=port, pool="thread",
                         workers=2)


def sever(server):
    """Reset every live connection on ``server`` from the service side."""
    asyncio.run_coroutine_threadsafe(
        server.service.sever_connections(), server._loop).result(timeout=10)


def test_compile_retrying_survives_a_server_restart():
    first = ThreadedServer(thread_config()).start()
    port = first.port
    with ServiceClient(port=port) as client:
        assert client.compile(FIG11_SOURCE, name="before")["ok"]
        first.kill()  # crash, not drain: connections reset, port freed

        second = {}

        def restart():
            time.sleep(0.2)  # leave the client dialing a dead port
            second["server"] = ThreadedServer(thread_config(port)).start()

        restarter = threading.Thread(target=restart, daemon=True)
        restarter.start()
        try:
            result = client.compile_retrying(FIG11_SOURCE, name="after")
            assert result["ok"] is True
            assert result["annotated_source"] == EXPECTED
        finally:
            restarter.join()
            second["server"].stop()


def test_compile_retrying_survives_a_severed_connection():
    with ThreadedServer(thread_config()) as server:
        with ServiceClient(port=server.port) as client:
            assert client.compile(FIG11_SOURCE, name="before")["ok"]
            sever(server)
            result = client.compile_retrying(FIG11_SOURCE, name="after")
            assert result["ok"] is True
            assert result["annotated_source"] == EXPECTED
            # the reconnected session is fully usable, not one-shot
            assert client.status()["requests"]["completed"] >= 2


def test_plain_compile_does_not_retry_a_severed_connection():
    with ThreadedServer(thread_config()) as server:
        with ServiceClient(port=server.port) as client:
            assert client.compile(FIG11_SOURCE, name="before")["ok"]
            sever(server)
            with pytest.raises((ServiceConnectionError, OSError)):
                client.compile(FIG11_SOURCE, name="after")


def test_compile_retrying_gives_up_when_the_server_stays_down():
    server = ThreadedServer(thread_config()).start()
    port = server.port
    # short socket timeout: the first attempt's read may wait on a
    # connection the dying server never got to reset
    client = ServiceClient(port=port, timeout_s=2.0)
    client.ping()  # fully established before the kill, so reset applies
    server.kill()
    naps = []
    with pytest.raises((ServiceConnectionError, OSError)):
        client.compile_retrying(FIG11_SOURCE, max_attempts=3,
                                sleep=naps.append)
    # it did back off between the bounded attempts, exponentially
    assert len(naps) == 2
    assert naps[1] > naps[0]
    client.close()


def test_reconnect_dials_fresh_after_close():
    with ThreadedServer(thread_config()) as server:
        client = ServiceClient(port=server.port)
        client.close()
        client.reconnect()
        assert client.ping()["ok"] is True
        client.close()
