"""CompileService end to end: real sockets, real admission, real pool.

Every test here talks to a genuine TCP server via
:class:`~repro.service.runner.ThreadedServer`; the shared module fixture
uses a thread pool (cheap, and warmth is the server's own in-memory
cache), while one dedicated test exercises the process-pool path with
its filesystem-shared cache.
"""

import socket
import threading
import time

import pytest

from repro.commgen.pipeline import generate_communication
from repro.lang.printer import format_program
from repro.service import (
    E_BAD_REQUEST,
    E_BUSY,
    E_DEADLINE,
    E_DRAINING,
    PROTOCOL,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    ThreadedServer,
)
from repro.testing.generator import ArrayProgramGenerator
from repro.testing.programs import FIG1_SOURCE, FIG11_SOURCE


def generated_source(size, seed=0):
    return format_program(ArrayProgramGenerator(seed=seed).program(size=size))


#: Slow enough (~300ms in CI) that admission races are deterministic.
SLOW_SOURCE = generated_source(400, seed=7)


@pytest.fixture(scope="module")
def server():
    config = ServiceConfig(port=0, workers=2, pool="thread")
    with ThreadedServer(config) as threaded:
        yield threaded


@pytest.fixture()
def client(server):
    with ServiceClient(port=server.port) as connection:
        yield connection


# -- basic round-trips --------------------------------------------------------

def test_ping_reports_protocol(client):
    reply = client.ping()
    assert reply["ok"] is True
    assert reply["protocol"] == PROTOCOL


def test_compile_is_byte_identical_to_direct_pipeline(client):
    result = client.compile(FIG11_SOURCE, name="fig11")
    direct = generate_communication(FIG11_SOURCE)
    assert result["ok"] is True
    assert result["annotated_source"] == direct.annotated_source()
    assert (result["reads"], result["writes"]) == direct.communication_count()


def test_batch_round_trip(client):
    reply = client.batch([("fig11", FIG11_SOURCE), ("fig1", FIG1_SOURCE)])
    assert reply["ok_count"] == 2 and reply["error_count"] == 0
    names = [result["name"] for result in reply["results"]]
    assert names == ["fig11", "fig1"]
    for result in reply["results"]:
        direct = generate_communication(
            FIG11_SOURCE if result["name"] == "fig11" else FIG1_SOURCE)
        assert result["annotated_source"] == direct.annotated_source()


def test_per_program_errors_are_data_not_failures(client):
    result = client.compile("program p\n???\n", name="broken")
    assert result["ok"] is False
    assert result["error_type"] == "ParseError"
    assert result["error"]


def test_warm_cache_hits_on_repeat_requests(client):
    source = generated_source(12, seed=31)
    first = client.compile(source, name="warmup")
    second = client.compile(source, name="warmup")
    assert first["ok"] and second["ok"]
    assert not first["cache_hit"]
    assert second["cache_hit"]
    assert second["annotated_source"] == first["annotated_source"]


def test_compile_delta_round_trip(client):
    from repro.batch import source_fingerprint
    base = generated_source(30, seed=41)
    edited = base.replace("+ 1", "+ 2", 1)
    assert edited != base
    warm = client.compile(base, name="delta")
    delta = client.compile_delta(edited, name="delta",
                                 base_digest=source_fingerprint(base))
    cold = generate_communication(edited)
    assert warm["ok"] and delta["ok"]
    assert delta["annotated_source"] == cold.annotated_source()
    incr = delta["incremental"]
    assert incr["base"] == source_fingerprint(base)
    assert incr["whole_hits"] + incr["interval_hits"] > 0
    assert 0 <= incr["intervals_changed"] <= incr["intervals_total"]


def test_compile_delta_without_base_still_works(client):
    source = generated_source(14, seed=43)
    first = client.compile_delta(source, name="no-base")
    assert first["ok"]
    assert first["incremental"]["base"] is None


def test_compile_delta_rejects_non_string_base(client):
    with pytest.raises(ServiceError) as excinfo:
        client.request({"type": "compile_delta", "name": "bad",
                        "source": FIG11_SOURCE, "base": 42})
    assert excinfo.value.code == E_BAD_REQUEST
    assert "base" in str(excinfo.value)


def test_compile_delta_needs_the_service_cache():
    from repro.service import E_UNAVAILABLE
    config = ServiceConfig(port=0, workers=1, pool="thread", use_cache=False)
    with ThreadedServer(config) as threaded:
        with ServiceClient(port=threaded.port) as connection:
            with pytest.raises(ServiceError) as excinfo:
                connection.compile_delta(FIG11_SOURCE, name="fig11")
            assert excinfo.value.code == E_UNAVAILABLE
            # plain compiles still run on a cacheless service
            assert connection.compile(FIG11_SOURCE, name="fig11")["ok"]


def test_hardened_mode_reports_rung(client):
    result = client.compile(FIG11_SOURCE, name="fig11",
                            options={"hardened": True})
    assert result["ok"] is True
    assert result["rung"] == "balanced"
    assert result["degraded"] is False


def test_status_shape(client):
    client.compile(FIG11_SOURCE, name="fig11")
    status = client.status()
    assert status["server"]["protocol"] == PROTOCOL
    assert status["server"]["pool"] == "thread"
    assert status["requests"]["completed"] >= 1
    assert status["requests"]["inflight"] == 0
    assert set(status["latency"]) == {"queue_s", "compile_s", "total_s"}
    assert status["latency"]["total_s"]["p50_s"] > 0
    assert status["cache"]["store"]["stores"] >= 2  # analyzed + prepared


# -- concurrency --------------------------------------------------------------

def test_concurrent_clients_get_byte_identical_results(server):
    corpus = [(f"gen-{i}", generated_source(10 + i, seed=100 + i))
              for i in range(6)]
    expected = {name: generate_communication(text).annotated_source()
                for name, text in corpus}
    failures = []

    def worker(index):
        try:
            with ServiceClient(port=server.port) as connection:
                for offset in range(len(corpus)):
                    name, text = corpus[(index + offset) % len(corpus)]
                    result = connection.compile_retrying(text, name=name)
                    if not result["ok"]:
                        failures.append((name, result["error"]))
                    elif result["annotated_source"] != expected[name]:
                        failures.append((name, "response corrupted"))
        except Exception as error:  # pragma: no cover - the assert reports
            failures.append((index, repr(error)))

    threads = [threading.Thread(target=worker, args=(index,))
               for index in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert failures == []


def test_one_connection_interleaves_request_types(client):
    # ping / status answered inline while compiles run through the pool
    assert client.ping()["ok"]
    result = client.compile(FIG11_SOURCE, name="fig11")
    assert result["ok"]
    assert client.status()["requests"]["completed"] >= 1
    assert client.ping()["ok"]


# -- admission: deadlines and backpressure ------------------------------------

def test_deadline_expires_before_slow_compile_finishes():
    config = ServiceConfig(port=0, workers=1, pool="thread")
    with ThreadedServer(config) as threaded:
        with ServiceClient(port=threaded.port) as connection:
            with pytest.raises(ServiceError) as excinfo:
                connection.compile(SLOW_SOURCE, name="slow",
                                   deadline_s=0.005)
            assert excinfo.value.code == E_DEADLINE
            # the connection stays usable after an expiry reply
            assert connection.ping()["ok"]
            status = connection.status()
            assert status["admission"]["deadline_expired"] == 1
            # the abandoned compile still releases its slot eventually,
            # which the graceful teardown below (stop -> drain) relies on


def test_backpressure_rejects_with_retry_hint():
    config = ServiceConfig(port=0, workers=1, pool="thread", queue_limit=1)
    with ThreadedServer(config) as threaded:
        filler_done = threading.Event()

        def filler():
            with ServiceClient(port=threaded.port) as connection:
                connection.compile(SLOW_SOURCE, name="filler")
            filler_done.set()

        thread = threading.Thread(target=filler)
        thread.start()
        time.sleep(0.08)  # let the filler occupy the single slot
        with ServiceClient(port=threaded.port) as connection:
            with pytest.raises(ServiceError) as excinfo:
                connection.compile(FIG11_SOURCE, name="refused")
            assert excinfo.value.code == E_BUSY
            assert excinfo.value.retry_after_s > 0
            # the polite loop waits out the backpressure and succeeds
            result = connection.compile_retrying(FIG11_SOURCE, name="fig11")
            assert result["ok"]
            status = connection.status()
            assert status["admission"]["rejected_busy"] >= 1
        thread.join()
        assert filler_done.is_set()


def test_batch_admission_counts_each_program():
    # a batch larger than the whole queue can never be admitted
    config = ServiceConfig(port=0, workers=1, pool="thread", queue_limit=2)
    with ThreadedServer(config) as threaded:
        with ServiceClient(port=threaded.port) as connection:
            with pytest.raises(ServiceError) as excinfo:
                connection.batch([(f"p{i}", FIG11_SOURCE) for i in range(3)])
            assert excinfo.value.code == E_BUSY
            reply = connection.batch([("a", FIG11_SOURCE),
                                      ("b", FIG1_SOURCE)])
            assert reply["ok_count"] == 2


# -- drain --------------------------------------------------------------------

def test_drain_completes_in_flight_work_then_refuses():
    config = ServiceConfig(port=0, workers=1, pool="thread", queue_limit=8)
    with ThreadedServer(config) as threaded:
        outcomes = []
        lock = threading.Lock()

        def in_flight(index):
            try:
                with ServiceClient(port=threaded.port) as connection:
                    result = connection.compile(SLOW_SOURCE,
                                                name=f"inflight-{index}")
                    with lock:
                        outcomes.append(("completed", result["ok"]))
            except ServiceError as error:
                with lock:
                    outcomes.append((error.code, False))

        threads = [threading.Thread(target=in_flight, args=(index,))
                   for index in range(2)]
        with ServiceClient(port=threaded.port) as drainer:
            for thread in threads:
                thread.start()
            time.sleep(0.08)  # both requests admitted or queued
            reply = drainer.drain()
            assert reply["drained"] is True
        for thread in threads:
            thread.join()
        # everything admitted before the drain completed, correctly
        assert all(ok for code, ok in outcomes if code == "completed")
        assert all(code in ("completed", E_DRAINING)
                   for code, _ in outcomes)
        assert any(code == "completed" for code, _ in outcomes)
        # the server is gone: new connections are refused
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline:
            try:
                socket.create_connection(("127.0.0.1", threaded.port),
                                         timeout=0.5).close()
            except OSError:
                break
            time.sleep(0.02)
        else:
            pytest.fail("server still accepting after drain")


# -- the process pool ---------------------------------------------------------

def test_process_pool_round_trip_shares_warmth_on_disk(tmp_path):
    try:
        config = ServiceConfig(port=0, workers=1, pool="process",
                               cache_dir=str(tmp_path / "cache"))
        threaded = ThreadedServer(config).start()
    except Exception:
        pytest.skip("multiprocessing unavailable in this sandbox")
    try:
        assert threaded.service.pool_kind == "process"
        with ServiceClient(port=threaded.port, timeout_s=120) as connection:
            first = connection.compile(FIG11_SOURCE, name="fig11")
            second = connection.compile(FIG11_SOURCE, name="fig11")
            direct = generate_communication(FIG11_SOURCE)
            assert first["ok"] and second["ok"]
            assert first["annotated_source"] == direct.annotated_source()
            assert second["annotated_source"] == direct.annotated_source()
            # warmth crossed the process boundary through cache_dir
            assert not first["cache_hit"]
            assert second["cache_hit"]
    finally:
        threaded.stop()


# -- protocol abuse over a live socket ----------------------------------------

def test_malformed_lines_get_bad_request_replies(server):
    with ServiceClient(port=server.port) as connection:
        # raw non-JSON line down the same socket
        connection._file.write(b"this is not json\n")
        connection._file.flush()
        from repro.service import decode_message
        reply = decode_message(connection._file.readline())
        assert reply["ok"] is False
        assert reply["error"]["code"] == E_BAD_REQUEST


def test_unknown_request_type_is_rejected(client):
    with pytest.raises(ServiceError) as excinfo:
        client.request({"type": "explode"})
    assert excinfo.value.code == E_BAD_REQUEST


def test_compile_without_source_is_rejected(client):
    with pytest.raises(ServiceError) as excinfo:
        client.request({"type": "compile", "name": "empty"})
    assert excinfo.value.code == E_BAD_REQUEST
    assert "source" in str(excinfo.value)


def test_bad_deadline_and_options_are_rejected(client):
    with pytest.raises(ServiceError) as excinfo:
        client.request({"type": "compile", "source": FIG11_SOURCE,
                        "deadline_s": -1})
    assert excinfo.value.code == E_BAD_REQUEST
    with pytest.raises(ServiceError) as excinfo:
        client.request({"type": "compile", "source": FIG11_SOURCE,
                        "options": {"hardend": True}})
    assert excinfo.value.code == E_BAD_REQUEST
    assert "unknown option" in str(excinfo.value)


def test_empty_batch_is_rejected(client):
    with pytest.raises(ServiceError) as excinfo:
        client.request({"type": "batch", "programs": []})
    assert excinfo.value.code == E_BAD_REQUEST


def test_blank_lines_are_ignored(client):
    connection = client
    connection._file.write(b"\n")
    connection._file.flush()
    assert connection.ping()["ok"]  # server skipped the blank line


# -- backpressure hints -------------------------------------------------------

def _bare_service(**overrides):
    """A CompileService that never binds a socket — enough state for the
    pure backpressure-arithmetic paths."""
    from repro.service.server import CompileService

    config = ServiceConfig(port=0, workers=1, pool="thread", **overrides)
    return CompileService(config)


def test_retry_after_with_empty_histogram_uses_the_startup_guess():
    service = _bare_service()
    assert service.metrics.latency["total_s"].count == 0
    # No completed request yet: the 0.05 s prior, one queued unit.
    assert service._retry_after() == pytest.approx(0.05)


def test_retry_after_with_zero_median_is_not_treated_as_no_data():
    """A recorded median of zero means the service is *fast*, not
    unmeasured — the hint must clamp to the 0.01 s floor instead of
    falling back to the 5x-larger startup guess."""
    service = _bare_service()
    for _ in range(8):
        service.metrics.latency["total_s"].record(0.0)
    assert service.metrics.latency["total_s"].percentile(0.5) == 0.0
    assert service._retry_after() == pytest.approx(0.01)


def test_retry_after_scales_with_queue_depth_and_median():
    service = _bare_service()
    for _ in range(9):
        service.metrics.latency["total_s"].record(0.2)
    service.metrics.admit(3)
    try:
        median = service.metrics.latency["total_s"].percentile(0.5)
        assert median > 0.0
        expected = round(min(service.config.max_retry_after_s,
                             max(0.01, median * 3 / service.workers)), 4)
        assert service._retry_after() == pytest.approx(expected)
    finally:
        service.metrics.release(3)
