"""Worker-pool supervision: broken pools rebuilt, requests requeued.

A worker that dies mid-compile breaks its whole executor — every
in-flight future and every later submit raises
:class:`~concurrent.futures.process.BrokenProcessPool`.  The service
must treat that as a supervised event (rebuild the pool, requeue the
affected request once, count both), not as a reason to poison the
connection.  Thread-pool servers get the failure injected at the submit
boundary (threads cannot be SIGKILLed); one dedicated test kills a real
process-pool worker.
"""

import os
import signal
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.commgen.pipeline import generate_communication
from repro.service import (
    E_INTERNAL,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    ThreadedServer,
)
from repro.testing.programs import FIG11_SOURCE


def induce_broken_submits(executor, times=1):
    """Arm ``executor`` so its next ``times`` submits raise like a pool
    whose worker just crashed."""
    state = {"left": times}
    original = executor.submit

    def broken(*args, **kwargs):
        if state["left"] > 0:
            state["left"] -= 1
            raise BrokenProcessPool("induced worker crash")
        return original(*args, **kwargs)

    executor.submit = broken


def test_broken_pool_is_rebuilt_and_request_requeued():
    with ThreadedServer(ServiceConfig(pool="thread", workers=2)) as server:
        induce_broken_submits(server.service._executor)
        with ServiceClient(port=server.port) as client:
            result = client.compile(FIG11_SOURCE, name="fig11")
            # the client sees a normal, byte-correct reply — the crash
            # was absorbed entirely server-side
            assert result["ok"] is True
            direct = generate_communication(FIG11_SOURCE)
            assert result["annotated_source"] == direct.annotated_source()
            status = client.status()
    assert status["supervision"]["pool_rebuilds"] == 1
    assert status["supervision"]["requeued"] == 1
    assert status["admission"]["internal_errors"] == 0
    # the admission slot came back: nothing left in flight
    assert status["requests"]["inflight"] == 0


def test_pool_failure_coalesces_one_rebuild_for_concurrent_requests():
    with ThreadedServer(ServiceConfig(pool="thread", workers=2)) as server:
        # both in-flight requests hit the broken pool; the generation
        # counter must coalesce them onto a single rebuild
        induce_broken_submits(server.service._executor, times=2)
        with ServiceClient(port=server.port) as client:
            reply = client.batch([("a", FIG11_SOURCE), ("b", FIG11_SOURCE)])
            assert reply["ok_count"] == 2
            status = client.status()
    assert status["supervision"]["pool_rebuilds"] == 1
    assert status["supervision"]["requeued"] == 2


def test_request_failing_on_the_fresh_pool_too_is_internal_error():
    with ThreadedServer(ServiceConfig(pool="thread", workers=2)) as server:
        service = server.service
        original_build = service._build_executor

        def broken_build():
            executor, kind = original_build()
            induce_broken_submits(executor, times=10 ** 6)
            return executor, kind

        service._build_executor = broken_build
        induce_broken_submits(service._executor)
        with ServiceClient(port=server.port) as client:
            with pytest.raises(ServiceError) as excinfo:
                client.compile(FIG11_SOURCE, name="fig11")
            assert excinfo.value.code == E_INTERNAL
            status = client.status()
        service._build_executor = original_build
    # requeued once onto the fresh pool, which was broken too: the
    # error surfaces, but only after one full supervision cycle
    assert status["supervision"]["pool_rebuilds"] == 1
    assert status["supervision"]["requeued"] == 1
    assert status["admission"]["internal_errors"] == 1
    assert status["requests"]["inflight"] == 0


def test_service_keeps_serving_after_repeated_pool_failures():
    with ThreadedServer(ServiceConfig(pool="thread", workers=2)) as server:
        with ServiceClient(port=server.port) as client:
            for round_trip in range(3):
                induce_broken_submits(server.service._executor)
                result = client.compile(FIG11_SOURCE,
                                        name=f"round-{round_trip}")
                assert result["ok"] is True
            status = client.status()
    assert status["supervision"]["pool_rebuilds"] == 3
    assert status["supervision"]["requeued"] == 3


def test_sigkilled_process_pool_worker_is_supervised():
    try:
        config = ServiceConfig(port=0, workers=1, pool="process")
        threaded = ThreadedServer(config).start()
    except Exception:
        pytest.skip("multiprocessing unavailable in this sandbox")
    try:
        assert threaded.service.pool_kind == "process"
        with ServiceClient(port=threaded.port, timeout_s=120) as client:
            # warm the pool so a worker exists to kill
            assert client.compile(FIG11_SOURCE, name="warm")["ok"]
            processes = threaded.service._executor._processes
            os.kill(next(iter(processes)), signal.SIGKILL)
            # the dead worker breaks the executor; the next compile must
            # ride one supervised rebuild and still answer correctly
            result = client.compile(FIG11_SOURCE, name="after-crash")
            assert result["ok"] is True
            direct = generate_communication(FIG11_SOURCE)
            assert result["annotated_source"] == direct.annotated_source()
            status = client.status()
            assert status["supervision"]["pool_rebuilds"] >= 1
            assert status["supervision"]["requeued"] >= 1
    finally:
        threaded.stop()
