"""ChaosPlan scripting, the controller, and a small live chaos run."""

import pytest

from repro.commgen.pipeline import generate_communication
from repro.fleet import ChaosController, ChaosEvent, ChaosPlan, LocalFleet
from repro.fleet.router import FleetConfig
from repro.lang.printer import format_program
from repro.testing.generator import ArrayProgramGenerator
from repro.util.errors import FaultSpecError


def generated_source(size, seed=0):
    return format_program(ArrayProgramGenerator(seed=seed).program(size=size))


# -- plan parsing and validation ----------------------------------------------

def test_parse_full_spec():
    plan = ChaosPlan.parse("kills=2,crashes=3,severs=1,delays=1,"
                           "delay_s=0.25,seed=7")
    assert plan == ChaosPlan(seed=7, kills=2, worker_crashes=3, severs=1,
                             delays=1, delay_s=0.25)


def test_parse_empty_spec_gives_defaults():
    assert ChaosPlan.parse("") == ChaosPlan()


def test_parse_rejects_unknown_keys():
    with pytest.raises(FaultSpecError, match="known keys"):
        ChaosPlan.parse("kills=1,explosions=2")


def test_parse_rejects_malformed_values():
    with pytest.raises(FaultSpecError, match="bad chaos spec value"):
        ChaosPlan.parse("kills=many")


def test_plan_rejects_negative_counts():
    with pytest.raises(FaultSpecError):
        ChaosPlan(kills=-1)
    with pytest.raises(FaultSpecError):
        ChaosPlan(delay_s=-0.5)


def test_event_rejects_unknown_actions():
    with pytest.raises(FaultSpecError, match="unknown chaos action"):
        ChaosEvent(3, "unplug_the_datacenter")


def test_event_as_dict_carries_target_and_duration():
    event = ChaosEvent(5, "delay", shard=2, seconds=0.5)
    assert event.as_dict() == {"at_request": 5, "action": "delay",
                               "shard": 2, "seconds": 0.5}
    assert ChaosEvent(1, "sever").as_dict() == {"at_request": 1,
                                                "action": "sever"}


def test_active_flag():
    assert ChaosPlan().active
    assert not ChaosPlan(kills=0, worker_crashes=0, severs=0, delays=0).active


# -- scripting ----------------------------------------------------------------

def test_script_is_deterministic_per_seed():
    plan = ChaosPlan(seed=11, kills=1, worker_crashes=2, severs=1, delays=1)
    assert plan.script(3, 24) == plan.script(3, 24)
    other = ChaosPlan(seed=12, kills=1, worker_crashes=2, severs=1, delays=1)
    assert plan.script(3, 24) != other.script(3, 24)


def test_script_keeps_at_least_one_shard_alive():
    plan = ChaosPlan(kills=99)
    events = plan.script(3, 24)
    kills = [e for e in events if e.action == "kill_shard"]
    assert len(kills) == 2  # clamped to n_shards - 1
    assert len({e.shard for e in kills}) == 2


def test_script_targets_crashes_and_delays_at_survivors():
    for seed in range(10):
        plan = ChaosPlan(seed=seed, kills=2, worker_crashes=3, delays=2)
        events = plan.script(4, 40)
        killed = {e.shard for e in events if e.action == "kill_shard"}
        for event in events:
            if event.action in ("crash_worker", "delay"):
                assert event.shard not in killed


def test_script_places_events_in_the_middle_of_the_stream():
    plan = ChaosPlan(seed=3, kills=1, worker_crashes=2, severs=2, delays=1)
    n_requests = 30
    events = plan.script(3, n_requests)
    for event in events:
        assert n_requests // 5 <= event.at_request < (4 * n_requests) // 5
    assert events == sorted(events,
                            key=lambda e: (e.at_request, e.action))


# -- the controller -----------------------------------------------------------

class RecordingFleet:
    def __init__(self):
        self.calls = []

    def kill_shard(self, index):
        self.calls.append(("kill", index))
        return f"shard-{index} killed"

    def crash_worker(self, index):
        raise RuntimeError("shard raced away")


def test_controller_fires_events_in_request_order():
    fleet = RecordingFleet()
    controller = ChaosController(fleet, [
        ChaosEvent(5, "kill_shard", shard=1),
        ChaosEvent(2, "kill_shard", shard=0),
    ])
    controller.advance(1)
    assert fleet.calls == []
    controller.advance(2)
    assert fleet.calls == [("kill", 0)]
    controller.advance(10)  # fires everything due, in order
    assert fleet.calls == [("kill", 0), ("kill", 1)]
    assert [r["detail"] for r in controller.applied] == [
        "shard-0 killed", "shard-1 killed"]


def test_controller_records_misfires_instead_of_raising():
    controller = ChaosController(RecordingFleet(),
                                 [ChaosEvent(0, "crash_worker", shard=1)])
    controller.advance(0)
    (record,) = controller.applied
    assert record["error"] == "RuntimeError: shard raced away"
    assert "detail" not in record


# -- a small live run ---------------------------------------------------------

def test_run_chaos_loses_nothing_and_stays_byte_identical():
    from repro.fleet.chaos import run_chaos

    corpus = [(f"gen-{i}", generated_source(8 + i, seed=300 + i))
              for i in range(4)]
    programs = [corpus[i % len(corpus)] for i in range(12)]
    expected = {name: generate_communication(text).annotated_source()
                for name, text in corpus}
    plan = ChaosPlan(seed=5, kills=1, worker_crashes=1, severs=1)
    config = FleetConfig(heartbeat_s=0.1, reset_timeout_s=0.3)
    with LocalFleet(n_shards=3, fleet_config=config) as fleet:
        report = run_chaos(fleet, programs, plan, timeout_s=30.0)
    assert report["requests"] == 12
    assert report["lost"] == 0
    assert len(report["events"]) == 3
    assert all("error" not in event for event in report["events"])
    for entry in report["results"]:
        assert entry["lost"] is False
        assert (entry["result"]["annotated_source"]
                == expected[entry["name"]])
    assert report["router"]["server"]["role"] == "fleet-router"
    assert set(report["supervision"]) == {"pool_rebuilds", "requeued"}
