"""CircuitBreaker state machine and HashRing placement, no sockets.

Both mechanisms are deterministic by construction — the breaker takes an
injected clock, the ring hashes with sha256 — so the full failure
detector and the affinity/failover story are testable without sleeping
or networking.
"""

import pytest

from repro.fleet.health import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    HashRing,
)


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture()
def clock():
    return FakeClock()


def make_breaker(clock, threshold=3, reset=1.0):
    return CircuitBreaker(failure_threshold=threshold, reset_timeout_s=reset,
                          time_fn=clock)


# -- breaker state machine ----------------------------------------------------

def test_breaker_starts_closed_and_allows(clock):
    breaker = make_breaker(clock)
    assert breaker.state == CLOSED
    assert breaker.allow() is True
    assert breaker.available is True


def test_breaker_trips_open_at_the_failure_threshold(clock):
    breaker = make_breaker(clock, threshold=3)
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == CLOSED  # below threshold: still passing
    breaker.record_failure()
    assert breaker.state == OPEN
    assert breaker.opens == 1
    assert breaker.allow() is False
    assert breaker.available is False


def test_success_resets_the_consecutive_failure_count(clock):
    breaker = make_breaker(clock, threshold=3)
    breaker.record_failure()
    breaker.record_failure()
    breaker.record_success()
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == CLOSED  # the streak broke; no trip


def test_open_breaker_half_opens_after_the_reset_timeout(clock):
    breaker = make_breaker(clock, threshold=1, reset=1.0)
    breaker.record_failure()
    assert breaker.state == OPEN
    clock.advance(0.99)
    assert breaker.allow() is False
    clock.advance(0.02)
    assert breaker.available is True  # non-mutating read
    assert breaker.state == OPEN  # available alone must not transition
    assert breaker.allow() is True  # the probe slot
    assert breaker.state == HALF_OPEN


def test_half_open_admits_exactly_one_probe(clock):
    breaker = make_breaker(clock, threshold=1, reset=1.0)
    breaker.record_failure()
    clock.advance(1.1)
    assert breaker.allow() is True
    # probe outstanding: everything else is refused
    assert breaker.allow() is False
    assert breaker.available is False


def test_successful_probe_closes_the_breaker(clock):
    breaker = make_breaker(clock, threshold=1, reset=1.0)
    breaker.record_failure()
    clock.advance(1.1)
    assert breaker.allow()
    breaker.record_success()
    assert breaker.state == CLOSED
    assert breaker.consecutive_failures == 0
    assert breaker.allow() is True


def test_failed_probe_reopens_and_restarts_the_timer(clock):
    breaker = make_breaker(clock, threshold=3, reset=1.0)
    for _ in range(3):
        breaker.record_failure()
    clock.advance(1.1)
    assert breaker.allow()
    breaker.record_failure()  # the probe failed
    assert breaker.state == OPEN
    assert breaker.opens == 2
    clock.advance(0.5)
    assert breaker.allow() is False  # timer restarted at the probe failure
    clock.advance(0.6)
    assert breaker.allow() is True


def test_failures_while_open_keep_pushing_the_reset_out(clock):
    breaker = make_breaker(clock, threshold=1, reset=1.0)
    breaker.record_failure()
    clock.advance(0.8)
    breaker.record_failure()  # e.g. a heartbeat landed a failure
    assert breaker.opens == 1  # not a new open, same outage
    clock.advance(0.8)
    assert breaker.allow() is False  # 0.8s since the latest failure
    clock.advance(0.3)
    assert breaker.allow() is True


def test_breaker_snapshot_shape(clock):
    breaker = make_breaker(clock, threshold=1)
    breaker.record_failure()
    assert breaker.snapshot() == {
        "state": OPEN,
        "consecutive_failures": 1,
        "opens": 1,
    }


def test_breaker_rejects_bad_parameters(clock):
    with pytest.raises(ValueError):
        CircuitBreaker(failure_threshold=0)
    with pytest.raises(ValueError):
        CircuitBreaker(reset_timeout_s=0)


# -- hash ring ----------------------------------------------------------------

MEMBERS = ["shard-0", "shard-1", "shard-2"]


def test_ring_is_deterministic_across_instances():
    a = HashRing(MEMBERS)
    b = HashRing(list(MEMBERS))
    keys = [f"key-{i}" for i in range(50)]
    assert [a.home(k) for k in keys] == [b.home(k) for k in keys]


def test_preference_lists_every_member_once_home_first():
    ring = HashRing(MEMBERS)
    for i in range(20):
        order = ring.preference(f"key-{i}")
        assert sorted(order) == sorted(MEMBERS)
        assert order[0] == ring.home(f"key-{i}")


def test_keys_spread_across_members():
    ring = HashRing(MEMBERS, virtual_nodes=64)
    homes = {ring.home(f"key-{i}") for i in range(200)}
    assert homes == set(MEMBERS)  # no member starved


def test_removing_a_member_only_remaps_its_own_keys():
    full = HashRing(MEMBERS)
    without = HashRing([m for m in MEMBERS if m != "shard-1"])
    for i in range(200):
        key = f"key-{i}"
        home = full.home(key)
        if home != "shard-1":
            # keys on surviving shards keep their placement (warmth)
            assert without.home(key) == home
        else:
            # orphaned keys land on their failover target, in order
            assert without.home(key) == full.preference(key)[1]


def test_ring_rejects_bad_parameters():
    with pytest.raises(ValueError):
        HashRing([])
    with pytest.raises(ValueError):
        HashRing(MEMBERS, virtual_nodes=0)
