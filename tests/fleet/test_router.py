"""FleetRouter end to end: real shards, real sockets, real failures.

A shared three-shard :class:`LocalFleet` covers the happy paths
(affinity, batching, status); destructive tests — kills, restarts,
hedging, full-fleet drain — each get a private fleet so breaker state
and body counts never leak between tests.
"""

import time

import pytest

from repro.commgen.pipeline import generate_communication
from repro.fleet import FleetConfig, LocalFleet
from repro.lang.printer import format_program
from repro.service import ServiceClient, ServiceError
from repro.service.protocol import (
    E_BAD_REQUEST,
    E_DRAINING,
    E_UNAVAILABLE,
    PROTOCOL,
)
from repro.testing.generator import ArrayProgramGenerator
from repro.testing.programs import FIG11_SOURCE


def generated_source(size, seed=0):
    return format_program(ArrayProgramGenerator(seed=seed).program(size=size))


def fast_config(**overrides):
    """A router that notices failures quickly (tests stay subsecond)."""
    base = dict(heartbeat_s=0.1, reset_timeout_s=0.3, connect_timeout_s=1.0)
    base.update(overrides)
    return FleetConfig(**base)


def source_homed_on(fleet, shard_name, sizes=range(8, 40)):
    """A valid program whose digest homes on ``shard_name``."""
    for seed, size in enumerate(sizes):
        source = generated_source(size, seed=200 + seed)
        if fleet.router.router.home_shard(source).name == shard_name:
            return source
    raise AssertionError(f"no generated source homed on {shard_name}")


def wait_until(predicate, timeout_s=5.0, interval_s=0.05):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return False


@pytest.fixture(scope="module")
def fleet():
    with LocalFleet(n_shards=3, fleet_config=fast_config()) as local:
        yield local


@pytest.fixture()
def client(fleet):
    with ServiceClient(port=fleet.port) as connection:
        yield connection


# -- transparent protocol -----------------------------------------------------

def test_ping_identifies_the_router(client):
    reply = client.ping()
    assert reply["ok"] is True
    assert reply["protocol"] == PROTOCOL
    assert reply["role"] == "fleet-router"
    assert reply["shards"] == 3


def test_compile_through_router_is_byte_identical(client):
    result = client.compile(FIG11_SOURCE, name="fig11")
    direct = generate_communication(FIG11_SOURCE)
    assert result["ok"] is True
    assert result["annotated_source"] == direct.annotated_source()


def test_affinity_repeat_compiles_hit_the_home_shards_cache(client):
    source = generated_source(12, seed=77)
    first = client.compile(source, name="affine")
    second = client.compile(source, name="affine")
    assert first["ok"] and second["ok"]
    assert not first["cache_hit"]
    assert second["cache_hit"]  # same digest -> same shard -> warm


def test_batch_splits_by_program_and_reassembles(client):
    programs = [(f"gen-{i}", generated_source(10 + i, seed=50 + i))
                for i in range(4)]
    reply = client.batch(programs)
    assert reply["ok_count"] == 4 and reply["error_count"] == 0
    assert [r["name"] for r in reply["results"]] == [n for n, _ in programs]
    for (_, source), result in zip(programs, reply["results"]):
        direct = generate_communication(source)
        assert result["annotated_source"] == direct.annotated_source()


def test_per_program_errors_stay_data_through_the_router(client):
    result = client.compile("program p\n???\n", name="broken")
    assert result["ok"] is False
    assert result["error_type"] == "ParseError"


def test_compile_without_source_is_a_bad_request(client):
    with pytest.raises(ServiceError) as excinfo:
        client.request({"type": "compile", "name": "nosrc"})
    assert excinfo.value.code == E_BAD_REQUEST


def test_status_reports_fleet_counters_and_shard_table(client):
    client.compile(FIG11_SOURCE, name="fig11")
    status = client.status()
    assert status["server"]["role"] == "fleet-router"
    assert status["server"]["protocol"] == PROTOCOL
    assert status["server"]["shards"] == 3
    assert status["fleet"]["completed"] >= 1
    assert status["fleet"]["forwards"] >= status["fleet"]["completed"]
    assert len(status["shards"]) == 3
    for shard in status["shards"]:
        assert {"name", "state", "inflight", "forwards",
                "available"} <= set(shard)


def test_home_shard_is_stable(fleet):
    router = fleet.router.router
    assert (router.home_shard(FIG11_SOURCE).name
            == router.home_shard(FIG11_SOURCE).name)


# -- incremental recompiles ---------------------------------------------------

def test_compile_delta_routes_to_the_base_digest_home(fleet, client):
    from repro.batch import source_fingerprint
    base = generated_source(30, seed=91)
    edited = base.replace("+ 1", "+ 2", 1)
    assert edited != base
    digest = source_fingerprint(base)
    router = fleet.router.router
    # delta affinity targets the *base* shard, not the edited text's
    assert router.delta_home_shard(digest) is router.home_shard(base)
    assert client.compile(base, name="delta")["ok"]
    delta = client.compile_delta(edited, name="delta", base_digest=digest)
    assert delta["ok"]
    direct = generate_communication(edited)
    assert delta["annotated_source"] == direct.annotated_source()
    # the warm base really was on the routed shard
    assert delta["incremental"]["whole_hits"] > 0


def test_delta_affinity_uses_the_base_digest_verbatim(fleet):
    from repro.batch import source_fingerprint
    router = fleet.router.router
    digest = source_fingerprint(generated_source(12, seed=92))
    request = {"type": "compile_delta", "source": "edited", "base": digest}
    assert router._affinity_digest(request, "edited") == digest
    # no base (or the empty marker) falls back to the source digest
    for request in ({"type": "compile_delta", "source": "edited"},
                    {"type": "compile_delta", "source": "edited",
                     "base": ""}):
        assert (router._affinity_digest(request, "edited")
                == source_fingerprint("edited"))
    # plain compiles never consult the base key
    request = {"type": "compile", "source": "edited", "base": digest}
    assert (router._affinity_digest(request, "edited")
            == source_fingerprint("edited"))


# -- failover -----------------------------------------------------------------

def test_requests_fail_over_when_their_home_shard_dies():
    with LocalFleet(n_shards=3, fleet_config=fast_config()) as fleet:
        source = source_homed_on(fleet, "shard-1")
        fleet.kill_shard(1)
        with ServiceClient(port=fleet.port) as client:
            result = client.compile_retrying(source, name="orphan")
            assert result["ok"] is True
            direct = generate_communication(source)
            assert result["annotated_source"] == direct.annotated_source()
            status = client.status()
        assert status["fleet"]["rerouted"] >= 1
        # the dead shard's breaker opened (via the forward failure, the
        # heartbeat, or both)
        assert wait_until(lambda: fleet.router.status()["shards"][1]["state"]
                          in ("open", "half_open"))


def test_restarted_shard_rejoins_the_rotation():
    with LocalFleet(n_shards=3, fleet_config=fast_config()) as fleet:
        source = source_homed_on(fleet, "shard-0")
        fleet.kill_shard(0)
        with ServiceClient(port=fleet.port) as client:
            assert client.compile_retrying(source, name="away")["ok"]
            fleet.restart_shard(0)
            # heartbeat probes close the breaker within a few beats
            assert wait_until(
                lambda: fleet.router.status()["shards"][0]["state"]
                == "closed")
            result = client.compile_retrying(source, name="home-again")
            assert result["ok"] is True


def test_unavailable_when_every_shard_is_dead():
    with LocalFleet(n_shards=2, fleet_config=fast_config()) as fleet:
        fleet.kill_shard(0)
        fleet.kill_shard(1)
        with ServiceClient(port=fleet.port) as client:
            with pytest.raises(ServiceError) as excinfo:
                client.compile(FIG11_SOURCE, name="doomed")
            assert excinfo.value.code == E_UNAVAILABLE
            assert excinfo.value.retry_after_s > 0
            status = client.status()
        assert status["fleet"]["unavailable"] >= 1


def test_hedging_beats_a_straggler_shard():
    config = fast_config(hedge_delay_s=0.15)
    with LocalFleet(n_shards=3, fleet_config=config) as fleet:
        source = source_homed_on(fleet, "shard-2")
        fleet.delay_shard(2, seconds=1.5)  # every worker held busy
        with ServiceClient(port=fleet.port) as client:
            started = time.perf_counter()
            result = client.compile_retrying(source, name="hedged")
            elapsed = time.perf_counter() - started
            assert result["ok"] is True
            status = client.status()
        assert status["fleet"]["hedges"] >= 1
        assert status["fleet"]["hedge_wins"] >= 1
        assert elapsed < 1.5  # did not wait out the straggler


def test_drain_drains_every_shard_and_stops_the_router():
    with LocalFleet(n_shards=3, fleet_config=fast_config()) as fleet:
        with ServiceClient(port=fleet.port) as client:
            assert client.compile(FIG11_SOURCE, name="work")["ok"]
            reply = client.drain()
        assert reply["drained"] is True
        assert set(reply["shards"]) == {"shard-0", "shard-1", "shard-2"}
        assert all(v == "drained" for v in reply["shards"].values())
        fleet.router.join(timeout=10)
        assert not fleet.router._thread.is_alive()


def test_drain_reports_dead_shards_instead_of_hanging():
    with LocalFleet(n_shards=3, fleet_config=fast_config()) as fleet:
        fleet.kill_shard(2)
        with ServiceClient(port=fleet.port) as client:
            reply = client.drain()
        assert reply["drained"] is True
        assert reply["shards"]["shard-2"] == "unreachable"
        assert reply["shards"]["shard-0"] == "drained"


def test_compile_after_drain_is_refused_as_draining():
    with LocalFleet(n_shards=1, fleet_config=fast_config()) as fleet:
        router = fleet.router.router
        router._draining = True  # as _handle_drain sets before replying
        with ServiceClient(port=fleet.port) as client:
            with pytest.raises(ServiceError) as excinfo:
                client.compile(FIG11_SOURCE, name="late")
            assert excinfo.value.code == E_DRAINING


def test_severed_router_connections_are_survivable():
    with LocalFleet(n_shards=3, fleet_config=fast_config()) as fleet:
        with ServiceClient(port=fleet.port) as client:
            assert client.compile(FIG11_SOURCE, name="before")["ok"]
            fleet.sever()
            result = client.compile_retrying(FIG11_SOURCE, name="after")
            assert result["ok"] is True
            assert result["cache_hit"] is True  # same home shard, warm
