"""End-to-end profiles and the BENCH_solver.json payload."""

import json

from repro.machine import ConditionPolicy
from repro.obs import (
    format_profile,
    profile_source,
    run_satisfies_each_equation_once,
    stable_form,
    to_json,
)
from repro.obs.bench import SCHEMA, solver_scaling, write_bench_json
from repro.testing.programs import FIG11_SOURCE


def test_profile_verifies_each_equation_once():
    payload = profile_source(FIG11_SOURCE)
    summary = payload["summary"]
    assert len(summary["solver_runs"]) == 2  # READ (BEFORE) + WRITE (AFTER)
    assert summary["each_equation_once"] is True
    assert all(run_satisfies_each_equation_once(run)
               for run in summary["solver_runs"])
    # the two solves land in the global counters too
    evaluations = summary["equation_evaluations"]
    assert set(evaluations) == {str(n) for n in range(1, 16)}


def test_profile_records_graph_statistics():
    payload = profile_source(FIG11_SOURCE)
    graph = payload["summary"]["graph"]
    assert graph["interval_graph"]["nodes"] > 0
    assert graph["interval_graph"]["jump_edges"] == 1  # the goto 77
    assert "normalize" in graph


def test_profile_counts_placements():
    payload = profile_source(FIG11_SOURCE)
    placements = payload["summary"]["placements"]
    assert placements["reads"] > 0 and placements["writes"] > 0


def test_profile_is_json_serializable_and_deterministic():
    first = profile_source(FIG11_SOURCE)
    second = profile_source(FIG11_SOURCE)
    assert json.loads(to_json(first)) == first
    assert stable_form(first) == stable_form(second)


def test_profile_hardened_records_rung_decisions():
    payload = profile_source(FIG11_SOURCE, hardened=True)
    hardened = payload["summary"]["hardened"]
    assert hardened["result"]["rung"] == "balanced"
    assert hardened["attempts"][0]["ok"] is True
    assert hardened["paths_checked"] > 0


def test_profile_simulation_timeline_matches_metrics():
    payload = profile_source(FIG11_SOURCE, run_simulation=True,
                             bindings={"n": 8},
                             policy=ConditionPolicy("always"))
    timeline = payload["summary"]["machine"]["timeline_counts"]
    metrics = payload["summary"]["machine_metrics"]
    assert timeline["send"] == metrics["messages"] > 0
    assert timeline["transmit"] == timeline["send"]
    assert 0 < timeline["recv"] <= timeline["send"]


def test_format_profile_human_rendering():
    text = format_profile(profile_source(FIG11_SOURCE))
    assert text.startswith("# repro profile")
    assert "each-equation-once (all runs): yes" in text
    assert "placements: reads=" in text


def test_format_profile_event_stream():
    payload = profile_source(FIG11_SOURCE)
    text = format_profile(payload, events=True)
    assert text.count("\n") > len(payload["events"])


# -- BENCH_solver.json ------------------------------------------------------

def test_bench_report_shape(tmp_path):
    report = solver_scaling(sizes=(12, 24), repeats=1)
    assert report["schema"] == SCHEMA
    assert [row["size"] for row in report["rows"]] == [12, 24]
    assert report["each_equation_once"] is True
    assert all(row["converged"] for row in report["rows"])
    assert len(report["per_node_growth_ratios_s"]) == 1

    path = tmp_path / "BENCH_solver.json"
    written = write_bench_json(str(path), report)
    assert written is report
    assert json.loads(path.read_text()) == report


def test_bench_rows_increase_in_nodes():
    report = solver_scaling(sizes=(12, 24), repeats=1)
    nodes = [row["nodes"] for row in report["rows"]]
    assert nodes == sorted(nodes) and nodes[0] < nodes[-1]


def test_profile_solver_backend_selects_the_kernel():
    planned = profile_source(FIG11_SOURCE)  # "planned" is the default
    reference = profile_source(FIG11_SOURCE, solver_backend="reference")
    planned_runs = planned["summary"]["solver_runs"]
    reference_runs = reference["summary"]["solver_runs"]
    assert all(run["backend"] == "planned" for run in planned_runs)
    assert all("sparse_evaluations" in run for run in planned_runs)
    assert all(run["backend"] == "reference" for run in reference_runs)
    assert all("sparse_evaluations" not in run for run in reference_runs)
    # both satisfy §5.2 and place identically
    assert planned["summary"]["each_equation_once"] is True
    assert reference["summary"]["each_equation_once"] is True
    assert (planned["summary"]["placements"]
            == reference["summary"]["placements"])


def test_planned_verdict_rejects_tampered_counts():
    """The planned-run verdict is exact, not just an upper bound."""
    payload = profile_source(FIG11_SOURCE)
    run = payload["summary"]["solver_runs"][-1]  # the AFTER solve
    assert run.get("sparse_evaluations") is not None
    assert run_satisfies_each_equation_once(run)
    inflated = dict(run,
                    equation_evaluations=dict(run["equation_evaluations"]))
    inflated["equation_evaluations"]["1"] += 1
    assert not run_satisfies_each_equation_once(inflated)
    # full sweeps + sparse rounds must account for every sweep
    unbalanced = dict(run, full_sweeps=run["full_sweeps"] + 1)
    assert not run_satisfies_each_equation_once(unbalanced)


def test_format_profile_shows_backend_and_sparse_stats():
    text = format_profile(profile_source(FIG11_SOURCE))
    assert "backend=planned" in text
    assert "sparse_rounds=" in text
    text = format_profile(profile_source(FIG11_SOURCE,
                                         solver_backend="reference"))
    assert "backend=reference" in text
    assert "sparse_rounds=" not in text


def test_kernel_bench_report_shape(tmp_path):
    from repro.obs.bench import KERNEL_SCHEMA, kernel_scaling

    report = kernel_scaling(sizes=(12, 24), repeats=1)
    assert report["schema"] == KERNEL_SCHEMA
    assert len(report["rows"]) == 4  # two sizes x two directions
    assert report["all_identical"] is True
    for row in report["rows"]:
        assert row["direction"] in ("BEFORE", "AFTER")
        assert row["reference_median_s"] > 0
        assert row["planned_median_s"] > 0
        assert row["speedup_s"] == (row["reference_median_s"]
                                    / row["planned_median_s"])
    path = tmp_path / "BENCH_kernel.json"
    write_bench_json(str(path), report)
    assert json.loads(path.read_text())["schema"] == KERNEL_SCHEMA
