"""Collector mechanics and the determinism / zero-cost contracts."""

import json

from repro.core.solver import solve
from repro.obs import (
    NULL,
    NullCollector,
    TraceCollector,
    current_collector,
    stable_form,
    to_json,
    trace_payload,
    tracing,
)
from repro.testing.generator import random_analyzed_program, random_problem


def jump_free_instance():
    """Mirror of the benchmark's each-equation-once instance."""
    analyzed = random_analyzed_program(11, size=80, goto_probability=0.0)
    problem = random_problem(analyzed, seed=12, n_elements=8)
    assert not analyzed.ifg.jump_edges()
    return analyzed, problem


# -- activation -------------------------------------------------------------

def test_default_collector_is_the_disabled_singleton():
    assert current_collector() is NULL
    assert NULL.enabled is False


def test_tracing_nests_and_restores():
    with tracing() as outer:
        assert current_collector() is outer
        with tracing() as inner:
            assert current_collector() is inner
            assert inner is not outer
        assert current_collector() is outer
    assert current_collector() is NULL


def test_tracing_restores_on_error():
    try:
        with tracing():
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert current_collector() is NULL


# -- zero-cost disabled path ------------------------------------------------

def test_null_collector_records_nothing():
    collector = NullCollector()
    with tracing(collector):
        analyzed, problem = jump_free_instance()
        solve(analyzed.ifg, problem)
    assert collector.events() == []
    assert collector.counters() == {}
    assert trace_payload(collector)["events"] == []


# -- recording --------------------------------------------------------------

def test_trace_collector_events_and_counters():
    collector = TraceCollector()
    collector.event("solver", "sweep", kind="consumption", index=1)
    collector.count("sweeps", "consumption")
    collector.count("sweeps", "consumption", n=2)
    assert collector.events("solver") == [
        {"category": "solver", "name": "sweep",
         "kind": "consumption", "index": 1}
    ]
    assert collector.events("machine") == []
    assert collector.counters() == {"sweeps": {"consumption": 3}}
    # counters() is a copy — mutating it must not leak back
    collector.counters()["sweeps"]["consumption"] = 99
    assert collector.counters() == {"sweeps": {"consumption": 3}}


def test_timer_emits_duration_field():
    collector = TraceCollector()
    with collector.timer("solver", "run", extra=1):
        pass
    (event,) = collector.events("solver", "run")
    assert event["extra"] == 1
    assert event["duration_s"] >= 0.0


# -- the §5.2 bound via the tracer ------------------------------------------

def test_tracer_equation_counts_match_each_equation_once_bound():
    """The tracer's per-equation counts must equal the bound the
    benchmark asserts by monkeypatching (each equation once per node,
    S2 skipping ROOT, S3/S4 once per node per timing)."""
    analyzed, problem = jump_free_instance()
    with tracing() as collector:
        solve(analyzed.ifg, problem)
    nodes = len(analyzed.ifg.nodes())  # ROOT included
    counts = collector.counters()["equation_evaluations"]
    assert set(counts) == set(range(1, 16))
    for number in range(1, 9):       # S1
        assert counts[number] == nodes, number
    for number in (9, 10):           # S2 — once per child, ROOT excluded
        assert counts[number] == nodes - 1, number
    for number in range(11, 16):     # S3/S4 — per timing
        assert counts[number] == nodes * 2, number


# -- determinism ------------------------------------------------------------

def trace_of_one_solve():
    analyzed, problem = jump_free_instance()
    with tracing() as collector:
        solve(analyzed.ifg, problem)
    return trace_payload(collector)


def test_traces_identical_across_same_seed_runs():
    first, second = trace_of_one_solve(), trace_of_one_solve()
    assert stable_form(first) == stable_form(second)


def test_stable_form_strips_only_wall_clock_fields():
    payload = {"duration_s": 1.5, "nodes": 4,
               "events": [{"best_solve_s": 0.1, "kind": "sweep"}]}
    assert stable_form(payload) == {"nodes": 4, "events": [{"kind": "sweep"}]}


def test_payload_round_trips_through_json():
    payload = trace_of_one_solve()
    assert payload["schema"] == "repro-trace/1"
    assert json.loads(to_json(payload)) == payload
