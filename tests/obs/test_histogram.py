"""LatencyHistogram: O(1)-memory percentiles with bounded error."""

import json
import random

import pytest

from repro.obs import LatencyHistogram
from repro.obs.histogram import SNAPSHOT_QUANTILES


def test_empty_histogram_reports_zeros():
    hist = LatencyHistogram()
    assert hist.count == 0
    assert hist.mean == 0.0
    assert hist.percentile(0.5) == 0.0
    snap = hist.snapshot()
    assert snap["count"] == 0 and snap["min_s"] == 0.0 and snap["p99_s"] == 0.0


def test_single_observation_is_exact():
    hist = LatencyHistogram()
    hist.record(0.125)
    assert hist.count == 1
    assert hist.mean == 0.125
    # a lone sample is clamped to the observed min == max, so every
    # percentile is exact regardless of bucket width
    for q in SNAPSHOT_QUANTILES:
        assert hist.percentile(q) == 0.125


def test_percentiles_within_one_bucket_ratio():
    # the documented accuracy contract: geometric buckets with base b
    # put any percentile within a factor of b of the true sample value
    rng = random.Random(0)
    samples = [rng.uniform(0.001, 2.0) for _ in range(5000)]
    hist = LatencyHistogram()
    for value in samples:
        hist.record(value)
    samples.sort()
    for q in SNAPSHOT_QUANTILES:
        exact = samples[max(0, int(q * len(samples)) - 1)]
        reported = hist.percentile(q)
        assert reported / exact == pytest.approx(1.0, rel=0.25)


def test_percentiles_clamped_to_observed_range():
    hist = LatencyHistogram()
    for value in (0.010, 0.011, 0.012):
        hist.record(value)
    assert 0.010 <= hist.percentile(0.5) <= 0.012
    assert hist.percentile(0.99) <= hist.max_value
    assert hist.percentile(0.01) >= hist.min_value


def test_negative_and_tiny_values_clamp_into_first_bucket():
    hist = LatencyHistogram(minimum=1e-5)
    hist.record(-1.0)  # clock skew: clamps to zero, not a crash
    hist.record(1e-9)
    assert hist.count == 2
    assert hist.min_value == 0.0
    assert hist.percentile(0.5) <= hist.minimum


def test_overflow_bucket_clamps_to_observed_max():
    hist = LatencyHistogram(minimum=1e-3, buckets=4)  # tops out around 2ms
    hist.record(1000.0)
    assert hist.percentile(0.99) == 1000.0


def test_mean_min_max_are_exact_aggregates():
    hist = LatencyHistogram()
    for value in (0.1, 0.2, 0.3, 0.4):
        hist.record(value)
    assert hist.mean == pytest.approx(0.25)
    assert hist.min_value == 0.1
    assert hist.max_value == 0.4


def test_snapshot_is_json_shaped():
    hist = LatencyHistogram()
    for i in range(100):
        hist.record(0.001 * (i + 1))
    snap = hist.snapshot()
    json.dumps(snap)
    assert snap["count"] == 100
    assert set(snap) == {"count", "mean_s", "min_s", "max_s",
                         "p50_s", "p90_s", "p99_s"}
    assert snap["p50_s"] <= snap["p90_s"] <= snap["p99_s"] <= snap["max_s"]


def test_memory_is_constant():
    hist = LatencyHistogram()
    before = len(hist._counts)
    for i in range(10000):
        hist.record(i * 1e-4)
    assert len(hist._counts) == before  # no per-sample storage


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        LatencyHistogram(minimum=0)
    with pytest.raises(ValueError):
        LatencyHistogram(base=1.0)
    with pytest.raises(ValueError):
        LatencyHistogram(buckets=0)
