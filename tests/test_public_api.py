"""Public API surface tests: everything advertised exists and works."""

import re

import pytest

import repro


def test_all_symbols_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_version():
    assert re.match(r"\d+\.\d+\.\d+", repro.__version__)


def test_readme_quickstart_snippet_runs():
    """Execute the README's quickstart code block verbatim."""
    readme = open("README.md").read()
    blocks = re.findall(r"```python\n(.*?)```", readme, re.S)
    assert blocks, "README lost its python examples"
    namespace = {}
    for block in blocks:
        exec(compile(block, "<README>", "exec"), namespace)


def test_docs_exist_and_reference_real_modules():
    import importlib
    import pathlib

    for doc in ("equations", "paper_mapping", "language", "api", "tutorial"):
        path = pathlib.Path("docs") / f"{doc}.md"
        assert path.exists(), path
    # every `repro.x.y` module path mentioned in the docs must import
    mentioned = set()
    for path in pathlib.Path("docs").glob("*.md"):
        mentioned.update(re.findall(r"`(repro(?:\.\w+)+)`", path.read_text()))
    for dotted in sorted(mentioned):
        parts = dotted.split(".")
        for end in range(2, len(parts) + 1):
            candidate = ".".join(parts[:end])
            try:
                importlib.import_module(candidate)
                break
            except ImportError:
                continue
        else:
            module = importlib.import_module(".".join(parts[:-1]))
            assert hasattr(module, parts[-1]), dotted


def test_design_and_experiments_exist():
    for name in ("DESIGN.md", "EXPERIMENTS.md", "README.md"):
        text = open(name).read()
        assert "GIVE-N-TAKE" in text


def test_examples_are_runnable_modules():
    import pathlib
    import subprocess
    import sys

    examples = sorted(pathlib.Path("examples").glob("*.py"))
    assert len(examples) >= 8
    # compile-check only here (full runs are exercised separately)
    for example in examples:
        subprocess.run([sys.executable, "-m", "py_compile", str(example)],
                       check=True)
