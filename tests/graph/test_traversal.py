"""Traversal order property tests (paper §3.4)."""

import pytest

from repro.graph.interval_graph import EdgeType
from repro.graph.traversal import postorder, preorder, preorder_numbering
from repro.testing.generator import random_analyzed_program


def assert_forward(ifg, order):
    position = {node: i for i, node in enumerate(order)}
    for src, dst, edge_type in ifg.edges("FJS"):
        assert position[src] < position[dst], (src, dst, edge_type)


def assert_downward(ifg, order):
    position = {node: i for i, node in enumerate(order)}
    for node in ifg.nodes():
        if ifg.is_header(node):
            for member in ifg.interval(node):
                assert position[node] < position[member], (node, member)


def assert_upward(ifg, order):
    position = {node: i for i, node in enumerate(order)}
    for node in ifg.nodes():
        if ifg.is_header(node):
            for member in ifg.interval(node):
                assert position[member] < position[node], (node, member)


@pytest.mark.parametrize("seed", range(12))
def test_preorder_is_forward_and_downward(seed):
    ifg = random_analyzed_program(seed, size=15).ifg
    order = preorder(ifg)
    assert len(order) == len(ifg.nodes())
    assert_forward(ifg, order)
    assert_downward(ifg, order)


@pytest.mark.parametrize("seed", range(12))
def test_postorder_is_forward_and_upward(seed):
    ifg = random_analyzed_program(seed, size=15).ifg
    order = postorder(ifg)
    assert len(order) == len(ifg.nodes())
    assert_forward(ifg, order)
    assert_upward(ifg, order)


def test_root_first_in_preorder_last_in_postorder(fig11):
    ifg = fig11.ifg
    assert preorder(ifg)[0] is ifg.root
    assert postorder(ifg)[-1] is ifg.root


def test_preorder_numbering_matches_figure12(fig11):
    numbering = preorder_numbering(fig11.ifg)
    assert sorted(numbering.values()) == list(range(1, 15))
    # spot checks pinned by the paper's figure
    by_number = {v: k for k, v in numbering.items()}
    assert by_number[2].name.startswith("do i")
    assert by_number[7].name.startswith("do j")
    assert by_number[12].name.startswith("77")
    assert by_number[11].name == "label 77"


def test_orders_are_deterministic(fig11):
    assert preorder(fig11.ifg) == preorder(fig11.ifg)
    assert postorder(fig11.ifg) == postorder(fig11.ifg)
