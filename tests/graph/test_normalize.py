"""Normalization pass tests."""

import pytest

from repro.graph.builder import build_cfg
from repro.graph.cfg import ControlFlowGraph, NodeKind
from repro.graph.intervals import LoopForest
from repro.graph.normalize import (
    ensure_unique_body_entry,
    ensure_unique_latch,
    normalize,
    prune_unreachable,
    split_critical_edges,
    validate_normalized,
)
from repro.lang.parser import parse
from repro.util.errors import GraphError


def normalized(source):
    cfg = build_cfg(parse(source))
    normalize(cfg)
    return cfg


def test_prune_unreachable_removes_dead_code():
    cfg = build_cfg(parse("goto 9\nx = 1\n9 y = 2"))
    removed = prune_unreachable(cfg)
    assert any(n.name.startswith("x =") for n in removed)
    assert all(not n.name.startswith("x =") for n in cfg.nodes())


def test_prune_unreachable_keeps_everything_reachable():
    cfg = build_cfg(parse("x = 1\ny = 2"))
    assert prune_unreachable(cfg) == []


def test_multiple_back_edges_merged_into_latch():
    # An if/else at the end of the loop body produces two back edges.
    cfg = build_cfg(parse(
        "do i = 1, n\nif t then\nx = 1\nelse\ny = 2\nendif\nenddo"))
    ensure_unique_latch(cfg)
    forest = LoopForest(cfg)
    header = forest.headers()[0]
    assert forest.latch(header)  # unique now


def test_body_entry_inserted_for_multi_entry_loop():
    # Hand-build a loop whose header branches to two body nodes.
    cfg = ControlFlowGraph()
    entry = cfg.new_node(NodeKind.ENTRY, name="entry")
    header = cfg.new_node(NodeKind.HEADER, name="h")
    b1 = cfg.new_node(NodeKind.STMT, name="b1")
    b2 = cfg.new_node(NodeKind.STMT, name="b2")
    latch = cfg.new_node(NodeKind.LATCH, name="latch")
    exit_node = cfg.new_node(NodeKind.EXIT, name="exit")
    cfg.entry, cfg.exit = entry, exit_node
    cfg.add_edge(entry, header)
    cfg.add_edge(header, b1)
    cfg.add_edge(header, b2)
    cfg.add_edge(b1, latch)
    cfg.add_edge(b2, latch)
    cfg.add_edge(latch, header)
    cfg.add_edge(header, exit_node)
    ensure_unique_body_entry(cfg)
    forest = LoopForest(cfg)
    entries = [s for s in cfg.succs(header) if forest.contains(header, s)]
    assert len(entries) == 1
    assert entries[0].kind is NodeKind.BODY_ENTRY


def test_no_critical_edges_after_normalize():
    cfg = normalized(
        "if t then\nx = 1\nendif\ny = 2\n"
        "do i = 1, n\nif u goto 9\nenddo\n"
        "9 z = 3")
    for src, dst in cfg.edges():
        assert not (len(cfg.succs(src)) > 1 and len(cfg.preds(dst)) > 1), (src, dst)


def test_back_edge_split_yields_latch_kind():
    cfg = normalized("do i = 1, n\nif t goto 9\nenddo\n9 x = 1")
    forest = LoopForest(cfg)
    header = forest.headers()[0]
    assert forest.latch(header).kind is NodeKind.LATCH


def test_validate_passes_on_paper_programs():
    from repro.testing.programs import FIG1_SOURCE, FIG3_SOURCE, FIG11_SOURCE
    for source in (FIG1_SOURCE, FIG3_SOURCE, FIG11_SOURCE):
        cfg = build_cfg(parse(source))
        normalize(cfg)
        validate_normalized(cfg)


def test_validate_rejects_critical_edges():
    cfg = ControlFlowGraph()
    a = cfg.new_node(NodeKind.ENTRY, name="a")
    b = cfg.new_node(NodeKind.STMT, name="b")
    c = cfg.new_node(NodeKind.STMT, name="c")
    d = cfg.new_node(NodeKind.EXIT, name="d")
    cfg.entry, cfg.exit = a, d
    cfg.add_edge(a, b)
    cfg.add_edge(a, c)
    cfg.add_edge(b, c)   # critical: a has 2 succs, c has 2 preds
    cfg.add_edge(b, d)
    cfg.add_edge(c, d)
    with pytest.raises(GraphError):
        validate_normalized(cfg)


def test_infinite_loop_rejected():
    cfg = build_cfg(parse("1 x = 1\ngoto 1"))
    with pytest.raises(GraphError):
        normalize(cfg)


def test_split_critical_preserves_structure():
    cfg = build_cfg(parse("if t then\nx = 1\nendif\ny = 2"))
    before_paths = len(cfg.edges())
    split_critical_edges(cfg)
    # Splitting adds one node and one edge per split, no path changes.
    validate = [n for n in cfg.nodes() if n.kind is NodeKind.SYNTH]
    assert len(cfg.edges()) == before_paths + len(validate)
