"""Dot exporter tests."""

from repro.graph.dot import cfg_to_dot, interval_graph_to_dot
from repro.graph.traversal import preorder_numbering


def test_cfg_dot_contains_nodes_and_edges(fig11):
    text = cfg_to_dot(fig11.ifg.cfg)
    assert text.startswith("digraph")
    assert text.rstrip().endswith("}")
    assert "->" in text
    assert "style=dashed" in text  # synthetic nodes


def test_interval_dot_labels_edge_types(fig11):
    text = interval_graph_to_dot(fig11.ifg, numbering=fig11.numbering)
    assert 'label="ENTRY"' in text
    assert 'label="CYCLE"' in text
    assert 'label="JUMP"' in text
    assert "style=dashed" in text  # synthetic edge and nodes
    assert "ROOT" in text


def test_quotes_escaped():
    from repro.graph.cfg import ControlFlowGraph, NodeKind
    cfg = ControlFlowGraph()
    a = cfg.new_node(NodeKind.ENTRY, name='say "hi"')
    b = cfg.new_node(NodeKind.EXIT, name="exit")
    cfg.add_edge(a, b)
    cfg.entry, cfg.exit = a, b
    assert '\\"hi\\"' in cfg_to_dot(cfg)
