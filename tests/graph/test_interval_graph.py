"""Interval flow graph classification tests on hand-built shapes."""

import pytest

from repro.graph.interval_graph import EdgeType, IntervalFlowGraph
from repro.testing.graphs import GraphSketch, diamond, loop_with_jump, nested_loops, simple_loop
from repro.testing.programs import analyze_source
from repro.util.errors import GraphError


def test_diamond_all_forward():
    sketch = diamond()
    types = {t for _, _, t in sketch.ifg.edges("CEFJ")
             if _ is not sketch.ifg.root}
    # besides the ROOT pseudo edges, everything is FORWARD
    real_types = {t for s, d, t in sketch.ifg.edges("CEFJ")
                  if s is not sketch.ifg.root and d is not sketch.ifg.root}
    assert real_types == {EdgeType.FORWARD}


def test_simple_loop_classification():
    sketch = simple_loop()
    ifg = sketch.ifg
    header = sketch["header"]
    body = sketch["body"]
    assert ifg.edge_type(header, body) is EdgeType.ENTRY
    assert ifg.edge_type(body, header) is EdgeType.CYCLE


def test_nested_loops_levels():
    sketch = nested_loops()
    ifg = sketch.ifg
    assert ifg.level(sketch["outer"]) == 1
    assert ifg.level(sketch["inner"]) == 2
    assert ifg.level(sketch["body"]) == 3


def test_jump_classification_and_synthetic_edge():
    sketch = loop_with_jump()
    ifg = sketch.ifg
    test_node = sketch["test"]
    landing = sketch["landing"]
    assert ifg.edge_type(test_node, landing) is EdgeType.JUMP
    header = sketch["header"]
    assert (header, landing, EdgeType.SYNTHETIC) in ifg.edges("S")


def test_two_level_jump_gets_two_synthetic_edges():
    analyzed = analyze_source(
        "do i = 1, n\n"
        "do j = 1, n\n"
        "if t goto 9\n"
        "enddo\n"
        "enddo\n"
        "9 x = 1\n"
    )
    ifg = analyzed.ifg
    jumps = ifg.jump_edges()
    assert len(jumps) == 1
    m, n = jumps[0]
    assert ifg.level(m) - ifg.level(n) == 2
    assert len(ifg.edges("S")) == 2
    synthetic_sources = {s for s, _, _ in ifg.edges("S")}
    assert all(ifg.is_header(s) for s in synthetic_sources)
    assert len(synthetic_sources) == 2


def test_root_edges():
    sketch = diamond()
    ifg = sketch.ifg
    assert ifg.succs(ifg.root, "E") == [ifg.cfg.entry]
    assert ifg.preds(ifg.root, "C") == [ifg.cfg.exit]
    assert ifg.succs(ifg.root, "FJS") == []


def test_root_interval_is_everything():
    sketch = diamond()
    ifg = sketch.ifg
    assert set(ifg.interval(ifg.root)) == set(ifg.real_nodes())
    assert ifg.in_interval(ifg.root, sketch["branch"])


def test_default_neighbor_letters():
    sketch = simple_loop()
    ifg = sketch.ifg
    header = sketch["header"]
    conventional = ifg.succs(header)  # CEFJ
    assert set(conventional) == set(ifg.succs(header, "CEFJ"))


def test_self_loop_rejected():
    with pytest.raises(GraphError):
        GraphSketch([("a", "b"), ("b", "b"), ("b", "c")], normalize_graph=False)


def test_edge_type_lookup_missing_edge():
    sketch = diamond()
    with pytest.raises(KeyError):
        sketch.ifg.edge_type(sketch["left"], sketch["right"])


def test_headers_with_jump_sources_excludes_jumpfree_loops():
    analyzed = analyze_source(
        "do i = 1, n\nx = 1\nenddo\n"
        "do j = 1, n\nif t goto 9\nenddo\n"
        "9 y = 2\n"
    )
    headers = analyzed.ifg.headers_with_jump_sources()
    assert len(headers) == 1
    assert headers[0].name.startswith("do j")
