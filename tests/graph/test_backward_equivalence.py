"""BackwardView vs an explicitly reversed graph.

For jump-free programs the paper's reversal story is exact: an AFTER
problem on G equals a BEFORE problem on reverse(G).  We build the
reversed CFG by hand, run the ordinary forward machinery on it, and
compare the resulting placements position by position.
"""

import pytest

from repro.core import Problem, solve
from repro.core.placement import Placement, Position
from repro.core.problem import Direction, Timing
from repro.graph.cfg import ControlFlowGraph
from repro.graph.interval_graph import IntervalFlowGraph
from repro.graph.normalize import validate_normalized
from repro.testing.generator import random_analyzed_program, random_problem
from repro.testing.programs import analyze_source


def reverse_cfg(cfg):
    """A fresh CFG with every edge reversed; returns (reversed_cfg,
    node mapping original -> copy)."""
    reversed_cfg = ControlFlowGraph()
    mapping = {}
    for node in cfg.nodes():
        mapping[node] = reversed_cfg.new_node(node.kind, stmt=node.stmt,
                                              name=node.name)
    for src, dst in cfg.edges():
        reversed_cfg.add_edge(mapping[dst], mapping[src])
    reversed_cfg.entry = mapping[cfg.exit]
    reversed_cfg.exit = mapping[cfg.entry]
    # tie-break order: reversed program order keeps preorder sensible
    reversed_cfg._order.reverse()
    return reversed_cfg, mapping


def compare(analyzed, build_problem):
    # AFTER problem on the original graph
    after_problem = Problem(direction=Direction.AFTER)
    build_problem(after_problem, lambda node: node)
    after_solution = solve(analyzed.ifg, after_problem)
    after_placement = Placement(analyzed.ifg, after_problem, after_solution)

    # BEFORE problem on the explicitly reversed graph
    reversed_cfg, mapping = reverse_cfg(analyzed.ifg.cfg)
    validate_normalized(reversed_cfg)
    reversed_ifg = IntervalFlowGraph(reversed_cfg)
    before_problem = Problem(direction=Direction.BEFORE)
    build_problem(before_problem, lambda node: mapping[node])
    before_solution = solve(reversed_ifg, before_problem)
    before_placement = Placement(reversed_ifg, before_problem, before_solution)

    # positions mirror: AFTER@original-AFTER == BEFORE@reversed-BEFORE
    for node in analyzed.ifg.real_nodes():
        copy = mapping[node]
        for timing in Timing:
            assert after_placement.at(node, Position.AFTER, timing) == \
                before_placement.at(copy, Position.BEFORE, timing), (node, timing)
            assert after_placement.at(node, Position.BEFORE, timing) == \
                before_placement.at(copy, Position.AFTER, timing), (node, timing)


def test_straightline_equivalence():
    analyzed = analyze_source("u = x(1)\na = 1\nb = 2")

    def build(problem, map_node):
        problem.add_take(map_node(analyzed.node_named("u =")), "e")

    compare(analyzed, build)


def test_branch_equivalence():
    analyzed = analyze_source(
        "if t then\nu = x(1)\nelse\nw = x(1)\nendif\nz = 1")

    def build(problem, map_node):
        problem.add_take(map_node(analyzed.node_named("u =")), "e")
        problem.add_take(map_node(analyzed.node_named("w =")), "e")
        problem.add_steal(map_node(analyzed.node_named("z =")), "e")

    compare(analyzed, build)


def test_loop_equivalence():
    analyzed = analyze_source("do i = 1, n\nu = x(1)\nenddo\na = 1")

    def build(problem, map_node):
        problem.add_take(map_node(analyzed.node_named("u =")), "e")

    compare(analyzed, build)


@pytest.mark.parametrize("seed", range(6))
def test_random_jumpfree_equivalence(seed):
    analyzed = random_analyzed_program(seed, size=12, goto_probability=0.0)
    problem_template = random_problem(analyzed, seed=seed + 2)
    if not problem_template.annotated_nodes():
        pytest.skip("empty instance")

    def build(problem, map_node):
        universe = problem_template.universe
        for node in analyzed.ifg.real_nodes():
            for element in universe.members(problem_template.take_init(node)):
                problem.add_take(map_node(node), element)
            for element in universe.members(problem_template.steal_init(node)):
                problem.add_steal(map_node(node), element)
            for element in universe.members(problem_template.give_init(node)):
                problem.add_give(map_node(node), element)

    compare(analyzed, build)
