"""Merkle interval fingerprints (:meth:`LoopForest.interval_fingerprints`).

The invalidation contract the incremental compile layer depends on
(``docs/scaling.md``): an edit changes exactly the fingerprints of the
intervals on the path from the edited statement to the root — siblings
and unrelated loops keep theirs.
"""

from repro.batch.driver import _render_interval_node
from repro.testing.programs import analyze_source

SOURCE = """\
    a = 1
    do i = 1, n
        b = 2
        do j = 1, n
            c = 3
        enddo
    enddo
    do k = 1, n
        d = 4
    enddo
"""


def fingerprints(source):
    analyzed = analyze_source(source)
    forest = analyzed.ifg.forest
    raw = forest.interval_fingerprints(_render_interval_node)
    # key by loop variable (the only stable cross-program handle)
    named = {}
    for header, digest in raw.items():
        if header is None:
            named["<root>"] = digest
        else:
            named[header.stmt.var] = digest
    return named


def test_fingerprints_are_deterministic():
    assert fingerprints(SOURCE) == fingerprints(SOURCE)


def test_edit_in_nested_loop_changes_only_the_path_to_root():
    base = fingerprints(SOURCE)
    edited = fingerprints(SOURCE.replace("c = 3", "c = 30"))
    assert edited["j"] != base["j"]          # the edited interval
    assert edited["i"] != base["i"]          # its enclosing interval
    assert edited["<root>"] != base["<root>"]
    assert edited["k"] == base["k"]          # the unrelated sibling loop


def test_edit_at_top_level_spares_every_loop():
    base = fingerprints(SOURCE)
    edited = fingerprints(SOURCE.replace("a = 1", "a = 10"))
    assert edited["<root>"] != base["<root>"]
    assert edited["i"] == base["i"]
    assert edited["j"] == base["j"]
    assert edited["k"] == base["k"]


def test_outer_loop_body_edit_spares_the_inner_interval():
    base = fingerprints(SOURCE)
    edited = fingerprints(SOURCE.replace("b = 2", "b = 20"))
    assert edited["i"] != base["i"]
    assert edited["j"] == base["j"]  # nested loop untouched


def test_structural_edit_changes_the_enclosing_fingerprint():
    inserted = SOURCE.replace("        d = 4", "        d = 4\n        e = 5")
    base = fingerprints(SOURCE)
    edited = fingerprints(inserted)
    assert edited["k"] != base["k"]
    assert edited["i"] == base["i"]
