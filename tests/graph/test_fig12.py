"""The Figure 11 program must produce exactly the Figure 12 graph."""

from repro.graph.cfg import NodeKind
from repro.graph.interval_graph import EdgeType


def numbered_edges(analyzed):
    num = analyzed.numbering
    result = {}
    for src, dst, edge_type in analyzed.ifg.edges("CEFJS"):
        key = (
            "ROOT" if src is analyzed.ifg.root else num[src],
            "ROOT" if dst is analyzed.ifg.root else num[dst],
        )
        result[key] = edge_type
    return result


def test_fourteen_real_nodes(fig11):
    assert len(fig11.ifg.real_nodes()) == 14


def test_node_kinds_match_figure(fig11):
    kinds = {n: fig11.node(n).kind for n in range(1, 15)}
    assert kinds[1] is NodeKind.ENTRY
    assert kinds[2] is NodeKind.HEADER      # do i
    assert kinds[3] is NodeKind.STMT        # y(a(i)) = ...
    assert kinds[4] is NodeKind.STMT        # if test(i) goto 77
    assert kinds[5] is NodeKind.LATCH       # synthetic (dashed in Fig 12)
    assert kinds[6] is NodeKind.SYNTH       # dashed
    assert kinds[7] is NodeKind.HEADER      # do j
    assert kinds[8] is NodeKind.STMT        # ...
    assert kinds[9] is NodeKind.SYNTH       # dashed
    assert kinds[10] is NodeKind.SYNTH      # dashed, the goto landing pad
    assert kinds[11] is NodeKind.LABEL      # label 77
    assert kinds[12] is NodeKind.HEADER     # do k
    assert kinds[13] is NodeKind.STMT       # ... = x(k+10) + y(b(k))
    assert kinds[14] is NodeKind.EXIT


def test_synthetic_nodes_are_flagged(fig11):
    dashed = {n for n in range(1, 15) if fig11.node(n).synthetic}
    assert dashed == {5, 6, 9, 10}


def test_edge_classification_matches_figure(fig11):
    edges = numbered_edges(fig11)
    expected = {
        ("ROOT", 1): EdgeType.ENTRY,
        (1, 2): EdgeType.FORWARD,
        (2, 3): EdgeType.ENTRY,
        (2, 6): EdgeType.FORWARD,
        (2, 10): EdgeType.SYNTHETIC,   # caused by JUMP edge (4, 10)
        (3, 4): EdgeType.FORWARD,
        (4, 5): EdgeType.FORWARD,
        (4, 10): EdgeType.JUMP,
        (5, 2): EdgeType.CYCLE,
        (6, 7): EdgeType.FORWARD,
        (7, 8): EdgeType.ENTRY,
        (7, 9): EdgeType.FORWARD,
        (8, 7): EdgeType.CYCLE,
        (9, 11): EdgeType.FORWARD,
        (10, 11): EdgeType.FORWARD,
        (11, 12): EdgeType.FORWARD,
        (12, 13): EdgeType.ENTRY,
        (12, 14): EdgeType.FORWARD,
        (13, 12): EdgeType.CYCLE,
        (14, "ROOT"): EdgeType.CYCLE,
    }
    assert edges == expected


def test_intervals_match_figure(fig11):
    ifg = fig11.ifg
    assert fig11.numbers(ifg.interval(fig11.node(2))) == [3, 4, 5]
    assert fig11.numbers(ifg.interval(fig11.node(7))) == [8]
    assert fig11.numbers(ifg.interval(fig11.node(12))) == [13]
    # T(n) is empty for non-headers
    assert ifg.interval(fig11.node(3)) == []


def test_levels(fig11):
    ifg = fig11.ifg
    assert ifg.level(ifg.root) == 0
    for n in (1, 2, 6, 7, 9, 10, 11, 12, 14):
        assert ifg.level(fig11.node(n)) == 1, n
    for n in (3, 4, 5, 8, 13):
        assert ifg.level(fig11.node(n)) == 2, n


def test_lastchild(fig11):
    ifg = fig11.ifg
    assert fig11.number(ifg.lastchild(fig11.node(2))) == 5
    assert fig11.number(ifg.lastchild(fig11.node(7))) == 8
    assert fig11.number(ifg.lastchild(fig11.node(12))) == 13
    assert ifg.lastchild(ifg.root) is fig11.ifg.cfg.exit
    assert ifg.lastchild(fig11.node(3)) is None


def test_header_of(fig11):
    ifg = fig11.ifg
    assert fig11.number(ifg.header_of(fig11.node(3))) == 2
    assert ifg.header_of(fig11.node(1)) is ifg.root
    assert ifg.header_of(fig11.node(6)) is None  # reached by FORWARD edge


def test_jump_sink_has_single_predecessor(fig11):
    # Paper §3.4: the sink of a JUMP edge never has other predecessors.
    node10 = fig11.node(10)
    assert fig11.numbers(fig11.ifg.preds(node10, "CEFJ")) == [4]


def test_cycle_source_has_no_other_successors(fig11):
    # Paper §3.4: the source of a CYCLE edge has no EFJ successors.
    for latch_number in (5, 8, 13):
        latch = fig11.node(latch_number)
        assert fig11.ifg.succs(latch, "EFJ") == []


def test_synthetic_edge_count_matches_level_difference(fig11):
    # For each JUMP edge (m, n): LEVEL(m) - LEVEL(n) synthetic edges.
    ifg = fig11.ifg
    jumps = ifg.jump_edges()
    assert len(jumps) == 1
    m, n = jumps[0]
    expected = ifg.level(m) - ifg.level(n)
    synthetic = [e for e in ifg.edges("S")]
    assert len(synthetic) == expected == 1


def test_headers_with_jump_sources(fig11):
    headers = fig11.ifg.headers_with_jump_sources()
    assert fig11.numbers(headers) == [2]


def test_children_of_root(fig11):
    assert fig11.numbers(fig11.ifg.children(fig11.ifg.root)) == [
        1, 2, 6, 7, 9, 10, 11, 12, 14]
