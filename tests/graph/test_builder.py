"""CFG builder tests (AST → raw graph)."""

import pytest

from repro.graph.builder import build_cfg
from repro.graph.cfg import NodeKind
from repro.lang.parser import parse
from repro.util.errors import GraphError


def build(source):
    return build_cfg(parse(source))


def kinds_in_order(cfg):
    return [n.kind for n in cfg.nodes()]


def test_straight_line():
    cfg = build("x = 1\ny = 2")
    assert kinds_in_order(cfg) == [
        NodeKind.ENTRY, NodeKind.STMT, NodeKind.STMT, NodeKind.EXIT]
    nodes = cfg.nodes()
    assert cfg.succs(nodes[0]) == [nodes[1]]
    assert cfg.succs(nodes[2]) == [nodes[3]]


def test_empty_program_entry_to_exit():
    cfg = build("")
    assert cfg.succs(cfg.entry) == [cfg.exit]


def test_declarations_produce_no_nodes():
    cfg = build("real x(10)\nparameter n = 2\nx(1) = 1")
    assert sum(1 for n in cfg.nodes() if n.kind is NodeKind.STMT) == 1


def test_if_then_else_shape():
    cfg = build("if t then\nx = 1\nelse\ny = 2\nendif\nz = 3")
    branch = next(n for n in cfg.nodes() if n.name.startswith("if"))
    assert len(cfg.succs(branch)) == 2
    join = next(n for n in cfg.nodes() if n.name.startswith("z ="))
    assert len(cfg.preds(join)) == 2


def test_if_without_else_falls_through():
    cfg = build("if t then\nx = 1\nendif\nz = 3")
    branch = next(n for n in cfg.nodes() if n.name.startswith("if"))
    join = next(n for n in cfg.nodes() if n.name.startswith("z ="))
    assert join in cfg.succs(branch)


def test_do_loop_shape():
    cfg = build("do i = 1, n\nx = 1\nenddo\ny = 2")
    header = next(n for n in cfg.nodes() if n.kind is NodeKind.HEADER)
    body = next(n for n in cfg.nodes() if n.name.startswith("x ="))
    after = next(n for n in cfg.nodes() if n.name.startswith("y ="))
    assert set(cfg.succs(header)) == {body, after}
    assert cfg.succs(body) == [header]


def test_empty_do_loop_gets_latch():
    cfg = build("do i = 1, n\nenddo")
    header = next(n for n in cfg.nodes() if n.kind is NodeKind.HEADER)
    latch = next(n for n in cfg.nodes() if n.kind is NodeKind.LATCH)
    assert cfg.succs(latch) == [header]
    assert latch in cfg.succs(header)


def test_goto_creates_label_node_and_edge():
    cfg = build("if t goto 9\nx = 1\n9 y = 2")
    label = next(n for n in cfg.nodes() if n.kind is NodeKind.LABEL)
    jump = next(n for n in cfg.nodes() if n.name.startswith("if"))
    assert label in cfg.succs(jump)
    assert len(cfg.preds(label)) == 2  # fall-through path and the jump


def test_label_without_goto_gets_no_label_node():
    cfg = build("9 x = 1")
    assert all(n.kind is not NodeKind.LABEL for n in cfg.nodes())


def test_unconditional_goto_has_no_fallthrough():
    cfg = build("goto 9\nx = 1\n9 y = 2")
    jump = next(n for n in cfg.nodes() if n.name.startswith("goto"))
    label = next(n for n in cfg.nodes() if n.kind is NodeKind.LABEL)
    assert cfg.succs(jump) == [label]
    dead = next(n for n in cfg.nodes() if n.name.startswith("x ="))
    assert cfg.preds(dead) == []  # unreachable; normalize() prunes it


def test_undefined_goto_target_raises():
    with pytest.raises(GraphError):
        build("goto 42")


def test_duplicate_goto_target_label_raises():
    with pytest.raises(GraphError):
        build("goto 9\n9 a = 1\n9 b = 2")


def test_duplicate_label_without_goto_is_harmless():
    # labels that no goto targets get no label node and may repeat
    cfg = build("9 a = 1\n9 b = 2")
    assert all(n.kind is not NodeKind.LABEL for n in cfg.nodes())


def test_goto_out_of_loop():
    cfg = build("do i = 1, n\nif t goto 7\nenddo\n7 x = 1")
    jump = next(n for n in cfg.nodes() if n.name.startswith("if"))
    label = next(n for n in cfg.nodes() if n.kind is NodeKind.LABEL)
    assert label in cfg.succs(jump)


def test_statement_nodes_reference_ast():
    program = parse("x = 1")
    cfg = build_cfg(program)
    stmt_node = next(n for n in cfg.nodes() if n.kind is NodeKind.STMT)
    assert stmt_node.stmt is program.body[0]


def test_nested_if_in_loop():
    cfg = build(
        "do i = 1, n\n"
        "if t then\nx = 1\nelse\ny = 2\nendif\n"
        "enddo"
    )
    header = next(n for n in cfg.nodes() if n.kind is NodeKind.HEADER)
    # both branch ends return to the header
    assert len([p for p in cfg.preds(header) if p.kind is NodeKind.STMT]) >= 2
