"""Node splitting tests ([CM69], §3.3)."""

import pytest

from repro.graph.builder import build_cfg
from repro.graph.intervals import check_reducible
from repro.graph.normalize import normalize, prune_unreachable, validate_normalized
from repro.graph.splitting import make_reducible, nodes_for_statement
from repro.lang.parser import parse
from repro.testing.programs import AnalyzedProgram
from repro.util.errors import GraphError, IrreducibleGraphError

GOTO_INTO_LOOP = (
    "if t goto 5\n"
    "do i = 1, n\n"
    "5 u = x(1)\n"
    "enddo\n"
)


def test_splitting_makes_goto_into_loop_reducible():
    cfg = build_cfg(parse(GOTO_INTO_LOOP))
    prune_unreachable(cfg)
    with pytest.raises(IrreducibleGraphError):
        check_reducible(cfg)
    splits = make_reducible(cfg)
    assert splits
    check_reducible(cfg)


def test_split_copies_share_statement():
    program = parse(GOTO_INTO_LOOP)
    cfg = build_cfg(program)
    prune_unreachable(cfg)
    splits = make_reducible(cfg)
    # the improper cycle's second entry is the do header: it gets copied
    # (one node initializes the loop, the copy re-tests on the back edge)
    do_stmt = program.executables()[1]
    copies = nodes_for_statement(cfg, do_stmt)
    assert len(copies) >= 2
    assert all(original.stmt is copy.stmt for original, copy in splits)


def test_normalize_with_splitting_validates():
    cfg = build_cfg(parse(GOTO_INTO_LOOP))
    normalize(cfg, split_irreducible=True)
    validate_normalized(cfg)


def test_normalize_without_splitting_still_rejects():
    cfg = build_cfg(parse(GOTO_INTO_LOOP))
    with pytest.raises(IrreducibleGraphError):
        normalize(cfg)


def test_reducible_graph_unchanged():
    cfg = build_cfg(parse("do i = 1, n\nu = 1\nenddo"))
    prune_unreachable(cfg)
    before = len(cfg)
    assert make_reducible(cfg) == []
    assert len(cfg) == before


def test_split_budget_guard():
    cfg = build_cfg(parse(GOTO_INTO_LOOP))
    prune_unreachable(cfg)
    with pytest.raises(GraphError):
        make_reducible(cfg, max_splits=0)


def test_solver_runs_on_split_program():
    from repro.core import Problem, check_placement, solve
    from repro.core.placement import Placement

    analyzed = AnalyzedProgram(parse(GOTO_INTO_LOOP), split_irreducible=True)
    problem = Problem()
    # annotate every copy of the consuming statement
    copies = [n for n in analyzed.ifg.real_nodes()
              if n.name.startswith(("5", "u ="))and n.stmt is not None]
    consumers = [n for n in analyzed.ifg.real_nodes()
                 if n.stmt is not None and n.name.lstrip("5 '").startswith("u =")]
    assert consumers
    for node in consumers:
        problem.add_take(node, "e")
    solution = solve(analyzed.ifg, problem)
    placement = Placement(analyzed.ifg, problem, solution)
    report = check_placement(analyzed.ifg, problem, placement, min_trips=1)
    assert report.ok(ignore=("safety", "redundant")), str(report)


def test_accesses_cover_every_statement_copy():
    # Reference a distributed array in the DO *bound*: the duplicated
    # header must carry the access on both copies.
    source = (
        "real x(100)\ndistribute x(block)\n"
        "if t goto 5\n"
        "do i = 1, x(9)\n"
        "5 u = 1\n"
        "enddo\n"
    )
    from repro.analysis.references import collect_accesses
    from repro.lang.symbols import SymbolTable

    analyzed = AnalyzedProgram(parse(source), split_irreducible=True)
    symbols = SymbolTable.from_program(analyzed.program)
    accesses, _ = collect_accesses(analyzed, symbols)
    bound_reads = [a for a in accesses if a.array == "x"]
    assert len(bound_reads) >= 2
    assert len({a.node for a in bound_reads}) == len(bound_reads)
