"""ControlFlowGraph data structure tests."""

import pytest

from repro.graph.cfg import ControlFlowGraph, NodeKind
from repro.util.errors import GraphError


def chain(n):
    cfg = ControlFlowGraph()
    nodes = [cfg.new_node(NodeKind.STMT, name=f"s{i}") for i in range(n)]
    for a, b in zip(nodes, nodes[1:]):
        cfg.add_edge(a, b)
    cfg.entry, cfg.exit = nodes[0], nodes[-1]
    return cfg, nodes


def test_nodes_in_insertion_order():
    cfg, nodes = chain(4)
    assert cfg.nodes() == nodes


def test_edges_and_adjacency():
    cfg, nodes = chain(3)
    assert cfg.succs(nodes[0]) == [nodes[1]]
    assert cfg.preds(nodes[2]) == [nodes[1]]
    assert cfg.has_edge(nodes[0], nodes[1])
    assert not cfg.has_edge(nodes[1], nodes[0])


def test_remove_edge():
    cfg, nodes = chain(2)
    cfg.remove_edge(nodes[0], nodes[1])
    assert cfg.succs(nodes[0]) == []
    with pytest.raises(GraphError):
        cfg.remove_edge(nodes[0], nodes[1])


def test_split_edge_positions_before_target_by_default():
    cfg, nodes = chain(3)
    synth = cfg.split_edge(nodes[0], nodes[1])
    assert cfg.succs(nodes[0]) == [synth]
    assert cfg.succs(synth) == [nodes[1]]
    assert cfg.order_index(synth) == cfg.order_index(nodes[1]) - 1
    assert synth.synthetic


def test_split_edge_order_after():
    cfg, nodes = chain(3)
    synth = cfg.split_edge(nodes[1], nodes[2], order_after=nodes[1])
    assert cfg.order_index(synth) == cfg.order_index(nodes[1]) + 1


def test_new_node_order_before_and_after():
    cfg, nodes = chain(2)
    middle = cfg.new_node(NodeKind.STMT, order_after=nodes[0])
    assert cfg.nodes()[1] is middle
    front = cfg.new_node(NodeKind.STMT, order_before=nodes[0])
    assert cfg.nodes()[0] is front


def test_reachable_from_entry():
    cfg, nodes = chain(3)
    orphan = cfg.new_node(NodeKind.STMT, name="orphan")
    reachable = cfg.reachable_from_entry()
    assert orphan not in reachable
    assert all(n in reachable for n in nodes)


def test_remove_node_cleans_edges():
    cfg, nodes = chain(3)
    cfg.remove_node(nodes[1])
    assert cfg.succs(nodes[0]) == []
    assert cfg.preds(nodes[2]) == []
    assert len(cfg) == 2


def test_foreign_edge_rejected():
    cfg1, nodes1 = chain(2)
    cfg2, nodes2 = chain(2)
    with pytest.raises(GraphError):
        cfg1.add_edge(nodes1[0], nodes2[0])


def test_node_identity_semantics():
    cfg, nodes = chain(2)
    assert nodes[0] != nodes[1]
    assert nodes[0] == nodes[0]
    assert len({nodes[0], nodes[0], nodes[1]}) == 2


def test_synthetic_flag_by_kind():
    cfg = ControlFlowGraph()
    stmt = cfg.new_node(NodeKind.STMT)
    latch = cfg.new_node(NodeKind.LATCH)
    synth = cfg.new_node(NodeKind.SYNTH)
    body = cfg.new_node(NodeKind.BODY_ENTRY)
    assert not stmt.synthetic
    assert latch.synthetic and synth.synthetic and body.synthetic


def test_order_map_matches_order_index():
    cfg, nodes = chain(4)
    mapping = cfg.order_map()
    for node in nodes:
        assert mapping[node] == cfg.order_index(node)
