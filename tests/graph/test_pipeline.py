"""Graph pipeline convenience entry tests."""

import pytest

from repro.graph import interval_graph_for_program
from repro.graph.interval_graph import IntervalFlowGraph
from repro.lang.parser import parse
from repro.util.errors import IrreducibleGraphError


def test_accepts_source_text():
    ifg = interval_graph_for_program("a = 1\nb = 2")
    assert isinstance(ifg, IntervalFlowGraph)
    assert len(ifg.real_nodes()) == 4  # entry, two statements, exit


def test_accepts_parsed_program():
    program = parse("do i = 1, n\na = 1\nenddo")
    ifg = interval_graph_for_program(program)
    assert len(ifg.forest.headers()) == 1


def test_rejects_irreducible_program():
    with pytest.raises(IrreducibleGraphError):
        interval_graph_for_program(
            "if t goto 5\ndo i = 1, n\n5 a = 1\nenddo")


def test_declarations_do_not_create_nodes():
    ifg = interval_graph_for_program("real x(10)\ndistribute x(block)\na = 1")
    statement_nodes = [n for n in ifg.real_nodes() if n.stmt is not None]
    assert len(statement_nodes) == 1


def test_empty_program():
    ifg = interval_graph_for_program("")
    assert len(ifg.real_nodes()) == 2  # entry -> exit
