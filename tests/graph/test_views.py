"""Forward/Backward view tests (paper §5.3)."""

import pytest

from repro.graph.views import BackwardView, ForwardView
from repro.testing.generator import random_analyzed_program


def test_forward_view_delegates(fig11):
    view = ForwardView(fig11.ifg)
    node2 = fig11.node(2)
    assert view.succs(node2, "E") == fig11.ifg.succs(node2, "E")
    assert view.lastchild(node2) is fig11.ifg.lastchild(node2)
    assert view.steal_all(node2) is False


def test_backward_swaps_entry_and_cycle(fig11):
    view = BackwardView(fig11.ifg)
    node2 = fig11.node(2)
    # Backward ENTRY successors of the header = original CYCLE preds (latch).
    assert fig11.numbers(view.succs(node2, "E")) == [5]
    # Backward CYCLE successors = original ENTRY preds.
    node3 = fig11.node(3)
    assert fig11.numbers(view.succs(node3, "C")) == [2]


def test_backward_forward_edges_reverse(fig11):
    view = BackwardView(fig11.ifg)
    node7 = fig11.node(7)
    assert fig11.numbers(view.succs(node7, "F")) == [6]
    assert fig11.numbers(view.preds(node7, "F")) == [9]


def test_backward_lastchild_is_body_entry(fig11):
    view = BackwardView(fig11.ifg)
    assert fig11.number(view.lastchild(fig11.node(2))) == 3
    assert view.lastchild(fig11.ifg.root) is fig11.ifg.cfg.entry
    assert view.lastchild(fig11.node(3)) is None


def test_backward_header_of_latch(fig11):
    view = BackwardView(fig11.ifg)
    assert fig11.number(view.header_of(fig11.node(5))) == 2
    # The program exit is the backward first child of ROOT.
    assert view.header_of(fig11.ifg.cfg.exit) is fig11.ifg.root
    assert view.header_of(fig11.node(3)) is None


def test_backward_steal_all_on_jump_loops(fig11):
    view = BackwardView(fig11.ifg)
    assert view.steal_all(fig11.node(2))       # the i loop is jumped out of
    assert not view.steal_all(fig11.node(7))
    assert not view.steal_all(fig11.node(12))


def test_backward_orders_reverse_direction(fig11):
    view = BackwardView(fig11.ifg)
    order = view.nodes_preorder()
    position = {node: i for i, node in enumerate(order)}
    for src, dst, _ in fig11.ifg.edges("FJS"):
        assert position[dst] < position[src]  # backward
    for node in fig11.ifg.nodes():
        if fig11.ifg.is_header(node):
            for member in fig11.ifg.interval(node):
                assert position[node] < position[member]  # still downward


@pytest.mark.parametrize("seed", range(8))
def test_backward_children_sorted_by_backward_order(seed):
    ifg = random_analyzed_program(seed, size=15).ifg
    view = BackwardView(ifg)
    position = {node: i for i, node in enumerate(view.nodes_preorder())}
    for node in ifg.nodes():
        children = view.children(node)
        assert list(children) == sorted(children, key=position.__getitem__)


def test_views_cover_all_nodes(fig11):
    for view in (ForwardView(fig11.ifg), BackwardView(fig11.ifg)):
        assert set(view.nodes_preorder()) == set(fig11.ifg.nodes())
        assert list(view.nodes_reverse_preorder()) == list(
            reversed(view.nodes_preorder()))


def test_view_orders_and_children_are_memoized(fig11):
    """The planned kernel leans on views being cheap to re-query: the
    traversal orders and children come back as the same cached tuples."""
    for view in (ForwardView(fig11.ifg), BackwardView(fig11.ifg)):
        assert view.nodes_preorder() is view.nodes_preorder()
        assert view.nodes_reverse_preorder() is view.nodes_reverse_preorder()
        for node in fig11.ifg.nodes():
            assert view.children(node) is view.children(node)
