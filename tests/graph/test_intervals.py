"""Dominators, reducibility, loop forest tests."""

import pytest

from repro.graph.builder import build_cfg
from repro.graph.cfg import ControlFlowGraph, NodeKind
from repro.graph.intervals import (
    LoopForest,
    check_reducible,
    compute_dominators,
    dominates,
    find_back_edges,
    reverse_postorder,
)
from repro.lang.parser import parse
from repro.util.errors import GraphError, IrreducibleGraphError


def sketch(edges, entry=None, exit_name=None):
    cfg = ControlFlowGraph()
    nodes = {}

    def get(name):
        if name not in nodes:
            nodes[name] = cfg.new_node(NodeKind.STMT, name=name)
        return nodes[name]

    for a, b in edges:
        cfg.add_edge(get(a), get(b))
    cfg.entry = nodes[entry or edges[0][0]]
    cfg.exit = nodes[exit_name] if exit_name else list(nodes.values())[-1]
    return cfg, nodes


def test_dominators_diamond():
    cfg, n = sketch([("e", "b"), ("b", "l"), ("b", "r"), ("l", "j"), ("r", "j")])
    idom = compute_dominators(cfg)
    assert idom[n["j"]] is n["b"]
    assert dominates(idom, n["e"], n["j"])
    assert not dominates(idom, n["l"], n["j"])


def test_dominates_is_reflexive():
    cfg, n = sketch([("a", "b")])
    idom = compute_dominators(cfg)
    assert dominates(idom, n["b"], n["b"])


def test_dominators_require_reachability():
    cfg, n = sketch([("a", "b")])
    cfg.new_node(NodeKind.STMT, name="orphan")
    with pytest.raises(GraphError):
        compute_dominators(cfg)


def test_back_edges_simple_loop():
    cfg, n = sketch([("e", "h"), ("h", "b"), ("b", "h"), ("h", "x")], exit_name="x")
    assert find_back_edges(cfg) == [(n["b"], n["h"])]


def test_reverse_postorder_topological_on_dag():
    cfg, n = sketch([("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")])
    order = reverse_postorder(cfg)
    pos = {node: i for i, node in enumerate(order)}
    assert pos[n["a"]] < pos[n["b"]] < pos[n["d"]]
    assert pos[n["a"]] < pos[n["c"]] < pos[n["d"]]


def test_irreducible_graph_detected():
    # Classic two-entry cycle: e -> a, e -> b, a <-> b.
    cfg, n = sketch([("e", "a"), ("e", "b"), ("a", "b"), ("b", "a"), ("a", "x")],
                    exit_name="x")
    with pytest.raises(IrreducibleGraphError):
        check_reducible(cfg)


def test_goto_into_loop_is_irreducible():
    # The cycle can be entered both through the do header (fall-through)
    # and through label 5 (the goto): two entries, irreducible.
    cfg = build_cfg(parse(
        "if t goto 5\n"
        "do i = 1, n\n"
        "5 x = 1\n"
        "enddo"
    ))
    from repro.graph.normalize import prune_unreachable
    prune_unreachable(cfg)
    with pytest.raises(IrreducibleGraphError):
        check_reducible(cfg)


def test_unconditional_goto_into_loop_rotates_it():
    # With an unconditional goto the do header is only reachable through
    # the body, so the label node becomes the (unique) loop header and
    # the graph stays reducible.
    cfg = build_cfg(parse(
        "goto 5\n"
        "do i = 1, n\n"
        "5 x = 1\n"
        "enddo"
    ))
    from repro.graph.normalize import prune_unreachable
    prune_unreachable(cfg)
    check_reducible(cfg)
    forest = LoopForest(cfg)
    assert [h.kind for h in forest.headers()] == [NodeKind.LABEL]


def loop_forest_for(source):
    cfg = build_cfg(parse(source))
    from repro.graph.normalize import normalize
    normalize(cfg)
    return cfg, LoopForest(cfg)


def test_loop_forest_single_loop():
    cfg, forest = loop_forest_for("do i = 1, n\nx = 1\nenddo")
    headers = forest.headers()
    assert len(headers) == 1
    header = headers[0]
    assert header.kind is NodeKind.HEADER
    members = forest.members(header)
    assert header not in members  # T(h) excludes the header (Tarjan)
    assert forest.level(header) == 1
    assert all(forest.level(m) == 2 for m in members)


def test_loop_forest_nesting_levels():
    cfg, forest = loop_forest_for(
        "do i = 1, n\ndo j = 1, n\nx = 1\nenddo\nenddo")
    outer, inner = forest.headers()
    if forest.level(outer) > forest.level(inner):
        outer, inner = inner, outer
    assert forest.level(outer) == 1 and forest.level(inner) == 2
    assert inner in forest.members(outer)
    assert forest.innermost(inner) is outer
    body = next(n for n in cfg.nodes() if n.name.startswith("x ="))
    assert forest.level(body) == 3
    assert forest.enclosing_headers(body) == [inner, outer]


def test_children_are_one_level_deep():
    cfg, forest = loop_forest_for(
        "do i = 1, n\ndo j = 1, n\nx = 1\nenddo\nenddo")
    outer = min(forest.headers(), key=forest.level)
    children = forest.children(outer)
    assert all(forest.level(c) == 2 for c in children)
    inner = max(forest.headers(), key=forest.level)
    assert inner in children
    body = next(n for n in cfg.nodes() if n.name.startswith("x ="))
    assert body not in children


def test_members_plus_includes_header():
    cfg, forest = loop_forest_for("do i = 1, n\nx = 1\nenddo")
    header = forest.headers()[0]
    assert header in forest.members_plus(header)


def test_latch_unique_after_normalization():
    cfg, forest = loop_forest_for("do i = 1, n\nif t then\nx = 1\nendif\nenddo")
    header = forest.headers()[0]
    latch = forest.latch(header)
    assert cfg.succs(latch) == [header]


def test_non_header_has_empty_members():
    cfg, forest = loop_forest_for("do i = 1, n\nx = 1\nenddo")
    body = next(n for n in cfg.nodes() if n.name.startswith("x ="))
    assert len(forest.members(body)) == 0
    assert not forest.is_header(body)
