"""Shared fixtures: the paper's example programs, solved instances."""

import pytest

from repro.core import Problem, solve
from repro.core.placement import Placement
from repro.core.problem import Direction
from repro.testing.programs import (
    FIG1_SOURCE,
    FIG3_SOURCE,
    FIG11_SOURCE,
    analyze_source,
)


@pytest.fixture(scope="session")
def fig11():
    """The Figure 11 running example, analyzed (graph = Figure 12)."""
    return analyze_source(FIG11_SOURCE)


@pytest.fixture(scope="session")
def fig1():
    return analyze_source(FIG1_SOURCE)


@pytest.fixture(scope="session")
def fig3():
    return analyze_source(FIG3_SOURCE)


def make_fig11_read_problem(analyzed):
    """The READ instance of §4: x_k/y_a/y_b over the Figure 12 graph."""
    problem = Problem(direction=Direction.BEFORE)
    problem.add_take(analyzed.node(13), "x_k", "y_b")
    problem.add_give(analyzed.node(3), "y_a")
    problem.add_steal(analyzed.node(3), "y_b")
    return problem


@pytest.fixture(scope="session")
def fig11_read_problem(fig11):
    return make_fig11_read_problem(fig11)


@pytest.fixture(scope="session")
def fig11_solution(fig11, fig11_read_problem):
    return solve(fig11.ifg, fig11_read_problem)


@pytest.fixture(scope="session")
def fig11_placement(fig11, fig11_read_problem, fig11_solution):
    return Placement(fig11.ifg, fig11_read_problem, fig11_solution)
