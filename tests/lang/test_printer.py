"""Printer tests: printed programs re-parse to the same printed form."""

import pytest

from repro.lang import ast
from repro.lang.parser import parse
from repro.lang.printer import format_comm, format_expr, format_program
from repro.testing.programs import FIG1_SOURCE, FIG3_SOURCE, FIG11_SOURCE


@pytest.mark.parametrize("source", [FIG1_SOURCE, FIG3_SOURCE, FIG11_SOURCE])
def test_print_parse_fixpoint(source):
    printed = format_program(parse(source))
    assert format_program(parse(printed)) == printed


def test_expr_formatting():
    assert format_expr(parse("x = a + b * c").body[0].value) == "a + b * c"
    assert format_expr(parse("x = (a + b) * c").body[0].value) == "(a + b) * c"


def test_range_formatting():
    assert format_expr(ast.RangeExpr(ast.Num(1), ast.Var("n"))) == "1:n"


def test_labels_in_margin():
    printed = format_program(parse("77 do k = 1, n\nx = 1\nenddo"))
    assert printed.splitlines()[0].startswith("77")


def test_nested_indentation():
    printed = format_program(parse("do i = 1, n\nif t then\nx = 1\nendif\nenddo"))
    lines = printed.splitlines()
    assert lines[1].startswith(" " * 8) and "if" in lines[1]
    assert "x = 1" in lines[2]


def test_step_printed_only_when_nontrivial():
    assert ", 2" in format_program(parse("do i = 1, n, 2\nenddo"))
    assert ", 1" not in format_program(parse("do i = 1, n\nenddo"))


def test_comm_statement_formatting():
    comm = ast.Comm("read", "send", ["x(11:n+10)"])
    assert format_comm(comm) == "READ_Send{x(11:n+10)}"
    atomic = ast.Comm("write", None, ["y(1:n)", "x(1:n)"])
    assert format_comm(atomic) == "WRITE{x(1:n), y(1:n)}"


def test_opaque_printed_as_dots():
    assert "... = ..." in format_program(parse("... = ..."))
