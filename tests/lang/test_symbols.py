"""Symbol table tests."""

import pytest

from repro.lang import ast
from repro.lang.parser import parse
from repro.lang.symbols import Distribution, SymbolTable
from repro.util.errors import AnalysisError


def table(source):
    return SymbolTable.from_program(parse(source))


def test_array_declared():
    st = table("real x(100)")
    assert st.is_array("x")
    assert st.arrays["x"].size == ast.Num(100)
    assert st.arrays["x"].distribution is Distribution.REPLICATED


def test_distribute_block():
    st = table("real x(100)\ndistribute x(block)")
    assert st.arrays["x"].distribution is Distribution.BLOCK
    assert st.is_distributed("x")
    assert st.distributed_arrays() == ["x"]


def test_distribute_cyclic_and_replicated():
    st = table("real x(10)\nreal y(10)\ndistribute x(cyclic)\ndistribute y(replicated)")
    assert st.arrays["x"].distribution is Distribution.CYCLIC
    assert not st.is_distributed("y")


def test_scalar_declaration():
    st = table("real s")
    assert "s" in st.scalars and not st.is_array("s")


def test_parameters_collected():
    st = table("parameter n = 100")
    assert st.parameters["n"] == ast.Num(100)


def test_duplicate_array_raises():
    with pytest.raises(AnalysisError):
        table("real x(10)\nreal x(20)")


def test_distribute_undeclared_raises():
    with pytest.raises(AnalysisError):
        table("distribute x(block)")


def test_classify_ref():
    st = table("real x(100)")
    assert st.classify_ref(ast.ArrayRef("x", (ast.Num(1),))) == "array"
    assert st.classify_ref(ast.ArrayRef("test", (ast.Var("i"),))) == "call"


def test_classify_ref_type_error():
    st = table("")
    with pytest.raises(TypeError):
        st.classify_ref(ast.Var("x"))
