"""AST traversal helper tests."""

from repro.lang import ast
from repro.lang.parser import parse
from repro.lang.ast import statement_expressions, walk_expressions, walk_statements


def test_walk_statements_recurses_into_loops_and_ifs():
    program = parse(
        "do i = 1, n\n"
        "if t then\nx = 1\nelse\ny = 2\nendif\n"
        "enddo\n"
        "z = 3"
    )
    statements = list(walk_statements(program.body))
    texts = [type(s).__name__ for s in statements]
    assert texts == ["Do", "If", "Assign", "Assign", "Assign"]


def test_walk_expressions_covers_subscripts():
    expr = parse("x = y(a(i) + 1)").body[0].value
    seen = list(walk_expressions(expr))
    assert ast.Var("i") in seen
    assert ast.Num(1) in seen
    assert any(isinstance(e, ast.BinOp) for e in seen)


def test_statement_expressions_for_assign():
    stmt = parse("x(i) = y(j)").body[0]
    exprs = list(statement_expressions(stmt))
    assert exprs == [stmt.target, stmt.value]


def test_statement_expressions_for_do():
    stmt = parse("do i = 1, n\nenddo").body[0]
    assert list(statement_expressions(stmt)) == [ast.Num(1), ast.Var("n"), ast.Num(1)]


def test_statement_expressions_for_if_goto():
    stmt = parse("if t goto 5").body[0]
    assert list(statement_expressions(stmt)) == [ast.Var("t")]


def test_walk_expressions_range():
    expr = ast.RangeExpr(ast.Num(1), ast.Var("n"))
    assert ast.Var("n") in list(walk_expressions(expr))
