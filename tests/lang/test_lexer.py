"""Lexer unit tests."""

import pytest

from repro.lang.lexer import tokenize
from repro.lang.tokens import TokenKind
from repro.util.errors import ParseError


def kinds(source):
    return [t.kind for t in tokenize(source) if t.kind not in
            (TokenKind.NEWLINE, TokenKind.EOF)]


def test_simple_assignment():
    assert kinds("x = 1") == [TokenKind.NAME, TokenKind.ASSIGN, TokenKind.INT]


def test_keywords_are_recognized():
    assert kinds("do enddo if then else endif goto continue") == [
        TokenKind.DO, TokenKind.ENDDO, TokenKind.IF, TokenKind.THEN,
        TokenKind.ELSE, TokenKind.ENDIF, TokenKind.GOTO, TokenKind.CONTINUE,
    ]


def test_case_insensitive_keywords_and_names():
    tokens = tokenize("DO I = 1, N")
    assert tokens[0].kind == TokenKind.DO
    assert tokens[1].text == "i"
    assert tokens[5].text == "n"


def test_dots_token():
    assert kinds("x = ...") == [TokenKind.NAME, TokenKind.ASSIGN, TokenKind.DOTS]


def test_operators():
    assert kinds("a + b - c * d / e") == [
        TokenKind.NAME, TokenKind.PLUS, TokenKind.NAME, TokenKind.MINUS,
        TokenKind.NAME, TokenKind.STAR, TokenKind.NAME, TokenKind.SLASH,
        TokenKind.NAME,
    ]


def test_comparisons():
    assert kinds("a < b <= c > d >= e == f != g") == [
        TokenKind.NAME, TokenKind.LT, TokenKind.NAME, TokenKind.LE,
        TokenKind.NAME, TokenKind.GT, TokenKind.NAME, TokenKind.GE,
        TokenKind.NAME, TokenKind.EQ, TokenKind.NAME, TokenKind.NE,
        TokenKind.NAME,
    ]


def test_parens_comma_colon():
    assert kinds("x(1:n, i)") == [
        TokenKind.NAME, TokenKind.LPAREN, TokenKind.INT, TokenKind.COLON,
        TokenKind.NAME, TokenKind.COMMA, TokenKind.NAME, TokenKind.RPAREN,
    ]


def test_bang_comment_stripped():
    assert kinds("x = 1 ! a comment with do if") == [
        TokenKind.NAME, TokenKind.ASSIGN, TokenKind.INT,
    ]


def test_classic_comment_line():
    assert kinds("c this is a comment\nx = 1") == [
        TokenKind.NAME, TokenKind.ASSIGN, TokenKind.INT,
    ]


def test_star_comment_line():
    assert kinds("* comment\nx = 2") == [
        TokenKind.NAME, TokenKind.ASSIGN, TokenKind.INT,
    ]


def test_positions_are_one_based():
    tokens = tokenize("x = 1\n  y = 2")
    y = [t for t in tokens if t.text == "y"][0]
    assert (y.line, y.column) == (2, 3)


def test_newline_tokens_separate_statements():
    tokens = tokenize("x = 1\ny = 2")
    assert TokenKind.NEWLINE in [t.kind for t in tokens]


def test_unexpected_character_raises():
    with pytest.raises(ParseError) as excinfo:
        tokenize("x = @")
    assert "line 1" in str(excinfo.value)


def test_distribution_keywords():
    assert kinds("distribute x(block)") == [
        TokenKind.DISTRIBUTE, TokenKind.NAME, TokenKind.LPAREN,
        TokenKind.BLOCK, TokenKind.RPAREN,
    ]


def test_numbers_lex_as_integers():
    tokens = [t for t in tokenize("77 x = 123") if t.kind == TokenKind.INT]
    assert [t.text for t in tokens] == ["77", "123"]


def test_eof_is_last():
    assert tokenize("")[-1].kind == TokenKind.EOF
