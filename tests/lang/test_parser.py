"""Parser unit tests."""

import pytest

from repro.lang import ast
from repro.lang.parser import parse
from repro.util.errors import ParseError


def first(source):
    return parse(source).body[0]


def test_scalar_assignment():
    stmt = first("x = 1")
    assert isinstance(stmt, ast.Assign)
    assert stmt.target == ast.Var("x")
    assert stmt.value == ast.Num(1)


def test_array_assignment_with_indirect_subscript():
    stmt = first("y(a(i)) = 2")
    assert stmt.target == ast.ArrayRef("y", (ast.ArrayRef("a", (ast.Var("i"),)),))


def test_opaque_rhs():
    assert first("x = ...").value == ast.Opaque()


def test_binop_precedence():
    stmt = first("x = a + b * c")
    assert stmt.value == ast.BinOp("+", ast.Var("a"),
                                   ast.BinOp("*", ast.Var("b"), ast.Var("c")))


def test_parenthesized_expression():
    stmt = first("x = (a + b) * c")
    assert stmt.value == ast.BinOp("*", ast.BinOp("+", ast.Var("a"), ast.Var("b")),
                                   ast.Var("c"))


def test_unary_minus():
    stmt = first("x = -a")
    assert stmt.value == ast.BinOp("-", ast.Num(0), ast.Var("a"))


def test_do_loop_default_step():
    stmt = first("do i = 1, n\nx = 1\nenddo")
    assert isinstance(stmt, ast.Do)
    assert (stmt.var, stmt.lo, stmt.hi, stmt.step) == (
        "i", ast.Num(1), ast.Var("n"), ast.Num(1))
    assert len(stmt.body) == 1


def test_do_loop_explicit_step():
    stmt = first("do i = 1, n, 2\nenddo")
    assert stmt.step == ast.Num(2)


def test_nested_loops():
    stmt = first("do i = 1, n\ndo j = 1, m\nx = 1\nenddo\nenddo")
    inner = stmt.body[0]
    assert isinstance(inner, ast.Do) and inner.var == "j"


def test_if_then_else():
    stmt = first("if test then\nx = 1\nelse\ny = 2\nendif")
    assert isinstance(stmt, ast.If)
    assert len(stmt.then_body) == 1 and len(stmt.else_body) == 1


def test_if_without_else():
    stmt = first("if test then\nx = 1\nendif")
    assert stmt.else_body == []


def test_if_condition_with_parens():
    stmt = first("if (a < b) then\nendif")
    assert stmt.cond == ast.BinOp("<", ast.Var("a"), ast.Var("b"))


def test_logical_if_goto():
    stmt = first("if test(i) goto 77")
    assert isinstance(stmt, ast.IfGoto)
    assert stmt.target == 77
    assert stmt.cond == ast.ArrayRef("test", (ast.Var("i"),))


def test_goto():
    stmt = first("goto 10")
    assert isinstance(stmt, ast.Goto) and stmt.target == 10


def test_labels_attach_to_statements():
    program = parse("10 x = 1\n20 continue")
    assert [s.label for s in program.body] == [10, 20]


def test_label_on_do():
    stmt = first("77 do k = 1, n\nenddo")
    assert isinstance(stmt, ast.Do) and stmt.label == 77


def test_declarations():
    program = parse("real x(100)\ninteger a(50)\nreal s")
    decls = program.body
    assert decls[0] == ast.Declaration("real", "x", ast.Num(100), line=1)
    assert decls[1] == ast.Declaration("integer", "a", ast.Num(50), line=2)
    assert decls[2].size is None


def test_parameter():
    stmt = first("parameter n = 100")
    assert stmt == ast.ParameterDef("n", ast.Num(100), line=1)


def test_distribute():
    stmt = first("distribute x(block)")
    assert stmt == ast.Distribute("x", "block", line=1)


def test_distribute_bad_scheme():
    with pytest.raises(ParseError):
        parse("distribute x(diagonal)")


def test_range_argument():
    stmt = first("x = y(1:n)")
    assert stmt.value == ast.ArrayRef("y", (ast.RangeExpr(ast.Num(1), ast.Var("n")),))


def test_missing_enddo_raises():
    with pytest.raises(ParseError):
        parse("do i = 1, n\nx = 1")


def test_missing_endif_raises():
    with pytest.raises(ParseError):
        parse("if t then\nx = 1")


def test_trailing_junk_raises():
    with pytest.raises(ParseError):
        parse("x = 1 y")


def test_empty_program():
    assert parse("").body == []


def test_program_split_helpers():
    program = parse("real x(10)\nx(1) = 2")
    assert len(program.declarations()) == 1
    assert len(program.executables()) == 1


def test_multi_subscript_arrays():
    stmt = first("x(i, j) = 1")
    assert stmt.target == ast.ArrayRef("x", (ast.Var("i"), ast.Var("j")))


def test_source_lines_recorded():
    program = parse("x = 1\n\ny = 2")
    assert [s.line for s in program.body] == [1, 3]
