"""Property-based verification of the paper's correctness criteria.

Hypothesis drives the random structured-program generator and random
problem annotations; the path-replay checker is the oracle.

Guarantees verified (see DESIGN.md for the zero-trip discussion):

* C1 (balance) holds on *all* bounded paths, both directions, both modes;
* C3 (sufficiency) holds on all paths where entered loops run >= 1 trip
  in default mode, and on *all* paths in strict mode;
* C2 (safety) violations only ever occur as zero-trip overproduction in
  default mode, and never in strict mode.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import check_placement, solve
from repro.core.placement import Placement
from repro.core.problem import Direction
from repro.testing.generator import random_analyzed_program, random_problem

SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

program_seeds = st.integers(min_value=0, max_value=10_000)
problem_seeds = st.integers(min_value=0, max_value=10_000)
directions = st.sampled_from(list(Direction))


def build(seed, problem_seed, direction, hoist, trust):
    analyzed = random_analyzed_program(seed, size=14)
    problem = random_problem(analyzed, seed=problem_seed, direction=direction)
    problem.hoist_zero_trip = hoist
    problem.trust_loop_side_effects = trust
    solution = solve(analyzed.ifg, problem)
    placement = Placement(analyzed.ifg, problem, solution)
    return analyzed, problem, placement


@settings(**SETTINGS)
@given(program_seeds, problem_seeds, directions)
def test_default_mode_balance_on_all_paths(seed, problem_seed, direction):
    analyzed, problem, placement = build(seed, problem_seed, direction, True, True)
    report = check_placement(analyzed.ifg, problem, placement, max_paths=100)
    assert not report.by_kind("balance"), str(report)


@settings(**SETTINGS)
@given(program_seeds, problem_seeds, directions)
def test_default_mode_sufficiency_on_executed_loops(seed, problem_seed, direction):
    analyzed, problem, placement = build(seed, problem_seed, direction, True, True)
    report = check_placement(analyzed.ifg, problem, placement, max_paths=100,
                             min_trips=1)
    assert not report.by_kind("sufficiency"), str(report)
    assert not report.by_kind("safety"), str(report)


@settings(**SETTINGS)
@given(program_seeds, problem_seeds, directions)
def test_strict_mode_all_criteria_on_all_paths(seed, problem_seed, direction):
    analyzed, problem, placement = build(seed, problem_seed, direction, False, False)
    report = check_placement(analyzed.ifg, problem, placement, max_paths=100)
    assert not report.by_kind("balance"), str(report)
    assert not report.by_kind("sufficiency"), str(report)
    assert not report.by_kind("safety"), str(report)


@settings(**SETTINGS)
@given(program_seeds, problem_seeds)
def test_postpass_preserves_all_criteria(seed, problem_seed):
    from repro.core.postpass import shift_synthetic_productions

    analyzed, problem, placement = build(seed, problem_seed, Direction.BEFORE,
                                         True, True)
    before = check_placement(analyzed.ifg, problem, placement, max_paths=80)
    shift_synthetic_productions(placement)
    after = check_placement(analyzed.ifg, problem, placement, max_paths=80)
    for kind in ("balance", "sufficiency"):
        assert len(after.by_kind(kind)) == len(before.by_kind(kind))


@settings(**SETTINGS)
@given(program_seeds, problem_seeds,
       st.integers(min_value=1, max_value=6))
def test_pressure_capping_preserves_correctness(seed, problem_seed, max_span):
    from repro.core.pressure import limit_production_span, measure_spans

    analyzed = random_analyzed_program(seed, size=12, goto_probability=0.0)
    problem = random_problem(analyzed, seed=problem_seed)
    if not problem.annotated_nodes():
        return
    _, placement, _ = limit_production_span(analyzed.ifg, problem, max_span)
    report = check_placement(analyzed.ifg, problem, placement, max_paths=80,
                             min_trips=1)
    hard = [v for v in report.violations
            if v.kind not in ("safety", "redundant")]
    assert not hard, str(report)


@settings(**SETTINGS)
@given(program_seeds)
def test_generated_graphs_satisfy_invariants(seed):
    from repro.graph.normalize import validate_normalized

    analyzed = random_analyzed_program(seed, size=16, goto_probability=0.5)
    validate_normalized(analyzed.ifg.cfg)


@settings(**SETTINGS)
@given(program_seeds)
def test_preorder_numbering_is_a_permutation(seed):
    analyzed = random_analyzed_program(seed, size=16)
    numbers = sorted(analyzed.numbering.values())
    assert numbers == list(range(1, len(analyzed.ifg.real_nodes()) + 1))
