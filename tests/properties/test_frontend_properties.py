"""Frontend round-trip properties on random programs."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.lang.parser import parse
from repro.lang.printer import format_program
from repro.testing.generator import ArrayProgramGenerator, ProgramGenerator

SETTINGS = dict(max_examples=30, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])

seeds = st.integers(min_value=0, max_value=10_000)
sizes = st.integers(min_value=1, max_value=40)


@settings(**SETTINGS)
@given(seeds, sizes)
def test_print_parse_fixpoint_on_random_programs(seed, size):
    program = ProgramGenerator(seed, goto_probability=0.4).program(size)
    printed = format_program(program)
    assert format_program(parse(printed)) == printed


@settings(**SETTINGS)
@given(seeds, sizes)
def test_print_parse_fixpoint_on_array_programs(seed, size):
    program = ArrayProgramGenerator(seed).program(size)
    printed = format_program(program)
    assert format_program(parse(printed)) == printed


@settings(**SETTINGS)
@given(seeds)
def test_reparsed_program_produces_identical_graph(seed):
    from repro.testing.programs import AnalyzedProgram
    from repro.graph.traversal import preorder_numbering

    program = ProgramGenerator(seed, goto_probability=0.4).program(14)
    first = AnalyzedProgram(program)
    second = AnalyzedProgram(parse(format_program(program)))
    assert len(first.ifg.real_nodes()) == len(second.ifg.real_nodes())
    first_kinds = [n.kind for n in first.ifg.real_nodes()]
    second_kinds = [n.kind for n in second.ifg.real_nodes()]
    assert first_kinds == second_kinds
