"""Robustness properties of the hardened pipeline under fault injection.

Random array programs (the same generator the other pipeline property
tests fuzz with) run through :class:`HardenedPipeline` and then execute
on the simulator under a matrix of seeded fault plans.  The properties:

* **determinism** — same program seed + same fault seed ⇒ the identical
  degradation rung and bit-identical metrics;
* **certified rung** — whichever rung the ladder chose passes the §3.2
  checker for C1 (balance) and C3 (sufficiency); for the naive rung —
  balanced by construction — the simulator's receive matching is the
  independent balance check;
* **no unhandled exceptions** — every (program, fault plan) cell of the
  matrix completes once retries are allowed for.

Seeds are fixed (not hypothesis-drawn) so every CI run replays the
exact same fault schedules.
"""

import pytest

from repro.commgen import HardenedPipeline
from repro.core import check_placement
from repro.lang.printer import format_program
from repro.machine import (
    ConditionPolicy,
    FaultPlan,
    MachineModel,
    RetryPolicy,
    simulate,
)
from repro.testing.generator import ArrayProgramGenerator

PROGRAM_SEEDS = (0, 1, 2, 3, 5, 8, 13, 21, 34, 55)

FAULT_MATRIX = {
    "drop": FaultPlan(seed=11, drop_probability=0.25),
    "dup": FaultPlan(seed=12, duplicate_probability=0.5),
    "delay": FaultPlan(seed=13, delay_jitter=60.0),
    "crash": FaultPlan(seed=14, crash_probability=0.15, crash_duration=80.0),
    "all": FaultPlan(seed=15, drop_probability=0.2,
                     duplicate_probability=0.2, delay_jitter=40.0,
                     crash_probability=0.1, crash_duration=60.0),
}

RETRY = RetryPolicy(max_retries=32, timeout=200.0)


def program_source(seed):
    return format_program(ArrayProgramGenerator(seed).program(12))


def run_once(source, plan, seed):
    hardened = HardenedPipeline().run(source)
    metrics = simulate(hardened.annotated_program, MachineModel(),
                       {"n": 5}, ConditionPolicy("random", seed=seed),
                       faults=plan, retry=RETRY)
    return hardened, metrics


@pytest.mark.parametrize("seed", PROGRAM_SEEDS)
@pytest.mark.parametrize("fault", sorted(FAULT_MATRIX))
def test_seeded_faults_are_deterministic(seed, fault):
    source = program_source(seed)
    plan = FAULT_MATRIX[fault]
    first_hardened, first_metrics = run_once(source, plan, seed)
    second_hardened, second_metrics = run_once(source, plan, seed)
    assert first_hardened.rung == second_hardened.rung
    assert first_hardened.report.as_dict() == second_hardened.report.as_dict()
    assert first_metrics == second_metrics


@pytest.mark.parametrize("seed", PROGRAM_SEEDS)
def test_chosen_rung_passes_checker(seed):
    source = program_source(seed)
    hardened = HardenedPipeline().run(source)
    assert hardened.report.attempts[-1].ok
    if hardened.rung == "naive":
        return  # balanced by construction; simulator checks pairing below
    result = hardened.result
    for problem, placement in ((result.read_problem, result.read_placement),
                               (result.write_problem,
                                result.write_placement)):
        balance = check_placement(result.analyzed.ifg, problem, placement,
                                  max_paths=100)
        assert not balance.by_criterion("C1"), balance.summary()
        sufficiency = check_placement(result.analyzed.ifg, problem, placement,
                                      max_paths=100, min_trips=1)
        assert not sufficiency.by_criterion("C3"), sufficiency.summary()


@pytest.mark.parametrize("seed", PROGRAM_SEEDS)
@pytest.mark.parametrize("fault", sorted(FAULT_MATRIX))
def test_fault_matrix_completes_without_unhandled_exceptions(seed, fault):
    source = program_source(seed)
    hardened, metrics = run_once(source, FAULT_MATRIX[fault], seed)
    # the run completed: every injected loss was timed out and retried
    # exactly once (a dropped retransmission drops and retries again)
    assert metrics.retries == metrics.timeouts == metrics.dropped_messages
    assert metrics.total_time >= metrics.work_time
