"""Pipeline-level fuzzing: random array programs through all three
applications (communication, prefetching, register promotion), validated
by the path-replay checker and executed on the simulator (whose
receive-matching is an independent balance check)."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.commgen import generate_communication
from repro.core import check_placement
from repro.lang.printer import format_program
from repro.machine import ConditionPolicy, MachineModel, simulate
from repro.prefetch import generate_prefetches
from repro.regpromo import promote_registers
from repro.testing.generator import ArrayProgramGenerator

SETTINGS = dict(max_examples=20, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])

seeds = st.integers(min_value=0, max_value=10_000)


def program_source(seed):
    return format_program(ArrayProgramGenerator(seed).program(14))


def assert_placements_ok(result, pairs):
    for problem, placement in pairs:
        report = check_placement(result.analyzed.ifg, problem, placement,
                                 max_paths=100, min_trips=1)
        hard = [v for v in report.violations
                if v.kind not in ("safety", "redundant")]
        assert not hard, str(report)
        balance = check_placement(result.analyzed.ifg, problem, placement,
                                  max_paths=100).by_kind("balance")
        assert not balance


@settings(**SETTINGS)
@given(seeds)
def test_commgen_on_random_array_programs(seed):
    source = program_source(seed)
    result = generate_communication(source)
    assert_placements_ok(result, [
        (result.read_problem, result.read_placement),
        (result.write_problem, result.write_placement),
    ])
    # executing the annotated program is an independent balance check:
    # the simulator raises on a receive without a matching send
    simulate(result.annotated_program, MachineModel(), {"n": 5},
             ConditionPolicy("random", seed=seed))


@settings(**SETTINGS)
@given(seeds)
def test_prefetch_on_random_array_programs(seed):
    source = program_source(seed)
    result = generate_prefetches(source)
    assert_placements_ok(result, [(result.problem, result.placement)])


@settings(**SETTINGS)
@given(seeds)
def test_regpromo_on_random_array_programs(seed):
    source = program_source(seed)
    result = promote_registers(source)
    assert_placements_ok(result, [
        (result.load_problem, result.load_placement),
        (result.store_problem, result.store_placement),
    ])


@settings(**SETTINGS)
@given(seeds)
def test_pipeline_is_deterministic(seed):
    source = program_source(seed)
    first = generate_communication(source).annotated_source()
    second = generate_communication(source).annotated_source()
    assert first == second
