"""Semantic-equivalence fuzzing of the CSE transformation.

Random scalar programs are interpreted before and after the transform;
the observable variables must end with identical values.  This closes
the loop from dataflow equations to actually-correct rewritten code.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.lang import ast
from repro.lang.parser import parse
from repro.lang.printer import format_program
from repro.pre.transform import eliminate_common_subexpressions
from repro.testing.programs import AnalyzedProgram

SETTINGS = dict(max_examples=25, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


def scalar_program(seed, size=10):
    """A random straight/branchy/loopy scalar program whose expressions
    reuse a small pool (so CSE has something to do)."""
    rng = random.Random(seed)
    pool = ["a + b", "a * b", "b - a", "a + b + s"]
    counter = [0]

    def expr():
        return pool[rng.randrange(len(pool))]

    def body(depth, budget):
        lines = []
        while budget[0] > 0:
            budget[0] -= 1
            roll = rng.random()
            counter[0] += 1
            name = f"v{counter[0]}"
            if depth < 2 and roll < 0.2:
                lines.append(f"do i{counter[0]} = 1, 2")
                lines.extend("    " + l for l in body(depth + 1, budget))
                lines.append("enddo")
            elif depth < 2 and roll < 0.4:
                lines.append(f"if a < b then")
                lines.extend("    " + l for l in body(depth + 1, budget))
                if rng.random() < 0.5:
                    lines.append("else")
                    lines.extend("    " + l for l in body(depth + 1, budget))
                lines.append("endif")
            elif roll < 0.55:
                lines.append(f"a = {expr()}")
            elif roll < 0.7:
                lines.append(f"s = s + {rng.randint(1, 3)}")
            else:
                lines.append(f"{name} = {expr()}")
        return lines

    return "\n".join(body(0, [size])) or "u = a + b"


def interpret(source, env):
    program = parse(source)
    env = dict(env)

    def value(expr):
        if isinstance(expr, ast.Num):
            return expr.value
        if isinstance(expr, ast.Var):
            return env.get(expr.name, 0)
        if isinstance(expr, ast.BinOp):
            left, right = value(expr.left), value(expr.right)
            return {
                "+": left + right, "-": left - right, "*": left * right,
                "/": left // right if right else 0,
                "<": left < right, ">": left > right,
                "<=": left <= right, ">=": left >= right,
                "==": left == right, "!=": left != right,
            }[expr.op]
        raise AssertionError(repr(expr))

    def run(body):
        for stmt in body:
            if isinstance(stmt, ast.Assign) and isinstance(stmt.target, ast.Var):
                env[stmt.target.name] = value(stmt.value)
            elif isinstance(stmt, ast.Do):
                i = value(stmt.lo)
                while i <= value(stmt.hi):
                    env[stmt.var] = i
                    run(stmt.body)
                    i += 1
            elif isinstance(stmt, ast.If):
                run(stmt.then_body if value(stmt.cond) else stmt.else_body)

    run(program.executables())
    return {k: v for k, v in env.items() if not k.startswith("__")}


@settings(**SETTINGS)
@given(st.integers(min_value=0, max_value=10_000))
def test_cse_preserves_semantics(seed):
    source = scalar_program(seed)
    env = {"a": 5, "b": 2, "s": 0}
    before = interpret(source, env)
    result = eliminate_common_subexpressions(
        AnalyzedProgram(parse(source)))
    after = interpret(result.transformed_source(), env)
    assert after == before


@settings(**SETTINGS)
@given(st.integers(min_value=0, max_value=10_000))
def test_cse_never_increases_dynamic_evaluations(seed):
    """The quantity PRE minimizes: along every >=1-trip path, the LAZY
    solution evaluates each expression at most as often as the original
    program did (static duplication on branches is fine — that is the
    partial-redundancy transformation itself)."""
    from repro.core.paths import enumerate_paths
    from repro.core.placement import Placement
    from repro.core.solver import solve
    from repro.pre.expressions import build_cse_problem
    from repro.pre.gnt_pre import evaluations_on_path

    source = scalar_program(seed)
    analyzed = AnalyzedProgram(parse(source))
    problem, _ = build_cse_problem(analyzed)
    if not len(problem.universe):
        return
    solution = solve(analyzed.ifg, problem)
    placement = Placement(analyzed.ifg, problem, solution)
    for path in enumerate_paths(analyzed.ifg, max_paths=40, min_trips=1):
        evaluations = evaluations_on_path(placement, problem, path,
                                          analyzed.ifg)
        original = sum(
            bin(problem.take_init(node)).count("1") for node in path)
        assert evaluations <= original, (evaluations, original)
