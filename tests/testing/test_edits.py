"""EditModel: seeded, validated source edits for incremental testing."""

import pytest

from repro.lang.printer import format_program
from repro.testing.edits import DISTRIBUTED_ARRAYS, EDIT_KINDS, EditModel
from repro.testing.generator import ArrayProgramGenerator
from repro.testing.programs import analyze_source


def generated(seed=7, size=30):
    return format_program(ArrayProgramGenerator(seed=seed).program(size=size))


@pytest.mark.parametrize("kind", EDIT_KINDS)
def test_each_kind_produces_an_analyzable_program(kind):
    base = generated()
    edited = getattr(EditModel(seed=1), kind)(base)
    assert edited is not None and edited != base
    analyze_source(edited)  # must not raise


def test_edits_are_deterministic_by_seed():
    base = generated()
    a = list(EditModel(seed=5).edit_sequence(base, 4))
    b = list(EditModel(seed=5).edit_sequence(base, 4))
    c = list(EditModel(seed=6).edit_sequence(base, 4))
    assert a == b
    assert a != c


def test_edit_sequence_is_cumulative():
    base = generated()
    texts = [edited for _, edited in EditModel(seed=2).edit_sequence(base, 5)]
    assert len(texts) == len(set(texts)) == 5
    assert base not in texts


def test_scalar_rhs_preserves_array_references():
    base = generated()
    edited = EditModel(seed=3).scalar_rhs(base)
    for array in DISTRIBUTED_ARRAYS:
        refs = sorted(line.count(f"{array}(")
                      for line in base.splitlines())
        assert refs == sorted(line.count(f"{array}(")
                              for line in edited.splitlines())


def test_insert_grows_and_delete_shrinks_the_program():
    base = generated()
    model = EditModel(seed=4)
    longer = model.insert(base)
    shorter = model.delete(base)
    assert len(longer.splitlines()) == len(base.splitlines()) + 1
    assert len(shorter.splitlines()) == len(base.splitlines()) - 1


def test_random_edit_restricts_to_requested_kinds():
    base = generated()
    model = EditModel(seed=8)
    for _ in range(6):
        kind, edited = model.random_edit(base, kinds=("scalar_rhs",))
        assert kind == "scalar_rhs"
        assert edited != base


def test_random_edit_raises_when_nothing_applies():
    with pytest.raises(ValueError, match="no edit kind"):
        EditModel().random_edit("a = 1\n", kinds=("delete",))
