"""Random program/problem generator tests."""

import pytest

from repro.graph.cfg import NodeKind
from repro.graph.normalize import validate_normalized
from repro.lang import ast
from repro.testing.generator import (
    ProgramGenerator,
    random_analyzed_program,
    random_problem,
)
from repro.testing.graphs import diamond, loop_with_jump, nested_loops, simple_loop


def test_generator_is_deterministic():
    from repro.lang.printer import format_program

    first = ProgramGenerator(seed=5).program(size=15)
    second = ProgramGenerator(seed=5).program(size=15)
    assert format_program(first) == format_program(second)


def test_generator_respects_size_budget():
    for size in (10, 40, 160):
        program = ProgramGenerator(seed=1).program(size=size)
        count = sum(1 for _ in ast.walk_statements(program.body))
        assert count >= size  # budget fully used
        assert count <= size * 3  # and not wildly exceeded


def test_generated_programs_analyze_cleanly():
    for seed in range(20):
        analyzed = random_analyzed_program(seed, size=15, goto_probability=0.5)
        validate_normalized(analyzed.ifg.cfg)


def test_gotos_are_forward_and_outward():
    generator = ProgramGenerator(seed=9, goto_probability=1.0)
    program = generator.program(size=25)
    labels = {}
    for stmt in ast.walk_statements(program.body):
        if stmt.label is not None:
            labels[stmt.label] = stmt
    for stmt in ast.walk_statements(program.body):
        if isinstance(stmt, ast.IfGoto):
            assert stmt.target in labels


def test_random_problem_every_element_has_consumer():
    analyzed = random_analyzed_program(3, size=12)
    problem = random_problem(analyzed, seed=4, n_elements=4)
    for element in problem.universe:
        consumers = [
            n for n in analyzed.ifg.real_nodes() if
            problem.take_init(n) & problem.universe.bit(element)
        ]
        assert consumers, element


def test_random_problem_annotates_stmt_nodes_only():
    analyzed = random_analyzed_program(3, size=12)
    problem = random_problem(analyzed, seed=4)
    for node in problem.annotated_nodes():
        assert node.kind is NodeKind.STMT


def test_graph_sketches():
    assert len(diamond().ifg.real_nodes()) >= 6
    loop = simple_loop()
    assert loop.ifg.forest.headers()
    nested = nested_loops()
    levels = {nested.ifg.level(n) for n in nested.ifg.real_nodes()}
    assert 3 in levels
    jumped = loop_with_jump()
    assert jumped.ifg.jump_edges()


def test_sketch_lookup_and_names():
    sketch = diamond()
    assert sketch["branch"].name == "branch"
    assert "join" in sketch.names()
    with pytest.raises(KeyError):
        sketch["missing"]
