"""Cache prefetching application tests (§6 generality claim)."""

from repro.machine import MachineModel, simulate
from repro.prefetch import generate_prefetches

TWO_PHASE = """
real x(1000)
real y(1000)
    do i = 1, n
        v = y(i)
    enddo
    do k = 1, n
        u = x(k + 10)
    enddo
"""


def test_prefetch_issue_and_wait_markers():
    text = generate_prefetches(TWO_PHASE).annotated_source()
    assert "PREFETCH{x(11:n + 10)}" in text
    assert "PREFETCH{y(1:n)}" in text
    assert "WAIT{x(11:n + 10)}" in text
    assert "WAIT{y(1:n)}" in text
    assert "READ" not in text  # the comm names do not leak in


def test_prefetches_hoisted_to_top():
    lines = [line.strip() for line in
             generate_prefetches(TWO_PHASE).annotated_source().splitlines()]
    # both prefetches before any loop
    first_loop = lines.index("do i = 1, n")
    prefetch_lines = [i for i, l in enumerate(lines) if l.startswith("PREFETCH")]
    assert prefetch_lines and max(prefetch_lines) < first_loop


def test_repeated_load_prefetches_once():
    source = "real x(100)\nu = x(5)\nw = x(5)"
    result = generate_prefetches(source)
    text = result.annotated_source()
    assert text.count("PREFETCH{x(5)}") == 1


def test_store_invalidates_prefetched_line():
    source = "real x(100)\nu = x(5)\nx(5) = 1\nw = x(5)"
    text = generate_prefetches(source).annotated_source()
    # the store steals nothing from its own section with write-allocate:
    # the stored line is in cache, so NO second prefetch
    assert text.count("PREFETCH{x(5)}") == 1


def test_store_without_write_allocate_forces_refetch():
    source = "real x(100)\nu = x(5)\nx(5) = 1\nw = x(5)"
    text = generate_prefetches(source, write_allocate=False).annotated_source()
    assert text.count("PREFETCH{x(5)}") == 2


def test_conflicting_store_invalidates_other_sections():
    source = (
        "real x(100)\ninteger a(100)\n"
        "do k = 1, n\nu = x(a(k))\nenddo\n"
        "x(1) = 2\n"
        "do l = 1, n\nw = x(a(l))\nenddo\n"
    )
    text = generate_prefetches(source).annotated_source()
    assert text.count("PREFETCH{x(a(1:n))}") == 2  # refetch after the store


def test_latency_hidden_behind_earlier_loop():
    machine = MachineModel(latency=40, time_per_element=0.1, message_overhead=1)
    result = generate_prefetches(TWO_PHASE)
    metrics = simulate(result.annotated_program, machine, {"n": 64})
    # the x prefetch hides entirely behind the y loop (y's own prefetch
    # is consumed immediately and stays exposed)
    assert metrics.hidden_latency >= machine.latency
    assert metrics.hidden_latency >= metrics.exposed_latency


def test_placement_is_balanced():
    from repro.core import check_placement

    result = generate_prefetches(TWO_PHASE)
    report = check_placement(result.analyzed.ifg, result.problem,
                             result.placement, min_trips=1)
    assert report.ok(ignore=("redundant",)), str(report)
