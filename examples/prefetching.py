#!/usr/bin/env python3
"""Cache prefetching — a second application of the same framework.

The paper's §6 claims GIVE-N-TAKE applies to "general memory hierarchy
issues (cache prefetching, register allocation, parallel I/O)".  Here
the *identical* solver places prefetches: a load consumes its section, a
prefetch is the EAGER production, the demand access the LAZY one, stores
steal stale lines, and loads give their line for free (it is cached).

Run:  python examples/prefetching.py
"""

from repro.machine import MachineModel, simulate
from repro.prefetch import generate_prefetches

SWEEP = """
real a(10000)
real b(10000)
real c(10000)
real d(10000)
    do t = 1, steps
        do i = 1, n
            b(i) = 2 * a(i)
        enddo
        do j = 1, n
            d(j) = c(j) + b(j)
        enddo
        do m = 1, n
            c(m) = ...
        enddo
    enddo
"""


def main():
    print("A three-phase time-step sweep:")
    print(SWEEP)

    result = generate_prefetches(SWEEP)
    print("With prefetches placed by GIVE-N-TAKE:")
    print(result.annotated_source())

    print("Notes:")
    print(" * only two *cold-start* prefetches exist, hoisted above the")
    print("   whole time loop;")
    print(" * every store gives its section for free (write-allocate):")
    print("   b, d, and even the rewritten c stay cached, so nothing is")
    print("   ever re-prefetched — the give-for-free coupling at work.")

    machine = MachineModel(latency=60, time_per_element=0.05,
                           message_overhead=2)
    bindings = {"n": 128, "steps": 4}
    metrics = simulate(result.annotated_program, machine, bindings)
    transferred = metrics.exposed_latency + metrics.hidden_latency
    print(f"\nSimulated ({bindings}): {metrics.summary()}")
    print(f"Latency hidden: {100 * metrics.hidden_latency / transferred:.0f}%")

    print("\nOn a non-allocating cache (stores bypass), c must be")
    print("re-fetched each step — and the prefetch lands *before the i")
    print("loop*, a full phase ahead of its use:")
    bypass = generate_prefetches(SWEEP, write_allocate=False)
    print(bypass.annotated_source())
    bypass_metrics = simulate(bypass.annotated_program, machine, bindings)
    transferred = bypass_metrics.exposed_latency + bypass_metrics.hidden_latency
    print(f"Simulated: {bypass_metrics.summary()}")
    print(f"Latency hidden: "
          f"{100 * bypass_metrics.hidden_latency / transferred:.0f}%")


if __name__ == "__main__":
    main()
