#!/usr/bin/env python3
"""Communication generation: the paper's Figures 1→2 and 3.

Compiles data-parallel mini-Fortran with distributed arrays into
annotated programs with vectorized, balanced READ/WRITE communication,
then measures naive vs. GIVE-N-TAKE placement on the machine simulator
(message counts, volume, exposed latency).

Run:  python examples/communication_placement.py
"""

from repro import (
    ConditionPolicy,
    MachineModel,
    generate_communication,
    naive_communication,
    simulate,
)
from repro.testing.programs import FIG1_SOURCE, FIG3_SOURCE


def banner(title):
    print(f"\n{'=' * 68}\n{title}\n{'=' * 68}")


def main():
    banner("Figure 1: the input program (x is distributed)")
    print(FIG1_SOURCE)

    banner("Naive placement (Figure 2, left): one message per element")
    naive = naive_communication(FIG1_SOURCE)
    print(naive.annotated_source())

    banner("GIVE-N-TAKE placement (Figure 2, right): one vectorized message")
    gnt = generate_communication(FIG1_SOURCE)
    print(gnt.annotated_source())

    banner("Simulated cost (n = 64, latency = 100, both branch outcomes)")
    machine = MachineModel(latency=100, time_per_element=1, message_overhead=10)
    print(f"{'branch':>8} {'strategy':>8} {'messages':>9} {'volume':>7} "
          f"{'exposed':>8} {'hidden':>7} {'total':>7}")
    for branch in ("always", "never"):
        for name, result in (("naive", naive), ("gnt", gnt)):
            metrics = simulate(result.annotated_program, machine,
                               {"n": 64}, ConditionPolicy(branch))
            print(f"{branch:>8} {name:>8} {metrics.messages:>9} "
                  f"{metrics.volume:>7.0f} {metrics.exposed_latency:>8.0f} "
                  f"{metrics.hidden_latency:>7.0f} {metrics.total_time:>7.0f}")

    banner("Figure 3: local definitions of non-owned data (give-for-free)")
    print(FIG3_SOURCE)
    result = generate_communication(FIG3_SOURCE)
    print(result.annotated_source())
    print("Note: x(a(1:n)) is defined locally, so it is never READ — the")
    print("definition 'gives' it for free; only the WRITE back to the")
    print("owners is placed, and the j loop hides its latency.")


if __name__ == "__main__":
    main()
