#!/usr/bin/env python3
"""GIVE-N-TAKE as a PRE engine, compared against the classics.

Classical PRE (Morel-Renvoise 1979, Lazy Code Motion 1992) is the LAZY,
BEFORE instance of GIVE-N-TAKE.  This example runs all three on
common-subexpression workloads and shows the two behaviors the paper
highlights:

* identical results on ordinary partial redundancies;
* GIVE-N-TAKE hoists out of potentially zero-trip loops (the paper's
  deliberate trade-off, §2), which safety-bound classical PRE cannot.

Run:  python examples/pre_comparison.py
"""

from repro import analyze_source
from repro.core.paths import enumerate_paths
from repro.pre import (
    build_cse_problem,
    gnt_pre_placement,
    lazy_code_motion,
    morel_renvoise,
)
from repro.pre.gnt_pre import evaluations_on_path, lazy_insertion_nodes

CASES = {
    "full redundancy": "u = a + b\nv = a + b",
    "partial redundancy": "if t then\nu = a + b\nendif\nv = a + b",
    "diamond join": "if t then\nu = a + b\nelse\nw = a + b\nendif\nv = a + b",
    "kill in between": "u = a + b\na = 1\nv = a + b",
    "zero-trip loop invariant": "do i = 1, n\nu = a + b\nenddo",
    "loop + after": "do i = 1, n\nu = a + b\nenddo\nv = a + b",
}


def describe(nodes, analyzed):
    return [f"{analyzed.numbering[n]}:{n.name}" for n in nodes]


def main():
    for name, source in CASES.items():
        print(f"\n=== {name} ===")
        print("\n".join("    " + line for line in source.splitlines()))
        analyzed = analyze_source(source)
        problem, _ = build_cse_problem(analyzed)
        lcm = lazy_code_motion(analyzed.ifg, problem)
        mr = morel_renvoise(analyzed.ifg, problem)
        gnt = gnt_pre_placement(analyzed.ifg, problem)

        print("  LCM inserts :", describe(lcm.node_insertions_for("a + b"),
                                          analyzed) or "-")
        print("  LCM deletes :", describe(lcm.delete_nodes, analyzed) or "-")
        print("  MR  inserts :", describe(mr.node_insertions_for("a + b"),
                                          analyzed) or "-")
        print("  GNT eval at :", describe(
            lazy_insertion_nodes(gnt, "a + b"), analyzed) or "-")

        # dynamic cost: expression evaluations per execution path
        paths = enumerate_paths(analyzed.ifg, max_paths=20, min_trips=1)
        gnt_costs = [evaluations_on_path(gnt, problem, p, analyzed.ifg)
                     for p in paths]
        print(f"  GNT evaluations over {len(paths)} paths: {gnt_costs}")

    print("\nTakeaway: on the zero-trip loop GIVE-N-TAKE evaluates a + b")
    print("once before the loop (1 per path) while safety-bound classical")
    print("PRE leaves it inside (n evaluations); the cost is one wasted")
    print("evaluation on paths where the loop never runs.")

    print("\nAnd as an actual transformation "
          "(repro.pre.eliminate_common_subexpressions):")
    from repro.pre import eliminate_common_subexpressions

    for name in ("partial redundancy", "zero-trip loop invariant"):
        print(f"--- {name}, transformed ---")
        result = eliminate_common_subexpressions(
            analyze_source(CASES[name]))
        print(result.transformed_source())


if __name__ == "__main__":
    main()
