#!/usr/bin/env python3
"""Register promotion — loads and stores from ONE equation system.

The paper's §1 criticizes classical PRE for needing "different, but
interdependent sets of equations for loads and stores" [Dha88b].
GIVE-N-TAKE needs none of that: loads are a BEFORE problem, stores an
AFTER problem, both solved by the identical algorithm, and the
give-for-free coupling lets a store satisfy later loads from the
register.

Run:  python examples/register_promotion.py
"""

from repro.machine import MachineModel, simulate
from repro.regpromo import promote_registers

CASES = {
    "accumulator in a loop": """
real s(100)
    do i = 1, n
        s(1) = s(1) + w(i)
    enddo
""",
    "read-modify-write in a loop, used after": """
real x(100)
    do i = 1, n
        u = x(5)
        x(5) = u + 1
    enddo
    w = x(5)
""",
    "aliasing fences": """
real x(100)
    u = x(5)
    x(j) = 1
    w = x(5)
""",
    "branchy lifetime": """
real x(100)
    if t then
        u = x(5)
    else
        x(5) = 2
    endif
    w = x(5)
""",
}


def main():
    for name, source in CASES.items():
        print(f"=== {name} ===")
        result = promote_registers(source)
        print(result.annotated_source())

    print("Memory-traffic effect on the accumulator (n = 100):")
    machine = MachineModel(latency=20, time_per_element=0, message_overhead=1)
    result = promote_registers(CASES["accumulator in a loop"])
    metrics = simulate(result.annotated_program, machine, {"n": 100})
    print(f"  promoted: {metrics.messages} memory operations "
          f"(instead of 200 in-loop accesses)")
    print("\nNote the aliasing case: x(j) might be x(5), so the STORE is")
    print("fenced before the read and the register is reloaded after a")
    print("potentially clobbering def — all falling out of the steal sets.")


if __name__ == "__main__":
    main()
