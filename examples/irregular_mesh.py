#!/usr/bin/env python3
"""An irregular mesh sweep — the workload class that motivated the
Fortran D work GIVE-N-TAKE was built for (gather / compute / scatter-add
over an unstructured mesh, iterated in a time-step loop).

Shows three framework features working together:

* the *gather* (indirect reads ``x(edge1(k))``, ``x(edge2(k))``) is
  vectorized and hoisted out of the edge loop — but **not** out of the
  time loop, because the scatter invalidates it every time step;
* the *scatter-add* is recognized as a sum reduction: the old values
  are never fetched, one combining ``WRITE_Sum`` per time step;
* the sequencing between them falls out of GIVE-N-TAKE's steals: the
  next step's gather waits for the reduction write-back.

Run:  python examples/irregular_mesh.py
"""

from repro import (
    ConditionPolicy,
    MachineModel,
    generate_communication,
    naive_communication,
    simulate,
)

MESH_SWEEP = """
real x(1000)
real flux(1000)
integer edge1(1000)
integer edge2(1000)
distribute x(block)
distribute flux(block)
    do t = 1, steps
        do k = 1, n
            flux(edge1(k)) = flux(edge1(k)) + x(edge2(k))
        enddo
        do m = 1, n
            x(m) = ...
        enddo
    enddo
"""


def main():
    print("Input (unstructured mesh sweep, x and flux distributed):")
    print(MESH_SWEEP)

    result = generate_communication(MESH_SWEEP)
    print("Annotated output:")
    print(result.annotated_source())

    print("Things to notice:")
    print(" * READ_Send/Recv{x(edge2(1:n))} sit inside the t loop but")
    print("   outside the k loop: vectorized over the edges, re-fetched")
    print("   each time step (the x update steals it).")
    print(" * WRITE_Send/Recv{x(1:n)}: the x update is written back each")
    print("   step, before the next gather (the C3 read coupling).")
    print(" * WRITE_Sum_Send/Recv{flux(edge1(1:n))}: a combining")
    print("   write-back, hoisted out of the *whole* time loop — local")
    print("   contributions accumulate and combine at the owners once,")
    print("   because nothing reads flux in between.")

    machine = MachineModel(latency=150, time_per_element=1, message_overhead=20)
    bindings = {"n": 256, "steps": 10}
    gnt_metrics = simulate(result.annotated_program, machine, bindings,
                           ConditionPolicy("always"))
    naive = naive_communication(MESH_SWEEP)
    naive_metrics = simulate(naive.annotated_program, machine, bindings,
                             ConditionPolicy("always"))

    print(f"\nSimulated, 10 time steps over 256 edges:")
    print(f"  GIVE-N-TAKE: {gnt_metrics.summary()}")
    print(f"  naive      : {naive_metrics.summary()}")
    print(f"  speedup    : {gnt_metrics.speedup_over(naive_metrics):.1f}x "
          f"({naive_metrics.messages} messages -> {gnt_metrics.messages})")


if __name__ == "__main__":
    main()
