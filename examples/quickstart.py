#!/usr/bin/env python3
"""Quickstart: solve a GIVE-N-TAKE placement problem from scratch.

We write a tiny program in the library's mini-Fortran, mark what is
consumed, destroyed, and produced for free, and let the framework place
balanced EAGER/LAZY production.

Run:  python examples/quickstart.py
"""

from repro import (
    Direction,
    Placement,
    Problem,
    Timing,
    analyze_source,
    check_placement,
    solve,
)

SOURCE = """
    a = 1
    do k = 1, n
        u = x(k)
    enddo
    if test then
        w = x(5)
    endif
"""


def main():
    # 1. Parse and build the interval flow graph (Tarjan intervals,
    #    synthetic nodes for critical edges, edge classification).
    analyzed = analyze_source(SOURCE)
    print("interval flow graph:")
    for node, number in analyzed.numbering.items():
        level = analyzed.ifg.level(node)
        print(f"  {number:2}  level {level}  {node.kind.value:10}  {node.name}")

    # 2. Describe the problem.  BEFORE = produce before consumption
    #    (think: fetch an operand).  The k-loop body consumes the array
    #    portion x(1:n); the branch consumes x(5).
    problem = Problem(direction=Direction.BEFORE)
    problem.add_take(analyzed.node_named("u ="), "x(1:n)")
    problem.add_take(analyzed.node_named("w ="), "x(5)")

    # 3. Solve.  GIVE-N-TAKE computes *regions*: an EAGER solution (start
    #    production as early as possible — e.g. send a message) and a
    #    LAZY solution (finish as late as possible — e.g. receive it),
    #    guaranteed to match one-to-one on every execution path.
    solution = solve(analyzed.ifg, problem)
    placement = Placement(analyzed.ifg, problem, solution)
    print("\nplacements (eager = start production, lazy = complete it):")
    for production in placement.productions():
        number = analyzed.numbering[production.node]
        elements = ", ".join(sorted(map(str, production.elements)))
        print(f"  {production.timing.value:5} {production.position.value:6} "
              f"node {number:2} ({production.node.name}): {{{elements}}}")

    # Note: x(1:n) is hoisted out of the potentially zero-trip k loop
    # (the paper's communication-style choice), and production for x(5)
    # stays inside the branch (safety: the else path never consumes it).

    # 4. Verify the correctness criteria by replaying all bounded paths.
    report = check_placement(analyzed.ifg, problem, placement, min_trips=1)
    print(f"\nchecker: {report.summary()}")
    assert report.ok(), "C1/C2/C3 must hold on >=1-trip paths"

    # 5. Dataflow variables are available for inspection, by paper name.
    node = analyzed.node_named("u =")
    print(f"\nvariables at node {analyzed.numbering[node]}:")
    print(solution.format_node(node, Timing.EAGER))


if __name__ == "__main__":
    main()
