#!/usr/bin/env python3
"""A 2-D Jacobi-style sweep — multi-dimensional sections and reuse.

The classic Fortran D workload: a distributed 2-D grid updated from its
neighbors.  GIVE-N-TAKE vectorizes the gathers into per-section messages
(`g(0:n+1, 1:m)`-style), recognizes the reuse between the shifted
references, and re-fetches per time step only because the update steals
the sections.

Run:  python examples/stencil_2d.py
"""

from repro.machine import ConditionPolicy, MachineModel, simulate
from repro.commgen import generate_communication, naive_communication

JACOBI = """
real g(10000)
real new(10000)
distribute g(block)
distribute new(block)
    do t = 1, steps
        do i = 1, n
            do j = 1, m
                new(i, j) = g(i - 1, j) + g(i + 1, j) + g(i, j - 1) + g(i, j + 1)
            enddo
        enddo
        do p = 1, n
            do q = 1, m
                g(p, q) = new(p, q)
            enddo
        enddo
    enddo
"""


def main():
    print("A 2-D Jacobi sweep on a distributed grid:")
    print(JACOBI)

    result = generate_communication(JACOBI)
    print("Annotated:")
    print(result.annotated_source())

    machine = MachineModel(latency=120, time_per_element=0.2,
                           message_overhead=15)
    bindings = {"n": 16, "m": 16, "steps": 5}
    gnt = simulate(result.annotated_program, machine, bindings)
    naive = simulate(naive_communication(JACOBI).annotated_program, machine,
                     bindings)
    print("Simulated (16x16 grid, 5 steps):")
    print(f"  GIVE-N-TAKE: {gnt.summary()}")
    print(f"  naive      : {naive.summary()}")
    print(f"  speedup    : {gnt.speedup_over(naive):.1f}x "
          f"({naive.messages} -> {gnt.messages} messages)")

    print("\nNotes: the four shifted gathers become four vectorized")
    print("sections fetched once per time step; new(i,j)'s definition is")
    print("local (give-for-free), so only g's halo-shaped sections move;")
    print("the copy-back loop steals them, forcing the per-step re-fetch.")


if __name__ == "__main__":
    main()
