real x(100)
real y(100)
distribute x(block)
    a = 1
    do k = 1, n
        y(k) = x(k)
    enddo
    if test then
        w = x(5)
    endif
