#!/usr/bin/env python3
"""Latency hiding with production regions: the paper's Figures 11→14.

GIVE-N-TAKE's headline feature over classical PRE is that it places
*regions* (an EAGER start and a LAZY end), not single points.  For
communication this means the send can be issued long before the receive,
and the work in between hides the message latency.

This example reproduces Figure 14 and then sweeps the machine latency to
show when the i/j loops fully hide it.

Run:  python examples/latency_hiding.py
"""

from repro import (
    ConditionPolicy,
    MachineModel,
    Timing,
    generate_communication,
    simulate,
)
from repro.testing.programs import FIG11_SOURCE


def main():
    print("Input (Figure 11); x and y are distributed, with a goto out of")
    print("the i loop:")
    print(FIG11_SOURCE)

    result = generate_communication(FIG11_SOURCE)
    print("Annotated output (Figure 14):")
    print(result.annotated_source())

    print("The production regions (send ... recv):")
    for timing in Timing:
        for production in result.read_placement.productions(timing):
            number = result.analyzed.numbering[production.node]
            elements = ", ".join(sorted(map(str, production.elements)))
            role = "Send" if timing is Timing.EAGER else "Recv"
            print(f"  READ_{role} at node {number:2}: {{{elements}}}")

    print("\nLatency sweep (n = 48, goto never taken): exposed latency is")
    print("what the processor actually waits for; the rest hides behind")
    print("the i and j loops.")
    print(f"{'latency':>8} {'exposed':>8} {'hidden':>8} {'total':>8} "
          f"{'% hidden':>9}")
    for latency in (10, 50, 100, 200, 400, 800):
        machine = MachineModel(latency=latency, time_per_element=1,
                               message_overhead=5)
        metrics = simulate(result.annotated_program, machine, {"n": 48},
                           ConditionPolicy("never"))
        transferred = metrics.exposed_latency + metrics.hidden_latency
        hidden_percent = 100 * metrics.hidden_latency / transferred
        print(f"{latency:>8} {metrics.exposed_latency:>8.0f} "
              f"{metrics.hidden_latency:>8.0f} {metrics.total_time:>8.0f} "
              f"{hidden_percent:>8.1f}%")

    print("\nAt small latencies the i/j loops hide most of the transfer")
    print("(the remainder is the write-back, whose region is short); as")
    print("latency grows past the work in the region, exposure dominates.")


if __name__ == "__main__":
    main()
