"""The fleet router: one address in front of K compile shards.

:class:`FleetRouter` is an asyncio TCP server speaking the same
newline-delimited JSON protocol as a single
:class:`~repro.service.server.CompileService`, so every existing client
(:class:`~repro.service.client.ServiceClient`, ``repro request``) works
against a fleet unchanged.  What it adds is placement and fault
tolerance (``docs/serving.md``):

* **cache affinity** — requests are consistent-hashed by source digest
  (:class:`~repro.fleet.health.HashRing`), so a resubmitted program
  lands on the shard whose :class:`~repro.batch.cache.PipelineCache`
  already holds its solved state; a ``compile_delta`` request carrying
  a ``base`` digest routes by that digest *verbatim* — the edited text
  hashes differently, but the warm interval solves it wants to splice
  live on the shard that compiled the **base**;
* **health** — a heartbeat ping per shard feeds a per-shard
  :class:`~repro.fleet.health.CircuitBreaker`; an open breaker takes
  the shard out of rotation until a half-open probe succeeds;
* **failover** — a forward that fails at the connection level (shard
  died, connection severed, attempt timed out) is transparently
  re-routed down the ring's deterministic failover sequence and
  recompiled (compiles are pure functions of source + options, so a
  request that may or may not have completed on the dead shard is
  always safe to resend);
* **spill** — a shard refusing with ``busy``/``draining`` backpressure
  diverts the request to the least-loaded remaining shard instead of
  bouncing the refusal to the client (work-stealing overflow rather
  than static assignment);
* **hedging** — optionally (``hedge_delay_s``), a forward that has not
  answered within the delay gets one duplicate request on the next
  healthy shard; first answer wins, the loser is cancelled.  This
  bounds tail latency under stragglers at the cost of (rare) duplicate
  compiles — which are idempotent.

The router holds no compile state of its own: admission, deadlines, and
caching all live in the shards, so the router stays O(1) per request
and a router restart loses nothing but open sockets.
"""

import asyncio
import contextlib
import time
from dataclasses import dataclass

from repro.batch.cache import source_fingerprint
from repro.fleet.health import CLOSED, CircuitBreaker, HashRing
from repro.obs.collector import current_collector
from repro.service.protocol import (
    E_BAD_REQUEST,
    E_BUSY,
    E_DRAINING,
    E_UNAVAILABLE,
    MAX_LINE_BYTES,
    PROTOCOL,
    ProtocolError,
    decode_message,
    encode_message,
    error_response,
    ok_response,
    parse_request,
)

#: Error codes that mean "this shard is refusing work right now" —
#: the router spills these to another shard instead of passing them
#: through.
REFUSAL_CODES = (E_BUSY, E_DRAINING)


@dataclass
class FleetConfig:
    """Knobs of one router instance.

    * ``host`` / ``port`` — listen address (``port=0`` ephemeral).
    * ``heartbeat_s`` — shard ping interval.
    * ``probe_timeout_s`` — heartbeat ping reply timeout.
    * ``connect_timeout_s`` — dialing a shard.
    * ``attempt_timeout_s`` — optional cap on one forwarded attempt's
      full round-trip (``None``: rely on resets and hedging).
    * ``failure_threshold`` / ``reset_timeout_s`` — breaker tuning
      (consecutive failures to trip; seconds until a half-open probe).
    * ``hedge_delay_s`` — duplicate an unanswered forward on another
      shard after this many seconds (``None`` disables hedging).
    * ``max_attempts`` — bound on forward attempts per request
      (re-routes and spills both consume attempts).
    * ``virtual_nodes`` — hash-ring replicas per shard.
    """

    host: str = "127.0.0.1"
    port: int = 0
    heartbeat_s: float = 0.25
    probe_timeout_s: float = 1.0
    connect_timeout_s: float = 2.0
    attempt_timeout_s: float = None
    failure_threshold: int = 3
    reset_timeout_s: float = 1.0
    hedge_delay_s: float = None
    max_attempts: int = 3
    virtual_nodes: int = 64

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.heartbeat_s <= 0:
            raise ValueError("heartbeat_s must be positive")


class ShardHandle:
    """Router-side view of one shard: address, breaker, load gauges."""

    def __init__(self, name, host, port, config):
        self.name = name
        self.host = host
        self.port = port
        self.breaker = CircuitBreaker(
            failure_threshold=config.failure_threshold,
            reset_timeout_s=config.reset_timeout_s)
        self.inflight = 0
        self.forwards = 0
        self.failures = 0

    def snapshot(self):
        payload = {
            "name": self.name,
            "host": self.host,
            "port": self.port,
            "inflight": self.inflight,
            "forwards": self.forwards,
            "failures": self.failures,
            "available": self.breaker.available,
        }
        payload.update(self.breaker.snapshot())
        return payload


class FleetMetrics:
    """Router-side counters (shard-side metrics live in the shards)."""

    def __init__(self):
        self.received = 0
        self.forwards = 0
        self.completed = 0
        self.rerouted = 0
        self.spilled = 0
        self.hedges = 0
        self.hedge_wins = 0
        self.unavailable = 0
        self.bad_requests = 0
        self.started_monotonic = time.monotonic()

    def snapshot(self, breaker_opens=0):
        return {
            "received": self.received,
            "forwards": self.forwards,
            "completed": self.completed,
            "rerouted": self.rerouted,
            "spilled": self.spilled,
            "hedges": self.hedges,
            "hedge_wins": self.hedge_wins,
            "unavailable": self.unavailable,
            "bad_requests": self.bad_requests,
            "breaker_opens": breaker_opens,
            "uptime_s": time.monotonic() - self.started_monotonic,
        }


class _ForwardError(Exception):
    """One forwarded attempt died at the connection level."""


class FleetRouter:
    """Route compile traffic across shards (see the module docstring).

    ``shards`` is a list of ``(host, port)`` addresses of running
    :class:`~repro.service.server.CompileService` instances.
    """

    def __init__(self, shards, config=None):
        if not shards:
            raise ValueError("a fleet needs at least one shard")
        self.config = config if config is not None else FleetConfig()
        self.shards = [
            ShardHandle(f"shard-{index}", host, port, self.config)
            for index, (host, port) in enumerate(shards)
        ]
        self._by_name = {shard.name: shard for shard in self.shards}
        self._ring = HashRing([shard.name for shard in self.shards],
                              virtual_nodes=self.config.virtual_nodes)
        self.metrics = FleetMetrics()
        self.host = self.config.host
        self.port = None
        self._server = None
        self._loop = None
        self._heartbeats = []
        self._connections = set()
        self._tasks = set()
        self._draining = False
        self._closing = False
        self._stopped = None

    # -- lifecycle -----------------------------------------------------------

    async def start(self):
        self._loop = asyncio.get_running_loop()
        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(
            self._serve_client, self.config.host, self.config.port,
            limit=MAX_LINE_BYTES)
        self.host, self.port = self._server.sockets[0].getsockname()[:2]
        self._heartbeats = [
            self._loop.create_task(self._heartbeat(shard))
            for shard in self.shards
        ]
        obs = current_collector()
        if obs.enabled:
            obs.event("fleet", "start", host=self.host, port=self.port,
                      shards=len(self.shards))
        return self

    def _spawn(self, coroutine):
        """``create_task`` with a strong reference until done (the loop
        only weak-refs tasks; a fire-and-forget handler could be
        garbage-collected mid-await otherwise)."""
        task = self._loop.create_task(coroutine)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return task

    async def shutdown(self):
        if self._closing:
            await self._stopped.wait()
            return
        self._closing = True
        self._draining = True
        for task in self._heartbeats:
            task.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._stopped.set()

    async def wait_closed(self):
        await self._stopped.wait()

    async def sever_connections(self):
        """Abruptly reset every open client connection — the chaos
        harness's router-side torn-network primitive."""
        severed = 0
        for writer in list(self._connections):
            with contextlib.suppress(Exception):
                writer.transport.abort()
                severed += 1
        return severed

    # -- introspection -------------------------------------------------------

    def home_shard(self, source):
        """The shard a compile of ``source`` has affinity with."""
        return self._by_name[self._ring.home(source_fingerprint(source))]

    def delta_home_shard(self, base_digest):
        """The shard a ``compile_delta`` against ``base_digest`` routes
        to — the base digest enters the ring verbatim (it already *is*
        the fingerprint the base compile was routed by)."""
        return self._by_name[self._ring.home(base_digest)]

    def status(self):
        """The ``status`` payload: fleet counters + shard table."""
        return {
            "server": {
                "protocol": PROTOCOL,
                "role": "fleet-router",
                "host": self.host,
                "port": self.port,
                "shards": len(self.shards),
                "heartbeat_s": self.config.heartbeat_s,
                "hedge_delay_s": self.config.hedge_delay_s,
                "max_attempts": self.config.max_attempts,
                "draining": self._draining,
            },
            "fleet": self.metrics.snapshot(
                breaker_opens=sum(s.breaker.opens for s in self.shards)),
            "shards": [shard.snapshot() for shard in self.shards],
        }

    # -- shard I/O -----------------------------------------------------------

    async def _roundtrip(self, shard, payload):
        """One request/response round-trip to ``shard`` over a fresh
        connection; raises :class:`_ForwardError` on any
        connection-level failure."""
        writer = None
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(shard.host, shard.port,
                                        limit=MAX_LINE_BYTES),
                self.config.connect_timeout_s)
            writer.write(encode_message(payload))
            await writer.drain()
            read = reader.readline()
            if self.config.attempt_timeout_s is not None:
                read = asyncio.wait_for(read, self.config.attempt_timeout_s)
            line = await read
            if not line:
                raise ConnectionResetError("shard closed the connection")
            return decode_message(line)
        except (OSError, asyncio.TimeoutError, ProtocolError,
                asyncio.IncompleteReadError, ValueError) as error:
            raise _ForwardError(f"{shard.name}: {type(error).__name__}: "
                                f"{error}") from error
        finally:
            if writer is not None:
                with contextlib.suppress(Exception):
                    writer.close()

    async def _try_shard(self, shard, payload):
        """One accounted forward attempt: load gauge, breaker verdict."""
        shard.inflight += 1
        try:
            reply = await self._roundtrip(shard, payload)
        except _ForwardError:
            # Only transport failures feed the breaker — a cancelled
            # hedge loser says nothing about the shard's health.
            shard.failures += 1
            shard.breaker.record_failure()
            raise
        else:
            shard.breaker.record_success()
            shard.forwards += 1
            self.metrics.forwards += 1
            return reply
        finally:
            shard.inflight -= 1

    async def _heartbeat(self, shard):
        """Ping ``shard`` forever; successes close its breaker,
        failures feed it (and perform the half-open probing)."""
        while not self._closing:
            try:
                await asyncio.sleep(self.config.heartbeat_s)
            except asyncio.CancelledError:
                return
            if shard.breaker.state != CLOSED and not shard.breaker.allow():
                continue  # open and not yet due for a probe
            try:
                reply = await asyncio.wait_for(
                    self._roundtrip(shard, {"type": "ping"}),
                    self.config.probe_timeout_s)
                ok = bool(reply.get("ok"))
            except (_ForwardError, asyncio.TimeoutError):
                ok = False
            if self._closing:
                return
            if ok:
                shard.breaker.record_success()
            else:
                shard.breaker.record_failure()

    # -- routing -------------------------------------------------------------

    def _affinity_digest(self, request, source):
        """The digest a request enters the hash ring under.

        Plain compiles hash their own source.  A ``compile_delta``
        carrying a ``base`` digest routes by it **verbatim** — ``base``
        already is the :func:`~repro.batch.cache.source_fingerprint` of
        the base text, so re-hashing it would send the delta anywhere
        *but* the shard whose cache holds the base's interval solves."""
        if request.get("type") == "compile_delta":
            base = request.get("base")
            if isinstance(base, str) and base:
                return base
        return source_fingerprint(source)

    def _preference(self, digest):
        """Shards in failover order for an affinity digest (home
        first)."""
        order = self._ring.preference(digest)
        return [self._by_name[name] for name in order]

    async def _route(self, request, digest):
        """Forward ``request`` with failover, spill, and hedging; always
        returns a response dict (never raises for shard trouble).
        ``digest`` is the affinity digest (:meth:`_affinity_digest`)."""
        candidates = self._preference(digest)
        refusal = None
        attempts = 0
        rerouting = False
        while attempts < self.config.max_attempts and candidates:
            shard = None
            for index, candidate in enumerate(candidates):
                if candidate.breaker.allow():
                    shard = candidate
                    backups = candidates[index + 1:] + candidates[:index]
                    candidates = backups
                    break
            if shard is None:
                break
            attempts += 1
            if rerouting:
                self.metrics.rerouted += 1
            try:
                reply = await self._attempt(shard, backups, request)
            except _ForwardError:
                rerouting = True
                continue
            if not reply.get("ok"):
                code = (reply.get("error") or {}).get("code")
                if code in REFUSAL_CODES:
                    # Spill: try the least-loaded remaining shard.
                    refusal = reply
                    self.metrics.spilled += 1
                    candidates.sort(key=lambda s: s.inflight)
                    rerouting = False
                    continue
            self.metrics.completed += 1
            return reply
        if refusal is not None:
            return refusal  # every shard is refusing: surface backpressure
        self.metrics.unavailable += 1
        return error_response(
            request, E_UNAVAILABLE,
            f"no shard available after {attempts} attempt(s)",
            retry_after_s=round(self.config.reset_timeout_s / 2, 4))

    async def _attempt(self, shard, backups, request):
        """One forward, hedged onto a backup shard when the primary has
        not answered within ``hedge_delay_s``."""
        if self.config.hedge_delay_s is None or not backups:
            return await self._try_shard(shard, request)
        primary = self._loop.create_task(self._try_shard(shard, request))
        done, _ = await asyncio.wait({primary},
                                     timeout=self.config.hedge_delay_s)
        if done:
            return primary.result()
        backup_shard = next(
            (candidate for candidate in backups
             if candidate.breaker.allow()), None)
        if backup_shard is None:
            return await primary
        self.metrics.hedges += 1
        backup = self._loop.create_task(
            self._try_shard(backup_shard, request))
        pending = {primary, backup}
        first_error = None
        while pending:
            done, pending = await asyncio.wait(
                pending, return_when=asyncio.FIRST_COMPLETED)
            for task in done:
                try:
                    reply = task.result()
                except _ForwardError as error:
                    first_error = first_error or error
                    continue
                for loser in pending:
                    loser.cancel()
                if task is backup:
                    self.metrics.hedge_wins += 1
                return reply
        raise first_error

    # -- the wire ------------------------------------------------------------

    async def _serve_client(self, reader, writer):
        self._connections.add(writer)
        write_lock = asyncio.Lock()

        async def send(payload):
            try:
                async with write_lock:
                    writer.write(encode_message(payload))
                    await writer.drain()
            except (ConnectionError, RuntimeError):
                pass  # client went away mid-reply

        try:
            while True:
                try:
                    line = await reader.readline()
                except asyncio.CancelledError:
                    break
                except ConnectionError:
                    break  # peer vanished without a FIN (reset, severed)
                except (asyncio.LimitOverrunError, ValueError):
                    await send(error_response(
                        {}, E_BAD_REQUEST,
                        f"request line over {MAX_LINE_BYTES} bytes"))
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                self.metrics.received += 1
                try:
                    request = parse_request(line)
                except ProtocolError as error:
                    self.metrics.bad_requests += 1
                    await send(error_response({}, E_BAD_REQUEST, str(error)))
                    continue
                rtype = request["type"]
                if rtype == "ping":
                    await send(ok_response(request, protocol=PROTOCOL,
                                           role="fleet-router",
                                           shards=len(self.shards)))
                elif rtype == "status":
                    await send(ok_response(request, status=self.status()))
                elif rtype == "drain":
                    self._spawn(self._handle_drain(request, send))
                elif rtype == "batch":
                    self._spawn(self._handle_batch(request, send))
                else:
                    self._spawn(self._handle_compile(request, send))
        finally:
            self._connections.discard(writer)
            with contextlib.suppress(Exception):
                writer.close()

    async def _handle_compile(self, request, send):
        if self._draining:
            await send(error_response(
                request, E_DRAINING, "fleet router is draining"))
            return
        source = request.get("source")
        if not isinstance(source, str):
            self.metrics.bad_requests += 1
            await send(error_response(
                request, E_BAD_REQUEST,
                "compile requests need a string 'source' field"))
            return
        await send(await self._route(
            request, self._affinity_digest(request, source)))

    async def _handle_batch(self, request, send):
        """Split a batch across the fleet: each program routes by its
        own digest (affinity per program), the replies reassemble into
        one batch response.  Any sub-request that ends in a refusal or
        transport error fails the whole batch with that error — same
        all-or-nothing contract as a single shard's admission."""
        if self._draining:
            await send(error_response(
                request, E_DRAINING, "fleet router is draining"))
            return
        programs = request.get("programs")
        if (not isinstance(programs, list) or not programs
                or not all(isinstance(p, dict)
                           and isinstance(p.get("source"), str)
                           for p in programs)):
            self.metrics.bad_requests += 1
            await send(error_response(
                request, E_BAD_REQUEST,
                "batch requests need a non-empty 'programs' list of "
                "{name, source} objects"))
            return
        subrequests = []
        for index, program in enumerate(programs):
            sub = {"type": "compile",
                   "name": program.get("name") or f"<batch-{index}>",
                   "source": program["source"]}
            for key in ("options", "deadline_s"):
                if key in request:
                    sub[key] = request[key]
            subrequests.append(sub)
        replies = await asyncio.gather(*[
            self._route(sub, source_fingerprint(sub["source"]))
            for sub in subrequests
        ])
        for reply in replies:
            if not reply.get("ok"):
                error = dict(reply)
                error["id"] = request.get("id")
                error["type"] = request.get("type")
                await send(error)
                return
        results = [reply["result"] for reply in replies]
        await send(ok_response(
            request,
            results=results,
            ok_count=sum(1 for r in results if r["ok"]),
            error_count=sum(1 for r in results if not r["ok"]),
            cache_hits=sum(1 for r in results if r["cache_hit"]),
        ))

    async def _handle_drain(self, request, send):
        """Drain the whole fleet: stop taking work, ask every shard to
        drain (dead shards are reported, not fatal), reply, shut the
        router down."""
        self._draining = True
        outcomes = {}

        async def drain_shard(shard):
            try:
                reply = await self._roundtrip(shard, {"type": "drain"})
                outcomes[shard.name] = ("drained" if reply.get("ok")
                                        else "refused")
            except _ForwardError:
                outcomes[shard.name] = "unreachable"

        await asyncio.gather(*[drain_shard(s) for s in self.shards])
        await send(ok_response(
            request, drained=True, shards=outcomes,
            completed=self.metrics.completed))
        self._spawn(self.shutdown())
