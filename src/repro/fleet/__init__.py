"""The fault-tolerant compile fleet (``docs/serving.md``,
``docs/robustness.md``).

One :class:`~repro.service.server.CompileService` survives worker
crashes (supervised pool rebuilds); this package makes *shards* of them
survive each other:

* :class:`FleetRouter` — one address in front of K shards, speaking the
  same wire protocol; consistent-hashes compiles by source digest for
  cache affinity, re-routes around dead shards, spills around busy
  ones, optionally hedges stragglers;
* :class:`CircuitBreaker` / :class:`HashRing` — the health and
  placement mechanisms under the router;
* :class:`LocalFleet` / :class:`ThreadedRouter` — the in-process
  harness (K real shards + router, real sockets, one call);
* :class:`ChaosPlan` / :func:`run_chaos` — seeded, scripted failure
  injection against a live fleet, verified byte-for-byte by
  ``python -m repro.obs.bench --fleet``.
"""

from repro.fleet.chaos import (
    ACTIONS,
    ChaosController,
    ChaosEvent,
    ChaosPlan,
    run_chaos,
)
from repro.fleet.harness import LocalFleet, ThreadedRouter, run_fleet
from repro.fleet.health import CircuitBreaker, HashRing
from repro.fleet.router import (
    FleetConfig,
    FleetMetrics,
    FleetRouter,
    ShardHandle,
)

__all__ = [
    "ACTIONS",
    "ChaosController",
    "ChaosEvent",
    "ChaosPlan",
    "CircuitBreaker",
    "FleetConfig",
    "FleetMetrics",
    "FleetRouter",
    "HashRing",
    "LocalFleet",
    "ShardHandle",
    "ThreadedRouter",
    "run_chaos",
    "run_fleet",
]
