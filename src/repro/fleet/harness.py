"""In-process fleet harness: K real shards + a real router, one call.

The fleet counterpart of :class:`~repro.service.runner.ThreadedServer`:
everything runs in this process (each shard's event loop on its own
daemon thread, the router's on another), but over real TCP sockets with
real admission, real pools, and real failure modes — which is exactly
what the chaos harness (:mod:`repro.fleet.chaos`) needs to kill things
under load without managing subprocesses.

::

    with LocalFleet(n_shards=3) as fleet:
        with ServiceClient(port=fleet.port) as client:
            client.compile(source)          # routed by source digest
        fleet.kill_shard(0)                 # requests re-route
        fleet.crash_worker(1)               # shard 1 supervises + requeues

:class:`LocalFleet` also exposes the chaos primitives —
:meth:`~LocalFleet.kill_shard`, :meth:`~LocalFleet.crash_worker`,
:meth:`~LocalFleet.sever`, :meth:`~LocalFleet.delay_shard`,
:meth:`~LocalFleet.restart_shard` — that
:class:`~repro.fleet.chaos.ChaosPlan` events map onto.
"""

import asyncio
import contextlib
import dataclasses
import os
import signal
import threading
import time
from concurrent.futures.process import BrokenProcessPool

from repro.fleet.router import FleetConfig, FleetRouter
from repro.service.config import ServiceConfig
from repro.service.runner import ThreadedServer


class ThreadedRouter:
    """Run a :class:`FleetRouter` on a private event-loop thread."""

    def __init__(self, shard_addresses, config=None, timeout_s=60.0):
        self.shard_addresses = list(shard_addresses)
        self.config = config
        self.router = None
        self._thread = None
        self._loop = None
        self._ready = threading.Event()
        self._error = None
        self._timeout = timeout_s

    def start(self):
        """Start the loop thread; returns once the socket is bound."""
        self._thread = threading.Thread(target=self._run,
                                        name="repro-fleet-router",
                                        daemon=True)
        self._thread.start()
        if not self._ready.wait(self._timeout):
            raise RuntimeError("fleet router did not start in time")
        if self._error is not None:
            raise self._error
        return self

    def _run(self):
        try:
            asyncio.run(self._amain())
        except BaseException as error:  # pragma: no cover - defensive
            self._error = error
            self._ready.set()

    async def _amain(self):
        self.router = FleetRouter(self.shard_addresses, self.config)
        self._loop = asyncio.get_running_loop()
        try:
            await self.router.start()
        except Exception as error:
            self._error = error
            self._ready.set()
            return
        self._ready.set()
        await self.router.wait_closed()

    @property
    def host(self):
        return self.router.host

    @property
    def port(self):
        return self.router.port

    def _call(self, coroutine):
        """Run ``coroutine`` on the router loop from this thread."""
        try:
            future = asyncio.run_coroutine_threadsafe(coroutine, self._loop)
            return future.result(timeout=self._timeout)
        except RuntimeError:
            return None  # loop already closed

    def status(self):
        """The router's status payload, read off the loop thread."""
        return self.router.status()

    def sever(self):
        """Abort every client connection into the router."""
        return self._call(self.router.sever_connections()) or 0

    def stop(self):
        """Shut the router down and join the loop thread (idempotent)."""
        if self._thread is None or not self._thread.is_alive():
            return
        if self.router is not None and self._loop is not None:
            self._call(self.router.shutdown())
        self._thread.join(self._timeout)

    def join(self, timeout=None):
        """Block until the router's loop thread exits (a client drain
        shuts the router down; this is how ``repro fleet`` waits)."""
        if self._thread is not None:
            self._thread.join(timeout)

    __enter__ = start

    def __exit__(self, *exc_info):
        self.stop()


class LocalFleet:
    """``n_shards`` compile shards plus a router, all in this process.

    ``service_config`` is the template for every shard (its ``port`` is
    ignored — each shard binds an ephemeral port, remembered so
    :meth:`restart_shard` can rebind the same address the ring knows).
    Shards keep private caches by default; pass a ``cache_dir`` template
    to share one (the affinity story is cleaner with private caches:
    a re-routed request is a cache miss, a home-routed one a hit).
    """

    def __init__(self, n_shards=3, service_config=None, fleet_config=None):
        if n_shards < 1:
            raise ValueError("a fleet needs at least one shard")
        self.n_shards = n_shards
        base = service_config if service_config is not None else \
            ServiceConfig(pool="thread", workers=2)
        self._shard_configs = [dataclasses.replace(base, port=0)
                               for _ in range(n_shards)]
        self.fleet_config = fleet_config
        self.shards = []
        self.router = None
        self.killed = set()

    def start(self):
        self.shards = []
        try:
            for index in range(self.n_shards):
                shard = ThreadedServer(self._shard_configs[index]).start()
                # Remember the bound port so a restart reuses the
                # address the router's ring already routes to.
                self._shard_configs[index] = dataclasses.replace(
                    self._shard_configs[index], port=shard.port)
                self.shards.append(shard)
            self.router = ThreadedRouter(
                [(shard.host, shard.port) for shard in self.shards],
                self.fleet_config).start()
        except BaseException:
            self.stop()
            raise
        return self

    def stop(self):
        if self.router is not None:
            self.router.stop()
        for server in self.shards:
            with contextlib.suppress(Exception):
                server.stop(drain=False)

    @property
    def host(self):
        return self.router.host

    @property
    def port(self):
        """The one address clients talk to: the router's."""
        return self.router.port

    def alive_shards(self):
        return [index for index in range(len(self.shards))
                if index not in self.killed]

    # -- chaos primitives ----------------------------------------------------

    def kill_shard(self, index):
        """Kill shard ``index`` like a crashed process: connections
        reset, workers shot, nothing drained."""
        self.shards[index].kill()
        self.killed.add(index)
        return f"shard-{index} killed"

    def restart_shard(self, index):
        """Bring a killed shard back on its original address (the
        router's heartbeat closes its breaker again within a few
        beats)."""
        if index not in self.killed:
            raise ValueError(f"shard-{index} is not killed")
        shard = ThreadedServer(self._shard_configs[index]).start()
        self.shards[index] = shard
        self.killed.discard(index)
        return f"shard-{index} restarted on port {shard.port}"

    def crash_worker(self, index):
        """Crash one pool worker inside shard ``index``.

        Process pools get the real thing — ``SIGKILL`` on a live worker
        pid, so in-flight futures and the next submit raise
        :class:`BrokenProcessPool`.  Thread pools (workers can't be
        killed) get a one-shot submit wrapper raising the same
        exception, which exercises the identical supervision path:
        rebuild, requeue once, count it."""
        service = self.shards[index].service
        executor = service._executor
        processes = getattr(executor, "_processes", None)
        if processes:
            pid = next(iter(processes))
            os.kill(pid, signal.SIGKILL)
            return f"shard-{index}: SIGKILL worker {pid}"
        original = executor.submit

        def broken_submit(*args, **kwargs):
            executor.submit = original
            raise BrokenProcessPool("induced worker crash (chaos)")

        executor.submit = broken_submit
        return f"shard-{index}: next submit raises BrokenProcessPool"

    def sever(self):
        """Abort every open connection — clients into the router and
        clients directly into live shards.  In-flight forwards die with
        resets; the router re-routes, clients resend."""
        severed = self.router.sever()
        for index in self.alive_shards():
            shard = self.shards[index]
            try:
                future = asyncio.run_coroutine_threadsafe(
                    shard.service.sever_connections(), shard._loop)
                severed += future.result(timeout=10.0)
            except RuntimeError:
                pass
        return f"severed {severed} connection(s)"

    def delay_shard(self, index, seconds=0.5):
        """Turn shard ``index`` into a straggler: occupy every pool
        worker with a sleep, so real requests queue behind it (what
        hedging exists to beat)."""
        service = self.shards[index].service
        workers = getattr(service._executor, "_max_workers", 1)
        for _ in range(workers):
            service._executor.submit(time.sleep, seconds)
        return f"shard-{index}: {workers} worker(s) held {seconds}s"

    __enter__ = start

    def __exit__(self, *exc_info):
        self.stop()


def run_fleet(n_shards=3, service_config=None, fleet_config=None,
              announce=None):
    """Blocking entry point behind ``repro fleet``: start a local
    fleet, hand the started :class:`LocalFleet` to ``announce``, then
    serve until a client drains the router (or the user interrupts)."""
    fleet = LocalFleet(n_shards=n_shards, service_config=service_config,
                       fleet_config=fleet_config).start()
    try:
        if announce is not None:
            announce(fleet)
        fleet.router.join()
    except KeyboardInterrupt:
        pass
    finally:
        fleet.stop()
    return fleet
