"""Shard health: circuit breakers and the consistent-hash ring.

Two small, deterministic mechanisms the
:class:`~repro.fleet.router.FleetRouter` is built on:

* :class:`CircuitBreaker` — the classic three-state failure detector,
  one per shard.  ``closed`` passes traffic; ``failure_threshold``
  consecutive failures trip it ``open`` (traffic avoids the shard);
  after ``reset_timeout_s`` it turns ``half_open`` and lets exactly one
  probe through — a success closes it, a failure re-opens it and the
  timer restarts.  Heartbeat pings and real forwards both feed it, so a
  dead shard is discovered by whichever arrives first.  The clock is
  injected (``time_fn``) so tests run the full state machine without
  sleeping.

* :class:`HashRing` — consistent hashing with virtual nodes.  Requests
  hash by source digest, so the same program lands on the same shard
  (cache affinity: its solved pipeline state is already warm there),
  and removing a dead shard only remaps the keys that lived on it —
  the rest of the fleet keeps its warmth.
"""

import bisect
import hashlib
import time

#: Breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Per-shard failure detector (see the module docstring)."""

    def __init__(self, failure_threshold=3, reset_timeout_s=1.0,
                 time_fn=time.monotonic):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if reset_timeout_s <= 0:
            raise ValueError("reset_timeout_s must be positive")
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self._time = time_fn
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opens = 0
        self._opened_at = None
        self._probe_outstanding = False

    def allow(self):
        """May a request (or heartbeat) be sent to this shard now?

        ``closed`` always allows; ``open`` allows nothing until
        ``reset_timeout_s`` has passed, then transitions to
        ``half_open`` and hands out a single probe slot; ``half_open``
        refuses everything while that probe is outstanding."""
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if self._time() - self._opened_at >= self.reset_timeout_s:
                self.state = HALF_OPEN
                self._probe_outstanding = True
                return True
            return False
        # half-open: one probe at a time
        if not self._probe_outstanding:
            self._probe_outstanding = True
            return True
        return False

    def record_success(self):
        """The shard answered: close the breaker, reset the counters."""
        self.state = CLOSED
        self.consecutive_failures = 0
        self._probe_outstanding = False
        self._opened_at = None

    def record_failure(self):
        """The shard failed (refused, reset, timed out): count it, trip
        the breaker at the threshold, re-open instantly from
        half-open."""
        self.consecutive_failures += 1
        self._probe_outstanding = False
        if self.state == HALF_OPEN or (
                self.state == CLOSED
                and self.consecutive_failures >= self.failure_threshold):
            self.state = OPEN
            self.opens += 1
            self._opened_at = self._time()
        elif self.state == OPEN:
            # Still failing while open: restart the reset timer.
            self._opened_at = self._time()

    @property
    def available(self):
        """Whether traffic would currently be allowed (non-mutating —
        an open breaker past its reset timeout reads as available but
        only :meth:`allow` performs the half-open transition)."""
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            return self._time() - self._opened_at >= self.reset_timeout_s
        return not self._probe_outstanding

    def snapshot(self):
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "opens": self.opens,
        }


def _ring_hash(text):
    """Position on the ring for ``text`` (stable across processes)."""
    return int.from_bytes(hashlib.sha256(text.encode()).digest()[:8], "big")


class HashRing:
    """Consistent hashing over named members with virtual nodes."""

    def __init__(self, members, virtual_nodes=64):
        if not members:
            raise ValueError("a hash ring needs at least one member")
        if virtual_nodes < 1:
            raise ValueError("virtual_nodes must be at least 1")
        self.virtual_nodes = virtual_nodes
        points = []
        for member in members:
            for replica in range(virtual_nodes):
                points.append((_ring_hash(f"{member}#{replica}"), member))
        points.sort()
        self._points = [point for point, _ in points]
        self._members = [member for _, member in points]

    def preference(self, key):
        """All members in ring order starting at ``key``'s successor —
        ``[0]`` is the home member (cache affinity), the rest are the
        deterministic failover sequence."""
        start = bisect.bisect_right(self._points, _ring_hash(key))
        seen = []
        n = len(self._members)
        for offset in range(n):
            member = self._members[(start + offset) % n]
            if member not in seen:
                seen.append(member)
        return seen

    def home(self, key):
        """The member ``key`` maps to."""
        return self.preference(key)[0]
