"""Seeded chaos for the compile fleet (``docs/robustness.md``).

The service-level sibling of the machine simulator's
:class:`~repro.machine.faults.FaultPlan`: where that plan makes the
*simulated machine* unreliable (dropped messages, node crashes), a
:class:`ChaosPlan` makes the *compile fleet itself* unreliable — it
scripts real failures against a live :class:`~repro.fleet.harness.LocalFleet`
while a load driver keeps compiling through the router:

* ``kill_shard`` — a shard dies mid-flight (connections reset, workers
  shot, nothing drained); the router's breaker opens and its keys
  fail over down the ring;
* ``crash_worker`` — one pool worker inside a live shard dies; the
  shard supervises (rebuild + requeue once) without the router ever
  noticing;
* ``sever`` — every open connection is aborted at once (clients into
  the router, clients into shards); in-flight requests are resent;
* ``delay`` — a shard's workers are held busy, turning it into a
  straggler (what hedging exists to beat).

Like ``FaultPlan``, the plan is frozen, seeded configuration:
:meth:`ChaosPlan.script` expands it into a deterministic event schedule
(same seed → same schedule), placed over the middle of the request
stream so the run warms up and settles down clean.  :func:`run_chaos`
drives a corpus through :meth:`~repro.service.client.ServiceClient.compile_retrying`
while a :class:`ChaosController` fires due events between requests, and
reports what survived — the benchmark gate
(``python -m repro.obs.bench --fleet``) then checks every reply against
a direct in-process compile, byte for byte.
"""

import random
import time
from dataclasses import dataclass

from repro.service.client import ServiceClient
from repro.util.errors import FaultSpecError

#: Event actions, mapped onto :class:`~repro.fleet.harness.LocalFleet`
#: chaos primitives by the controller.
ACTIONS = ("kill_shard", "crash_worker", "sever", "delay")


@dataclass(frozen=True)
class ChaosEvent:
    """One scripted failure: fire before request ``at_request``."""

    at_request: int
    action: str
    shard: int = None
    seconds: float = 0.0

    def __post_init__(self):
        if self.action not in ACTIONS:
            raise FaultSpecError(
                f"unknown chaos action {self.action!r} "
                f"(expected one of {', '.join(ACTIONS)})")

    def as_dict(self):
        payload = {"at_request": self.at_request, "action": self.action}
        if self.shard is not None:
            payload["shard"] = self.shard
        if self.seconds:
            payload["seconds"] = self.seconds
        return payload


@dataclass(frozen=True)
class ChaosPlan:
    """Seeded chaos configuration: how many of each failure to script.

    ``kills`` is clamped so at least one shard always survives — a
    fleet with zero live shards has no correct behavior to verify,
    only unavailability."""

    seed: int = 0
    kills: int = 1
    worker_crashes: int = 1
    severs: int = 1
    delays: int = 0
    delay_s: float = 0.5

    #: spec keys accepted by :meth:`parse`, mapped to field names
    SPEC_KEYS = {
        "seed": "seed",
        "kills": "kills",
        "crashes": "worker_crashes",
        "severs": "severs",
        "delays": "delays",
        "delay_s": "delay_s",
    }

    def __post_init__(self):
        for name in ("kills", "worker_crashes", "severs", "delays"):
            if getattr(self, name) < 0:
                raise FaultSpecError(f"{name} must be >= 0")
        if self.delay_s < 0:
            raise FaultSpecError("delay_s must be >= 0")

    @classmethod
    def parse(cls, spec):
        """Build a plan from a CLI spec like ``"kills=1,severs=2,seed=7"``.

        Accepted keys: ``kills``, ``crashes``, ``severs``, ``delays``,
        ``delay_s``, ``seed``.  Raises :class:`FaultSpecError` on
        unknown keys or malformed values."""
        values = {}
        for part in filter(None, (p.strip() for p in spec.split(","))):
            key, sep, raw = part.partition("=")
            key = key.strip()
            if not sep or key not in cls.SPEC_KEYS:
                known = ", ".join(sorted(cls.SPEC_KEYS))
                raise FaultSpecError(
                    f"bad chaos spec item {part!r} (known keys: {known})")
            try:
                number = float(raw) if key == "delay_s" else int(raw)
            except ValueError:
                raise FaultSpecError(
                    f"bad chaos spec value {raw!r} for {key!r}") from None
            values[cls.SPEC_KEYS[key]] = number
        return cls(**values)

    @property
    def active(self):
        """Whether this plan can inject anything at all."""
        return bool(self.kills or self.worker_crashes or self.severs
                    or self.delays)

    def script(self, n_shards, n_requests):
        """Expand the plan into a deterministic event schedule.

        Events land in the middle three fifths of the request stream
        (warmup and tail run clean).  Killed shards are chosen first
        and never more than ``n_shards - 1`` of them; worker crashes
        and delays target shards that are never killed, so every
        scripted event is applicable when it fires."""
        rng = random.Random(self.seed)
        low = max(1, n_requests // 5)
        high = max(low + 1, (4 * n_requests) // 5)

        def position():
            return rng.randrange(low, high)

        kills = min(self.kills, n_shards - 1)
        killed = rng.sample(range(n_shards), kills)
        survivors = [s for s in range(n_shards) if s not in killed]
        events = []
        for shard in killed:
            events.append(ChaosEvent(position(), "kill_shard", shard=shard))
        for _ in range(self.worker_crashes):
            events.append(ChaosEvent(position(), "crash_worker",
                                     shard=rng.choice(survivors)))
        for _ in range(self.severs):
            events.append(ChaosEvent(position(), "sever"))
        for _ in range(self.delays):
            events.append(ChaosEvent(position(), "delay",
                                     shard=rng.choice(survivors),
                                     seconds=self.delay_s))
        return sorted(events, key=lambda event: (event.at_request,
                                                 event.action))


class ChaosController:
    """Fire scripted events against a live fleet as the load advances.

    A failed injection (the target shard raced into an unexpected
    state) is recorded under ``applied`` with an ``error`` — chaos that
    misfires should show up in the report, not kill the run."""

    def __init__(self, fleet, events):
        self.fleet = fleet
        self._pending = sorted(events, key=lambda e: e.at_request)
        self.applied = []

    def advance(self, request_index):
        """Fire every event due at or before ``request_index``."""
        while self._pending and self._pending[0].at_request <= request_index:
            event = self._pending.pop(0)
            record = event.as_dict()
            try:
                record["detail"] = self._apply(event)
            except Exception as error:
                record["error"] = f"{type(error).__name__}: {error}"
            self.applied.append(record)

    def _apply(self, event):
        fleet = self.fleet
        if event.action == "kill_shard":
            return fleet.kill_shard(event.shard)
        if event.action == "crash_worker":
            return fleet.crash_worker(event.shard)
        if event.action == "sever":
            return fleet.sever()
        return fleet.delay_shard(event.shard, seconds=event.seconds)


def run_chaos(fleet, programs, plan, deadline_s=None, options=None,
              timeout_s=60.0):
    """Drive ``programs`` (``(name, source)`` pairs) through ``fleet``'s
    router while ``plan`` (a :class:`ChaosPlan` or a pre-scripted event
    list) fires; returns the full report.

    Every request goes through
    :meth:`~repro.service.client.ServiceClient.compile_retrying`, so
    the client rides out resets, refused dials, and ``unavailable``
    replies the same way a polite production client would.  A request
    that still fails after all retries is **lost** — the report counts
    it, and the benchmark gate requires zero."""
    programs = list(programs)
    events = (plan.script(len(fleet.shards), len(programs))
              if isinstance(plan, ChaosPlan) else list(plan))
    controller = ChaosController(fleet, events)
    results = []
    lost = 0
    started = time.perf_counter()
    with ServiceClient(port=fleet.port, timeout_s=timeout_s) as client:
        for index, (name, source) in enumerate(programs):
            controller.advance(index)
            t0 = time.perf_counter()
            try:
                result = client.compile_retrying(
                    source, name=name, deadline_s=deadline_s,
                    options=options)
            except Exception as error:
                lost += 1
                results.append({
                    "name": name, "lost": True,
                    "error": f"{type(error).__name__}: {error}",
                    "latency_s": time.perf_counter() - t0,
                })
            else:
                results.append({
                    "name": name, "lost": False, "result": result,
                    "latency_s": time.perf_counter() - t0,
                })
        controller.advance(len(programs))  # flush any tail events
    supervision = {"pool_rebuilds": 0, "requeued": 0}
    for index in fleet.alive_shards():
        metrics = fleet.shards[index].service.metrics
        supervision["pool_rebuilds"] += metrics.pool_rebuilds
        supervision["requeued"] += metrics.requeued
    return {
        "requests": len(programs),
        "lost": lost,
        "elapsed_s": time.perf_counter() - started,
        "events": controller.applied,
        "results": results,
        "router": fleet.router.status(),
        "supervision": supervision,
    }
