"""Command-line interface.

::

    python -m repro annotate program.f [--atomic] [--owner-computes]
                                       [--no-hoist] [--conservative-jumps]
                                       [--hardened] [--trace]
                                       [--trace-json PATH]
    python -m repro graph program.f [--dot]
    python -m repro simulate program.f [--n N] [--latency L] [--branch MODE]
                                       [--naive] [--overhead O] [--hardened]
                                       [--faults SPEC] [--retries N]
                                       [--timeout T] [--trace]
                                       [--trace-json PATH]
    python -m repro profile program.f [--json] [--events] [--simulate]
                                      [--n N] [--hardened]
    python -m repro pre program.f
    python -m repro batch DIR_OR_FILES... [--jobs N] [--cache DIR]
                                          [--no-cache] [--hardened]
                                          [--json] [--quiet]
    python -m repro serve [--host H] [--port P] [--workers N]
                          [--queue-limit N] [--deadline S] [--hardened]
                          [--cache DIR] [--no-cache] [--pool KIND]
    python -m repro fleet [--shards K] [--host H] [--port P]
                          [--workers N] [--pool KIND] [--queue-limit N]
                          [--hardened] [--hedge S] [--heartbeat S]
    python -m repro request ACTION [FILES...] [--host H] [--port P]
                                   [--deadline S] [--hardened] [--json]

``annotate`` prints the program with balanced READ/WRITE communication
(the paper's Figure 14 output format); ``graph`` prints the interval
flow graph (optionally as Graphviz dot); ``simulate`` runs the annotated
program on the machine model and reports messages/volume/latency;
``profile`` runs the pipeline under the structured tracer and reports
per-equation evaluation counts, sweep/fixpoint statistics, interval
construction stats, and — with ``--simulate`` — the message timeline
(``docs/observability.md``); ``pre`` reports common-subexpression
placement under GIVE-N-TAKE, Lazy Code Motion, and Morel-Renvoise.
``--trace`` on ``annotate``/``simulate`` appends the same human-readable
trace summary; ``--trace-json PATH`` writes the full JSON trace (``-``
for stdout).

``batch`` compiles every ``*.f`` program under a directory (or an
explicit file list) through the memoized batch layer
(``docs/scaling.md``): ``--jobs`` fans the corpus across worker
processes, ``--cache DIR`` keeps a content-addressed cache of solved
pipeline state warm across runs, ``--no-cache`` disables caching
entirely.  Per-program errors are reported and counted, never fatal to
the rest of the corpus; the command exits 1 when any program failed.

``serve`` runs the resident compile service (``docs/serving.md``): a
warm-cache ``asyncio`` TCP server with bounded admission, backpressure,
per-request deadlines, and graceful drain; ``fleet`` runs ``--shards``
of them behind a fault-tolerant router (consistent-hash placement,
circuit breakers, transparent failover — ``docs/robustness.md``) that
speaks the same protocol on one address; ``request`` sends one request
(``compile``, ``batch``, ``status``, ``drain``, ``ping``) to a running
service *or* fleet and renders the reply — ``status`` shows admission,
cache, latency, and supervision counters for a service, and the
failover/breaker/shard table for a fleet.

``--hardened`` routes placement through the self-checking
:class:`~repro.commgen.hardened.HardenedPipeline`; ``--faults`` injects
seeded message loss/duplication/jitter/crashes into the simulation,
recovered by the ``--retries``/``--timeout`` backoff protocol (see
``docs/robustness.md``).

Every library error (:class:`~repro.util.errors.ReproError`) exits with
status 2 and a one-line ``error: ...`` message — never a traceback.
"""

import argparse
import sys

from repro.commgen import (
    HardenedPipeline,
    generate_communication,
    naive_communication,
)
from repro.graph.dot import interval_graph_to_dot
from repro.machine import (
    ConditionPolicy,
    FaultPlan,
    MachineModel,
    RetryPolicy,
    simulate,
)
from repro.obs import (
    build_profile,
    format_profile,
    profile_source,
    to_json,
    tracing,
)
from repro.service.config import DEFAULT_PORT as DEFAULT_SERVICE_PORT
from repro.testing.programs import analyze_source
from repro.util.errors import FaultSpecError, ReproError


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GIVE-N-TAKE balanced code placement "
                    "(von Hanxleden & Kennedy, PLDI 1994)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    annotate = commands.add_parser(
        "annotate", help="insert balanced READ/WRITE communication")
    annotate.add_argument("file", help="mini-Fortran source file ('-' for stdin)")
    annotate.add_argument("--atomic", action="store_true",
                          help="atomic operations instead of send/recv pairs")
    annotate.add_argument("--owner-computes", action="store_true",
                          help="strict owner-computes rule (no writes/gives)")
    annotate.add_argument("--no-hoist", action="store_true",
                          help="never produce on zero-trip paths (§4.1)")
    annotate.add_argument("--conservative-jumps", action="store_true",
                          help="§5.3 blocking for AFTER problems with jumps")
    annotate.add_argument("--hardened", action="store_true",
                          help="self-checking pipeline: validate the "
                               "placement and degrade instead of failing")
    add_solver_backend_argument(annotate)
    add_trace_arguments(annotate)

    graph = commands.add_parser("graph", help="show the interval flow graph")
    graph.add_argument("file")
    graph.add_argument("--dot", action="store_true", help="Graphviz output")

    sim = commands.add_parser("simulate", help="run on the machine model")
    sim.add_argument("file")
    sim.add_argument("--n", type=int, default=64, help="loop bound binding")
    sim.add_argument("--latency", type=float, default=100.0)
    sim.add_argument("--overhead", type=float, default=10.0,
                     help="per-message overhead")
    sim.add_argument("--branch", choices=["always", "never", "random"],
                     default="always", help="opaque condition policy")
    sim.add_argument("--naive", action="store_true",
                     help="use the per-element baseline placement")
    sim.add_argument("--hardened", action="store_true",
                     help="place communication with the self-checking, "
                          "gracefully degrading pipeline")
    sim.add_argument("--faults", metavar="SPEC",
                     help="inject seeded faults, e.g. "
                          "'drop=0.2,dup=0.1,jitter=50,crash=0.05,seed=7'")
    sim.add_argument("--retries", type=int, default=6,
                     help="retransmissions before a lost message is fatal")
    sim.add_argument("--timeout", type=float, default=400.0,
                     help="initial retransmit timeout (doubles per retry)")
    sim.add_argument("--schedule", choices=["naive", "overlap"],
                     default="naive",
                     help="run the statement order as annotated (naive) "
                          "or the latency-hiding overlap schedule, "
                          "differentially checked against it "
                          "(docs/scheduling.md)")
    add_trace_arguments(sim)

    profile = commands.add_parser(
        "profile", help="trace the pipeline: equation counts, sweeps, "
                        "graph stats (docs/observability.md)")
    profile.add_argument("file")
    profile.add_argument("--json", action="store_true",
                         help="machine-readable trace payload instead of "
                              "the human summary")
    profile.add_argument("--events", action="store_true",
                         help="include the full event stream in the "
                              "human summary")
    profile.add_argument("--simulate", action="store_true",
                         help="also execute on the machine model and "
                              "trace the message timeline")
    profile.add_argument("--n", type=int, default=64,
                         help="loop bound binding for --simulate")
    profile.add_argument("--hardened", action="store_true",
                         help="profile the self-checking pipeline "
                              "(rung decisions, budget consumption)")
    add_solver_backend_argument(profile)

    pre = commands.add_parser("pre", help="compare PRE placements")
    pre.add_argument("file")

    batch = commands.add_parser(
        "batch", help="compile a corpus through the memoized batch "
                      "layer (docs/scaling.md)")
    batch.add_argument("paths", nargs="+", metavar="PATH",
                       help="directories (every *.f inside) and/or "
                            "individual source files")
    batch.add_argument("--jobs", type=int, default=1,
                       help="worker processes (default 1 = serial, "
                            "0 = one per CPU)")
    batch.add_argument("--cache", metavar="DIR", default=None,
                       help="persist the content-addressed pipeline "
                            "cache in DIR (warm across runs); default "
                            "is an in-memory cache for this run only")
    batch.add_argument("--no-cache", action="store_true",
                       help="disable the pipeline cache entirely")
    batch.add_argument("--hardened", action="store_true",
                       help="compile every program through the "
                            "self-checking degrading pipeline")
    batch.add_argument("--owner-computes", action="store_true",
                       help="strict owner-computes rule (no writes)")
    batch.add_argument("--atomic", action="store_true",
                       help="atomic operations instead of send/recv")
    batch.add_argument("--json", action="store_true",
                       help="machine-readable batch report (includes "
                            "every annotated source)")
    batch.add_argument("--quiet", action="store_true",
                       help="summary line only, no per-program lines")
    add_solver_backend_argument(batch)

    delta = commands.add_parser(
        "delta", help="incrementally recompile an edited program "
                      "against a warm cache (docs/scaling.md)")
    delta.add_argument("base", help="base source file (the previously "
                                    "compiled version)")
    delta.add_argument("edited", help="edited source file ('-' for stdin)")
    delta.add_argument("--cache", metavar="DIR", default=None,
                       help="persist the pipeline cache in DIR (warm "
                            "across runs); default is an in-memory "
                            "cache warmed by compiling BASE first")
    delta.add_argument("--json", action="store_true",
                       help="machine-readable result (the full compile "
                            "payload including the incremental stats)")
    add_solver_backend_argument(delta)

    serve = commands.add_parser(
        "serve", help="run the resident compile service "
                      "(docs/serving.md)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=DEFAULT_SERVICE_PORT,
                       help=f"listen port (default {DEFAULT_SERVICE_PORT}, "
                            "0 = ephemeral)")
    serve.add_argument("--workers", type=int, default=0,
                       help="worker processes (default 0 = one per CPU)")
    serve.add_argument("--pool", choices=["auto", "process", "thread"],
                       default="auto",
                       help="worker pool kind (auto = processes, with a "
                            "thread fallback where multiprocessing is "
                            "unavailable)")
    serve.add_argument("--queue-limit", type=int, default=32,
                       help="max requests queued or running before new "
                            "work is refused with a busy/retry_after "
                            "reply")
    serve.add_argument("--deadline", type=float, default=None,
                       help="default per-request deadline in seconds "
                            "(requests may override)")
    serve.add_argument("--hardened", action="store_true",
                       help="compile through the self-checking degrading "
                            "pipeline by default")
    serve.add_argument("--cache", metavar="DIR", default=None,
                       help="persist the warm pipeline cache in DIR "
                            "(shared across restarts and pool workers)")
    serve.add_argument("--no-cache", action="store_true",
                       help="disable the pipeline cache entirely")

    fleet = commands.add_parser(
        "fleet", help="run a fault-tolerant fleet of compile shards "
                      "behind one router (docs/robustness.md)")
    fleet.add_argument("--shards", type=int, default=3,
                       help="number of compile shards (default 3)")
    fleet.add_argument("--host", default="127.0.0.1",
                       help="router listen address (shards bind "
                            "ephemeral ports on the same host)")
    fleet.add_argument("--port", type=int, default=DEFAULT_SERVICE_PORT,
                       help=f"router listen port (default "
                            f"{DEFAULT_SERVICE_PORT}, 0 = ephemeral)")
    fleet.add_argument("--workers", type=int, default=0,
                       help="workers per shard (default 0 = one per CPU)")
    fleet.add_argument("--pool", choices=["auto", "process", "thread"],
                       default="auto",
                       help="worker pool kind for every shard")
    fleet.add_argument("--queue-limit", type=int, default=32,
                       help="admission bound per shard")
    fleet.add_argument("--hardened", action="store_true",
                       help="shards compile through the self-checking "
                            "degrading pipeline by default")
    fleet.add_argument("--hedge", type=float, default=None, metavar="S",
                       help="duplicate an unanswered forward on another "
                            "shard after S seconds (default: off)")
    fleet.add_argument("--heartbeat", type=float, default=0.25, metavar="S",
                       help="shard health-check interval in seconds")

    request = commands.add_parser(
        "request", help="send one request to a running compile service "
                        "or fleet router")
    request.add_argument("action",
                         choices=["compile", "batch", "status", "drain",
                                  "ping"])
    request.add_argument("paths", nargs="*", metavar="PATH",
                         help="source files for compile, files and/or "
                              "directories for batch")
    request.add_argument("--host", default="127.0.0.1")
    request.add_argument("--port", type=int, default=DEFAULT_SERVICE_PORT)
    request.add_argument("--deadline", type=float, default=None,
                         help="per-request deadline in seconds")
    request.add_argument("--hardened", action="store_true",
                         help="ask for the self-checking degrading "
                              "pipeline")
    request.add_argument("--timeout", type=float, default=30.0,
                         help="client socket timeout in seconds")
    request.add_argument("--json", action="store_true",
                         help="print the raw response payload")
    add_solver_backend_argument(request)

    explain = commands.add_parser(
        "explain", help="dataflow report for the communication problems")
    explain.add_argument("file")
    explain.add_argument("--problem", choices=["read", "write", "both"],
                         default="both")
    return parser


def add_solver_backend_argument(parser):
    parser.add_argument("--solver-backend",
                        choices=["planned", "vector", "reference"],
                        default=None, metavar="BACKEND",
                        help="solver kernel: 'planned' (compiled "
                             "schedules, the default), 'vector' "
                             "(level-batched bit-matrix kernels, "
                             "word-parallel with NumPy) or 'reference' "
                             "(per-equation oracle); see docs/scaling.md")


def add_trace_arguments(parser):
    parser.add_argument("--trace", action="store_true",
                        help="append a human-readable trace summary "
                             "(equation counts, sweeps, graph stats)")
    parser.add_argument("--trace-json", metavar="PATH",
                        help="write the full JSON trace to PATH "
                             "('-' for stdout)")


def read_source(path):
    if path == "-":
        return sys.stdin.read()
    with open(path) as handle:
        return handle.read()


def traced(args, out, body):
    """Run ``body`` under tracing when ``--trace``/``--trace-json`` ask
    for it, then emit the requested rendering after the normal output.
    Returns ``body``'s result (a command exit status or ``None``)."""
    if not (args.trace or args.trace_json):
        return body()
    with tracing() as collector:
        status = body()
    payload = build_profile(collector)
    if args.trace:
        out.write(format_profile(payload))
    if args.trace_json:
        if args.trace_json == "-":
            out.write(to_json(payload))
        else:
            with open(args.trace_json, "w") as handle:
                handle.write(to_json(payload))
    return status


def command_annotate(args, out):
    traced(args, out, lambda: _annotate(args, out))


def _annotate(args, out):
    if args.hardened:
        pipeline = HardenedPipeline(owner_computes=args.owner_computes,
                                    split_messages=not args.atomic,
                                    solver_backend=args.solver_backend)
        hardened = pipeline.run(read_source(args.file))
        out.write(hardened.annotated_source())
        out.write(f"! {hardened.report.summary()}\n")
        return
    result = generate_communication(
        read_source(args.file),
        owner_computes=args.owner_computes,
        split_messages=not args.atomic,
        hoist_zero_trip=not args.no_hoist,
        after_jumps="conservative" if args.conservative_jumps else "optimistic",
        solver_backend=args.solver_backend,
    )
    out.write(result.annotated_source())
    reads, writes = result.communication_count()
    out.write(f"! {reads} read and {writes} write placements\n")


def command_graph(args, out):
    analyzed = analyze_source(read_source(args.file))
    if args.dot:
        out.write(interval_graph_to_dot(analyzed.ifg, analyzed.numbering))
        out.write("\n")
        return
    for node, number in analyzed.numbering.items():
        level = analyzed.ifg.level(node)
        marker = "*" if node.synthetic else " "
        out.write(f"{number:3}{marker} level {level}  {node.kind.value:10} "
                  f"{node.name}\n")
    for src, dst, edge_type in analyzed.ifg.edges("CEFJS"):
        s = "ROOT" if src is analyzed.ifg.root else analyzed.numbering[src]
        d = "ROOT" if dst is analyzed.ifg.root else analyzed.numbering[dst]
        out.write(f"  ({s}, {d}) {edge_type.name}\n")


def command_simulate(args, out):
    traced(args, out, lambda: _simulate(args, out))


def _simulate(args, out):
    source = read_source(args.file)
    report = None
    if args.hardened:
        hardened = HardenedPipeline().run(source)
        result, report = hardened.result, hardened.report
    elif args.naive:
        result = naive_communication(source)
    else:
        result = generate_communication(source)
    faults = FaultPlan.parse(args.faults) if args.faults else None
    try:
        retry = RetryPolicy(max_retries=args.retries, timeout=args.timeout)
    except ValueError as exc:
        raise FaultSpecError(str(exc)) from exc
    machine = MachineModel(latency=args.latency, message_overhead=args.overhead)
    if args.schedule == "overlap":
        from repro.sched import compare_schedules

        comparison = compare_schedules(
            result.annotated_program, machine, {"n": args.n},
            branch=args.branch, faults=faults, retry=retry)
        if report is not None:
            out.write(report.summary() + "\n")
        out.write("naive:   " + comparison.naive.summary() + "\n")
        out.write("overlap: " + comparison.overlap.summary() + "\n")
        out.write(comparison.summary() + "\n")
        if not comparison.states_match or not comparison.certified:
            for violation in comparison.certification.violations:
                out.write(f"  {violation.criterion} {violation.message}\n")
            return 1
        return 0
    metrics = simulate(result.annotated_program, machine, {"n": args.n},
                       ConditionPolicy(args.branch), faults=faults,
                       retry=retry)
    if report is not None:
        out.write(report.summary() + "\n")
    out.write(metrics.summary() + "\n")


def command_profile(args, out):
    payload = profile_source(
        read_source(args.file),
        hardened=args.hardened,
        run_simulation=args.simulate,
        bindings={"n": args.n},
        policy=ConditionPolicy("always"),
        solver_backend=args.solver_backend,
    )
    if args.json:
        out.write(to_json(payload))
    else:
        out.write(format_profile(payload, events=args.events))


def command_pre(args, out):
    from repro.pre import (
        build_cse_problem,
        gnt_pre_placement,
        lazy_code_motion,
        morel_renvoise,
    )
    from repro.pre.gnt_pre import lazy_insertion_nodes

    analyzed = analyze_source(read_source(args.file))
    problem, _ = build_cse_problem(analyzed)
    if not len(problem.universe):
        out.write("no candidate expressions found\n")
        return
    lcm = lazy_code_motion(analyzed.ifg, problem)
    mr = morel_renvoise(analyzed.ifg, problem)
    gnt = gnt_pre_placement(analyzed.ifg, problem)
    for expression in problem.universe:
        out.write(f"{expression}:\n")
        gnt_nodes = lazy_insertion_nodes(gnt, expression)
        out.write("  GNT evaluates at : "
                  + (", ".join(n.name for n in gnt_nodes) or "-") + "\n")
        out.write("  LCM inserts at   : "
                  + (", ".join(n.name for n in lcm.node_insertions_for(expression))
                     or "-") + "\n")
        out.write("  MR inserts at    : "
                  + (", ".join(n.name for n in mr.node_insertions_for(expression))
                     or "-") + "\n")


def collect_sources(paths):
    """``(name, text)`` pairs from a mix of files and directories
    (every ``*.f`` inside a directory) — shared by ``batch`` and
    ``request batch``."""
    import os

    sources = []
    for path in paths:
        if os.path.isdir(path):
            for name in sorted(os.listdir(path)):
                if name.endswith(".f"):
                    full = os.path.join(path, name)
                    sources.append((full, read_source(full)))
        else:
            sources.append((path, read_source(path)))
    if not sources:
        raise FileNotFoundError(
            f"no *.f programs found under: {', '.join(paths)}")
    return sources


def command_batch(args, out):
    import json

    from repro.batch import BatchOptions, PipelineCache, compile_many

    sources = collect_sources(args.paths)

    cache = None if args.no_cache else PipelineCache(directory=args.cache)
    options = BatchOptions(
        hardened=args.hardened,
        split_messages=not args.atomic,
        pipeline={"owner_computes": args.owner_computes,
                  "solver_backend": args.solver_backend},
    )
    result = compile_many(sources, jobs=args.jobs, cache=cache,
                          options=options)

    if args.json:
        out.write(json.dumps(result.as_dict(), indent=2, sort_keys=True))
        out.write("\n")
        return 1 if result.error_count else 0
    if not args.quiet:
        for program in result.programs:
            if program.ok:
                line = (f"{program.name}: reads={program.reads} "
                        f"writes={program.writes}")
                if program.cache_hit:
                    line += " [cached]"
                if program.rung:
                    line += f" [rung={program.rung}]"
            else:
                line = f"{program.name}: error: {program.error}"
            out.write(line + "\n")
    out.write(result.summary() + "\n")
    return 1 if result.error_count else 0


def command_delta(args, out):
    import json

    from repro.batch import (
        BatchOptions,
        PipelineCache,
        compile_delta,
        compile_one,
        source_fingerprint,
    )

    base_text = read_source(args.base)
    edited_text = read_source(args.edited)
    cache = PipelineCache(directory=args.cache)
    options = BatchOptions(
        pipeline={"solver_backend": args.solver_backend})
    base = compile_one(args.base, base_text, cache=cache, options=options)
    if not base.ok:
        out.write(f"{args.base}: error: {base.error}\n")
        return 1
    compiled = compile_delta(args.edited, edited_text, cache,
                             options=options,
                             base_digest=source_fingerprint(base_text))
    if args.json:
        out.write(json.dumps(compiled.as_dict(), indent=2, sort_keys=True))
        out.write("\n")
        return 1 if not compiled.ok else 0
    if not compiled.ok:
        out.write(f"{args.edited}: error: {compiled.error}\n")
        return 1
    out.write(compiled.annotated_source)
    incr = compiled.incremental or {}
    changed = incr.get("intervals_changed")
    total = incr.get("intervals_total")
    scope = (f"{changed}/{total} intervals changed"
             if changed is not None else "interval diff unavailable")
    out.write(f"! delta: {scope}; whole-solve hits {incr.get('whole_hits', 0)}"
              f", interval splices {incr.get('interval_hits', 0)}"
              f", verdict hits {incr.get('verdict_hits', 0)}\n")
    return 0


def command_serve(args, out):
    from repro.service import ServiceConfig, run_service

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        pool=args.pool,
        queue_limit=args.queue_limit,
        deadline_s=args.deadline,
        hardened=args.hardened,
        cache_dir=args.cache,
        use_cache=not args.no_cache,
    )
    run_service(config, out=out)


def command_fleet(args, out):
    from repro.fleet import FleetConfig, run_fleet
    from repro.service import ServiceConfig

    service_config = ServiceConfig(
        host=args.host,
        workers=args.workers,
        pool=args.pool,
        queue_limit=args.queue_limit,
        hardened=args.hardened,
    )
    fleet_config = FleetConfig(
        host=args.host,
        port=args.port,
        heartbeat_s=args.heartbeat,
        hedge_delay_s=args.hedge,
    )

    def announce(fleet):
        shards = ", ".join(f"{shard.host}:{shard.port}"
                           for shard in fleet.shards)
        out.write(f"repro-fleet router listening on "
                  f"{fleet.host}:{fleet.port} "
                  f"({len(fleet.shards)} shards: {shards})\n")
        if hasattr(out, "flush"):
            out.flush()

    run_fleet(n_shards=args.shards, service_config=service_config,
              fleet_config=fleet_config, announce=announce)


def format_status(status, out):
    """Human rendering of a ``status`` reply — a compile service's
    admission/cache/latency/supervision view, or a fleet router's
    failover counters and shard table."""
    server = status.get("server", {})
    if server.get("role") == "fleet-router":
        fleet = status["fleet"]
        out.write(f"fleet router {server['host']}:{server['port']} — "
                  f"{server['shards']} shards, "
                  f"uptime {fleet['uptime_s']:.0f}s\n")
        out.write(f"  requests: received={fleet['received']} "
                  f"forwards={fleet['forwards']} "
                  f"completed={fleet['completed']} "
                  f"unavailable={fleet['unavailable']}\n")
        out.write(f"  failover: rerouted={fleet['rerouted']} "
                  f"spilled={fleet['spilled']} "
                  f"hedges={fleet['hedges']} "
                  f"(won {fleet['hedge_wins']}) "
                  f"breaker_opens={fleet['breaker_opens']}\n")
        for shard in status.get("shards", ()):
            out.write(f"  {shard['name']} {shard['host']}:{shard['port']}: "
                      f"{shard['state']} inflight={shard['inflight']} "
                      f"forwards={shard['forwards']} "
                      f"failures={shard['failures']} "
                      f"opens={shard['opens']}\n")
        return
    requests = status["requests"]
    admission = status["admission"]
    supervision = status.get("supervision", {})
    cache = status["cache"]
    total = status["latency"]["total_s"]
    out.write(f"service {server.get('host')}:{server.get('port')} — "
              f"workers={server.get('workers')} ({server.get('pool')}), "
              f"uptime {status['uptime_s']:.0f}s\n")
    out.write(f"  requests: received={requests['received']} "
              f"admitted={requests['admitted']} "
              f"completed={requests['completed']} "
              f"failed={requests['failed']} "
              f"inflight={requests['inflight']} "
              f"(peak {requests['queue_peak']})\n")
    out.write(f"  admission: busy={admission['rejected_busy']} "
              f"draining={admission['rejected_draining']} "
              f"deadline={admission['deadline_expired']} "
              f"bad={admission['bad_requests']} "
              f"internal={admission['internal_errors']}\n")
    out.write(f"  supervision: "
              f"pool_rebuilds={supervision.get('pool_rebuilds', 0)} "
              f"requeued={supervision.get('requeued', 0)}\n")
    out.write(f"  cache: {cache['hits']}/{cache['lookups']} hits "
              f"({cache['hit_rate']:.0%})\n")
    out.write(f"  latency: p50={total['p50_s'] * 1e3:.1f}ms "
              f"p90={total['p90_s'] * 1e3:.1f}ms "
              f"p99={total['p99_s'] * 1e3:.1f}ms "
              f"over {total['count']} requests\n")


def command_request(args, out):
    import json

    from repro.service import ServiceClient

    options = {}
    if args.hardened:
        options["hardened"] = True
    if args.solver_backend:
        options["pipeline"] = {"solver_backend": args.solver_backend}
    options = options or None

    def dump(payload):
        out.write(json.dumps(payload, indent=2, sort_keys=True))
        out.write("\n")

    with ServiceClient(args.host, args.port, timeout_s=args.timeout) as client:
        if args.action == "ping":
            response = client.ping()
            if args.json:
                dump(response)
            else:
                out.write(f"pong from {args.host}:{args.port} "
                          f"({response['protocol']})\n")
        elif args.action == "status":
            status = client.status()
            if args.json:
                dump(status)
            else:
                format_status(status, out)
        elif args.action == "drain":
            response = client.drain()
            if args.json:
                dump(response)
            elif "shards" in response:  # fleet router
                outcomes = ", ".join(
                    f"{name}: {outcome}"
                    for name, outcome in sorted(response["shards"].items()))
                out.write(f"fleet drained: {response['completed']} "
                          f"completed ({outcomes})\n")
            else:
                out.write(f"drained: {response['completed']} completed, "
                          f"{response['failed']} failed\n")
        elif args.action == "compile":
            if not args.paths:
                raise ReproError(
                    "request compile needs at least one source file")
            failed = 0
            for path in args.paths:
                result = client.compile(read_source(path), name=path,
                                        deadline_s=args.deadline,
                                        options=options)
                if args.json:
                    dump(result)
                elif result["ok"]:
                    out.write(result["annotated_source"])
                    line = (f"! {result['reads']} read and "
                            f"{result['writes']} write placements")
                    if result.get("rung"):
                        line += f" [rung={result['rung']}]"
                    if result.get("cache_hit"):
                        line += " [cached]"
                    out.write(line + "\n")
                else:
                    failed += 1
                    out.write(f"{path}: error: {result['error']}\n")
            return 1 if failed else 0
        else:  # batch
            sources = collect_sources(args.paths)
            response = client.batch(sources, deadline_s=args.deadline,
                                    options=options)
            if args.json:
                dump(response)
                return 1 if response["error_count"] else 0
            for program in response["results"]:
                if program["ok"]:
                    line = (f"{program['name']}: reads={program['reads']} "
                            f"writes={program['writes']}")
                    if program["cache_hit"]:
                        line += " [cached]"
                    if program.get("rung"):
                        line += f" [rung={program['rung']}]"
                else:
                    line = f"{program['name']}: error: {program['error']}"
                out.write(line + "\n")
            out.write(f"{response['ok_count']}/{len(response['results'])} "
                      f"programs ok, {response['cache_hits']} cache hits\n")
            return 1 if response["error_count"] else 0


def command_explain(args, out):
    from repro.core.report import solution_report

    result = generate_communication(read_source(args.file))
    if args.problem in ("read", "both"):
        out.write(solution_report(result.analyzed, result.read_problem,
                                  result.read_solution, result.read_placement,
                                  title="READ problem (BEFORE)"))
    if args.problem in ("write", "both"):
        out.write(solution_report(result.analyzed, result.write_problem,
                                  result.write_solution,
                                  result.write_placement,
                                  title="WRITE problem (AFTER)"))


COMMANDS = {
    "annotate": command_annotate,
    "graph": command_graph,
    "simulate": command_simulate,
    "profile": command_profile,
    "pre": command_pre,
    "batch": command_batch,
    "delta": command_delta,
    "serve": command_serve,
    "fleet": command_fleet,
    "request": command_request,
    "explain": command_explain,
}


def main(argv=None, out=None):
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    try:
        status = COMMANDS[args.command](args, out)
    except (ReproError, OSError) as error:
        # one-line message, no traceback, exit status 2 (argparse's own
        # usage errors use the same status)
        print(f"error: {error}", file=sys.stderr)
        return 2
    return 0 if status is None else status


if __name__ == "__main__":
    sys.exit(main())
