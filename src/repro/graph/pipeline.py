"""Convenience entry points: program text or AST → interval flow graph.

:func:`analyzed_program_for` is the memoized variant the batch layer
uses: the parse → CFG → normalize → ``IntervalFlowGraph`` chain is pure
in the source text (plus the two normalization options), so its result
can be cached by content address and reused across compiles — see
``repro.batch`` and ``docs/scaling.md``.
"""

from repro.lang.parser import parse
from repro.graph.builder import build_cfg
from repro.graph.normalize import normalize
from repro.graph.interval_graph import IntervalFlowGraph

#: Cache namespace for memoized frontends (parse → CFG → normalize →
#: interval graph), shared with :mod:`repro.batch.cache`.
ANALYZED_NAMESPACE = "analyzed"


def interval_graph_for_program(program):
    """Build the normalized interval flow graph of a program.

    ``program`` may be source text or a parsed
    :class:`repro.lang.ast.Program`.  Returns the
    :class:`~repro.graph.interval_graph.IntervalFlowGraph`.
    """
    if isinstance(program, str):
        program = parse(program)
    cfg = build_cfg(program)
    normalize(cfg)
    return IntervalFlowGraph(cfg)


def analyzed_program_for(text, cache=None, split_irreducible=False,
                         max_splits=None):
    """An :class:`~repro.testing.programs.AnalyzedProgram` for ``text``,
    memoized in ``cache`` when one is given.

    ``cache`` is any object with the :class:`repro.batch.PipelineCache`
    ``key``/``get``/``put`` protocol.  Hits return a *private* copy of
    the analyzed program (the cache stores serialized snapshots), so the
    caller may freely hand it to the mutating annotation phase.
    """
    from repro.testing.programs import AnalyzedProgram

    if cache is None:
        return AnalyzedProgram(parse(text),
                               split_irreducible=split_irreducible,
                               max_splits=max_splits)
    key = cache.key(text, split_irreducible=split_irreducible,
                    max_splits=max_splits)
    analyzed = cache.get(ANALYZED_NAMESPACE, key)
    if analyzed is None:
        analyzed = AnalyzedProgram(parse(text),
                                   split_irreducible=split_irreducible,
                                   max_splits=max_splits)
        cache.put(ANALYZED_NAMESPACE, key, analyzed)
    return analyzed
