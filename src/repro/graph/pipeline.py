"""Convenience entry point: program text or AST → interval flow graph."""

from repro.lang.parser import parse
from repro.graph.builder import build_cfg
from repro.graph.normalize import normalize
from repro.graph.interval_graph import IntervalFlowGraph


def interval_graph_for_program(program):
    """Build the normalized interval flow graph of a program.

    ``program`` may be source text or a parsed
    :class:`repro.lang.ast.Program`.  Returns the
    :class:`~repro.graph.interval_graph.IntervalFlowGraph`.
    """
    if isinstance(program, str):
        program = parse(program)
    cfg = build_cfg(program)
    normalize(cfg)
    return IntervalFlowGraph(cfg)
