"""Traversal orders (paper §3.4).

The edges of the interval flow graph induce two orthogonal partial orders:

* **vertical**: sources of FORWARD/JUMP (and SYNTHETIC) edges before their
  sinks (FORWARD order) or after (BACKWARD);
* **horizontal**: interval headers before their members (DOWNWARD) or
  after (UPWARD).

PREORDER combines FORWARD and DOWNWARD, POSTORDER combines FORWARD and
UPWARD; the reverse lists give the two BACKWARD combinations.  Both are
computed as topological orders with the CFG's deterministic tie-break, so
the Figure 11 program numbers exactly as in the paper's Figure 12.
"""

import heapq

from repro.util.errors import GraphError


def preorder(ifg):
    """FORWARD + DOWNWARD order, ROOT first."""
    return _topological_order(ifg, headers_first=True)


def postorder(ifg):
    """FORWARD + UPWARD order, ROOT last."""
    return _topological_order(ifg, headers_first=False)


def preorder_numbering(ifg):
    """Dict real-node -> 1-based PREORDER number (ROOT excluded), matching
    the node numbering style of the paper's Figure 12."""
    numbering = {}
    for node in preorder(ifg):
        if node is not ifg.root:
            numbering[node] = len(numbering) + 1
    return numbering


def _topological_order(ifg, headers_first):
    nodes = ifg.nodes()
    constraints = {node: [] for node in nodes}
    indegree = {node: 0 for node in nodes}

    def add(before, after):
        constraints[before].append(after)
        indegree[after] += 1

    for src, dst, _ in ifg.edges("FJS"):
        add(src, dst)
    for node in nodes:
        if not ifg.is_header(node):
            continue
        for member in ifg.interval(node):
            if headers_first:
                add(node, member)
            else:
                add(member, node)

    heap = [(ifg.order_index(node), id(node), node) for node in nodes
            if indegree[node] == 0]
    heapq.heapify(heap)
    order = []
    while heap:
        _, _, node = heapq.heappop(heap)
        order.append(node)
        for succ in constraints[node]:
            indegree[succ] -= 1
            if indegree[succ] == 0:
                heapq.heappush(heap, (ifg.order_index(succ), id(succ), succ))
    if len(order) != len(nodes):
        stuck = [n for n in nodes if indegree[n] > 0]
        raise GraphError(f"cyclic ordering constraints involving {stuck}")
    return order
