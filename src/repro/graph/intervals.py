"""Dominators, reducibility, and Tarjan-interval (natural loop) analysis.

A *Tarjan interval* ``T(h)`` is the set of nodes of the natural loop headed
by ``h``, excluding ``h`` itself (paper §3.3).  For reducible graphs the
natural loops of distinct headers are either disjoint or properly nested,
so they form a forest; :class:`LoopForest` materializes it together with
the paper's ``LEVEL`` / ``CHILDREN`` / ``LASTCHILD`` accessors.
"""

import hashlib

from repro.util.errors import GraphError, IrreducibleGraphError
from repro.util.orderedset import OrderedSet


def reverse_postorder(cfg):
    """Nodes in reverse postorder of a DFS from entry (iterative)."""
    visited = set()
    postorder = []
    # Iterative DFS with explicit stack of (node, successor iterator).
    stack = [(cfg.entry, iter(cfg.succs(cfg.entry)))]
    visited.add(cfg.entry)
    while stack:
        node, successors = stack[-1]
        advanced = False
        for succ in successors:
            if succ not in visited:
                visited.add(succ)
                stack.append((succ, iter(cfg.succs(succ))))
                advanced = True
                break
        if not advanced:
            postorder.append(node)
            stack.pop()
    postorder.reverse()
    return postorder


def compute_dominators(cfg):
    """Immediate dominators via the Cooper–Harvey–Kennedy iteration.

    Returns a dict node -> idom; the entry node maps to itself.  All nodes
    must be reachable from entry.
    """
    order = reverse_postorder(cfg)
    if len(order) != len(cfg):
        unreachable = [n for n in cfg.nodes() if n not in set(order)]
        raise GraphError(f"unreachable nodes present: {unreachable}")
    position = {node: index for index, node in enumerate(order)}
    idom = {cfg.entry: cfg.entry}

    def intersect(a, b):
        while a is not b:
            while position[a] > position[b]:
                a = idom[a]
            while position[b] > position[a]:
                b = idom[b]
        return a

    changed = True
    while changed:
        changed = False
        for node in order:
            if node is cfg.entry:
                continue
            candidates = [p for p in cfg.preds(node) if p in idom]
            if not candidates:
                continue
            new_idom = candidates[0]
            for pred in candidates[1:]:
                new_idom = intersect(new_idom, pred)
            if idom.get(node) is not new_idom:
                idom[node] = new_idom
                changed = True
    return idom


def dominates(idom, a, b):
    """True if ``a`` dominates ``b`` (reflexive)."""
    node = b
    while True:
        if node is a:
            return True
        parent = idom[node]
        if parent is node:
            return False
        node = parent


def find_back_edges(cfg, idom=None):
    """Edges (u, v) whose target dominates their source, in edge order."""
    if idom is None:
        idom = compute_dominators(cfg)
    return [(u, v) for u, v in cfg.edges() if dominates(idom, v, u)]


def find_retreating_edges(cfg):
    """Edges into a DFS ancestor (the candidates for loop back edges)."""
    state = {}  # 0 = on stack, 1 = finished
    retreating = []
    stack = [(cfg.entry, iter(cfg.succs(cfg.entry)))]
    state[cfg.entry] = 0
    while stack:
        node, successors = stack[-1]
        advanced = False
        for succ in successors:
            if succ not in state:
                state[succ] = 0
                stack.append((succ, iter(cfg.succs(succ))))
                advanced = True
                break
            if state[succ] == 0:
                retreating.append((node, succ))
        if not advanced:
            state[node] = 1
            stack.pop()
    return retreating


def check_reducible(cfg, idom=None):
    """Raise :class:`IrreducibleGraphError` unless the graph is reducible.

    A graph is reducible iff every retreating edge's target dominates its
    source (every cycle has a unique entry node).
    """
    if idom is None:
        idom = compute_dominators(cfg)
    offending = [
        (u, v) for u, v in find_retreating_edges(cfg) if not dominates(idom, v, u)
    ]
    if offending:
        raise IrreducibleGraphError(
            "irreducible control flow (cycle with multiple entries); "
            f"offending retreating edges: {offending}",
            offending_nodes=[u for u, _ in offending],
        )


def natural_loop(cfg, back_edges_to_header, header):
    """Members of the natural loop of ``header`` (header excluded).

    ``back_edges_to_header`` are the sources of back edges targeting
    ``header``; the loop is everything that reaches them without passing
    through the header.
    """
    members = OrderedSet()
    stack = []
    for source in back_edges_to_header:
        if source is not header and source not in members:
            members.add(source)
            stack.append(source)
    while stack:
        node = stack.pop()
        for pred in cfg.preds(node):
            if pred is not header and pred not in members:
                members.add(pred)
                stack.append(pred)
    return members


class LoopForest:
    """The nesting forest of natural loops of a reducible CFG.

    Provides the paper's accessors:

    * ``members(h)`` — the Tarjan interval ``T(h)`` (header excluded),
    * ``level(n)`` — nesting depth with top level 1 (``ROOT`` is level 0
      and lives in :class:`repro.graph.interval_graph.IntervalFlowGraph`),
    * ``innermost(n)`` — header of the innermost loop containing ``n``
      (None at top level),
    * ``children(h)`` — members exactly one level below ``h``,
    * ``latch(h)`` — the unique back-edge source (requires normalization).
    """

    def __init__(self, cfg):
        check_reducible(cfg)
        self._cfg = cfg
        idom = compute_dominators(cfg)
        self._back_edges = find_back_edges(cfg, idom)

        sources_by_header = {}
        for source, header in self._back_edges:
            sources_by_header.setdefault(header, []).append(source)
        self._members = {
            header: natural_loop(cfg, sources, header)
            for header, sources in sources_by_header.items()
        }
        self._latch_sources = sources_by_header

        # Innermost enclosing header per node: the header of the smallest
        # loop containing the node.  Reducibility guarantees proper nesting.
        self._innermost = {}
        ordered_headers = sorted(
            self._members, key=lambda h: len(self._members[h]), reverse=True
        )
        for header in ordered_headers:  # big loops first, small overwrite
            for member in self._members[header]:
                self._innermost[member] = header

        self._level = {}
        for node in cfg.nodes():
            depth = 1
            enclosing = self._innermost.get(node)
            # A header's own level is that of its surroundings, not its loop.
            while enclosing is not None:
                depth += 1
                enclosing = self._innermost.get(enclosing)
            self._level[node] = depth

    # -- queries ----------------------------------------------------------

    def headers(self):
        """Loop headers in deterministic (tie-break order) sequence."""
        order = self._cfg.order_map()
        return sorted(self._members, key=lambda h: order[h])

    def is_header(self, node):
        return node in self._members

    def members(self, header):
        """``T(header)`` — loop members excluding the header; empty set for
        non-headers (paper: ``T(n) = ∅`` for all non-header nodes)."""
        return self._members.get(header, OrderedSet())

    def members_plus(self, header):
        """``T+(header) = T(header) ∪ {header}``."""
        result = OrderedSet([header])
        result.update(self.members(header))
        return result

    def innermost(self, node):
        """Header of the innermost loop containing ``node`` (None if at
        top level).  For a header this is the *enclosing* loop's header."""
        return self._innermost.get(node)

    def level(self, node):
        """Loop nesting level; top-level nodes are level 1."""
        return self._level[node]

    def children(self, header):
        """``CHILDREN(header)``: members one level deeper, i.e. members
        whose innermost enclosing loop is this header's loop."""
        return [m for m in self.members(header) if self._innermost.get(m) is header]

    def enclosing_headers(self, node):
        """Headers of all loops containing ``node``, innermost first."""
        result = []
        enclosing = self._innermost.get(node)
        while enclosing is not None:
            result.append(enclosing)
            enclosing = self._innermost.get(enclosing)
        return result

    def contains(self, header, node):
        """True if ``node ∈ T(header)``."""
        return node in self.members(header)

    def latch(self, header):
        """The unique source of the CYCLE edge into ``header``.

        Raises :class:`GraphError` when the loop has multiple back edges
        (run :func:`repro.graph.normalize.normalize` first).
        """
        sources = self._latch_sources.get(header, [])
        if len(sources) != 1:
            raise GraphError(
                f"loop at {header} has {len(sources)} back edges; expected 1"
            )
        return sources[0]

    def back_edges(self):
        return list(self._back_edges)

    def interval_fingerprints(self, render):
        """Merkle-style content fingerprints over the interval tree.

        Each interval's fingerprint hashes the header's own rendering,
        the renderings of its direct (same-level) members in program
        order, and — in place of each nested loop's members — the
        *fingerprint* of that child interval.  An edit therefore changes
        exactly the fingerprints of the intervals on the path from the
        edited statement to the root, which is how the incremental
        compile layer reports which intervals an edit touched
        (``docs/scaling.md``).

        ``render`` maps a node to stable text (e.g. its formatted
        statement).  Returns ``{header: hexdigest}`` with ``None`` keying
        the virtual top-level interval, whose fingerprint covers the
        whole program.
        """
        order = self._cfg.order_map()
        fingerprints = {}

        def fingerprint(header):
            digest = hashlib.sha256()
            digest.update(b"interval")
            if header is not None:
                digest.update(b"\x00h\x00" + render(header).encode())
                members = self.children(header)
            else:
                members = [n for n in self._cfg.nodes()
                           if self._innermost.get(n) is None]
            for member in sorted(members, key=lambda n: order[n]):
                if self.is_header(member):
                    digest.update(b"\x00i\x00" + fingerprint(member).encode())
                else:
                    digest.update(b"\x00s\x00" + render(member).encode())
            value = digest.hexdigest()
            fingerprints[header] = value
            return value

        fingerprint(None)
        return fingerprints
