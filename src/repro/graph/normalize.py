"""CFG normalization establishing the invariants GIVE-N-TAKE needs.

After :func:`normalize` the graph satisfies (paper §3.3 plus one extra
invariant needed for AFTER problems, §5.3):

1. every node is reachable from the entry (dead code pruned);
2. the graph is reducible (checked; we do not node-split — the frontend
   only produces irreducible graphs for gotos *into* loops, which are
   rejected with a clear error);
3. every loop has a unique CYCLE edge — a single latch (``LASTCHILD``);
4. every loop has a unique ENTRY edge — a single body-entry node, so that
   the *reversed* graph used by AFTER problems also has a unique latch;
5. there are no critical edges (edges from a multi-successor node to a
   multi-predecessor node); splits insert flagged synthetic nodes.

Synthetic nodes are positioned in the deterministic tie-break order so
that preorder numbering matches the paper's Figure 12: a split of a back
edge sits right after its source (it is the end of the loop body), any
other split sits right before its target.
"""

from repro.graph.cfg import NodeKind
from repro.graph.intervals import (
    LoopForest,
    check_reducible,
    compute_dominators,
    dominates,
    find_back_edges,
)
from repro.obs.collector import current_collector
from repro.util.errors import GraphError


def normalize(cfg, split_irreducible=False, max_splits=None):
    """Normalize ``cfg`` in place and return it.

    With ``split_irreducible=True``, irreducible control flow (jumps
    into loops) is repaired by node splitting ([CM69], §3.3) instead of
    rejected; ``max_splits`` bounds the duplication budget and the
    (original, copy) pairs are recorded on ``cfg.splits``.

    An active tracing collector receives one ``graph/normalize`` event
    with the per-pass node deltas (pruned, irreducible splits, latches,
    body entries, critical-edge splits).
    """
    obs = current_collector()
    removed = prune_unreachable(cfg)
    cfg.splits = []
    if split_irreducible:
        from repro.graph.splitting import make_reducible

        cfg.splits = make_reducible(cfg, max_splits=max_splits)
    check_reducible(cfg)
    size = len(cfg)
    ensure_unique_latch(cfg)
    latches_added = len(cfg) - size
    size = len(cfg)
    ensure_unique_body_entry(cfg)
    body_entries_added = len(cfg) - size
    size = len(cfg)
    split_critical_edges(cfg)
    critical_splits = len(cfg) - size
    validate_normalized(cfg)
    if obs.enabled:
        obs.event("graph", "normalize",
                  pruned_unreachable=len(removed),
                  irreducible_splits=len(cfg.splits),
                  latches_added=latches_added,
                  body_entries_added=body_entries_added,
                  critical_edge_splits=critical_splits,
                  nodes=len(cfg))
        obs.count("graph", "normalize_runs")
        obs.count("graph", "nodes_split",
                  n=len(cfg.splits) + latches_added + body_entries_added
                  + critical_splits)
    return cfg


def prune_unreachable(cfg):
    """Remove nodes unreachable from the entry; return the removed list."""
    reachable = cfg.reachable_from_entry()
    removed = [node for node in cfg.nodes() if node not in reachable]
    for node in removed:
        if node is cfg.exit:
            raise GraphError("program exit is unreachable (infinite loop)")
        cfg.remove_node(node)
    return removed


def ensure_unique_latch(cfg):
    """Give every loop a single back-edge source.

    When a header has several back edges (e.g. an ``if`` at the end of a
    loop body), redirect them through a fresh LATCH node.
    """
    idom = compute_dominators(cfg)
    back_edges = find_back_edges(cfg, idom)
    sources_by_header = {}
    for source, header in back_edges:
        sources_by_header.setdefault(header, []).append(source)
    for header, sources in sources_by_header.items():
        if len(sources) <= 1:
            continue
        last = max(sources, key=cfg.order_index)
        latch = cfg.new_node(NodeKind.LATCH, name="latch", order_after=last)
        for source in sources:
            cfg.remove_edge(source, header)
            cfg.add_edge(source, latch)
        cfg.add_edge(latch, header)


def ensure_unique_body_entry(cfg):
    """Give every loop a single ENTRY edge (header → body).

    Needed so the reversed graph (AFTER problems) has a unique CYCLE edge.
    The frontend's ``do`` loops already satisfy this; the pass matters for
    hand-built or random graphs.
    """
    forest = LoopForest(cfg)
    for header in forest.headers():
        members = forest.members(header)
        body_targets = [succ for succ in cfg.succs(header) if succ in members]
        if len(body_targets) <= 1:
            continue
        first = min(body_targets, key=cfg.order_index)
        body_entry = cfg.new_node(
            NodeKind.BODY_ENTRY, name="body entry", order_before=first
        )
        for target in body_targets:
            cfg.remove_edge(header, target)
            cfg.add_edge(body_entry, target)
        cfg.add_edge(header, body_entry)


def split_critical_edges(cfg):
    """Split every critical edge with a synthetic node.

    A split of a back edge yields the loop's LATCH (ordered right after
    the source, i.e. at the end of the loop body); any other split yields
    a SYNTH node ordered right before its target.  Edges are processed
    fall-through-before-jump so that the Figure 12 numbering (node 9 from
    the loop-exit path, node 10 from the goto) comes out of the
    deterministic order.
    """
    idom = compute_dominators(cfg)
    forest = LoopForest(cfg)
    critical = [
        (src, dst)
        for src, dst in cfg.edges()
        if len(cfg.succs(src)) > 1 and len(cfg.preds(dst)) > 1
    ]

    def is_jump(src, dst):
        return any(
            dst is not header and not forest.contains(header, dst)
            for header in forest.enclosing_headers(src)
        )

    def sort_key(edge):
        src, dst = edge
        return (cfg.order_index(dst), is_jump(src, dst), cfg.order_index(src))

    for src, dst in sorted(critical, key=sort_key):
        if dominates(idom, dst, src):  # back edge: new node is the latch
            cfg.split_edge(src, dst, kind=NodeKind.LATCH, name="latch",
                           order_after=src)
        else:
            cfg.split_edge(src, dst, kind=NodeKind.SYNTH, name="synth",
                           order_before=dst)


def validate_normalized(cfg):
    """Check all normalization invariants; raise :class:`GraphError` on
    violation.  Returns the :class:`LoopForest` for reuse."""
    if len(cfg.reachable_from_entry()) != len(cfg):
        raise GraphError("unreachable nodes remain after normalization")
    check_reducible(cfg)
    forest = LoopForest(cfg)
    for header in forest.headers():
        forest.latch(header)  # raises when not unique
        members = forest.members(header)
        entries = [succ for succ in cfg.succs(header) if succ in members]
        if len(entries) != 1:
            raise GraphError(f"loop at {header} has {len(entries)} entry edges")
    for src, dst in cfg.edges():
        if len(cfg.succs(src)) > 1 and len(cfg.preds(dst)) > 1:
            raise GraphError(f"critical edge ({src}, {dst}) remains")
    return forest
