"""The interval flow graph ``G = (N, E)`` of the paper (§3.3–3.4).

Wraps a normalized CFG and its loop forest, adds the virtual ``ROOT``
(level 0, header of the whole program, with a pseudo ENTRY edge to the
program entry and a pseudo CYCLE edge from the program exit), classifies
every edge as ENTRY / CYCLE / JUMP / FORWARD, and materializes the
SYNTHETIC edges induced by JUMP edges: for every interval ``T(h)`` and
every jump ``(m, s)`` with ``m ∈ T(h)``, ``s ∉ T+(h)``, a synthetic edge
``(h, s)`` — hence ``LEVEL(m) − LEVEL(s)`` synthetic edges per jump.

Neighbor queries use the paper's notation: ``succs(n, "FJS")`` is
``SUCCS^{FJS}(n)``, the sinks of FORWARD, JUMP and SYNTHETIC edges out of
``n``.  Results are deterministic lists.
"""

from enum import Enum

from repro.graph.cfg import Node, NodeKind
from repro.graph.normalize import validate_normalized
from repro.obs.collector import current_collector
from repro.util.errors import GraphError


class EdgeType(Enum):
    """Edge classification of §3.3."""

    ENTRY = "E"
    CYCLE = "C"
    FORWARD = "F"
    JUMP = "J"
    SYNTHETIC = "S"


_BY_LETTER = {t.value: t for t in EdgeType}


class IntervalFlowGraph:
    """The analyzed flow graph the GIVE-N-TAKE equations run on."""

    def __init__(self, cfg, forest=None):
        self.cfg = cfg
        self.forest = forest if forest is not None else validate_normalized(cfg)
        self.root = Node(-1, NodeKind.ROOT, name="ROOT")

        for src, dst in cfg.edges():
            if src is dst:
                raise GraphError(f"self loop at {src} is not supported")

        self._succs = {}  # node -> {EdgeType: [node]}
        self._preds = {}
        self._types = {}  # (src, dst) -> EdgeType of the real edge
        for node in self.nodes():
            self._succs[node] = {t: [] for t in EdgeType}
            self._preds[node] = {t: [] for t in EdgeType}

        for src, dst in cfg.edges():
            self._add(src, dst, self._classify(src, dst))
        self._add(self.root, cfg.entry, EdgeType.ENTRY)
        self._add(cfg.exit, self.root, EdgeType.CYCLE)

        self._jump_edges = [
            (src, dst) for (src, dst), t in self._types.items() if t is EdgeType.JUMP
        ]
        self._add_synthetic_edges()

        obs = current_collector()
        if obs.enabled:
            edge_counts = {
                edge_type.name: sum(
                    len(self._succs[node][edge_type]) for node in self.nodes()
                )
                for edge_type in EdgeType
            }
            obs.event("graph", "interval_graph",
                      nodes=len(cfg),
                      headers=len(self.forest.headers()),
                      max_level=max(self.level(n) for n in self.nodes()),
                      jump_edges=len(self._jump_edges),
                      edges=edge_counts)
            obs.count("graph", "interval_graphs")

    # -- construction -------------------------------------------------------

    def _classify(self, src, dst):
        forest = self.forest
        if forest.contains(src, dst):
            return EdgeType.ENTRY
        if forest.contains(dst, src):
            return EdgeType.CYCLE
        for header in forest.enclosing_headers(src):
            if dst is not header and not forest.contains(header, dst):
                return EdgeType.JUMP
        return EdgeType.FORWARD

    def _add(self, src, dst, edge_type):
        self._succs[src][edge_type].append(dst)
        self._preds[dst][edge_type].append(src)
        self._types[(src, dst)] = edge_type

    def _add_synthetic_edges(self):
        seen = set()
        for src, dst in self._jump_edges:
            for header in self.forest.enclosing_headers(src):
                inside = dst is header or self.forest.contains(header, dst)
                if inside:
                    continue
                if (header, dst) in seen:
                    continue
                seen.add((header, dst))
                self._succs[header][EdgeType.SYNTHETIC].append(dst)
                self._preds[dst][EdgeType.SYNTHETIC].append(header)

    # -- nodes ----------------------------------------------------------------

    def nodes(self):
        """ROOT followed by the real nodes in tie-break order."""
        return [self.root] + self.cfg.nodes()

    def real_nodes(self):
        return self.cfg.nodes()

    def order_index(self, node):
        return -1 if node is self.root else self.cfg.order_index(node)

    def level(self, node):
        """Loop nesting level; ``LEVEL(ROOT) = 0``."""
        return 0 if node is self.root else self.forest.level(node)

    def interval(self, node):
        """``T(node)``: all real nodes for ROOT, the loop members for a
        header, the empty list otherwise."""
        if node is self.root:
            return self.cfg.nodes()
        return list(self.forest.members(node))

    def in_interval(self, header, node):
        """True if ``node ∈ T(header)``."""
        if header is self.root:
            return node is not self.root
        return self.forest.contains(header, node)

    def children(self, node):
        """``CHILDREN(node)``: interval members one level deeper, in
        tie-break order."""
        if node is self.root:
            return [n for n in self.cfg.nodes() if self.forest.innermost(n) is None]
        return sorted(self.forest.children(node), key=self.cfg.order_index)

    def lastchild(self, node):
        """``LASTCHILD(node)``: the unique CYCLE-edge source of the
        interval, or None for non-headers."""
        if node is self.root:
            return self.cfg.exit
        if self.forest.is_header(node):
            return self.forest.latch(node)
        return None

    def body_entry(self, node):
        """The unique ENTRY-edge sink of the interval (None for
        non-headers); this is ``LASTCHILD`` of the reversed graph."""
        if node is self.root:
            return self.cfg.entry
        entries = self._succs[node][EdgeType.ENTRY]
        return entries[0] if entries else None

    def header_of(self, node):
        """``HEADER(node)``: source of the ENTRY edge reaching ``node``,
        or None."""
        sources = self._preds[node][EdgeType.ENTRY]
        return sources[0] if sources else None

    def is_header(self, node):
        return node is self.root or self.forest.is_header(node)

    # -- edges ----------------------------------------------------------------

    def succs(self, node, letters="CEFJ"):
        """``SUCCS^letters(node)``; default CEFJ are the conventional
        successors."""
        result = []
        for letter in letters:
            result.extend(self._succs[node][_BY_LETTER[letter]])
        return result

    def preds(self, node, letters="CEFJ"):
        """``PREDS^letters(node)``."""
        result = []
        for letter in letters:
            result.extend(self._preds[node][_BY_LETTER[letter]])
        return result

    def edge_type(self, src, dst):
        """Type of the real edge (src, dst); KeyError if absent."""
        return self._types[(src, dst)]

    def edges(self, letters="CEFJS"):
        """All (src, dst, type) triples of the requested types, including
        the pseudo ROOT edges and synthetic edges."""
        wanted = {_BY_LETTER[letter] for letter in letters}
        result = []
        for node in self.nodes():
            for edge_type in EdgeType:
                if edge_type not in wanted:
                    continue
                for dst in self._succs[node][edge_type]:
                    result.append((node, dst, edge_type))
        return result

    def jump_edges(self):
        return list(self._jump_edges)

    def headers_with_jump_sources(self):
        """Headers whose interval contains the source of a JUMP edge that
        leaves the interval.  For AFTER problems these loops would become
        irreducible under reversal; hoisting out of them is suppressed
        (paper §5.3)."""
        result = []
        for header in [self.root] + self.forest.headers():
            for src, dst in self._jump_edges:
                if not self.in_interval(header, src):
                    continue
                if dst is header or self.in_interval(header, dst):
                    continue
                result.append(header)
                break
        return result
