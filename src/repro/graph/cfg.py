"""Control flow graph with deterministic ordering.

Nodes keep an *order position* — a global insertion-order list that later
passes use to break ties so that, e.g., preorder numbering of the Figure 11
program reproduces the paper's Figure 12 numbering exactly.  Normalization
passes that insert nodes (latches, landing pads) choose where in that list
the new node sits.
"""

from dataclasses import dataclass
from enum import Enum

from repro.util.errors import GraphError
from repro.util.orderedset import OrderedSet


class NodeKind(Enum):
    """What a CFG node represents."""

    ENTRY = "entry"          # unique program entry
    EXIT = "exit"            # unique program exit
    ROOT = "root"            # virtual header of the whole program (level 0)
    STMT = "stmt"            # a single executable statement
    HEADER = "header"        # loop header (the `do` statement itself)
    LABEL = "label"          # carrier for a goto-targeted label
    LATCH = "latch"          # synthesized unique back-edge source
    BODY_ENTRY = "body_entry"  # synthesized unique loop-body entry
    SYNTH = "synth"          # synthesized critical-edge split node


_SYNTHETIC_KINDS = {NodeKind.LATCH, NodeKind.BODY_ENTRY, NodeKind.SYNTH}


@dataclass
class Node:
    """One flow-graph node.

    ``stmt`` is the AST statement the node represents (None for synthetic
    nodes), ``name`` a short human-readable tag used by the dot exporter
    and error messages.
    """

    id: int
    kind: NodeKind
    stmt: object = None
    name: str = ""

    @property
    def synthetic(self):
        """True for nodes inserted by normalization (paper §3.3: code
        placed here needs a new basic block at code-generation time)."""
        return self.kind in _SYNTHETIC_KINDS

    def __repr__(self):
        tag = self.name or self.kind.value
        return f"<Node {self.id} {tag}>"

    def __hash__(self):
        return self.id

    def __eq__(self, other):
        return self is other


class ControlFlowGraph:
    """A directed graph over :class:`Node` with ordered adjacency.

    Successor/predecessor lists preserve edge insertion order;
    ``order_index`` gives the deterministic tie-break position of each
    node.  The graph has a unique ``entry`` and (after building) a unique
    ``exit``.
    """

    def __init__(self):
        self._nodes = {}
        self._succs = {}
        self._preds = {}
        self._order = []      # node ids in tie-break order
        self._next_id = 0
        self.entry = None
        self.exit = None

    # -- nodes ---------------------------------------------------------------

    def new_node(self, kind, stmt=None, name="", order_after=None, order_before=None):
        """Create a node.

        ``order_after``/``order_before`` position the node in the global
        tie-break order relative to an existing node; by default the node
        goes to the end.
        """
        node = Node(self._next_id, kind, stmt, name)
        self._next_id += 1
        self._nodes[node.id] = node
        self._succs[node.id] = OrderedSet()
        self._preds[node.id] = OrderedSet()
        if order_after is not None:
            index = self._order.index(order_after.id) + 1
            self._order.insert(index, node.id)
        elif order_before is not None:
            index = self._order.index(order_before.id)
            self._order.insert(index, node.id)
        else:
            self._order.append(node.id)
        return node

    def nodes(self):
        """All nodes in tie-break order."""
        return [self._nodes[node_id] for node_id in self._order]

    def __len__(self):
        return len(self._nodes)

    def __contains__(self, node):
        return isinstance(node, Node) and self._nodes.get(node.id) is node

    def order_index(self, node):
        """Position of ``node`` in the deterministic tie-break order."""
        return self._order.index(node.id)

    def order_map(self):
        """Dict node -> tie-break position (bulk version of order_index)."""
        return {self._nodes[node_id]: index for index, node_id in enumerate(self._order)}

    # -- edges ---------------------------------------------------------------

    def add_edge(self, src, dst):
        if src not in self or dst not in self:
            raise GraphError(f"edge ({src}, {dst}) references a foreign node")
        self._succs[src.id].add(dst.id)
        self._preds[dst.id].add(src.id)

    def remove_edge(self, src, dst):
        if dst.id not in self._succs[src.id]:
            raise GraphError(f"edge ({src}, {dst}) does not exist")
        self._succs[src.id].discard(dst.id)
        self._preds[dst.id].discard(src.id)

    def has_edge(self, src, dst):
        return dst.id in self._succs[src.id]

    def succs(self, node):
        return [self._nodes[node_id] for node_id in self._succs[node.id]]

    def preds(self, node):
        return [self._nodes[node_id] for node_id in self._preds[node.id]]

    def edges(self):
        """All edges (src, dst) in deterministic order."""
        result = []
        for node_id in self._order:
            src = self._nodes[node_id]
            for dst_id in self._succs[node_id]:
                result.append((src, self._nodes[dst_id]))
        return result

    def split_edge(self, src, dst, kind=NodeKind.SYNTH, name="", order_after=None,
                   order_before=None):
        """Replace edge (src, dst) by (src, new) and (new, dst).

        Returns the inserted node.  The caller controls the tie-break
        position; by default the node sits just before ``dst``.
        """
        if order_after is None and order_before is None:
            order_before = dst
        node = self.new_node(kind, name=name, order_after=order_after,
                             order_before=order_before)
        self.remove_edge(src, dst)
        self.add_edge(src, node)
        self.add_edge(node, dst)
        return node

    # -- reachability ----------------------------------------------------------

    def reachable_from_entry(self):
        """The set of nodes reachable from ``entry``."""
        if self.entry is None:
            raise GraphError("graph has no entry node")
        seen = OrderedSet([self.entry])
        stack = [self.entry]
        while stack:
            node = stack.pop()
            for succ in self.succs(node):
                if succ not in seen:
                    seen.add(succ)
                    stack.append(succ)
        return seen

    def remove_node(self, node):
        """Remove ``node`` and all its edges."""
        for succ in list(self.succs(node)):
            self.remove_edge(node, succ)
        for pred in list(self.preds(node)):
            self.remove_edge(pred, node)
        del self._nodes[node.id]
        del self._succs[node.id]
        del self._preds[node.id]
        self._order.remove(node.id)
