"""AST → control flow graph.

One node per executable statement, following the granularity of the
paper's Figure 12:

* a ``do`` statement becomes a HEADER node that both tests the trip count
  (edges into the body and past the loop) and receives the back edge;
* every goto-targeted label gets a LABEL carrier node placed before its
  statement (this is the paper's node 11);
* ``if``/``if-goto`` statements are branch nodes; block bodies connect
  through them;
* declarations produce no nodes.

The resulting graph is *raw*: it may contain critical edges and loops with
multiple back edges.  Run :func:`repro.graph.normalize.normalize` before
interval analysis.
"""

from repro.lang import ast
from repro.graph.cfg import ControlFlowGraph, NodeKind
from repro.util.errors import GraphError


def build_cfg(program):
    """Build a raw CFG from a parsed :class:`repro.lang.ast.Program`."""
    return _Builder(program).build()


class _Builder:
    def __init__(self, program):
        self._program = program
        self._cfg = ControlFlowGraph()
        self._label_nodes = {}
        self._pending_gotos = []  # (source node, target label)

    def build(self):
        cfg = self._cfg
        statements = self._program.executables()
        self._goto_targets = _collect_goto_targets(statements)

        cfg.entry = cfg.new_node(NodeKind.ENTRY, name="entry")
        first, open_ends = self._build_body(statements)
        if first is not None:
            cfg.add_edge(cfg.entry, first)
            cfg.exit = cfg.new_node(NodeKind.EXIT, name="exit")
            for end in open_ends:
                cfg.add_edge(end, cfg.exit)
        else:
            cfg.exit = cfg.new_node(NodeKind.EXIT, name="exit")
            cfg.add_edge(cfg.entry, cfg.exit)

        for source, label in self._pending_gotos:
            target = self._label_nodes.get(label)
            if target is None:
                raise GraphError(f"goto targets undefined label {label}")
            cfg.add_edge(source, target)
        return cfg

    def _build_body(self, statements):
        """Build a statement list; return (first_node, open_end_nodes).

        ``first_node`` is None for an empty body.  ``open_end_nodes`` are
        the nodes whose control continues past the list.
        """
        first = None
        open_ends = []
        for stmt in statements:
            node, ends = self._build_statement(stmt)
            if node is None:
                continue  # declaration
            if first is None:
                first = node
            for end in open_ends:
                self._cfg.add_edge(end, node)
            open_ends = ends
        return first, open_ends

    def _build_statement(self, stmt):
        """Build one statement; return (entry_node, open_end_nodes)."""
        if isinstance(stmt, (ast.Declaration, ast.ParameterDef, ast.Distribute)):
            return None, []

        entry = None
        if stmt.label is not None and stmt.label in self._goto_targets:
            if stmt.label in self._label_nodes:
                raise GraphError(
                    f"label {stmt.label} is defined more than once")
            entry = self._cfg.new_node(NodeKind.LABEL, stmt=None, name=f"label {stmt.label}")
            self._label_nodes[stmt.label] = entry

        if isinstance(stmt, (ast.Assign, ast.Continue, ast.Comm)):
            node = self._cfg.new_node(NodeKind.STMT, stmt=stmt, name=_describe(stmt))
            ends = [node]
        elif isinstance(stmt, ast.Do):
            node, ends = self._build_do(stmt)
        elif isinstance(stmt, ast.If):
            node, ends = self._build_if(stmt)
        elif isinstance(stmt, ast.IfGoto):
            node = self._cfg.new_node(NodeKind.STMT, stmt=stmt, name=_describe(stmt))
            self._pending_gotos.append((node, stmt.target))
            ends = [node]  # fall-through only; the jump edge is resolved later
        elif isinstance(stmt, ast.Goto):
            node = self._cfg.new_node(NodeKind.STMT, stmt=stmt, name=_describe(stmt))
            self._pending_gotos.append((node, stmt.target))
            ends = []  # no fall-through
        else:
            raise GraphError(f"cannot build CFG for statement {stmt!r}")

        if entry is not None:
            self._cfg.add_edge(entry, node)
            return entry, ends
        return node, ends

    def _build_do(self, stmt):
        header = self._cfg.new_node(NodeKind.HEADER, stmt=stmt, name=_describe(stmt))
        first, open_ends = self._build_body(stmt.body)
        if first is None:
            # Empty loop body: materialize it as a no-op latch so the loop
            # still has the header-body-header shape.
            latch = self._cfg.new_node(NodeKind.LATCH, name="latch")
            self._cfg.add_edge(header, latch)
            self._cfg.add_edge(latch, header)
        else:
            self._cfg.add_edge(header, first)
            for end in open_ends:
                self._cfg.add_edge(end, header)
        return header, [header]  # loop exit: the header falls through

    def _build_if(self, stmt):
        node = self._cfg.new_node(NodeKind.STMT, stmt=stmt, name=_describe(stmt))
        ends = []
        then_first, then_ends = self._build_body(stmt.then_body)
        if then_first is None:
            ends.append(node)
        else:
            self._cfg.add_edge(node, then_first)
            ends.extend(then_ends)
        else_first, else_ends = self._build_body(stmt.else_body)
        if else_first is None:
            if node not in ends:
                ends.append(node)  # no else branch: fall past the if
        else:
            self._cfg.add_edge(node, else_first)
            ends.extend(else_ends)
        return node, ends


def _collect_goto_targets(statements):
    targets = set()
    for stmt in ast.walk_statements(statements):
        if isinstance(stmt, (ast.Goto, ast.IfGoto)):
            targets.add(stmt.target)
    return targets


def _describe(stmt):
    """A short tag for debugging/dot output."""
    from repro.lang.printer import format_statement

    lines = format_statement(stmt)
    text = lines[0].strip() if lines else type(stmt).__name__
    return text if len(text) <= 40 else text[:37] + "..."
