"""Flow graphs for GIVE-N-TAKE.

The pipeline is::

    AST --builder--> ControlFlowGraph --normalize--> (reducible, unique
    latch & body entry, no critical edges) --IntervalFlowGraph--> edge
    classification (ENTRY/CYCLE/JUMP/FORWARD/SYNTHETIC), Tarjan intervals,
    traversal orders, and the Forward/Backward views the solver runs on.
"""

from repro.graph.cfg import ControlFlowGraph, Node, NodeKind
from repro.graph.builder import build_cfg
from repro.graph.normalize import normalize, validate_normalized
from repro.graph.intervals import (
    compute_dominators,
    find_back_edges,
    LoopForest,
    check_reducible,
)
from repro.graph.interval_graph import IntervalFlowGraph, EdgeType
from repro.graph.views import ForwardView, BackwardView
from repro.graph.pipeline import interval_graph_for_program

__all__ = [
    "ControlFlowGraph",
    "Node",
    "NodeKind",
    "build_cfg",
    "normalize",
    "validate_normalized",
    "compute_dominators",
    "find_back_edges",
    "LoopForest",
    "check_reducible",
    "IntervalFlowGraph",
    "EdgeType",
    "ForwardView",
    "BackwardView",
    "interval_graph_for_program",
]
