"""Node splitting: making irreducible graphs reducible (paper §3.3,
citing Cocke & Miller [CM69]).

An irreducible graph has a cycle with two or more entry nodes.  The
classic remedy duplicates the offending entry: each retreating edge
whose target does not dominate its source is redirected to a fresh copy
of the target (same statement, same successors).  Peeling one improper
entry at a time terminates on real programs quickly; a split budget
guards against the exponential worst case.

The duplicated nodes share their AST statement with the original, so
problem builders that annotate statements must annotate *every* copy —
``repro.analysis.references.collect_accesses`` does (it maps a statement
to all nodes carrying it).
"""

from repro.graph.cfg import NodeKind
from repro.graph.intervals import (
    compute_dominators,
    dominates,
    find_retreating_edges,
)
from repro.obs.collector import current_collector
from repro.util.errors import GraphError


def make_reducible(cfg, max_splits=None):
    """Split nodes until ``cfg`` is reducible; return the list of
    (original, copy) pairs created.

    ``max_splits`` bounds the number of duplications (default: four per
    node); exceeding it raises :class:`GraphError`.  Each duplication is
    reported to an active tracing collector as a ``graph/node_split``
    event.
    """
    obs = current_collector()
    if max_splits is None:
        max_splits = 4 * len(cfg)
    splits = []
    while True:
        offending = _improper_entries(cfg)
        if not offending:
            return splits
        if len(splits) >= max_splits:
            raise GraphError(
                f"node splitting exceeded the budget of {max_splits} copies"
            )
        source, target = offending[0]
        copy = _peel(cfg, source, target)
        splits.append((target, copy))
        if obs.enabled:
            obs.event("graph", "node_split", original=target.name,
                      copy=copy.name, budget=max_splits,
                      used=len(splits))


def _improper_entries(cfg):
    """Retreating edges whose target does not dominate their source —
    the second entries of improper cycles."""
    idom = compute_dominators(cfg)
    return [
        (u, v) for u, v in find_retreating_edges(cfg)
        if not dominates(idom, v, u)
    ]


def _peel(cfg, source, target):
    """Duplicate ``target`` for the improper edge (source, target)."""
    copy = cfg.new_node(
        target.kind if target.kind is not NodeKind.LABEL else NodeKind.STMT,
        stmt=target.stmt,
        name=f"{target.name}'",
        order_after=source,
    )
    for successor in cfg.succs(target):
        cfg.add_edge(copy, successor if successor is not target else copy)
    cfg.remove_edge(source, target)
    cfg.add_edge(source, copy)
    return copy


def nodes_for_statement(cfg, stmt):
    """All nodes carrying ``stmt`` (more than one after splitting)."""
    return [node for node in cfg.nodes() if node.stmt is stmt]
