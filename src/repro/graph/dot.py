"""Graphviz export for flow graphs, mirroring the paper's Figure 12 style:
synthetic nodes and synthetic edges are dashed, edges are labeled with
their classification (ENTRY / CYCLE / JUMP; FORWARD edges are unlabeled).
"""

from repro.graph.interval_graph import EdgeType


def cfg_to_dot(cfg, title="cfg"):
    """Render a plain CFG (no classification) as DOT text."""
    lines = [f"digraph {title} {{", "  node [shape=box];"]
    for node in cfg.nodes():
        style = ', style=dashed' if node.synthetic else ""
        lines.append(f'  n{node.id} [label="{node.id}: {_escape(node.name)}"{style}];')
    for src, dst in cfg.edges():
        lines.append(f"  n{src.id} -> n{dst.id};")
    lines.append("}")
    return "\n".join(lines)


def interval_graph_to_dot(ifg, numbering=None, title="interval_flow_graph"):
    """Render an interval flow graph with edge classification as DOT text.

    ``numbering`` optionally maps nodes to display numbers (e.g. the
    PREORDER numbering); node ids are used otherwise.
    """
    def display(node):
        if numbering and node in numbering:
            return str(numbering[node])
        return "ROOT" if node is ifg.root else str(node.id)

    lines = [f"digraph {title} {{", "  node [shape=box];"]
    for node in ifg.nodes():
        synthetic = node is not ifg.root and node.synthetic
        style = ", style=dashed" if synthetic else ""
        name = "" if node is ifg.root else f": {_escape(node.name)}"
        lines.append(f'  n{node.id} [label="{display(node)}{name}"{style}];')
    for src, dst, edge_type in ifg.edges("CEFJS"):
        attributes = []
        if edge_type is EdgeType.SYNTHETIC:
            attributes.append("style=dashed")
        if edge_type is not EdgeType.FORWARD:
            attributes.append(f'label="{edge_type.name}"')
        suffix = f" [{', '.join(attributes)}]" if attributes else ""
        lines.append(f"  n{src.id} -> n{dst.id}{suffix};")
    lines.append("}")
    return "\n".join(lines)


def _escape(text):
    return text.replace("\\", "\\\\").replace('"', '\\"')
