"""Directional views over an interval flow graph.

The GIVE-N-TAKE equations are identical for BEFORE and AFTER problems
(§3.4, §5.3); only the flow of control is reversed.  The solver is
therefore written against the small protocol implemented here:

* :class:`ForwardView` — BEFORE problems (e.g. READ generation); a thin
  delegate to the :class:`~repro.graph.interval_graph.IntervalFlowGraph`.
* :class:`BackwardView` — AFTER problems (e.g. WRITE generation).  Control
  flow is reversed while keeping the *original* interval structure, as in
  the paper's implementation: predecessor and successor roles swap, edge
  types remap ENTRY↔CYCLE (FORWARD/JUMP/SYNTHETIC are self-dual),
  ``LASTCHILD`` becomes the loop's unique body-entry node, and loops whose
  interval contains a JUMP source are blocked (``steal_all``) — under reversal
  those jumps enter the loop mid-body, so hoisting consumption out of the
  loop would be unsafe (paper §5.3, Figure 16).

Traversal orders and child orders sit on the solver's hot path, so both
views compute them once: ``nodes_preorder()``/``nodes_reverse_preorder()``
return cached tuples (never copies) and ``children()`` memoizes the
sorted order per view.  ``plan_key`` identifies the view's *shape* —
everything a compiled :class:`~repro.core.kernel.plan.SolverPlan`
depends on — so equal keys share one cached plan per graph.
"""

from repro.graph.traversal import preorder, postorder

_BACKWARD_TYPE_MAP = str.maketrans({"E": "C", "C": "E"})


class ForwardView:
    """BEFORE-problem view: the graph as it is."""

    direction = "before"

    #: Plan-cache key: all ForwardViews of one graph share one shape.
    plan_key = ("before",)

    def __init__(self, ifg):
        self.ifg = ifg
        self.root = ifg.root
        self._preorder = tuple(preorder(ifg))
        self._reverse_preorder = tuple(reversed(self._preorder))
        self._position = {node: i for i, node in enumerate(self._preorder)}
        self._children = {}

    def nodes_preorder(self):
        """This view's FORWARD+DOWNWARD order (a cached tuple — shared,
        not copied, across all sweeps)."""
        return self._preorder

    def nodes_reverse_preorder(self):
        return self._reverse_preorder

    def succs(self, node, letters):
        return self.ifg.succs(node, letters)

    def preds(self, node, letters):
        return self.ifg.preds(node, letters)

    def lastchild(self, node):
        return self.ifg.lastchild(node)

    def header_of(self, node):
        return self.ifg.header_of(node)

    def children(self, node):
        """CHILDREN(node) in this view's FORWARD order (memoized — the
        S2 loop asks per node per sweep)."""
        cached = self._children.get(node)
        if cached is None:
            cached = self._children[node] = tuple(
                sorted(self.ifg.children(node),
                       key=self._position.__getitem__))
        return cached

    def is_header(self, node):
        return self.ifg.is_header(node)

    def steal_all(self, node):
        """Whether the solver must treat ``node`` as stealing the whole
        universe (see BackwardView).  Never in the forward direction."""
        return False

    @property
    def requires_consumption_iteration(self):
        """Whether the S1/S2 sweep needs repeating to reach the fixpoint.

        Never in the forward direction: the paper's evaluation-order
        constraints hold and one pass suffices (§5.2)."""
        return False

    #: Edge letters along which the interval-local S2 flow (Eqs 9/10)
    #: propagates.  Forward: FORWARD and JUMP edges (the paper's
    #: PREDS^{FJ}) plus the SYNTHETIC term of Eq 10.
    loc_pred_letters = "FJ"
    loc_synthetic_letters = "S"


class BackwardView:
    """AFTER-problem view: reversed control flow, original intervals.

    ``blocked=True`` (the default) applies the paper's §5.3 safeguard for
    loops that jumps leave: a whole-universe STEAL at their headers, so
    no production region can span them.  ``blocked=False`` runs the pure
    equations — correct for many jump shapes (Eq 15's balance patching
    covers the Figure 14 write placement) but not all; use it only
    together with checker verification (see
    ``repro.commgen.pipeline.generate_communication``'s optimistic
    mode)."""

    direction = "after"

    def __init__(self, ifg, blocked=True):
        self.ifg = ifg
        self.root = ifg.root
        self.blocked = blocked
        # This view's forward direction is the original backward one, so
        # its PREORDER (forward+downward) is the reverse of the original
        # POSTORDER (forward+upward).
        self._postorder = tuple(postorder(ifg))
        self._preorder = tuple(reversed(self._postorder))
        self._position = {node: i for i, node in enumerate(self._preorder)}
        self._children = {}
        self._blocked_headers = (
            set(ifg.headers_with_jump_sources()) if blocked else set()
        )

    @property
    def plan_key(self):
        """Plan-cache key: blocked and optimistic backward views differ
        in their ``steal_all`` masks, so they compile separate plans."""
        return ("after", self.blocked)

    def nodes_preorder(self):
        return self._preorder

    def nodes_reverse_preorder(self):
        return self._postorder

    def succs(self, node, letters):
        return self.ifg.preds(node, letters.translate(_BACKWARD_TYPE_MAP))

    def preds(self, node, letters):
        return self.ifg.succs(node, letters.translate(_BACKWARD_TYPE_MAP))

    def lastchild(self, node):
        """Reversal turns the unique ENTRY edge into the unique CYCLE
        edge, so the reversed LASTCHILD is the original body entry."""
        return self.ifg.body_entry(node)

    def header_of(self, node):
        """In the reversed graph the ENTRY edge into ``node`` is the
        original CYCLE edge out of it, so ``node`` must be the original
        latch and its header is unchanged."""
        cycle_targets = self.ifg.succs(node, "C")
        return cycle_targets[0] if cycle_targets else None

    def children(self, node):
        cached = self._children.get(node)
        if cached is None:
            cached = self._children[node] = tuple(
                sorted(self.ifg.children(node),
                       key=self._position.__getitem__))
        return cached

    def is_header(self, node):
        return self.ifg.is_header(node)

    def steal_all(self, node):
        """Headers of loops a jump leaves: under reversal those jumps
        enter the loop, so production regions must not span it.  The
        solver injects a whole-universe STEAL there (§5.3); this loses
        some legal optimizations but never safety, as the paper notes."""
        return node in self._blocked_headers

    @property
    def requires_consumption_iteration(self):
        """With jumps present, an extra verification sweep guarantees
        the fixpoint was reached (the restricted F-only local flow makes
        one pass sufficient in practice; the check is cheap insurance)."""
        return bool(self.ifg.jump_edges())

    #: Under reversal, JUMP and SYNTHETIC edges enter loops mid-body —
    #: they are not same-interval flow, so the interval-local S2
    #: equations only follow FORWARD edges.  Feeding reversed jumps into
    #: the _loc chains would attribute post-loop effects to the loop
    #: summary itself (paper §5.3's irreducibility hazard).  Safety for
    #: regions interacting with the jumps is restored by ``steal_all``
    #: (blocked mode) or checker certification (optimistic mode).
    loc_pred_letters = "F"
    loc_synthetic_letters = ""


def cached_view(ifg, direction, blocked=True):
    """A per-graph shared view instance.

    Views are immutable once built but still cost a traversal and a
    position map to construct; the pipeline solves the same graph up to
    three times (READ, optimistic WRITE, blocked WRITE), so views — like
    solver plans — are cached on the graph and keyed by shape.
    """
    key = ("before",) if direction == "before" else ("after", blocked)
    views = ifg.__dict__.get("_solver_views")
    if views is None:
        views = ifg.__dict__["_solver_views"] = {}
    view = views.get(key)
    if view is None:
        if direction == "before":
            view = ForwardView(ifg)
        else:
            view = BackwardView(ifg, blocked=blocked)
        views[key] = view
    return view
