"""Register promotion via GIVE-N-TAKE (paper §1, §6).

The paper's opening criticism of classical PRE: load and store placement
traditionally need "different, but interdependent sets of equations"
([Dha88b]).  GIVE-N-TAKE handles both with one system:

* **loads** are a BEFORE problem — a use of ``x(5)`` consumes the value;
  the EAGER solution is where the ``LOAD`` happens (hoisted out of loops
  and branches), availability ends at a conflicting store;
* **stores** are an AFTER problem — a definition of ``x(5)`` must reach
  memory; the LAZY solution keeps the value in the register, the EAGER
  solution is the latest point the ``STORE`` writes it back (sunk out of
  loops);
* a definition *gives* the value for subsequent loads (the register
  holds it) — the same give-for-free coupling as communication.

The result is classic scalar replacement: memory traffic inside loops
collapses to one load before and one store after.
"""

from repro.regpromo.pipeline import RegisterPromotionResult, promote_registers

__all__ = ["RegisterPromotionResult", "promote_registers"]
