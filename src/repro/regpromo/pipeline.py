"""Register promotion pipeline: loads (BEFORE) + stores (AFTER)."""

from repro.analysis.references import collect_accesses
from repro.analysis.sections import PointSection, section_conflicts
from repro.commgen.annotate import Annotator
from repro.core.placement import Placement
from repro.core.postpass import shift_synthetic_productions
from repro.core.problem import Direction, Problem, Timing
from repro.core.solver import solve
from repro.lang.parser import parse
from repro.lang.printer import format_program
from repro.lang.symbols import SymbolTable
from repro.testing.programs import AnalyzedProgram


class RegisterPromotionResult:
    """LOAD/STORE placements and the annotated program."""

    def __init__(self, analyzed, load_problem, load_placement,
                 store_problem, store_placement):
        self.analyzed = analyzed
        self.load_problem = load_problem
        self.load_placement = load_placement
        self.store_problem = store_problem
        self.store_placement = store_placement

    @property
    def annotated_program(self):
        return self.analyzed.program

    def annotated_source(self):
        return format_program(self.analyzed.program)

    def load_count(self):
        return self.load_placement.production_count(Timing.EAGER)

    def store_count(self):
        return self.store_placement.production_count(Timing.EAGER)


def promotable(descriptor):
    """Only single, loop-invariant elements fit in a register — 1-D
    points and multi-dimensional references whose every dimension is a
    loop-invariant point (``g(5, 7)``)."""
    from repro.analysis.sections import MultiSection

    if isinstance(descriptor, PointSection):
        return True
    if isinstance(descriptor, MultiSection):
        return not descriptor.subs and all(
            rng.is_point for rng in descriptor.ranges)
    return False


def build_load_problem(accesses):
    """Loads are a BEFORE problem: uses take; defs give (the register
    holds the stored value) and steal aliasing candidates."""
    problem = Problem(direction=Direction.BEFORE)
    points = _promotable_points(accesses)
    for point in points:
        problem.universe.add(point)
    for access in accesses:
        if promotable(access.descriptor) and not access.is_def:
            problem.add_take(access.node, access.descriptor)
        if access.is_def:
            _steal_aliases(problem, access, points)
            if promotable(access.descriptor):
                if access.reduction is not None:
                    # Unlike communication (where the owner combines),
                    # a register accumulates in place: the old value is
                    # consumed, so the initial LOAD must precede the loop.
                    problem.add_take(access.node, access.descriptor)
                problem.add_give(access.node, access.descriptor)
    return problem


def build_store_problem(accesses):
    """Stores are an AFTER problem: defs take (the value must reach
    memory); aliasing accesses steal (the store cannot be deferred past
    a use or def that may touch the same location through memory)."""
    problem = Problem(direction=Direction.AFTER)
    points = [
        access.descriptor for access in accesses
        if access.is_def and promotable(access.descriptor)
    ]
    unique_points = []
    for point in points:
        if point not in unique_points:
            unique_points.append(point)
            problem.universe.add(point)
    for access in accesses:
        if access.is_def and promotable(access.descriptor):
            problem.add_take(access.node, access.descriptor)
        for point in unique_points:
            if point != access.descriptor and section_conflicts(
                    point, access.descriptor):
                problem.add_steal(access.node, point)
    return problem


def _promotable_points(accesses):
    points = []
    for access in accesses:
        if promotable(access.descriptor) and access.descriptor not in points:
            points.append(access.descriptor)
    return points


def _steal_aliases(problem, access, points):
    for point in points:
        if point != access.descriptor and section_conflicts(
                point, access.descriptor):
            problem.add_steal(access.node, point)


def promote_registers(source, postpass=True):
    """Annotate ``source`` with ``LOAD``/``STORE`` register traffic.

    Every access to a promotable element between its LOAD and STORE is
    served by the register; the placements are the EAGER solutions of
    the two problems (load as early, store as late as possible), with
    balance guaranteeing a matching register lifetime on every path.
    """
    program = parse(source) if isinstance(source, str) else source
    analyzed = AnalyzedProgram(program)
    symbols = SymbolTable.from_program(program)
    accesses, _ = collect_accesses(analyzed, symbols)

    load_problem = build_load_problem(accesses)
    load_solution = solve(analyzed.ifg, load_problem)
    load_placement = Placement(analyzed.ifg, load_problem, load_solution)

    store_problem = build_store_problem(accesses)
    store_solution = solve(analyzed.ifg, store_problem)
    store_placement = Placement(analyzed.ifg, store_problem, store_solution)

    if postpass:
        shift_synthetic_productions(load_placement)
        shift_synthetic_productions(store_placement)

    annotator = Annotator(analyzed)
    annotator.apply_timing(store_placement, "store", Timing.EAGER)
    annotator.apply_timing(load_placement, "load", Timing.EAGER)
    return RegisterPromotionResult(
        analyzed, load_problem, load_placement, store_problem, store_placement)
