"""Configuration of the resident compile service (``docs/serving.md``).

One :class:`ServiceConfig` describes everything a
:class:`~repro.service.server.CompileService` needs: where to listen,
how many workers to run and on what kind of pool, how much concurrent
work to admit before replying with backpressure, the default
per-request deadline, and the compile defaults (hardened mode, message
splitting, pipeline overrides) that individual requests may override.
"""

from dataclasses import dataclass, field
from typing import Optional

from repro.batch.driver import BatchOptions

#: The port ``repro serve`` / ``repro request`` default to.
DEFAULT_PORT = 7421

#: Valid ``pool`` values: ``"process"`` insists on a
#: ProcessPoolExecutor, ``"thread"`` on threads, ``"auto"`` tries
#: processes and degrades to threads where multiprocessing is
#: unavailable (the same graceful fallback as ``compile_many``).
POOL_KINDS = ("auto", "process", "thread")


@dataclass
class ServiceConfig:
    """Knobs of one service instance.

    * ``host`` / ``port`` — listen address; ``port=0`` picks an
      ephemeral port (the bound port is announced and available as
      ``service.port``).
    * ``workers`` — worker count; ``0`` means one per CPU (the same
      :func:`~repro.batch.driver.resolve_jobs` resolution as
      ``repro batch --jobs 0``).
    * ``pool`` — see :data:`POOL_KINDS`.
    * ``queue_limit`` — the admission bound: maximum compile requests
      queued or running at once.  Anything beyond it is rejected
      immediately with a ``busy`` error carrying ``retry_after_s``.
    * ``deadline_s`` — default per-request deadline (``None`` = no
      deadline); requests may set their own.
    * ``hardened`` — compile through the degrading
      :class:`~repro.commgen.hardened.HardenedPipeline` by default, so
      over-budget programs degrade down the ladder instead of failing.
    * ``split_messages`` / ``pipeline`` — compile defaults, same
      semantics as :class:`~repro.batch.driver.BatchOptions` (unknown
      pipeline keys are rejected eagerly).
    * ``cache_dir`` — persist the warm
      :class:`~repro.batch.cache.PipelineCache` here (shared across
      restarts and across pool workers); ``None`` keeps it
      service-private (a temporary directory when a process pool needs
      filesystem sharing).  ``use_cache=False`` disables caching.
    * ``max_retry_after_s`` — cap on the backpressure hint.
    """

    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 0
    pool: str = "auto"
    queue_limit: int = 32
    deadline_s: Optional[float] = None
    hardened: bool = False
    split_messages: bool = True
    pipeline: dict = field(default_factory=dict)
    cache_dir: Optional[str] = None
    use_cache: bool = True
    max_retry_after_s: float = 2.0

    def __post_init__(self):
        if self.pool not in POOL_KINDS:
            raise ValueError(f"pool must be one of {POOL_KINDS}, "
                             f"not {self.pool!r}")
        if self.queue_limit < 1:
            raise ValueError("queue_limit must be at least 1")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive (or None)")
        # Reject pipeline-option typos at configuration time, not on the
        # first request.
        BatchOptions(pipeline=dict(self.pipeline))

    def as_dict(self):
        return {
            "host": self.host,
            "port": self.port,
            "workers": self.workers,
            "pool": self.pool,
            "queue_limit": self.queue_limit,
            "deadline_s": self.deadline_s,
            "hardened": self.hardened,
            "split_messages": self.split_messages,
            "pipeline": dict(self.pipeline),
            "cache_dir": self.cache_dir,
            "use_cache": self.use_cache,
            "max_retry_after_s": self.max_retry_after_s,
        }
