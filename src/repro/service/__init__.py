"""The resident compile service (``docs/serving.md``).

Every other entry point in this repo is a one-shot process; this
package is the subsystem that makes compilation *resident*, so the
batch layer's content-addressed cache and the compiled solver plans
amortize across requests instead of dying with each invocation:

* :class:`CompileService` — an ``asyncio`` TCP server speaking a
  newline-delimited JSON protocol (``compile`` / ``batch`` / ``status``
  / ``drain``), with a bounded admission queue and explicit
  ``retry_after_s`` backpressure, per-request deadlines, an optional
  hardened mode (over-budget programs degrade down the
  :mod:`~repro.commgen.hardened` ladder instead of failing), a
  process-wide warm :class:`~repro.batch.cache.PipelineCache`, and a
  worker pool reusing the :mod:`repro.batch.driver` workers;
* :class:`ServiceConfig` — every knob of one instance;
* :class:`ServiceClient` — the blocking client library (and
  ``repro request``, its CLI face; ``repro serve`` runs the server);
* :class:`ThreadedServer` — an in-process harness for tests and the
  ``python -m repro.obs.bench --service`` load generator
  (``BENCH_service.json``);
* :class:`ServiceMetrics` — the live queue/admission/cache/latency
  metrics behind the ``status`` request type.
"""

from repro.service.client import ServiceClient, ServiceConnectionError
from repro.service.config import DEFAULT_PORT, ServiceConfig
from repro.service.metrics import ServiceMetrics
from repro.service.protocol import (
    E_BAD_REQUEST,
    E_BUSY,
    E_DEADLINE,
    E_DRAINING,
    E_INTERNAL,
    E_UNAVAILABLE,
    ERROR_CODES,
    MAX_LINE_BYTES,
    PROTOCOL,
    REQUEST_TYPES,
    ProtocolError,
    ServiceError,
    decode_message,
    encode_message,
)
from repro.service.runner import ThreadedServer
from repro.service.server import CompileService, run_service

__all__ = [
    "CompileService",
    "DEFAULT_PORT",
    "ERROR_CODES",
    "E_BAD_REQUEST",
    "E_BUSY",
    "E_DEADLINE",
    "E_DRAINING",
    "E_INTERNAL",
    "E_UNAVAILABLE",
    "MAX_LINE_BYTES",
    "PROTOCOL",
    "ProtocolError",
    "REQUEST_TYPES",
    "ServiceClient",
    "ServiceConfig",
    "ServiceConnectionError",
    "ServiceError",
    "ServiceMetrics",
    "ThreadedServer",
    "decode_message",
    "encode_message",
    "run_service",
]
