"""Live service metrics (``docs/serving.md`` has the glossary).

One :class:`ServiceMetrics` instance lives on the event loop of a
:class:`~repro.service.server.CompileService` and is only ever touched
from there, so plain counters suffice.  Three things are tracked:

* **admission** — received/admitted/completed/failed totals, the
  current queue depth (admitted-but-unfinished work) and its peak, and
  every rejection by reason (``busy``, ``draining``) plus expired
  deadlines;
* **cache effectiveness** — per-request hit flags aggregated into a
  lookup/hit/hit-rate view (the warm-cache story the service exists
  for);
* **latency** — per-phase :class:`~repro.obs.histogram.LatencyHistogram`
  recorders (``compile_s`` = pure pipeline time inside the worker,
  ``queue_s`` = everything else in the round-trip: admission wait, pool
  dispatch, result transfer, ``total_s`` = the request's full
  server-side residence) reporting p50/p90/p99 live;
* **supervision** — worker-pool failures survived rather than
  surfaced: ``pool_rebuilds`` (a broken executor was detected and
  replaced) and ``requeued`` (requests resubmitted to the fresh pool
  instead of failing their connection).

Everything is also mirrored into the active :mod:`repro.obs` collector
(category ``"service"``) when tracing is enabled, so a traced test run
sees admission decisions as structured events.
"""

import time

from repro.obs.collector import current_collector
from repro.obs.histogram import LatencyHistogram

#: Histogram phases, in reporting order.
PHASES = ("queue_s", "compile_s", "total_s")


class ServiceMetrics:
    """Counters, gauges, and latency histograms of one service."""

    def __init__(self):
        self.received = 0
        self.admitted = 0
        self.completed = 0
        self.failed = 0
        self.rejected_busy = 0
        self.rejected_draining = 0
        self.bad_requests = 0
        self.internal_errors = 0
        self.deadline_expired = 0
        self.cache_lookups = 0
        self.cache_hits = 0
        self.queue_depth = 0
        self.queue_peak = 0
        self.pool_rebuilds = 0
        self.requeued = 0
        self.latency = {phase: LatencyHistogram() for phase in PHASES}
        self.started_monotonic = time.monotonic()

    # -- admission -----------------------------------------------------------

    def receive(self):
        self.received += 1

    def admit(self, units=1):
        self.admitted += units
        self.queue_depth += units
        self.queue_peak = max(self.queue_peak, self.queue_depth)
        obs = current_collector()
        if obs.enabled:
            obs.event("service", "admission", decision="admitted",
                      units=units, queue_depth=self.queue_depth)
            obs.count("service", "admitted", n=units)

    def release(self, units=1):
        self.queue_depth = max(0, self.queue_depth - units)

    def reject(self, code, units=1):
        if code == "busy":
            self.rejected_busy += units
        elif code == "draining":
            self.rejected_draining += units
        else:
            self.bad_requests += units
        obs = current_collector()
        if obs.enabled:
            obs.event("service", "admission", decision=code, units=units,
                      queue_depth=self.queue_depth)
            obs.count("service", f"rejected_{code}", n=units)

    def expire_deadline(self, units=1):
        self.deadline_expired += units
        obs = current_collector()
        if obs.enabled:
            obs.count("service", "deadline_expired", n=units)

    def internal_error(self):
        self.internal_errors += 1

    # -- supervision ---------------------------------------------------------

    def pool_rebuilt(self):
        """One broken worker pool detected and replaced."""
        self.pool_rebuilds += 1
        obs = current_collector()
        if obs.enabled:
            obs.event("service", "supervision", action="pool_rebuilt",
                      rebuilds=self.pool_rebuilds)
            obs.count("service", "pool_rebuilds")

    def requeue(self, units=1):
        """``units`` requests resubmitted after a pool failure."""
        self.requeued += units
        obs = current_collector()
        if obs.enabled:
            obs.event("service", "supervision", action="requeued",
                      units=units)
            obs.count("service", "requeued", n=units)

    # -- completion ----------------------------------------------------------

    def observe(self, compiled, total_s):
        """Account one finished compile: verdict, cache hit, latencies.

        ``compiled`` is a :class:`~repro.batch.driver.CompiledProgram`;
        ``total_s`` the server-side residence time of its request (for
        batch requests, of the whole batch round-trip)."""
        if compiled.ok:
            self.completed += 1
        else:
            self.failed += 1
        self.cache_lookups += 1
        if compiled.cache_hit:
            self.cache_hits += 1
        compile_s = max(0.0, compiled.duration_s)
        self.latency["compile_s"].record(compile_s)
        self.latency["queue_s"].record(max(0.0, total_s - compile_s))
        self.latency["total_s"].record(total_s)
        obs = current_collector()
        if obs.enabled:
            obs.count("service", "completed" if compiled.ok else "failed")
            if compiled.cache_hit:
                obs.count("service", "cache_hits")

    @property
    def cache_hit_rate(self):
        if not self.cache_lookups:
            return 0.0
        return self.cache_hits / self.cache_lookups

    # -- reporting -----------------------------------------------------------

    def snapshot(self, cache=None, server=None):
        """The JSON payload behind the ``status`` request type.

        ``cache`` merges a :class:`~repro.batch.cache.PipelineCache`'s
        own store-level stats (the parent process view; pool workers
        keep their own counters); ``server`` carries static facts the
        owning service wants surfaced (address, pool kind, limits)."""
        payload = {
            "uptime_s": time.monotonic() - self.started_monotonic,
            "requests": {
                "received": self.received,
                "admitted": self.admitted,
                "completed": self.completed,
                "failed": self.failed,
                "inflight": self.queue_depth,
                "queue_peak": self.queue_peak,
            },
            "admission": {
                "rejected_busy": self.rejected_busy,
                "rejected_draining": self.rejected_draining,
                "deadline_expired": self.deadline_expired,
                "bad_requests": self.bad_requests,
                "internal_errors": self.internal_errors,
            },
            "supervision": {
                "pool_rebuilds": self.pool_rebuilds,
                "requeued": self.requeued,
            },
            "cache": {
                "lookups": self.cache_lookups,
                "hits": self.cache_hits,
                "hit_rate": self.cache_hit_rate,
            },
            "latency": {phase: hist.snapshot()
                        for phase, hist in self.latency.items()},
        }
        if cache is not None:
            payload["cache"]["store"] = cache.stats()
        if server is not None:
            payload["server"] = dict(server)
        return payload
