"""The resident compile server (``docs/serving.md``).

A :class:`CompileService` is the long-lived process the one-shot entry
points (``repro annotate``, ``repro batch``) cannot be: it pays
interpreter startup, worker spawn, and cache warmup **once**, then
serves compile requests over TCP while the batch layer's
content-addressed :class:`~repro.batch.cache.PipelineCache` and the
compiled :class:`~repro.core.kernel.plan.SolverPlan`\\ s it snapshots
stay warm across requests — the same overlap-and-amortize idea
GIVE-N-TAKE applies to communication, applied to the compiler itself.

Division of labor:

* the **event loop** owns admission, metrics, deadlines, and the wire
  protocol — it never compiles anything, so a slow program cannot stall
  accept/status/drain handling;
* the **worker pool** (a ``ProcessPoolExecutor`` reusing
  :func:`repro.batch.driver._pool_compile` workers, or a thread pool
  where multiprocessing is unavailable) does the compiles, sharing
  cache warmth through the service's cache directory (process pool) or
  the service's own in-memory cache (thread pool).

Admission is a hard bound, not a silent queue: once ``queue_limit``
requests are in flight, new work is refused immediately with a ``busy``
error carrying ``retry_after_s`` — the client-visible backpressure that
keeps latency bounded under overload.  Per-request deadlines cancel the
*wait*, not the worker: an expired request gets its ``deadline`` reply
at once, the abandoned compile still releases its admission slot when
it finishes (so capacity accounting stays truthful), and a not-yet-
started pool task is cancelled outright.  ``drain`` flips the service
into refusing new work, waits for every in-flight request to complete,
replies, and shuts down — the graceful exit both the CLI's signal
handlers and the CI smoke job use.

The worker pool is **supervised** (``docs/robustness.md``): a worker
that dies mid-compile (OOM kill, segfault, chaos) breaks the whole
``ProcessPoolExecutor`` — every in-flight future fails with
:class:`~concurrent.futures.BrokenExecutor` and every later submit
would too.  Instead of poisoning the connection (and all subsequent
requests), the service detects the broken pool, rebuilds the executor
exactly once per failure (concurrent detections coalesce on a
generation counter), resubmits each affected request once, and counts
the event in :class:`~repro.service.metrics.ServiceMetrics`
(``pool_rebuilds`` / ``requeued``).  Only a request that fails on the
*fresh* pool too surfaces an ``internal`` error.
"""

import asyncio
import contextlib
import functools
import tempfile
import time
from concurrent.futures import (
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)

from repro.batch.cache import PipelineCache
from repro.batch.driver import (
    _pool_compile,
    _pool_compile_delta,
    compile_delta,
    compile_one,
    resolve_jobs,
)
from repro.obs.collector import current_collector
from repro.service.config import ServiceConfig
from repro.service.metrics import ServiceMetrics
from repro.service.protocol import (
    E_BAD_REQUEST,
    E_BUSY,
    E_DEADLINE,
    E_DRAINING,
    E_INTERNAL,
    E_UNAVAILABLE,
    MAX_LINE_BYTES,
    PROTOCOL,
    ProtocolError,
    encode_message,
    error_response,
    ok_response,
    parse_request,
    request_deadline,
    request_options,
)

#: Human messages for admission refusals.
ADMISSION_MESSAGES = {
    E_BUSY: "queue limit reached; retry after the suggested delay",
    E_DRAINING: "service is draining and accepts no new work",
}


class CompileService:
    """One resident compile service (see the module docstring).

    Lifecycle: ``await start()`` binds the socket and spins the pool up,
    ``await wait_closed()`` parks until a drain or :meth:`shutdown`
    finishes; :func:`run_service` packages both for the CLI and
    :class:`~repro.service.runner.ThreadedServer` for tests/benchmarks.
    """

    def __init__(self, config=None):
        self.config = config if config is not None else ServiceConfig()
        self.metrics = ServiceMetrics()
        self.workers = resolve_jobs(self.config.workers)
        self.pool_kind = None
        self.cache = None
        self.host = self.config.host
        self.port = None
        self._cache_tmp = None
        self._executor = None
        self._server = None
        self._loop = None
        self._draining = False
        self._closing = False
        self._idle = None
        self._stopped = None
        self._connections = set()
        self._tasks = set()
        self._pool_lock = None
        self._pool_generation = 0

    def _spawn(self, coroutine):
        """``create_task`` with a strong reference until done — the
        event loop only weak-refs its tasks, so a fire-and-forget
        handler with no other reference can be garbage-collected
        mid-await (the task dies with ``GeneratorExit``, the client
        never gets a reply)."""
        task = self._loop.create_task(coroutine)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return task

    # -- lifecycle -----------------------------------------------------------

    async def start(self):
        """Bind the socket, start the pool, warm the cache layer."""
        self._loop = asyncio.get_running_loop()
        self._idle = asyncio.Event()
        self._idle.set()
        self._stopped = asyncio.Event()
        self._pool_lock = asyncio.Lock()
        self._executor, self.pool_kind = self._build_executor()
        self._build_cache()
        self._server = await asyncio.start_server(
            self._serve_client, self.config.host, self.config.port,
            limit=MAX_LINE_BYTES)
        self.host, self.port = self._server.sockets[0].getsockname()[:2]
        obs = current_collector()
        if obs.enabled:
            obs.event("service", "start", host=self.host, port=self.port,
                      workers=self.workers, pool=self.pool_kind)
        return self

    def _build_executor(self):
        if self.config.pool in ("auto", "process"):
            try:
                pool = ProcessPoolExecutor(max_workers=self.workers)
                # Probe + warm: spawns the workers now and fails loudly
                # where multiprocessing primitives are unavailable
                # (restricted sandboxes), mirroring compile_many's
                # serial fallback.
                pool.submit(resolve_jobs, 1).result(timeout=120)
                return pool, "process"
            except Exception:
                if self.config.pool == "process":
                    raise
        pool = ThreadPoolExecutor(max_workers=self.workers,
                                  thread_name_prefix="repro-service")
        return pool, "thread"

    def _build_cache(self):
        if not self.config.use_cache:
            return
        directory = self.config.cache_dir
        if directory is None and self.pool_kind == "process":
            # Pool workers are separate processes: warmth is shared
            # through the filesystem, so give the service-private cache
            # a service-lifetime directory.
            self._cache_tmp = tempfile.TemporaryDirectory(
                prefix="repro-service-cache-")
            directory = self._cache_tmp.name
        self.cache = PipelineCache(directory=directory)

    async def shutdown(self, drain=True):
        """Stop the service; with ``drain`` wait for in-flight work."""
        self._draining = True
        if drain:
            await self._idle.wait()
        if self._closing:
            await self._stopped.wait()
            return
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._executor is not None:
            # In-flight work is done (idle) or abandoned past its
            # deadline; cancel anything still queued and reap workers.
            self._executor.shutdown(wait=True, cancel_futures=True)
        if self._cache_tmp is not None:
            self._cache_tmp.cleanup()
        self._stopped.set()

    async def wait_closed(self):
        await self._stopped.wait()

    async def abort(self):
        """Die like a crashed shard: no drain, no goodbyes.

        The listening socket closes, every open connection is reset
        (clients see ``ECONNRESET``, not a clean EOF), and pool workers
        are killed outright.  This is the fleet chaos harness's
        ``kill_shard`` primitive — production code wants
        :meth:`shutdown`."""
        self._draining = True
        if self._closing:
            await self._stopped.wait()
            return
        self._closing = True
        if self._server is not None:
            self._server.close()
        for writer in list(self._connections):
            with contextlib.suppress(Exception):
                writer.transport.abort()
        if self._executor is not None:
            processes = getattr(self._executor, "_processes", None)
            if processes:
                for process in list(processes.values()):
                    with contextlib.suppress(Exception):
                        process.kill()
            self._executor.shutdown(wait=False, cancel_futures=True)
        if self._cache_tmp is not None:
            with contextlib.suppress(Exception):
                self._cache_tmp.cleanup()
        self._stopped.set()

    async def sever_connections(self):
        """Abruptly reset every open client connection (in-flight work
        keeps running and stays accounted for) — the chaos harness's
        torn-network primitive."""
        severed = 0
        for writer in list(self._connections):
            with contextlib.suppress(Exception):
                writer.transport.abort()
                severed += 1
        return severed

    def status(self):
        """The ``status`` payload: live metrics plus server facts."""
        return self.metrics.snapshot(cache=self.cache, server={
            "protocol": PROTOCOL,
            "host": self.host,
            "port": self.port,
            "workers": self.workers,
            "pool": self.pool_kind,
            "queue_limit": self.config.queue_limit,
            "deadline_s": self.config.deadline_s,
            "hardened": self.config.hardened,
            "draining": self._draining,
        })

    # -- admission -----------------------------------------------------------

    def _admit(self, units):
        """Take ``units`` admission slots or return the refusal code."""
        if self._draining:
            return E_DRAINING
        if self.metrics.queue_depth + units > self.config.queue_limit:
            return E_BUSY
        self.metrics.admit(units)
        self._idle.clear()
        return None

    def _release_slot(self, future):
        """Done-callback on every pool future: free the admission slot
        (even for abandoned, deadline-expired work) and swallow the
        exception of a future nobody awaits anymore."""
        self.metrics.release(1)
        if self.metrics.queue_depth == 0:
            self._idle.set()
        if not future.cancelled():
            future.exception()

    def _retry_after(self):
        """Backpressure hint: roughly one median request per queued unit
        per worker, clamped to sane bounds.

        The 0.05 s fallback applies only while the histogram is *empty*
        (no request has completed yet, so there is nothing to estimate
        from).  A recorded median of zero is a legitimate measurement —
        sub-resolution-fast requests — and must not be confused with
        "no data", or a fast service would tell clients to back off
        five times longer than its real service time."""
        histogram = self.metrics.latency["total_s"]
        median = (0.05 if histogram.count == 0
                  else histogram.percentile(0.5))
        estimate = median * max(1, self.metrics.queue_depth) / self.workers
        return round(min(self.config.max_retry_after_s,
                         max(0.01, estimate)), 4)

    # -- execution -----------------------------------------------------------

    def _submit(self, name, source, options, base=None):
        """Schedule one compile on the pool; returns an asyncio future
        whose admission slot is released when the work truly finishes.

        ``base=<digest or "">`` marks an incremental (``compile_delta``)
        request; a plain compile passes ``base=None``.  A pool so broken
        that ``submit`` itself raises releases the slot synchronously,
        so every attempt frees exactly one slot no matter how it dies."""
        if self.pool_kind == "process":
            cache_dir = self.cache.directory if self.cache is not None else None
            if base is not None:
                call = functools.partial(
                    _pool_compile_delta, (name, source), cache_dir=cache_dir,
                    use_cache=self.cache is not None, options=options,
                    base_digest=base or None)
            else:
                call = functools.partial(
                    _pool_compile, (name, source), cache_dir=cache_dir,
                    use_cache=self.cache is not None, options=options)
        elif base is not None:
            call = functools.partial(compile_delta, name, source, self.cache,
                                     options=options,
                                     base_digest=base or None)
        else:
            call = functools.partial(compile_one, name, source, self.cache,
                                     options)
        try:
            future = self._loop.run_in_executor(self._executor, call)
        except BrokenExecutor:
            self.metrics.release(1)
            if self.metrics.queue_depth == 0:
                self._idle.set()
            raise
        future.add_done_callback(self._release_slot)
        return future

    async def _run_supervised(self, name, source, options, base=None):
        """One compile under worker-pool supervision: a broken executor
        (a worker crashed mid-compile) is rebuilt and the request
        requeued once instead of failing the connection."""
        try:
            return await self._submit(name, source, options, base=base)
        except BrokenExecutor:
            if self._closing:
                raise
            await self._supervise_pool_failure()
            # The failed attempt released its admission slot; take it
            # back unconditionally — a requeue is a continuation of
            # already-admitted work, not new admission.
            self.metrics.admit(1)
            self._idle.clear()
            self.metrics.requeue(1)
            return await self._submit(name, source, options, base=base)

    async def _supervise_pool_failure(self):
        """Replace a broken executor exactly once per failure: every
        request that saw the same generation coalesces on the lock and
        only the first rebuilds."""
        generation = self._pool_generation
        async with self._pool_lock:
            if self._pool_generation != generation:
                return  # a sibling request already rebuilt the pool
            broken = self._executor
            # _build_executor spawns and probes workers — run it off the
            # event loop so a slow spawn cannot stall accept/status.
            self._executor, self.pool_kind = await self._loop.run_in_executor(
                None, self._build_executor)
            self._pool_generation += 1
            self.metrics.pool_rebuilt()
            obs = current_collector()
            if obs.enabled:
                obs.event("service", "pool_rebuild",
                          generation=self._pool_generation,
                          pool=self.pool_kind)
            broken.shutdown(wait=False, cancel_futures=True)

    async def _await_with_deadline(self, awaitable, deadline):
        """``await`` under the request deadline; the underlying pool
        futures are shielded so abandoned work still settles slots."""
        if deadline is None:
            return await awaitable
        return await asyncio.wait_for(asyncio.shield(awaitable), deadline)

    # -- the wire ------------------------------------------------------------

    async def _serve_client(self, reader, writer):
        self._connections.add(writer)
        write_lock = asyncio.Lock()

        async def send(payload):
            try:
                async with write_lock:
                    writer.write(encode_message(payload))
                    await writer.drain()
            except (ConnectionError, RuntimeError):
                # Client went away; the work stays accounted for.
                pass

        try:
            while True:
                try:
                    line = await reader.readline()
                except asyncio.CancelledError:
                    # Loop shutdown cancelled a connection parked in
                    # readline (a client that never disconnected before
                    # a drain finished).  End the handler quietly: the
                    # asyncio.start_server completion callback would
                    # otherwise log the CancelledError as an "Exception
                    # in callback" traceback.  Nothing awaits this task,
                    # so absorbing the cancellation is safe.
                    break
                except ConnectionError:
                    # Peer vanished without a FIN (reset, severed by
                    # chaos, router hung up mid-forward) — same as a
                    # clean disconnect from our side.
                    break
                except (asyncio.LimitOverrunError, ValueError):
                    await send(error_response(
                        {}, E_BAD_REQUEST,
                        f"request line over {MAX_LINE_BYTES} bytes"))
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                self.metrics.receive()
                try:
                    request = parse_request(line)
                except ProtocolError as error:
                    self.metrics.reject(E_BAD_REQUEST)
                    await send(error_response({}, E_BAD_REQUEST, str(error)))
                    continue
                rtype = request["type"]
                if rtype == "ping":
                    await send(ok_response(request, protocol=PROTOCOL))
                elif rtype == "status":
                    await send(ok_response(request, status=self.status()))
                elif rtype == "drain":
                    self._spawn(self._handle_drain(request, send))
                elif rtype == "batch":
                    self._spawn(self._handle_batch(request, send))
                else:
                    self._spawn(self._handle_compile(request, send))
        finally:
            # In-flight tasks keep running (their sends no-op if the
            # client is gone); just tear the connection down.  No await
            # here: this finally also runs when the task is cancelled
            # during server close, and awaiting would re-raise there.
            self._connections.discard(writer)
            with contextlib.suppress(Exception):
                writer.close()

    # -- request handlers ----------------------------------------------------

    async def _handle_compile(self, request, send):
        received = time.monotonic()
        source = request.get("source")
        name = request.get("name") or "<request>"
        delta = request.get("type") == "compile_delta"
        if not isinstance(source, str):
            self.metrics.reject(E_BAD_REQUEST)
            await send(error_response(
                request, E_BAD_REQUEST,
                f"{request.get('type')} requests need a string 'source' "
                f"field"))
            return
        base = None
        if delta:
            # The empty string marks "delta with no base digest": still
            # an incremental compile, just without changed-interval
            # diagnostics (the replay is content-addressed either way).
            base = request.get("base") or ""
            if not isinstance(base, str):
                self.metrics.reject(E_BAD_REQUEST)
                await send(error_response(
                    request, E_BAD_REQUEST,
                    "compile_delta 'base' must be a string digest"))
                return
            if self.cache is None:
                self.metrics.reject(E_UNAVAILABLE)
                await send(error_response(
                    request, E_UNAVAILABLE,
                    "compile_delta needs the service cache; this service "
                    "runs with use_cache=False"))
                return
        try:
            options = request_options(request, self.config)
            deadline = request_deadline(request, self.config)
        except ProtocolError as error:
            self.metrics.reject(E_BAD_REQUEST)
            await send(error_response(request, E_BAD_REQUEST, str(error)))
            return
        code = self._admit(1)
        if code is not None:
            self.metrics.reject(code)
            await send(error_response(request, code, ADMISSION_MESSAGES[code],
                                      retry_after_s=self._retry_after()))
            return
        future = self._loop.create_task(
            self._run_supervised(name, source, options, base=base))
        try:
            compiled = await self._await_with_deadline(future, deadline)
        except asyncio.TimeoutError:
            future.cancel()  # lands only if the pool has not started it
            self.metrics.expire_deadline()
            await send(error_response(
                request, E_DEADLINE,
                f"deadline of {deadline:g}s expired before the compile "
                f"finished", deadline_s=deadline))
            return
        except asyncio.CancelledError:
            raise
        except Exception as error:  # worker-pool failure, not a ReproError
            self.metrics.internal_error()
            await send(error_response(request, E_INTERNAL,
                                      f"{type(error).__name__}: {error}"))
            return
        self.metrics.observe(compiled, time.monotonic() - received)
        await send(ok_response(request, result=compiled.as_dict()))

    async def _handle_batch(self, request, send):
        received = time.monotonic()
        programs = request.get("programs")
        if (not isinstance(programs, list) or not programs
                or not all(isinstance(p, dict)
                           and isinstance(p.get("source"), str)
                           for p in programs)):
            self.metrics.reject(E_BAD_REQUEST)
            await send(error_response(
                request, E_BAD_REQUEST,
                "batch requests need a non-empty 'programs' list of "
                "{name, source} objects"))
            return
        try:
            options = request_options(request, self.config)
            deadline = request_deadline(request, self.config)
        except ProtocolError as error:
            self.metrics.reject(E_BAD_REQUEST)
            await send(error_response(request, E_BAD_REQUEST, str(error)))
            return
        units = len(programs)
        code = self._admit(units)
        if code is not None:
            self.metrics.reject(code, units=units)
            await send(error_response(request, code, ADMISSION_MESSAGES[code],
                                      retry_after_s=self._retry_after()))
            return
        futures = [
            self._loop.create_task(self._run_supervised(
                p.get("name") or f"<batch-{index}>", p["source"], options))
            for index, p in enumerate(programs)
        ]
        try:
            results = await self._await_with_deadline(
                asyncio.gather(*futures), deadline)
        except asyncio.TimeoutError:
            for future in futures:
                future.cancel()
            self.metrics.expire_deadline(units=units)
            await send(error_response(
                request, E_DEADLINE,
                f"deadline of {deadline:g}s expired before the batch "
                f"finished", deadline_s=deadline))
            return
        except asyncio.CancelledError:
            raise
        except Exception as error:
            self.metrics.internal_error()
            await send(error_response(request, E_INTERNAL,
                                      f"{type(error).__name__}: {error}"))
            return
        total = time.monotonic() - received
        for compiled in results:
            self.metrics.observe(compiled, total)
        await send(ok_response(
            request,
            results=[compiled.as_dict() for compiled in results],
            ok_count=sum(1 for c in results if c.ok),
            error_count=sum(1 for c in results if not c.ok),
            cache_hits=sum(1 for c in results if c.cache_hit),
        ))

    async def _handle_drain(self, request, send):
        obs = current_collector()
        if obs.enabled:
            obs.event("service", "drain", inflight=self.metrics.queue_depth)
        self._draining = True
        await self._idle.wait()
        await send(ok_response(request, drained=True,
                               completed=self.metrics.completed,
                               failed=self.metrics.failed))
        self._spawn(self.shutdown(drain=False))


async def _serve_main(config, out):
    import signal

    service = CompileService(config)
    await service.start()
    if out is not None:
        out.write(f"repro-service listening on {service.host}:{service.port} "
                  f"(workers={service.workers}, pool={service.pool_kind}, "
                  f"queue_limit={service.config.queue_limit})\n")
        if hasattr(out, "flush"):
            out.flush()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError, RuntimeError,
                                 ValueError):
            loop.add_signal_handler(
                signum,
                lambda: service._spawn(service.shutdown(drain=True)))
    await service.wait_closed()


def run_service(config=None, out=None):
    """Run a service in the foreground until drained or signalled —
    the body of ``repro serve``."""
    try:
        asyncio.run(_serve_main(config, out))
    except KeyboardInterrupt:
        pass
