"""Blocking client for the compile service (``docs/serving.md``).

:class:`ServiceClient` speaks the newline-delimited JSON protocol over
one TCP connection: each call is a request/response round-trip, matched
by the auto-assigned ``id``.  Refusals and failures surface as
:class:`~repro.service.protocol.ServiceError` (a
:class:`~repro.util.errors.ReproError`, so the CLI's one-line error
handling applies); :meth:`compile_retrying` additionally honors the
server's ``retry_after_s`` backpressure hint **and** rides out
connection-level failures — refused connections while a server (or
fleet shard) restarts, resets when a connection is severed mid-request
— by reconnecting with exponential backoff.  Compiles are pure
functions of (source, options), so resending one that may or may not
have completed is always safe.

::

    with ServiceClient(port=7421) as client:
        result = client.compile(source, name="fig11.f")
        print(result["annotated_source"], end="")
"""

import contextlib
import socket
import time

from repro.service.config import DEFAULT_PORT
from repro.service.protocol import (
    E_BUSY,
    E_UNAVAILABLE,
    ServiceError,
    decode_message,
    encode_message,
    raise_for_error,
)

#: :meth:`ServiceClient.compile_retrying` retries these error codes —
#: ``busy`` (admission backpressure) and ``unavailable`` (a fleet
#: router with no healthy shard right now).  Everything else is a real
#: answer and propagates.
RETRYABLE_CODES = (E_BUSY, E_UNAVAILABLE)

#: Backoff for connection-level retries: ``base * 2**attempt`` capped.
RETRY_BACKOFF_BASE_S = 0.05
RETRY_BACKOFF_CAP_S = 1.0


class ServiceConnectionError(ServiceError):
    """The connection died mid-round-trip (reset, or a clean close with
    no reply) — retryable, since the request can be resent verbatim."""

    def __init__(self, message):
        super().__init__(E_UNAVAILABLE, message)


class ServiceClient:
    """One connection to a running compile service."""

    def __init__(self, host="127.0.0.1", port=DEFAULT_PORT, timeout_s=30.0):
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self._sock = None
        self._file = None
        self._next_id = 0
        self._connect()

    def _connect(self):
        self._sock = socket.create_connection((self.host, self.port),
                                              timeout=self.timeout_s)
        self._file = self._sock.makefile("rwb")

    def close(self):
        try:
            if self._file is not None:
                with contextlib.suppress(OSError):
                    self._file.close()
        finally:
            self._file = None
            if self._sock is not None:
                with contextlib.suppress(OSError):
                    self._sock.close()
            self._sock = None

    def reconnect(self):
        """Drop the current connection (if any) and dial again —
        raises the usual socket errors when the server is down."""
        self.close()
        self._connect()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    # -- the round-trip ------------------------------------------------------

    def request(self, body):
        """Send one request, read one response; return the ``ok``
        response dict or raise :class:`ServiceError`
        (:class:`ServiceConnectionError` when the connection died
        before a reply arrived)."""
        if self._file is None:
            self.reconnect()
        self._next_id += 1
        body = dict(body)
        body.setdefault("id", self._next_id)
        self._file.write(encode_message(body))
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ServiceConnectionError("connection closed by server")
        return raise_for_error(decode_message(line))

    # -- request types -------------------------------------------------------

    def ping(self):
        return self.request({"type": "ping"})

    def status(self):
        """The live metrics snapshot (``docs/serving.md`` glossary)."""
        return self.request({"type": "status"})["status"]

    def drain(self):
        """Ask the server to finish in-flight work and shut down;
        returns only once everything in flight has completed."""
        return self.request({"type": "drain"})

    def compile(self, source, name="<client>", deadline_s=None, options=None):
        """Compile one program; returns the result dict (the service-side
        :meth:`~repro.batch.driver.CompiledProgram.as_dict` payload —
        check ``result["ok"]`` for the per-program verdict)."""
        body = {"type": "compile", "name": name, "source": source}
        if deadline_s is not None:
            body["deadline_s"] = deadline_s
        if options:
            body["options"] = options
        return self.request(body)["result"]

    def compile_delta(self, source, base_digest=None, name="<client>",
                      deadline_s=None, options=None):
        """Incrementally recompile an edited program (``compile_delta``).

        ``source`` is the full *edited* text; ``base_digest`` (optional)
        is the :func:`~repro.batch.cache.source_fingerprint` of the base
        text a previous compile warmed the server's cache with — with it
        the result's ``incremental`` dict reports how many intervals the
        edit changed, and a fleet router uses it for cache affinity.
        The result dict is byte-identical to :meth:`compile` of the same
        text."""
        body = {"type": "compile_delta", "name": name, "source": source}
        if base_digest:
            body["base"] = base_digest
        if deadline_s is not None:
            body["deadline_s"] = deadline_s
        if options:
            body["options"] = options
        return self.request(body)["result"]

    def batch(self, programs, deadline_s=None, options=None):
        """Compile ``programs`` (``(name, source)`` pairs or a mapping)
        as one admission unit; returns the full batch response."""
        items = programs.items() if isinstance(programs, dict) else programs
        body = {"type": "batch",
                "programs": [{"name": name, "source": source}
                             for name, source in items]}
        if deadline_s is not None:
            body["deadline_s"] = deadline_s
        if options:
            body["options"] = options
        return self.request(body)

    def compile_retrying(self, source, name="<client>", deadline_s=None,
                         options=None, max_attempts=100, sleep=time.sleep):
        """:meth:`compile`, but survive the transient failures a polite
        load generator should: ``busy`` backpressure (wait out the
        server's ``retry_after_s`` hint), ``unavailable`` replies from a
        fleet router between healthy shards, and connection-level
        failures — refused while the server restarts, reset when severed
        mid-request — by reconnecting under exponential backoff."""
        failures = 0
        for attempt in range(max_attempts):
            last = attempt == max_attempts - 1
            try:
                return self.compile(source, name=name, deadline_s=deadline_s,
                                    options=options)
            except ServiceConnectionError:
                if last:
                    raise
            except ServiceError as error:
                if error.code not in RETRYABLE_CODES or last:
                    raise
                sleep(error.retry_after_s or RETRY_BACKOFF_BASE_S)
                continue
            except OSError:
                # Dead socket or refused dial (server restarting).
                if last:
                    raise
            # Connection-level failure: back off, then reconnect.  A
            # refused reconnect just counts as this attempt's failure.
            sleep(min(RETRY_BACKOFF_CAP_S,
                      RETRY_BACKOFF_BASE_S * (2 ** min(failures, 10))))
            failures += 1
            with contextlib.suppress(OSError):
                self.reconnect()
        raise AssertionError("unreachable")  # pragma: no cover
