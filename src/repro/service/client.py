"""Blocking client for the compile service (``docs/serving.md``).

:class:`ServiceClient` speaks the newline-delimited JSON protocol over
one TCP connection: each call is a request/response round-trip, matched
by the auto-assigned ``id``.  Refusals and failures surface as
:class:`~repro.service.protocol.ServiceError` (a
:class:`~repro.util.errors.ReproError`, so the CLI's one-line error
handling applies); :meth:`compile_retrying` additionally honors the
server's ``retry_after_s`` backpressure hint — the polite loop a load
generator or batch submitter should use.

::

    with ServiceClient(port=7421) as client:
        result = client.compile(source, name="fig11.f")
        print(result["annotated_source"], end="")
"""

import socket
import time

from repro.service.config import DEFAULT_PORT
from repro.service.protocol import (
    E_BUSY,
    E_INTERNAL,
    ServiceError,
    decode_message,
    encode_message,
    raise_for_error,
)


class ServiceClient:
    """One connection to a running compile service."""

    def __init__(self, host="127.0.0.1", port=DEFAULT_PORT, timeout_s=30.0):
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port), timeout=timeout_s)
        self._file = self._sock.makefile("rwb")
        self._next_id = 0

    def close(self):
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    # -- the round-trip ------------------------------------------------------

    def request(self, body):
        """Send one request, read one response; return the ``ok``
        response dict or raise :class:`ServiceError`."""
        self._next_id += 1
        body = dict(body)
        body.setdefault("id", self._next_id)
        self._file.write(encode_message(body))
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ServiceError(E_INTERNAL, "connection closed by server")
        return raise_for_error(decode_message(line))

    # -- request types -------------------------------------------------------

    def ping(self):
        return self.request({"type": "ping"})

    def status(self):
        """The live metrics snapshot (``docs/serving.md`` glossary)."""
        return self.request({"type": "status"})["status"]

    def drain(self):
        """Ask the server to finish in-flight work and shut down;
        returns only once everything in flight has completed."""
        return self.request({"type": "drain"})

    def compile(self, source, name="<client>", deadline_s=None, options=None):
        """Compile one program; returns the result dict (the service-side
        :meth:`~repro.batch.driver.CompiledProgram.as_dict` payload —
        check ``result["ok"]`` for the per-program verdict)."""
        body = {"type": "compile", "name": name, "source": source}
        if deadline_s is not None:
            body["deadline_s"] = deadline_s
        if options:
            body["options"] = options
        return self.request(body)["result"]

    def batch(self, programs, deadline_s=None, options=None):
        """Compile ``programs`` (``(name, source)`` pairs or a mapping)
        as one admission unit; returns the full batch response."""
        items = programs.items() if isinstance(programs, dict) else programs
        body = {"type": "batch",
                "programs": [{"name": name, "source": source}
                             for name, source in items]}
        if deadline_s is not None:
            body["deadline_s"] = deadline_s
        if options:
            body["options"] = options
        return self.request(body)

    def compile_retrying(self, source, name="<client>", deadline_s=None,
                         options=None, max_attempts=100, sleep=time.sleep):
        """:meth:`compile`, but wait out ``busy`` backpressure replies
        using the server's ``retry_after_s`` hint."""
        for attempt in range(max_attempts):
            try:
                return self.compile(source, name=name, deadline_s=deadline_s,
                                    options=options)
            except ServiceError as error:
                if error.code != E_BUSY or attempt == max_attempts - 1:
                    raise
                sleep(error.retry_after_s or 0.05)
        raise AssertionError("unreachable")  # pragma: no cover
