"""The service wire protocol: newline-delimited JSON (``docs/serving.md``).

Every message — request or response — is one line of UTF-8 JSON
terminated by ``\\n``.  Requests carry a ``type`` (one of
:data:`REQUEST_TYPES`) and an optional ``id`` the server echoes back, so
clients may pipeline.  Responses carry ``ok``; a refused or failed
request has ``ok=False`` plus an ``error`` object with a stable ``code``
(:data:`ERROR_CODES`) — backpressure refusals additionally carry
``retry_after_s``, the server's hint for when to try again.

Request shapes::

    {"type": "ping"}
    {"type": "compile", "name": "...", "source": "...",
     "deadline_s": 2.0, "options": {"hardened": true, "pipeline": {...}}}
    {"type": "compile_delta", "name": "...", "source": "...",
     "base": "<sha256 source_fingerprint of the base text>",
     "deadline_s": 2.0, "options": {...}}
    {"type": "batch", "programs": [{"name": "...", "source": "..."}, ...],
     "deadline_s": 10.0, "options": {...}}
    {"type": "status"}
    {"type": "drain"}

``compile_delta`` carries the *edited* source in full; ``base`` names
the previously compiled text whose warm cache entries the server splices
from (interval-scoped memoization, ``docs/scaling.md``).  ``base`` is
optional — the replay is content-addressed, so the compile is
incremental against whatever the cache holds either way — but with it
the response's ``result["incremental"]`` additionally reports how many
intervals the edit changed, and the fleet router uses it for cache
affinity (deltas land on the shard that compiled the base).

A compile response wraps one
:meth:`~repro.batch.driver.CompiledProgram.as_dict` payload under
``result`` (transport-level ``ok`` means "the request was processed";
``result["ok"]`` is the compile verdict, with per-program errors carried
as data exactly like the batch layer).  ``status`` returns the live
metrics snapshot; ``drain`` stops admission, waits for in-flight work,
replies, and shuts the server down.
"""

import json

from repro.batch.driver import BatchOptions
from repro.util.errors import ReproError

#: Protocol identifier, echoed by ``ping`` (bump on breaking changes).
PROTOCOL = "repro-service/1"

#: Hard cap on one message line (requests and responses both).
MAX_LINE_BYTES = 8 * 1024 * 1024

REQUEST_TYPES = ("ping", "compile", "compile_delta", "batch", "status",
                 "drain")

#: Stable error codes.
E_BAD_REQUEST = "bad_request"
E_BUSY = "busy"
E_DRAINING = "draining"
E_DEADLINE = "deadline"
E_INTERNAL = "internal"
E_UNAVAILABLE = "unavailable"
ERROR_CODES = (E_BAD_REQUEST, E_BUSY, E_DRAINING, E_DEADLINE, E_INTERNAL,
               E_UNAVAILABLE)

#: Request ``options`` keys (everything else is a bad request).
OPTION_KEYS = ("hardened", "split_messages", "pipeline")


class ProtocolError(ReproError):
    """Raised for undecodable or malformed protocol messages."""


class ServiceError(ReproError):
    """An ``ok=False`` response, surfaced client-side.

    ``code`` is one of :data:`ERROR_CODES`; ``retry_after_s`` is the
    server's backpressure hint when the code is ``busy``."""

    def __init__(self, code, message, retry_after_s=None):
        self.code = code
        self.retry_after_s = retry_after_s
        super().__init__(f"{code}: {message}")


def encode_message(payload):
    """One protocol line: compact, key-sorted JSON plus the terminator."""
    return json.dumps(payload, separators=(",", ":"),
                      sort_keys=True).encode() + b"\n"


def decode_message(line):
    """Parse one protocol line into a dict (:class:`ProtocolError` on
    anything that is not a JSON object)."""
    try:
        payload = json.loads(line.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"undecodable message: {error}") from error
    if not isinstance(payload, dict):
        raise ProtocolError("message must be a JSON object")
    return payload


def parse_request(line):
    """Decode and validate one request line."""
    request = decode_message(line)
    rtype = request.get("type")
    if rtype not in REQUEST_TYPES:
        raise ProtocolError(f"unknown request type {rtype!r} "
                            f"(expected one of {', '.join(REQUEST_TYPES)})")
    return request


def ok_response(request, **payload):
    response = {"id": request.get("id"), "type": request.get("type"),
                "ok": True}
    response.update(payload)
    return response


def error_response(request, code, message, **extra):
    response = {"id": request.get("id"), "type": request.get("type"),
                "ok": False, "error": {"code": code, "message": message}}
    response.update(extra)
    return response


def raise_for_error(response):
    """Client-side guard: return an ``ok`` response unchanged, raise
    :class:`ServiceError` for everything else."""
    if response.get("ok"):
        return response
    error = response.get("error") or {}
    raise ServiceError(error.get("code", E_INTERNAL),
                       error.get("message", "unknown error"),
                       retry_after_s=response.get("retry_after_s"))


def request_options(request, config):
    """The :class:`~repro.batch.driver.BatchOptions` for one request:
    request-level overrides applied on top of the service defaults."""
    raw = request.get("options") or {}
    if not isinstance(raw, dict):
        raise ProtocolError("options must be a JSON object")
    unknown = set(raw) - set(OPTION_KEYS)
    if unknown:
        raise ProtocolError(f"unknown option(s): {sorted(unknown)} "
                            f"(expected {', '.join(OPTION_KEYS)})")
    pipeline = dict(config.pipeline)
    overrides = raw.get("pipeline") or {}
    if not isinstance(overrides, dict):
        raise ProtocolError("options.pipeline must be a JSON object")
    pipeline.update(overrides)
    try:
        return BatchOptions(
            hardened=bool(raw.get("hardened", config.hardened)),
            split_messages=bool(raw.get("split_messages",
                                        config.split_messages)),
            pipeline=pipeline,
        )
    except ValueError as error:
        raise ProtocolError(str(error)) from error


def request_deadline(request, config):
    """The effective deadline for one request (seconds or ``None``)."""
    deadline = request.get("deadline_s", config.deadline_s)
    if deadline is None:
        return None
    if not isinstance(deadline, (int, float)) or isinstance(deadline, bool) \
            or deadline <= 0:
        raise ProtocolError("deadline_s must be a positive number")
    return float(deadline)
