"""In-process service harness: a real TCP server on a background thread.

The tests, the ``--service`` benchmark, and interactive sessions all
need a genuine :class:`~repro.service.server.CompileService` — real
sockets, real admission, real pool — without managing a subprocess.
:class:`ThreadedServer` runs the service's event loop on a daemon
thread, blocks :meth:`start` until the port is bound (surfacing startup
errors in the caller), and tears down via the same graceful
:meth:`~repro.service.server.CompileService.shutdown` path the drain
request uses.

::

    with ThreadedServer(ServiceConfig(pool="thread", workers=2)) as server:
        with ServiceClient(port=server.port) as client:
            client.compile(source)
"""

import asyncio
import threading

from repro.service.server import CompileService


class ThreadedServer:
    """Run a :class:`CompileService` on a private event-loop thread."""

    def __init__(self, config=None, timeout_s=60.0):
        self.config = config
        self.service = None
        self._thread = None
        self._loop = None
        self._ready = threading.Event()
        self._error = None
        self._timeout = timeout_s

    def start(self):
        """Start the loop thread; returns once the socket is bound."""
        self._thread = threading.Thread(target=self._run,
                                        name="repro-service-loop",
                                        daemon=True)
        self._thread.start()
        if not self._ready.wait(self._timeout):
            raise RuntimeError("compile service did not start in time")
        if self._error is not None:
            raise self._error
        return self

    def _run(self):
        try:
            asyncio.run(self._amain())
        except BaseException as error:  # pragma: no cover - defensive
            self._error = error
            self._ready.set()

    async def _amain(self):
        self.service = CompileService(self.config)
        self._loop = asyncio.get_running_loop()
        try:
            await self.service.start()
        except Exception as error:
            self._error = error
            self._ready.set()
            return
        self._ready.set()
        await self.service.wait_closed()

    @property
    def host(self):
        return self.service.host

    @property
    def port(self):
        return self.service.port

    def stop(self, drain=True):
        """Shut the service down (gracefully by default) and join the
        loop thread.  Idempotent: a server already drained by a client
        just joins."""
        if self._thread is None or not self._thread.is_alive():
            return
        if self.service is not None and self._loop is not None:
            try:
                future = asyncio.run_coroutine_threadsafe(
                    self.service.shutdown(drain=drain), self._loop)
                future.result(timeout=self._timeout)
            except RuntimeError:
                pass  # loop already closed between the check and the call
        self._thread.join(self._timeout)

    def kill(self):
        """Kill the service like a crashed process: connections reset,
        workers shot, nothing drained (the chaos harness's shard-kill
        primitive; see :meth:`CompileService.abort`)."""
        if self._thread is None or not self._thread.is_alive():
            return
        if self.service is not None and self._loop is not None:
            try:
                future = asyncio.run_coroutine_threadsafe(
                    self.service.abort(), self._loop)
                future.result(timeout=self._timeout)
            except RuntimeError:
                pass  # loop already closed between the check and the call
        self._thread.join(self._timeout)

    __enter__ = start

    def __exit__(self, *exc_info):
        self.stop()
