"""Array reference analysis for communication generation.

The paper's communication instance of GIVE-N-TAKE uses a "value number
based data flow universe" ([Han93]): each universe element is an *array
portion* identified by the value number of its (loop-normalized)
subscript.  This package provides:

* :mod:`repro.analysis.expr` — symbolic affine expressions and ranges
  over loop indices and parameters (``k + 10``, ``1:n``);
* :mod:`repro.analysis.sections` — section descriptors: affine sections
  ``x(11:n+10)``, indirect sections ``x(a(1:n))``, and single points
  ``x(5)``; two textually different references with the same normalized
  descriptor share a value number (``x(a(k))`` ≡ ``x(a(l))``);
* :mod:`repro.analysis.value_numbering` — normalization of AST array
  references against their loop context into section descriptors;
* :mod:`repro.analysis.references` — collection of all array reads and
  definitions of a program, attached to CFG nodes;
* :mod:`repro.analysis.ownership` — the distribution/ownership model
  deciding which references require communication.
"""

from repro.analysis.expr import SymExpr, SymRange, NonAffineError
from repro.analysis.sections import (
    AffineSection,
    IndirectSection,
    PointSection,
    section_conflicts,
)
from repro.analysis.value_numbering import ValueNumbering, LoopContext
from repro.analysis.references import ArrayAccess, collect_accesses
from repro.analysis.ownership import OwnershipModel

__all__ = [
    "SymExpr",
    "SymRange",
    "NonAffineError",
    "AffineSection",
    "IndirectSection",
    "PointSection",
    "section_conflicts",
    "ValueNumbering",
    "LoopContext",
    "ArrayAccess",
    "collect_accesses",
    "OwnershipModel",
]
