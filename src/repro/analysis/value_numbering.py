"""Normalization of array references into section descriptors.

Given a reference like ``x(a(k))`` inside ``do k = 1, n``, the subscript
is normalized against the loop context: the loop index is replaced by
its full range, yielding the descriptor ``x(a(1:n))``.  References that
normalize to the same descriptor share a value number — the basis of the
paper's subscript-value-number universe (``x(a(k))`` in the ``k`` loop
and ``x(a(l))`` in the ``l`` loop are recognized as identical).

Supported subscript shapes (everything appearing in the paper):

* affine in parameters and loop indices → Point/AffineSection,
* one level of indirection with an affine inner subscript
  (``y(a(i))``, ``y(b(k))``) → IndirectSection.

Anything else (e.g. nested indirection) falls back to a conservative
whole-array section.
"""

from dataclasses import dataclass

from repro.analysis.expr import NonAffineError, SymExpr, SymRange
from repro.analysis.sections import (
    AffineSection,
    IndirectSection,
    PointSection,
    _Substitution,
)
from repro.lang import ast
from repro.util.errors import AnalysisError


@dataclass(frozen=True)
class LoopContext:
    """The stack of enclosing loops, outermost first: (var, lo, hi)."""

    loops: tuple = ()

    @classmethod
    def from_loops(cls, loops):
        normalized = []
        for var, lo, hi in loops:
            normalized.append((
                var,
                lo if isinstance(lo, SymExpr) else SymExpr.from_ast(lo),
                hi if isinstance(hi, SymExpr) else SymExpr.from_ast(hi),
            ))
        return cls(tuple(normalized))

    def push(self, var, lo, hi):
        """Enter a loop.  Non-affine bounds (``do i = 1, x(3)``) are
        replaced by opaque bound symbols — the section stays symbolic
        but loses printable bounds, which is all we can do."""
        return LoopContext(self.loops + ((var, _bound(lo, f"__{var}_lo"),
                                          _bound(hi, f"__{var}_hi")),))

    def variables(self):
        return [var for var, _, _ in self.loops]


def _bound(expr, fallback_name):
    if isinstance(expr, SymExpr):
        return expr
    try:
        return SymExpr.from_ast(expr)
    except NonAffineError:
        return SymExpr.var(fallback_name)


class ValueNumbering:
    """Normalizes references and interns the resulting descriptors."""

    def __init__(self, symbols):
        self.symbols = symbols
        self._interned = {}

    def _intern(self, descriptor):
        return self._interned.setdefault(descriptor, descriptor)

    def whole_array(self, array):
        """The conservative whole-array descriptor."""
        size = self.symbols.arrays[array].size
        hi = SymExpr.from_ast(size) if size is not None else SymExpr.var("ubound")
        return self._intern(AffineSection(array, SymRange(SymExpr.number(1), hi)))

    def descriptor(self, ref, context):
        """Normalize ``ref`` (an :class:`ast.ArrayRef` into a declared
        array) against ``context``; return the interned descriptor."""
        if not isinstance(ref, ast.ArrayRef) or not self.symbols.is_array(ref.name):
            raise AnalysisError(f"{ref!r} is not a declared array reference")
        if len(ref.subscripts) != 1:
            return self._multi_descriptor(ref, context)
        subscript = ref.subscripts[0]

        inner = self._indirection(subscript)
        if inner is not None:
            index_array, inner_expr = inner
            rng, subs, origin = self._normalize(inner_expr, context)
            if rng is None:
                return self.whole_array(ref.name)
            return self._intern(
                IndirectSection(ref.name, index_array, rng, subs, origin))

        try:
            expr = SymExpr.from_ast(subscript)
        except NonAffineError:
            return self.whole_array(ref.name)
        rng, subs, origin = self._normalize(expr, context)
        if rng is None:
            return self.whole_array(ref.name)
        if rng.is_point:
            return self._intern(PointSection(ref.name, rng.lo))
        return self._intern(AffineSection(ref.name, rng, subs, origin))

    def _multi_descriptor(self, ref, context):
        """Normalize a multi-dimensional reference dimension by
        dimension; indirection is only supported in one dimension at a
        time (beyond that: conservative whole array)."""
        from repro.analysis.sections import MultiSection

        ranges = []
        subs = []
        origins = []
        seen_vars = set()
        for subscript in ref.subscripts:
            rng, dim_subs, origin = self._normalize(subscript, context)
            if rng is None:
                return self.whole_array(ref.name)
            ranges.append(rng)
            origins.append(origin)
            for sub in dim_subs:
                if sub.var not in seen_vars:
                    seen_vars.add(sub.var)
                    subs.append(sub)
        return self._intern(MultiSection(ref.name, tuple(ranges), tuple(subs),
                                         tuple(origins)))

    # -- helpers -----------------------------------------------------------

    def _indirection(self, subscript):
        """Detect ``index_array(expr)`` subscripts; return (name, expr)."""
        if (isinstance(subscript, ast.ArrayRef)
                and self.symbols.is_array(subscript.name)
                and len(subscript.subscripts) == 1):
            return subscript.name, subscript.subscripts[0]
        return None

    def _normalize(self, expr, context):
        """Substitute loop indices (innermost first) by their ranges.

        Returns (SymRange, substitution records, original expression),
        or (None, None, None) when a loop bound itself is not affine.
        """
        if isinstance(expr, ast.Expr):
            try:
                expr = SymExpr.from_ast(expr)
            except NonAffineError:
                return None, None, None
        origin = expr
        rng = SymRange(expr, expr)
        subs = []
        for var, lo, hi in reversed(context.loops):
            if var in rng.lo.variables or var in rng.hi.variables:
                rng = rng.substitute_range(var, lo, hi)
                subs.append(_Substitution(var, lo, hi))
        remaining = rng.lo.variables | rng.hi.variables
        loop_vars = set(context.variables())
        if remaining & loop_vars:
            return None, None, None  # a bound referenced an inner loop var
        return rng, tuple(subs), origin
