"""Distribution/ownership model.

Decides which accesses touch potentially *non-owned* data and therefore
participate in communication generation.  The paper deliberately keeps
name-space mapping out of GIVE-N-TAKE ([Han93]); we model the decision
interface:

* replicated arrays are always owned — no communication;
* distributed (block/cyclic) arrays are conservatively non-owned for
  reads (any processor may reference any portion);
* definitions of distributed arrays are non-owned unless the strict
  owner-computes rule is in force (``owner_computes=True``), in which
  case every definition executes at the owner and needs no write-back —
  but then local definitions also stop producing data "for free".
"""


class OwnershipModel:
    """Ownership decisions for one program's symbol table."""

    def __init__(self, symbols, owner_computes=False):
        self.symbols = symbols
        self.owner_computes = owner_computes

    def is_communicated_array(self, array):
        return self.symbols.is_distributed(array)

    def read_needs_communication(self, access):
        """A non-owned reference: must be satisfied by a READ (or a
        preceding local definition when not owner-computes)."""
        return not access.is_def and self.is_communicated_array(access.array)

    def def_needs_writeback(self, access):
        """A non-owned definition: must be sent back to the owner by a
        WRITE (AFTER problem)."""
        return (
            access.is_def
            and self.is_communicated_array(access.array)
            and not self.owner_computes
        )

    def def_gives_locally(self, access):
        """Whether a definition produces its portion "for free" for
        subsequent local reads (paper §3.1): yes without owner-computes
        — the defining processor holds the fresh values.  A *reduction*
        definition never gives: the local value is only a partial
        contribution, combined at the owner."""
        return (
            access.is_def
            and access.reduction is None
            and self.is_communicated_array(access.array)
            and not self.owner_computes
        )
