"""Section descriptors — the value-numbered universe elements.

A descriptor denotes the array portion a reference touches once its
subscript is normalized against the enclosing loops:

* ``PointSection('x', 5)`` — a loop-invariant element ``x(5)``;
* ``AffineSection('x', 11:n+10)`` — ``x(k+10)`` inside ``do k = 1, n``;
* ``IndirectSection('x', 'a', 1:n)`` — ``x(a(k))`` inside the same loop.

Descriptors are frozen and hashable: *the descriptor is the value
number*.  ``x(a(k))`` and ``x(a(l))`` over equal loop ranges normalize
to the same descriptor, which is how the paper's Figure 2 merges them.

Each descriptor remembers the loop substitutions that produced it
(``subs``: var → range) so the annotator can print partial sections like
``y(a(1:i))`` when production lands on a jump landing pad (Figure 14).
"""

from dataclasses import dataclass, field

from repro.analysis.expr import SymExpr, SymRange


def _format_range(rng, partial_vars, subs):
    """Render ``rng``, narrowing substituted ranges to ``lo:var`` for
    loops in ``partial_vars`` (early exit: only iterations up to the
    current index value completed)."""
    for sub in subs:
        if sub.var in partial_vars and rng == sub.full:
            return f"{sub.lo}:{sub.var}"
    return str(rng)


def _renders_locally(subs, origin, local_vars):
    """Whether the descriptor can be printed in its original per-
    iteration form: it has loop substitutions, all of their loops
    enclose the placement point, and the original subscript is known."""
    return (bool(subs) and origin is not None
            and all(sub.var in local_vars for sub in subs))


@dataclass(frozen=True)
class _Substitution:
    """Records that a loop variable was replaced by its range."""

    var: str
    lo: SymExpr
    hi: SymExpr

    @property
    def full(self):
        return SymRange(self.lo, self.hi)


@dataclass(frozen=True)
class PointSection:
    """A single, loop-invariant element ``array(index)``."""

    array: str
    index: SymExpr

    @property
    def subs(self):
        return ()

    def format(self, partial_vars=frozenset(), local_vars=frozenset()):
        return f"{self.array}({self.index})"

    def size(self, env):
        return 1

    def __str__(self):
        return self.format()


@dataclass(frozen=True)
class AffineSection:
    """A dense affine portion ``array(lo:hi)``.

    ``origin`` keeps the pre-normalization subscript (``k + 10``) so the
    annotator can print the per-iteration form when the production stays
    inside the substituted loops."""

    array: str
    range: SymRange
    subs: tuple = field(default=(), compare=False)
    origin: SymExpr = field(default=None, compare=False)

    def format(self, partial_vars=frozenset(), local_vars=frozenset()):
        if _renders_locally(self.subs, self.origin, local_vars):
            return f"{self.array}({self.origin})"
        return f"{self.array}({_format_range(self.range, partial_vars, self.subs)})"

    def size(self, env):
        return self.range.size(env)

    def __str__(self):
        return self.format()


@dataclass(frozen=True)
class IndirectSection:
    """An indirect portion ``array(index_array(lo:hi))``.

    The touched elements are unknown at compile time; the descriptor is
    identified by the indirection array and the range fed to it.
    """

    array: str
    index_array: str
    range: SymRange
    subs: tuple = field(default=(), compare=False)
    origin: SymExpr = field(default=None, compare=False)

    def format(self, partial_vars=frozenset(), local_vars=frozenset()):
        if _renders_locally(self.subs, self.origin, local_vars):
            return f"{self.array}({self.index_array}({self.origin}))"
        inner = _format_range(self.range, partial_vars, self.subs)
        return f"{self.array}({self.index_array}({inner}))"

    def size(self, env):
        return self.range.size(env)

    def __str__(self):
        return self.format()


@dataclass(frozen=True)
class MultiSection:
    """A multi-dimensional portion ``array(r1, r2, …)`` where each
    dimension is a :class:`SymRange` (possibly a point).

    Two multi-sections are disjoint when *any* dimension is provably
    disjoint — multi-dimensionality strengthens the §6 refinement.
    """

    array: str
    ranges: tuple
    subs: tuple = field(default=(), compare=False)
    origins: tuple = field(default=None, compare=False)

    def format(self, partial_vars=frozenset(), local_vars=frozenset()):
        if (self.origins is not None and self.subs
                and all(sub.var in local_vars for sub in self.subs)):
            inner = ", ".join(str(origin) for origin in self.origins)
            return f"{self.array}({inner})"
        inner = ", ".join(
            _format_range(rng, partial_vars, self.subs) for rng in self.ranges
        )
        return f"{self.array}({inner})"

    def size(self, env):
        total = 1
        for rng in self.ranges:
            total *= rng.size(env)
        return total

    def __str__(self):
        return self.format()


def section_conflicts(a, b, refine=True):
    """Whether two descriptors may overlap in memory.

    Conservative by default: portions of the same array conflict unless
    provably disjoint.  With ``refine=True`` (the paper's §6
    dependence-analysis refinement of the initial variables), symbolic
    disjointness is attempted too: ``x(1:n)`` and ``x(n+1:2*n)`` are
    disjoint because ``hi₁ − lo₂`` is a negative constant.
    """
    if a.array != b.array:
        return False
    if not refine:
        return True
    if isinstance(a, MultiSection) and isinstance(b, MultiSection):
        if len(a.ranges) == len(b.ranges):
            # disjoint in any one dimension -> no overlap
            return not any(
                _ranges_disjoint(ra, rb)
                for ra, rb in zip(a.ranges, b.ranges)
            )
        return True
    range_a, range_b = _section_range(a), _section_range(b)
    if range_a is not None and range_b is not None and _ranges_disjoint(
            range_a, range_b):
        return False
    return True


def _ranges_disjoint(a, b):
    return _provably_less(a.hi, b.lo) or _provably_less(b.hi, a.lo)


def _section_range(section):
    """A SymRange view of dense sections (None for indirect ones, whose
    touched elements are unknown)."""
    if isinstance(section, PointSection):
        return SymRange(section.index, section.index)
    if isinstance(section, AffineSection):
        return section.range
    return None


def _provably_less(a, b):
    """True when ``a < b`` holds for every variable assignment — i.e.
    ``a − b`` is a negative constant."""
    difference = a - b
    return difference.is_constant and difference.const < 0
