"""Collection of array accesses, attached to flow-graph nodes."""

from dataclasses import dataclass

from repro.analysis.value_numbering import LoopContext, ValueNumbering
from repro.lang import ast
from repro.lang.symbols import SymbolTable


@dataclass
class ArrayAccess:
    """One array read or definition.

    ``node`` is the CFG node of the statement, ``ref`` the AST
    reference, ``descriptor`` its normalized section (the value number),
    ``is_def`` whether the access writes the array, ``context`` the loop
    context the reference sits in, and ``reduction`` names the reduction
    operation when the definition is an accumulation like
    ``y(b(k)) = y(b(k)) + …`` (the old value is then combined at the
    owner instead of being fetched).
    """

    node: object
    array: str
    ref: object
    descriptor: object
    is_def: bool
    context: LoopContext
    reduction: str = None

    def __repr__(self):
        kind = f"reduce-{self.reduction}" if self.reduction else (
            "def" if self.is_def else "ref")
        return f"<{kind} {self.descriptor} at {self.node}>"


#: operators recognized as reductions in ``x(i) = x(i) <op> expr``
REDUCTION_OPS = {"+": "sum", "*": "prod"}


def detect_reduction(stmt):
    """If ``stmt`` is an accumulating assignment ``T = T op expr`` (or
    ``T = expr op T`` for commutative op), return the reduction name."""
    if not isinstance(stmt, ast.Assign) or not isinstance(stmt.target, ast.ArrayRef):
        return None
    value = stmt.value
    if not isinstance(value, ast.BinOp) or value.op not in REDUCTION_OPS:
        return None
    if value.left == stmt.target or value.right == stmt.target:
        return REDUCTION_OPS[value.op]
    return None


def collect_accesses(analyzed, symbols=None, numbering=None):
    """All array accesses of an analyzed program, in statement order.

    ``analyzed`` is a :class:`repro.testing.programs.AnalyzedProgram`
    (any object with ``program`` and ``ifg``).  Returns
    (accesses, value_numbering).
    """
    if symbols is None:
        symbols = SymbolTable.from_program(analyzed.program)
    if numbering is None:
        numbering = ValueNumbering(symbols)

    # A statement usually has one node, but node splitting ([CM69]) may
    # duplicate it — every copy must carry the statement's accesses.
    nodes_of = {}
    for node in analyzed.ifg.real_nodes():
        if node.stmt is not None:
            nodes_of.setdefault(id(node.stmt), []).append(node)

    accesses = []
    _walk(analyzed.program.executables(), LoopContext(), nodes_of, symbols,
          numbering, accesses)
    return accesses, numbering


def _walk(body, context, nodes_of, symbols, numbering, out):
    for stmt in body:
        nodes = nodes_of.get(id(stmt), [])
        if isinstance(stmt, ast.Do):
            _exprs(stmt.lo, nodes, context, symbols, numbering, out, False)
            _exprs(stmt.hi, nodes, context, symbols, numbering, out, False)
            inner = context.push(stmt.var, stmt.lo, stmt.hi)
            _walk(stmt.body, inner, nodes_of, symbols, numbering, out)
        elif isinstance(stmt, ast.If):
            _exprs(stmt.cond, nodes, context, symbols, numbering, out, False)
            _walk(stmt.then_body, context, nodes_of, symbols, numbering, out)
            _walk(stmt.else_body, context, nodes_of, symbols, numbering, out)
        elif isinstance(stmt, ast.IfGoto):
            _exprs(stmt.cond, nodes, context, symbols, numbering, out, False)
        elif isinstance(stmt, ast.Assign):
            reduction = detect_reduction(stmt)
            if isinstance(stmt.target, ast.ArrayRef) and symbols.is_array(stmt.target.name):
                for node in nodes:
                    out.append(_access(stmt.target, node, context, symbols,
                                       numbering, is_def=True,
                                       reduction=reduction))
                # subscripts of the target are themselves reads
                for sub in stmt.target.subscripts:
                    _exprs(sub, nodes, context, symbols, numbering, out, False)
            if reduction is not None:
                # The old value is combined at the owner; only the
                # non-target operand of the accumulation is a read here.
                value = stmt.value
                other = value.right if value.left == stmt.target else value.left
                _exprs(other, nodes, context, symbols, numbering, out, False)
            else:
                _exprs(stmt.value, nodes, context, symbols, numbering, out, False)


def _exprs(expr, nodes, context, symbols, numbering, out, is_def):
    for sub in ast.walk_expressions(expr):
        if isinstance(sub, ast.ArrayRef) and symbols.is_array(sub.name):
            for node in nodes:
                out.append(_access(sub, node, context, symbols, numbering,
                                   is_def))


def _access(ref, node, context, symbols, numbering, is_def, reduction=None):
    descriptor = numbering.descriptor(ref, context)
    return ArrayAccess(node, ref.name, ref, descriptor, is_def, context,
                       reduction)
