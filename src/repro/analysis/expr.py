"""Symbolic affine expressions over loop indices and parameters.

A :class:`SymExpr` is a linear combination ``c0 + c1*v1 + c2*v2 + …``
with integer coefficients, enough to model every subscript in the
paper's examples (``k + 10``, ``j + 5``, ``i``).  Anything beyond that
(products of variables, division) raises :class:`NonAffineError` and is
handled conservatively by the callers.
"""

from repro.lang import ast
from repro.util.errors import AnalysisError


class NonAffineError(AnalysisError):
    """The expression is not affine in its variables."""


class SymExpr:
    """An affine symbolic expression: ``const + Σ coeffs[var] * var``."""

    __slots__ = ("const", "coeffs")

    def __init__(self, const=0, coeffs=None):
        self.const = const
        self.coeffs = {v: c for v, c in (coeffs or {}).items() if c != 0}

    # -- constructors ----------------------------------------------------

    @classmethod
    def number(cls, value):
        return cls(const=value)

    @classmethod
    def var(cls, name):
        return cls(coeffs={name: 1})

    @classmethod
    def from_ast(cls, expr):
        """Build from an AST expression; raise NonAffineError otherwise."""
        if isinstance(expr, ast.Num):
            return cls.number(expr.value)
        if isinstance(expr, ast.Var):
            return cls.var(expr.name)
        if isinstance(expr, ast.BinOp):
            if expr.op == "+":
                return cls.from_ast(expr.left) + cls.from_ast(expr.right)
            if expr.op == "-":
                return cls.from_ast(expr.left) - cls.from_ast(expr.right)
            if expr.op == "*":
                left, right = cls.from_ast(expr.left), cls.from_ast(expr.right)
                if left.is_constant:
                    return right.scaled(left.const)
                if right.is_constant:
                    return left.scaled(right.const)
                raise NonAffineError(f"product of variables: {expr}")
            raise NonAffineError(f"operator {expr.op!r} is not affine")
        raise NonAffineError(f"cannot analyze {expr!r}")

    # -- algebra ------------------------------------------------------------

    def __add__(self, other):
        coeffs = dict(self.coeffs)
        for var, coeff in other.coeffs.items():
            coeffs[var] = coeffs.get(var, 0) + coeff
        return SymExpr(self.const + other.const, coeffs)

    def __sub__(self, other):
        return self + other.scaled(-1)

    def scaled(self, factor):
        return SymExpr(self.const * factor,
                       {v: c * factor for v, c in self.coeffs.items()})

    def shifted(self, delta):
        return SymExpr(self.const + delta, self.coeffs)

    # -- queries -------------------------------------------------------------

    @property
    def is_constant(self):
        return not self.coeffs

    @property
    def variables(self):
        return set(self.coeffs)

    def coefficient(self, var):
        return self.coeffs.get(var, 0)

    def substitute(self, var, replacement):
        """Replace ``var`` by another :class:`SymExpr`."""
        coeff = self.coeffs.get(var, 0)
        if coeff == 0:
            return self
        rest = SymExpr(self.const, {v: c for v, c in self.coeffs.items() if v != var})
        return rest + replacement.scaled(coeff)

    def substitute_range(self, var, lo, hi):
        """Replace ``var`` ranging over [lo, hi] by the induced
        :class:`SymRange` (monotone in affine expressions)."""
        coeff = self.coeffs.get(var, 0)
        if coeff == 0:
            return SymRange(self, self)
        low = self.substitute(var, lo if coeff > 0 else hi)
        high = self.substitute(var, hi if coeff > 0 else lo)
        return SymRange(low, high)

    def evaluate(self, env):
        """Concrete value under ``env`` (dict var -> int)."""
        value = self.const
        for var, coeff in self.coeffs.items():
            if var not in env:
                raise AnalysisError(f"unbound variable {var!r}")
            value += coeff * env[var]
        return value

    # -- identity / printing ---------------------------------------------------

    def _key(self):
        return (self.const, tuple(sorted(self.coeffs.items())))

    def __eq__(self, other):
        return isinstance(other, SymExpr) and self._key() == other._key()

    def __hash__(self):
        return hash(self._key())

    def __str__(self):
        parts = []
        for var, coeff in sorted(self.coeffs.items()):
            if coeff == 1:
                parts.append(var)
            elif coeff == -1:
                parts.append(f"-{var}")
            else:
                parts.append(f"{coeff}*{var}")
        if self.const or not parts:
            parts.append(str(self.const))
        text = " + ".join(parts)
        return text.replace("+ -", "- ")

    def __repr__(self):
        return f"SymExpr({self})"


class SymRange:
    """A symbolic inclusive range ``lo:hi``."""

    __slots__ = ("lo", "hi")

    def __init__(self, lo, hi):
        self.lo = lo
        self.hi = hi

    @property
    def is_point(self):
        return self.lo == self.hi

    def substitute_range(self, var, lo, hi):
        return SymRange(self.lo.substitute_range(var, lo, hi).lo,
                        self.hi.substitute_range(var, lo, hi).hi)

    def size(self, env):
        """Number of elements under concrete bindings (>= 0)."""
        return max(0, self.hi.evaluate(env) - self.lo.evaluate(env) + 1)

    def _key(self):
        return (self.lo._key(), self.hi._key())

    def __eq__(self, other):
        return isinstance(other, SymRange) and self._key() == other._key()

    def __hash__(self):
        return hash(self._key())

    def __str__(self):
        if self.is_point:
            return str(self.lo)
        return f"{self.lo}:{self.hi}"

    def __repr__(self):
        return f"SymRange({self})"
