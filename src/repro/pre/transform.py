"""Applying PRE results to the program: common-subexpression elimination
as an actual AST transformation.

The GIVE-N-TAKE LAZY solution gives the evaluation points; this pass
splices ``__cseK = <expr>`` assignments there and rewrites every
consumer to use the temporary.  Sufficiency (C3) guarantees each
rewritten occurrence is dominated by an evaluation on every path, and
balance keeps the temporaries single-assignment per region.
"""

from repro.commgen.annotate import Annotator
from repro.core.placement import Placement
from repro.core.problem import Timing
from repro.core.solver import solve
from repro.lang import ast
from repro.lang.printer import format_expr, format_program
from repro.pre.expressions import build_cse_problem


class CSEResult:
    """The transformed program plus bookkeeping."""

    def __init__(self, analyzed, problem, placement, temporaries):
        self.analyzed = analyzed
        self.problem = problem
        self.placement = placement
        self.temporaries = temporaries  # expression text -> temp name

    @property
    def transformed_program(self):
        return self.analyzed.program

    def transformed_source(self):
        return format_program(self.analyzed.program)

    def evaluation_sites(self, text):
        from repro.pre.gnt_pre import lazy_insertion_nodes

        return lazy_insertion_nodes(self.placement, text)


def eliminate_common_subexpressions(analyzed):
    """Run GIVE-N-TAKE CSE over ``analyzed`` and rewrite its program.

    Returns a :class:`CSEResult`; the analyzed program is mutated (parse
    a fresh copy if the original must be kept).
    """
    problem, operands = build_cse_problem(analyzed)
    solution = solve(analyzed.ifg, problem)
    placement = Placement(analyzed.ifg, problem, solution)

    # Collect a rebuildable AST template per expression text.
    templates = _expression_templates(analyzed.program)

    temporaries = {}
    annotator = Annotator(analyzed)
    for index, text in enumerate(problem.universe):
        temporaries[text] = f"__cse{index}"

    # Insert evaluations at the LAZY production sites...
    for production in placement.productions(Timing.LAZY):
        for text in production.elements:
            template = templates.get(text)
            if template is None:
                continue
            assignment = ast.Assign(ast.Var(temporaries[text]), template)
            annotator.place_statement(production.node, production.position,
                                      assignment)

    # ... then rewrite consumers (the newly inserted assignments keep
    # their original right-hand sides: they ARE the evaluations).
    inserted = {
        id(stmt) for stmt in ast.walk_statements(analyzed.program.body)
        if isinstance(stmt, ast.Assign) and isinstance(stmt.target, ast.Var)
        and stmt.target.name.startswith("__cse")
    }
    _rewrite_consumers(analyzed.program.body, temporaries, inserted)
    return CSEResult(analyzed, problem, placement, temporaries)


def eliminate_with_lcm(analyzed):
    """The same CSE transformation driven by Lazy Code Motion.

    LCM's INSERT points get ``__lcmK = expr`` assignments, DELETE'd uses
    are rewritten to the temporary, and kept computations are split into
    ``__lcmK = expr`` + use (the temporary is the canonical value).
    Useful for semantic cross-validation against the GIVE-N-TAKE
    transform: both must preserve program meaning.
    """
    from repro.core.placement import Position
    from repro.pre.lazy_code_motion import lazy_code_motion

    problem, _ = build_cse_problem(analyzed)
    lcm = lazy_code_motion(analyzed.ifg, problem)
    templates = _expression_templates(analyzed.program)
    universe = problem.universe

    temporaries = {text: f"__lcm{index}"
                   for index, text in enumerate(universe)}

    annotator = Annotator(analyzed)
    # insertions at the projected nodes
    for node, bits in lcm.insert_nodes.items():
        for text in universe.members(bits):
            template = templates.get(text)
            if template is None:
                continue
            annotator.place_statement(
                node, Position.BEFORE,
                ast.Assign(ast.Var(temporaries[text]), template))

    # kept computations become explicit temp definitions; rewrite only
    # expressions that are inserted somewhere or deleted somewhere
    transformable = 0
    for bits in lcm.insert_nodes.values():
        transformable |= bits
    for bits in lcm.delete_nodes.values():
        transformable |= bits
    kept = {}  # node -> bits still computed there
    for node in analyzed.ifg.real_nodes():
        used = problem.take_init(node)
        keep = used & ~lcm.delete_nodes.get(node, 0) & transformable
        if keep:
            template_stmts = []
            for text in universe.members(keep):
                template = templates.get(text)
                if template is not None:
                    template_stmts.append(
                        ast.Assign(ast.Var(temporaries[text]), template))
            for stmt in reversed(template_stmts):
                annotator.place_statement(node, Position.BEFORE, stmt)

    rewrite_names = {
        text: name for text, name in temporaries.items()
        if universe.bit(text) & transformable
    }
    inserted = {
        id(stmt) for stmt in ast.walk_statements(analyzed.program.body)
        if isinstance(stmt, ast.Assign) and isinstance(stmt.target, ast.Var)
        and stmt.target.name.startswith("__lcm")
    }
    _rewrite_consumers(analyzed.program.body, rewrite_names, inserted)
    return CSEResult(analyzed, problem, None, temporaries)


def _expression_templates(program):
    templates = {}
    for stmt in ast.walk_statements(program.body):
        for expr in ast.statement_expressions(stmt):
            if expr is None:
                continue
            for sub in ast.walk_expressions(expr):
                if isinstance(sub, ast.BinOp):
                    templates.setdefault(format_expr(sub), sub)
    return templates


def _rewrite_consumers(body, temporaries, inserted):
    for stmt in body:
        if id(stmt) in inserted:
            continue
        if isinstance(stmt, ast.Assign):
            stmt.value = _rewrite_expr(stmt.value, temporaries)
            if isinstance(stmt.target, ast.ArrayRef):
                stmt.target = _rewrite_expr(stmt.target, temporaries,
                                            top_level_array=True)
        elif isinstance(stmt, ast.Do):
            stmt.lo = _rewrite_expr(stmt.lo, temporaries)
            stmt.hi = _rewrite_expr(stmt.hi, temporaries)
            _rewrite_consumers(stmt.body, temporaries, inserted)
        elif isinstance(stmt, ast.If):
            stmt.cond = _rewrite_expr(stmt.cond, temporaries)
            _rewrite_consumers(stmt.then_body, temporaries, inserted)
            _rewrite_consumers(stmt.else_body, temporaries, inserted)
        elif isinstance(stmt, ast.IfGoto):
            stmt.cond = _rewrite_expr(stmt.cond, temporaries)


def _rewrite_expr(expr, temporaries, top_level_array=False):
    if isinstance(expr, ast.BinOp):
        text = format_expr(expr)
        if text in temporaries:
            return ast.Var(temporaries[text])
        return ast.BinOp(expr.op,
                         _rewrite_expr(expr.left, temporaries),
                         _rewrite_expr(expr.right, temporaries))
    if isinstance(expr, ast.ArrayRef):
        subscripts = tuple(_rewrite_expr(s, temporaries)
                           for s in expr.subscripts)
        return ast.ArrayRef(expr.name, subscripts)
    return expr
