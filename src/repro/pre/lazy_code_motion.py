"""Lazy Code Motion (Knoop, Rüthing, Steffen, PLDI '92).

The edge-based formulation as presented by Drechsler/Stadel and
Muchnick, run over the real edges of our (critical-edge-free) CFG:

* down-safety:    ANTIN/ANTOUT   (backward, intersection)
* availability:   AVIN/AVOUT     (forward, intersection)
* earliestness:   EARLIEST(i,j) = ANTIN(j) ∩ ¬AVOUT(i)
                                 ∩ (KILL(i) ∪ ¬ANTOUT(i))
* deferral:       LATER/LATERIN  (forward)
* placement:      INSERT(i,j) = LATER(i,j) ∩ ¬LATERIN(j)
                  DELETE(k)   = USED(k) ∩ ¬LATERIN(k)

Because the graph has no critical edges, every edge insertion projects
onto a node: the head when it has a single predecessor, else the tail
(which then has a single successor).

Unlike GIVE-N-TAKE, LCM is an *atomic* placement framework (single
insertion points, no production regions), it has no notion of side
effects (gives), and its safety discipline never hoists out of a
potentially zero-trip loop.
"""

class LCMResult:
    """Insertions and deletions computed by LCM."""

    def __init__(self, universe, insert_edges, insert_nodes, delete_nodes,
                 variables):
        self.universe = universe
        self.insert_edges = insert_edges  # {(src, dst): bits}
        self.insert_nodes = insert_nodes  # {node: bits} (projected)
        self.delete_nodes = delete_nodes  # {node: bits}
        self.variables = variables        # name -> {node: bits}

    def insertion_count(self):
        return sum(
            bin(bits).count("1") for bits in self.insert_edges.values()
        )

    def insertions_for(self, element):
        bit = self.universe.bit(element)
        return [edge for edge, bits in self.insert_edges.items() if bits & bit]

    def node_insertions_for(self, element):
        bit = self.universe.bit(element)
        return [node for node, bits in self.insert_nodes.items() if bits & bit]


def lazy_code_motion(ifg, problem):
    """Run LCM for ``problem`` (take=use, steal=kill) on ``ifg``'s CFG."""
    cfg = ifg.cfg
    universe = problem.universe
    nodes = cfg.nodes()
    top = universe.top

    used = {n: problem.take_init(n) for n in nodes}
    kill = {n: problem.steal_init(n) for n in nodes}
    # Node granularity: a use precedes a kill in the same node, so the
    # expression is computed but not available at the node's exit.
    comp = {n: used[n] & ~kill[n] for n in nodes}

    # -- down-safety (anticipability), backward ---------------------------
    antin = {n: 0 for n in nodes}
    antout = {n: 0 for n in nodes}
    changed = True
    while changed:
        changed = False
        for n in reversed(nodes):
            succs = cfg.succs(n)
            new_out = _meet(antin[s] for s in succs) if succs else 0
            new_in = used[n] | (new_out & ~kill[n])
            if new_out != antout[n] or new_in != antin[n]:
                antout[n], antin[n] = new_out, new_in
                changed = True

    # -- availability, forward ---------------------------------------------
    avin = {n: 0 for n in nodes}
    avout = {n: top for n in nodes}
    avout[cfg.entry] = comp[cfg.entry]
    changed = True
    while changed:
        changed = False
        for n in nodes:
            preds = cfg.preds(n)
            new_in = _meet(avout[p] for p in preds) if preds else 0
            new_out = (new_in | comp[n]) & ~kill[n]
            if new_in != avin[n] or new_out != avout[n]:
                avin[n], avout[n] = new_in, new_out
                changed = True

    # -- earliestness per edge (Drechsler-Stadel form) ------------------------
    # A pseudo edge (START, entry) lets expressions that are down-safe at
    # the program entry be inserted there.
    START = None
    edges = [(START, cfg.entry)] + cfg.edges()
    earliest = {}
    for i, j in edges:
        if i is START:
            earliest[(i, j)] = antin[j]
        else:
            earliest[(i, j)] = antin[j] & ~avout[i] & (kill[i] | ~antin[i])

    # -- deferral (later), forward ----------------------------------------------
    laterin = {n: top for n in nodes}
    later = {edge: top for edge in edges}
    changed = True
    while changed:
        changed = False
        for i, j in edges:
            if i is START:
                new_later = earliest[(i, j)]
            else:
                new_later = earliest[(i, j)] | (laterin[i] & ~used[i])
            if new_later != later[(i, j)]:
                later[(i, j)] = new_later
                changed = True
        for n in nodes:
            incoming = [(p, n) for p in cfg.preds(n)]
            if n is cfg.entry:
                incoming.append((START, n))
            new_in = _meet(later[edge] for edge in incoming) if incoming else 0
            if new_in != laterin[n]:
                laterin[n] = new_in
                changed = True

    # -- insert / delete ------------------------------------------------------
    insert_edges = {}
    for edge in edges:
        bits = later[edge] & ~laterin[edge[1]]
        if bits:
            insert_edges[edge] = bits
    delete_nodes = {}
    for n in nodes:
        deletable = used[n] & ~laterin[n]
        if deletable:
            delete_nodes[n] = deletable

    insert_nodes = {}
    for (i, j), bits in insert_edges.items():
        if i is None or len(cfg.preds(j)) == 1:
            target = j
        else:
            target = i
        insert_nodes[target] = insert_nodes.get(target, 0) | bits

    variables = {
        "ANTIN": antin, "ANTOUT": antout,
        "AVIN": avin, "AVOUT": avout,
        "LATERIN": laterin,
    }
    return LCMResult(universe, insert_edges, insert_nodes, delete_nodes,
                     variables)


def _meet(values):
    result = None
    for value in values:
        result = value if result is None else (result & value)
    return 0 if result is None else result
