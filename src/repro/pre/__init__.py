"""Classical partial redundancy elimination baselines.

GIVE-N-TAKE generalizes PRE (a LAZY, BEFORE problem); these are the
frameworks the paper positions itself against:

* :mod:`repro.pre.morel_renvoise` — the original bidirectional MR79
  system;
* :mod:`repro.pre.lazy_code_motion` — Knoop/Rüthing/Steffen LCM (KRS92),
  edge-based, on our critical-edge-free graphs;
* :mod:`repro.pre.gnt_pre` — the same instances solved by GIVE-N-TAKE,
  for head-to-head comparison (insertions, evaluations per path,
  zero-trip hoisting, side-effect exploitation);
* :mod:`repro.pre.expressions` — building PRE instances (used/killed
  expression sets) from mini-Fortran programs for common-subexpression
  elimination.

Both baselines consume the same :class:`repro.core.problem.Problem`
shape: ``take_init`` = locally anticipated use, ``steal_init`` = kill.
``give_init`` has no classical counterpart — exploiting side effects
without separate equation systems is one of the paper's contributions —
so the baselines ignore it.
"""

from repro.pre.lazy_code_motion import LCMResult, lazy_code_motion
from repro.pre.morel_renvoise import MorelRenvoiseResult, morel_renvoise
from repro.pre.gnt_pre import gnt_pre_placement
from repro.pre.expressions import build_cse_problem
from repro.pre.transform import (CSEResult, eliminate_common_subexpressions,
                                 eliminate_with_lcm)

__all__ = [
    "LCMResult",
    "lazy_code_motion",
    "MorelRenvoiseResult",
    "morel_renvoise",
    "gnt_pre_placement",
    "build_cse_problem",
    "CSEResult",
    "eliminate_common_subexpressions",
    "eliminate_with_lcm",
]
