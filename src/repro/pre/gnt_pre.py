"""PRE via GIVE-N-TAKE.

Classical PRE is a LAZY, BEFORE instance of the framework (§1): the LAZY
solution gives the single evaluation points classical PRE would insert,
while the EAGER solution additionally marks the earliest points the
operands are ready — the production *region* in between is what makes
GIVE-N-TAKE useful for latency hiding (e.g. issuing a prefetch at the
EAGER point and using the value at the LAZY point).
"""

from repro.core.placement import Placement
from repro.core.solver import solve


def gnt_pre_placement(ifg, problem):
    """Solve a PRE instance with GIVE-N-TAKE; return the placement."""
    solution = solve(ifg, problem)
    return Placement(ifg, problem, solution)


def lazy_insertion_nodes(placement, element):
    """The LAZY production sites of ``element`` — comparable to
    LCM/Morel-Renvoise insertion points."""
    from repro.core.problem import Timing

    return [
        production.node
        for production in placement.productions(Timing.LAZY)
        if element in production.elements
    ]


def evaluations_on_path(placement, problem, path, ifg):
    """How many productions (expression evaluations) the LAZY solution
    executes along ``path`` — the dynamic cost PRE minimizes."""
    from repro.core.placement import Position
    from repro.core.problem import Timing
    from repro.graph.interval_graph import EdgeType

    count = 0
    for index, node in enumerate(path):
        if index > 0 and ifg.edge_type(path[index - 1], node) is EdgeType.CYCLE:
            continue
        bits = placement.bits_at(node, Position.BEFORE, Timing.LAZY)
        count += bin(bits).count("1")
        if index + 1 < len(path):
            edge = ifg.edge_type(node, path[index + 1])
            if edge in (EdgeType.FORWARD, EdgeType.JUMP):
                bits = placement.bits_at(node, Position.AFTER, Timing.LAZY)
                count += bin(bits).count("1")
    return count
