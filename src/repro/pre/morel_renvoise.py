"""Morel & Renvoise's original PRE (CACM 1979).

The classical bidirectional system over basic blocks:

* local predicates: ANTLOC (used), TRANSP (not killed), COMP (computed
  and available at exit);
* availability AVIN/AVOUT and partial availability PAVIN/PAVOUT;
* anticipability ANTIN/ANTOUT;
* placement possibility::

      PPOUT(i) = ⋂_{s ∈ succ(i)} PPIN(s)                    (∅ at exit)
      PPIN(i)  = ANTIN(i) ∩ PAVIN(i)
               ∩ (ANTLOC(i) ∪ (TRANSP(i) ∩ PPOUT(i)))
               ∩ ⋂_{p ∈ pred(i)} (PPOUT(p) ∪ AVOUT(p))
      INSERT(i) = PPOUT(i) ∩ ¬AVOUT(i) ∩ (¬PPIN(i) ∪ ¬TRANSP(i))
      DELETE(i) = ANTLOC(i) ∩ PPIN(i)

solved by iteration to the greatest fixed point.  This is the framework
whose limitations (atomicity, bidirectionality, no loop awareness, no
side effects) motivated both LCM and GIVE-N-TAKE.
"""


class MorelRenvoiseResult:
    """INSERT/DELETE sets per node."""

    def __init__(self, universe, insert_nodes, delete_nodes, variables):
        self.universe = universe
        self.insert_nodes = insert_nodes
        self.delete_nodes = delete_nodes
        self.variables = variables

    def insertion_count(self):
        return sum(bin(bits).count("1") for bits in self.insert_nodes.values())

    def node_insertions_for(self, element):
        bit = self.universe.bit(element)
        return [node for node, bits in self.insert_nodes.items() if bits & bit]


def morel_renvoise(ifg, problem, max_iterations=200):
    """Run Morel-Renvoise PRE for ``problem`` on ``ifg``'s CFG."""
    cfg = ifg.cfg
    universe = problem.universe
    nodes = cfg.nodes()
    top = universe.top

    antloc = {n: problem.take_init(n) for n in nodes}
    kill = {n: problem.steal_init(n) for n in nodes}
    transp = {n: top & ~kill[n] for n in nodes}
    comp = {n: antloc[n] & transp[n] for n in nodes}

    # availability (forward, must)
    avin, avout = _forward(cfg, nodes, comp, transp, meet_all=True)
    # partial availability (forward, may)
    pavin, pavout = _forward(cfg, nodes, comp, transp, meet_all=False)
    # anticipability (backward, must)
    antin, antout = _backward(cfg, nodes, antloc, transp)

    ppin = {n: top for n in nodes}
    ppout = {n: top for n in nodes}
    for _ in range(max_iterations):
        changed = False
        for n in reversed(nodes):
            succs = cfg.succs(n)
            new_ppout = _meet([ppin[s] for s in succs]) if succs else 0
            preds = cfg.preds(n)
            pred_term = (
                _meet([ppout[p] | avout[p] for p in preds]) if preds else top
            )
            new_ppin = (
                antin[n] & pavin[n]
                & (antloc[n] | (transp[n] & new_ppout))
                & pred_term
            )
            if new_ppout != ppout[n] or new_ppin != ppin[n]:
                ppout[n], ppin[n] = new_ppout, new_ppin
                changed = True
        if not changed:
            break

    insert_nodes = {}
    delete_nodes = {}
    for n in nodes:
        insert = ppout[n] & ~avout[n] & (~ppin[n] | ~transp[n])
        if insert:
            insert_nodes[n] = insert
        delete = antloc[n] & ppin[n]
        if delete:
            delete_nodes[n] = delete

    variables = {
        "AVIN": avin, "AVOUT": avout, "PAVIN": pavin, "PAVOUT": pavout,
        "ANTIN": antin, "ANTOUT": antout, "PPIN": ppin, "PPOUT": ppout,
    }
    return MorelRenvoiseResult(universe, insert_nodes, delete_nodes, variables)


def _forward(cfg, nodes, comp, transp, meet_all):
    top = max(transp.values(), default=0)
    into = {n: 0 for n in nodes}
    out = {n: comp[n] for n in nodes}
    changed = True
    while changed:
        changed = False
        for n in nodes:
            preds = cfg.preds(n)
            if not preds:
                new_in = 0
            elif meet_all:
                new_in = _meet([out[p] for p in preds])
            else:
                new_in = _join([out[p] for p in preds])
            new_out = comp[n] | (new_in & transp[n])
            if new_in != into[n] or new_out != out[n]:
                into[n], out[n] = new_in, new_out
                changed = True
    return into, out


def _backward(cfg, nodes, antloc, transp):
    into = {n: antloc[n] for n in nodes}
    out = {n: 0 for n in nodes}
    changed = True
    while changed:
        changed = False
        for n in reversed(nodes):
            succs = cfg.succs(n)
            new_out = _meet([into[s] for s in succs]) if succs else 0
            new_in = antloc[n] | (new_out & transp[n])
            if new_out != out[n] or new_in != into[n]:
                out[n], into[n] = new_out, new_in
                changed = True
    return into, out


def _meet(values):
    result = None
    for value in values:
        result = value if result is None else (result & value)
    return 0 if result is None else result


def _join(values):
    result = 0
    for value in values:
        result |= value
    return result
