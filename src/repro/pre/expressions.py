"""Building PRE instances (common-subexpression elimination) from
mini-Fortran programs.

The universe elements are canonical textual forms of the non-trivial
expressions computed by assignments (``a + b``, ``a * c``...).  A node
*uses* the expressions its right-hand side contains and *kills* every
expression mentioning the variable its left-hand side defines.
"""

from repro.core.problem import Problem
from repro.lang import ast
from repro.lang.printer import format_expr


def interesting_expressions(expr):
    """The non-trivial subexpressions of ``expr`` (binary operations
    over scalars/constants), as (canonical text, operand variables)."""
    found = []
    for sub in ast.walk_expressions(expr):
        if isinstance(sub, ast.BinOp) and sub.op in "+-*/":
            operands = {
                e.name for e in ast.walk_expressions(sub) if isinstance(e, ast.Var)
            }
            if operands:
                found.append((format_expr(sub), frozenset(operands)))
    return found


def build_cse_problem(analyzed, direction=None, **problem_options):
    """A CSE instance over ``analyzed``: take = expression evaluation,
    steal = definition of an operand.  Returns (problem, operands_map).
    """
    problem = Problem(**problem_options)
    operands_of = {}

    node_of = {}
    for node in analyzed.ifg.real_nodes():
        if node.stmt is not None:
            node_of[id(node.stmt)] = node

    def visit(body):
        for stmt in body:
            node = node_of.get(id(stmt))
            if isinstance(stmt, ast.Assign):
                for text, operands in interesting_expressions(stmt.value):
                    problem.add_take(node, text)
                    operands_of[text] = operands
                if isinstance(stmt.target, ast.Var):
                    _kill(problem, node, stmt.target.name, operands_of)
            elif isinstance(stmt, ast.Do):
                for bound in (stmt.lo, stmt.hi):
                    for text, operands in interesting_expressions(bound):
                        problem.add_take(node, text)
                        operands_of[text] = operands
                visit(stmt.body)
                # the loop variable is redefined every iteration
            elif isinstance(stmt, ast.If):
                for text, operands in interesting_expressions(stmt.cond):
                    problem.add_take(node, text)
                    operands_of[text] = operands
                visit(stmt.then_body)
                visit(stmt.else_body)
            elif isinstance(stmt, ast.IfGoto):
                for text, operands in interesting_expressions(stmt.cond):
                    problem.add_take(node, text)
                    operands_of[text] = operands

    visit(analyzed.program.executables())

    # Apply kills in a second pass (all expressions are known by now).
    def kill_pass(body):
        for stmt in body:
            node = node_of.get(id(stmt))
            if isinstance(stmt, ast.Assign) and isinstance(stmt.target, ast.Var):
                _kill(problem, node, stmt.target.name, operands_of)
            elif isinstance(stmt, ast.Do):
                _kill(problem, node, stmt.var, operands_of)
                kill_pass(stmt.body)
            elif isinstance(stmt, ast.If):
                kill_pass(stmt.then_body)
                kill_pass(stmt.else_body)

    kill_pass(analyzed.program.executables())
    return problem, operands_of


def _kill(problem, node, variable, operands_of):
    for text, operands in operands_of.items():
        if variable in operands:
            problem.add_steal(node, text)
