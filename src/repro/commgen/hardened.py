"""Self-checking, gracefully degrading communication generation.

The plain :func:`~repro.commgen.pipeline.generate_communication` either
produces a placement or raises.  The :class:`HardenedPipeline` instead
*certifies* what it produces and never gives up on a parseable program:
every candidate placement is validated with the §3.2 path-replay checker
(criteria C1 balance and C3 sufficiency), all analysis work runs under
an explicit :class:`ResourceBudget`, and on any failure the pipeline
steps down a **degradation ladder**

1. ``balanced`` — the full pipeline (optimistic jump treatment,
   zero-trip hoisting), the paper's best placement;
2. ``conservative`` — §5.3 conservative jump blocking and no zero-trip
   hoisting: per-iteration regions, slower but immune to the optimistic
   mode's preconditions;
3. ``naive`` — per-reference element communication (Figure 2 left),
   which is trivially balanced: every send is immediately followed by
   its receive.

Irreducible graphs do not raise
:class:`~repro.util.errors.IrreducibleGraphError`; they are repaired by
§3.3 node splitting (within the budget) and the repair is recorded.
Which rung was chosen and *why* every higher rung was rejected is
returned as a structured :class:`DegradationReport`.

The solver backend is part of the ladder too: a solver rung that fails
under the (default) planned kernel is retried once with the
``"reference"`` backend before the pipeline steps down a rung — and a
rung running the ``"vector"`` kernel steps through ``"planned"`` first,
then ``"reference"``.  The backends are bit-identical by contract, so
the retries are pure defense in depth against a kernel-layer fault, and
every :class:`RungAttempt` records which backend produced it.
"""

from dataclasses import dataclass, field
from typing import Optional

from repro.commgen.naive import naive_communication
from repro.commgen.pipeline import generate_communication
from repro.core.checker import check_placement
from repro.core.solver import DEFAULT_BACKEND
from repro.lang.printer import format_program
from repro.obs.collector import current_collector
from repro.util.errors import IrreducibleGraphError, ReproError

#: ladder rungs, best first
RUNGS = ("balanced", "conservative", "naive")


@dataclass(frozen=True)
class ResourceBudget:
    """Caps on the analysis work one hardened run may spend.

    * ``check_paths`` — path-enumeration cap for every checker call
      (both certification here and the optimistic mode's internal
      check);
    * ``max_node_visits`` — per-path node revisit cap for the checker;
    * ``solver_rounds`` — iteration guard on the solver's backward
      consumption fixpoint (``None`` = the natural bound);
    * ``max_splits`` — node duplication budget for irreducible repair
      (``None`` = the splitter's default of four per node).
    """

    check_paths: int = 150
    max_node_visits: int = 3
    solver_rounds: Optional[int] = 64
    max_splits: Optional[int] = None


@dataclass
class RungAttempt:
    """One rung tried: did it hold, and if not, why."""

    rung: str
    ok: bool
    reason: Optional[str] = None
    #: checker summaries per (problem, criterion), e.g. "read C1"
    checks: dict = field(default_factory=dict)
    #: whether any certification check hit the path cap
    truncated: bool = False
    #: solver backend this attempt ran with (None for the naive rung,
    #: which never invokes the solver)
    backend: Optional[str] = None

    def __str__(self):
        state = "ok" if self.ok else f"failed: {self.reason}"
        rung = self.rung
        if self.backend and self.backend != DEFAULT_BACKEND:
            rung = f"{rung}[{self.backend}]"
        return f"{rung}: {state}"


@dataclass
class DegradationReport:
    """Structured account of one hardened run."""

    #: the rung that produced the returned placement
    rung: str
    #: why the pipeline degraded (None when the top rung held)
    reason: Optional[str]
    #: every rung tried, in ladder order, with its outcome
    attempts: list = field(default_factory=list)
    #: irreducible control flow repaired by node splitting?
    split_irreducible: bool = False
    #: (original, copy) name pairs created by the repair
    splits: list = field(default_factory=list)

    @property
    def degraded(self):
        return self.rung != RUNGS[0]

    @property
    def truncated(self):
        """Whether any certification on the chosen rung was partial."""
        chosen = [a for a in self.attempts if a.rung == self.rung]
        return any(a.truncated for a in chosen)

    def as_dict(self):
        """JSON-ready form (for logs and the CLI's structured output)."""
        return {
            "rung": self.rung,
            "reason": self.reason,
            "degraded": self.degraded,
            "split_irreducible": self.split_irreducible,
            "splits": list(self.splits),
            "truncated": self.truncated,
            "attempts": [
                {"rung": a.rung, "ok": a.ok, "reason": a.reason,
                 "truncated": a.truncated, "backend": a.backend,
                 "checks": dict(a.checks)}
                for a in self.attempts
            ],
        }

    def summary(self):
        text = f"rung={self.rung}"
        if self.reason:
            text += f" (degraded: {self.reason})"
        if self.split_irreducible:
            text += f" [irreducible: {len(self.splits)} node(s) split]"
        if self.truncated:
            text += " [certification truncated by path budget]"
        return text


class HardenedResult:
    """A placement result plus the report of how it was obtained.

    ``result`` is the rung's own result object
    (:class:`~repro.commgen.pipeline.CommunicationResult` for the upper
    rungs, :class:`~repro.commgen.naive.NaiveResult` for the last);
    the annotated program accessors are forwarded.
    """

    def __init__(self, result, report):
        self.result = result
        self.report = report

    @property
    def rung(self):
        return self.report.rung

    @property
    def annotated_program(self):
        return self.result.annotated_program

    def annotated_source(self):
        return self.result.annotated_source()


class HardenedPipeline:
    """Run communication generation under a budget, self-check every
    placement, and degrade instead of raising (module docstring)."""

    def __init__(self, budget=None, owner_computes=False,
                 split_messages=True, solver_backend=None):
        self.budget = budget if budget is not None else ResourceBudget()
        self.owner_computes = owner_computes
        self.split_messages = split_messages
        #: primary solver backend (None = the solver default); a solver
        #: rung that fails with it is retried once with "reference"
        self.solver_backend = solver_backend

    def run(self, source):
        """Compile ``source`` down the ladder; return a
        :class:`HardenedResult`.

        Frontend errors (unparseable text, a program whose exit is
        unreachable) still raise: no placement strategy can repair a
        program that has no flow graph."""
        # The annotator mutates the AST it is given, so every rung must
        # start from pristine text.
        obs = current_collector()
        text = source if isinstance(source, str) else format_program(source)
        report = DegradationReport(rung=RUNGS[-1], reason=None)

        primary = (self.solver_backend if self.solver_backend is not None
                   else DEFAULT_BACKEND)
        for rung in RUNGS:
            if rung == "naive":
                # No solver below this rung — backend is irrelevant.
                backends = (None,)
            elif primary == "vector":
                # Extra degradation steps: the vector kernel falls back
                # to the planned kernel, then to the reference solver,
                # before giving the rung up.
                backends = ("vector", "planned", "reference")
            elif primary != "reference":
                # Extra degradation step: retry the same rung on the
                # reference solver before giving the rung up.
                backends = (primary, "reference")
            else:
                backends = (primary,)
            for backend in backends:
                attempt, result = self._attempt(rung, text, report, backend)
                report.attempts.append(attempt)
                if obs.enabled:
                    obs.event("hardened", "rung_attempt", rung=attempt.rung,
                              ok=attempt.ok, reason=attempt.reason,
                              truncated=attempt.truncated,
                              backend=attempt.backend,
                              checks=dict(attempt.checks))
                    obs.count("hardened", "rung_attempts")
                if attempt.ok:
                    report.rung = rung
                    if rung != RUNGS[0]:
                        failed = report.attempts[0]
                        report.reason = (f"{failed.rung} rejected: "
                                         f"{failed.reason}")
                    if obs.enabled:
                        obs.event("hardened", "result", rung=report.rung,
                                  degraded=report.degraded,
                                  reason=report.reason,
                                  backend=attempt.backend,
                                  split_irreducible=report.split_irreducible,
                                  splits=len(report.splits),
                                  truncated=report.truncated,
                                  budget_check_paths=self.budget.check_paths,
                                  budget_solver_rounds=self.budget.solver_rounds)
                    return HardenedResult(result, report)
        # Unreachable: the naive rung accepts whatever the frontend
        # accepted, and frontend errors were re-raised in _attempt.
        raise AssertionError("degradation ladder exhausted")

    # -- rungs ---------------------------------------------------------------

    def _attempt(self, rung, text, report, backend=None):
        attempt = RungAttempt(rung=rung, ok=False, backend=backend)
        try:
            result = self._build(rung, text, report, backend)
        except IrreducibleGraphError:
            # First contact with irreducible flow: repair and retry the
            # same rung with splitting enabled (recorded on the report).
            report.split_irreducible = True
            try:
                result = self._build(rung, text, report, backend)
            except ReproError as error:
                attempt.reason = f"{type(error).__name__}: {error}"
                return attempt, None
        except ReproError as error:
            if rung == RUNGS[-1]:
                raise  # frontend failure: nothing further down can help
            attempt.reason = f"{type(error).__name__}: {error}"
            return attempt, None
        attempt.ok = self._certify(rung, result, attempt)
        return attempt, result if attempt.ok else None

    def _build(self, rung, text, report, backend=None):
        budget = self.budget
        if rung == "naive":
            return naive_communication(
                text, owner_computes=self.owner_computes,
                split_irreducible=report.split_irreducible,
                max_splits=budget.max_splits)
        conservative = rung == "conservative"
        result = generate_communication(
            text,
            owner_computes=self.owner_computes,
            split_messages=self.split_messages,
            hoist_zero_trip=not conservative,
            after_jumps="conservative" if conservative else "optimistic",
            split_irreducible=report.split_irreducible,
            max_splits=budget.max_splits,
            check_paths=budget.check_paths,
            solver_rounds=budget.solver_rounds,
            solver_backend=backend,
        )
        if report.split_irreducible and not report.splits:
            report.splits = [
                (orig.name, copy.name)
                for orig, copy in getattr(result.analyzed.cfg, "splits", [])
            ]
        return result

    # -- certification -------------------------------------------------------

    def _certify(self, rung, result, attempt):
        """Validate the rung's placements with the §3.2 checker.

        The naive rung has no placement objects — each send is directly
        followed by its receive, so C1/C3 hold by construction and the
        rung certifies vacuously (the simulator's receive matching
        remains as an independent runtime check)."""
        if rung == "naive":
            attempt.checks["naive"] = "balanced by construction"
            return True
        obs = current_collector()
        problems = (("read", result.read_problem, result.read_placement),
                    ("write", result.write_problem, result.write_placement))
        ok = True
        for name, problem, placement in problems:
            balance = check_placement(
                result.analyzed.ifg, problem, placement,
                max_paths=self.budget.check_paths,
                max_node_visits=self.budget.max_node_visits)
            sufficiency = check_placement(
                result.analyzed.ifg, problem, placement,
                max_paths=self.budget.check_paths,
                max_node_visits=self.budget.max_node_visits, min_trips=1)
            c1 = balance.by_criterion("C1")
            c3 = sufficiency.by_criterion("C3")
            attempt.checks[f"{name} C1"] = (
                f"{len(c1)} violations ({balance.paths_checked} paths)")
            attempt.checks[f"{name} C3"] = (
                f"{len(c3)} violations ({sufficiency.paths_checked} paths)")
            attempt.truncated |= balance.truncated or sufficiency.truncated
            if obs.enabled:
                obs.count("hardened", "paths_checked",
                          n=balance.paths_checked + sufficiency.paths_checked)
            if c1 or c3:
                ok = False
                first = (c1 + c3)[0]
                attempt.reason = f"checker: {first}"
        return ok


def harden_communication(source, budget=None, owner_computes=False,
                         split_messages=True, solver_backend=None):
    """Convenience wrapper around :class:`HardenedPipeline`."""
    pipeline = HardenedPipeline(budget=budget, owner_computes=owner_computes,
                                split_messages=split_messages,
                                solver_backend=solver_backend)
    return pipeline.run(source)
