"""The naive baseline: element-wise communication at each reference.

This is the left-hand side of the paper's Figure 2: every non-owned
reference gets its own ``READ_Send``/``READ_Recv`` pair immediately
before the referencing statement — one message per loop iteration, no
vectorization, no latency hiding, no reuse across references.
"""

from repro.analysis.ownership import OwnershipModel
from repro.analysis.references import collect_accesses
from repro.lang import ast
from repro.lang.parser import parse
from repro.lang.printer import format_program, format_expr
from repro.lang.symbols import SymbolTable
from repro.testing.programs import AnalyzedProgram


class NaiveResult:
    """The naively annotated program."""

    def __init__(self, analyzed):
        self.analyzed = analyzed

    @property
    def annotated_program(self):
        return self.analyzed.program

    def annotated_source(self):
        return format_program(self.analyzed.program)


def naive_communication(source, owner_computes=False, split_irreducible=False,
                        max_splits=None):
    """Annotate ``source`` with per-reference element communication.

    ``split_irreducible`` repairs irreducible control flow by node
    splitting instead of raising (the hardened pipeline's last rung must
    accept everything the upper rungs accepted)."""
    program = parse(source) if isinstance(source, str) else source
    analyzed = AnalyzedProgram(program, split_irreducible=split_irreducible,
                               max_splits=max_splits)
    symbols = SymbolTable.from_program(program)
    ownership = OwnershipModel(symbols, owner_computes=owner_computes)
    accesses, _ = collect_accesses(analyzed, symbols)

    inserted = []
    for access in accesses:
        stmt = access.node.stmt
        if stmt is None:
            continue
        arg = format_expr(access.ref)
        if ownership.read_needs_communication(access):
            inserted.append((stmt, ast.Comm("read", "send", [arg]),
                             ast.Comm("read", "recv", [arg]), "before"))
        elif ownership.def_needs_writeback(access):
            inserted.append((stmt, ast.Comm("write", "send", [arg]),
                             ast.Comm("write", "recv", [arg]), "after"))

    for stmt, send, recv, where in inserted:
        body, index = _locate(program, stmt)
        if where == "before":
            body.insert(index, recv)
            body.insert(index, send)
        else:
            body.insert(index + 1, recv)
            body.insert(index + 1, send)

    return NaiveResult(analyzed)


def _locate(program, stmt):
    stack = [program.body]
    while stack:
        body = stack.pop()
        for index, candidate in enumerate(body):
            if candidate is stmt:
                return body, index
            if isinstance(candidate, ast.Do):
                stack.append(candidate.body)
            elif isinstance(candidate, ast.If):
                stack.append(candidate.then_body)
                stack.append(candidate.else_body)
    raise LookupError(f"statement {stmt!r} not found")
