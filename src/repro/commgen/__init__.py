"""Communication generation for distributed arrays (paper §2, §3.1).

The pipeline compiles a mini-Fortran program with ``distribute``
directives into the same program annotated with vectorized, balanced,
latency-hiding communication:

* READs are a BEFORE problem — ``READ_Send`` is the EAGER solution,
  ``READ_Recv`` the LAZY solution;
* WRITEs are an AFTER problem — ``WRITE_Send`` is the LAZY solution,
  ``WRITE_Recv`` the EAGER solution;
* non-owned definitions produce the data they define "for free" for the
  READ problem (no owner round-trip), without disturbing balance.

Entry point: :func:`repro.commgen.pipeline.generate_communication`.
"""

from repro.commgen.problems import build_read_problem, build_write_problem
from repro.commgen.annotate import Annotator
from repro.commgen.pipeline import CommunicationResult, generate_communication
from repro.commgen.naive import naive_communication

__all__ = [
    "build_read_problem",
    "build_write_problem",
    "Annotator",
    "CommunicationResult",
    "generate_communication",
    "naive_communication",
]
