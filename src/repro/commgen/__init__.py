"""Communication generation for distributed arrays (paper §2, §3.1).

The pipeline compiles a mini-Fortran program with ``distribute``
directives into the same program annotated with vectorized, balanced,
latency-hiding communication:

* READs are a BEFORE problem — ``READ_Send`` is the EAGER solution,
  ``READ_Recv`` the LAZY solution;
* WRITEs are an AFTER problem — ``WRITE_Send`` is the LAZY solution,
  ``WRITE_Recv`` the EAGER solution;
* non-owned definitions produce the data they define "for free" for the
  READ problem (no owner round-trip), without disturbing balance.

Entry points: :func:`repro.commgen.pipeline.generate_communication`
(raises on anything irregular) and
:class:`repro.commgen.hardened.HardenedPipeline` (self-checking, runs
under resource budgets, degrades down a ladder instead of raising — see
``docs/robustness.md``).
"""

from repro.commgen.problems import build_read_problem, build_write_problem
from repro.commgen.annotate import Annotator
from repro.commgen.pipeline import (
    CommunicationResult,
    PreparedCommunication,
    annotate_prepared,
    generate_communication,
    prepare_communication,
)
from repro.commgen.naive import naive_communication
from repro.commgen.hardened import (
    DegradationReport,
    HardenedPipeline,
    HardenedResult,
    ResourceBudget,
    RungAttempt,
    harden_communication,
)

__all__ = [
    "build_read_problem",
    "build_write_problem",
    "Annotator",
    "CommunicationResult",
    "PreparedCommunication",
    "annotate_prepared",
    "generate_communication",
    "prepare_communication",
    "naive_communication",
    "DegradationReport",
    "HardenedPipeline",
    "HardenedResult",
    "ResourceBudget",
    "RungAttempt",
    "harden_communication",
]
