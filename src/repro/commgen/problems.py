"""Building the READ and WRITE GIVE-N-TAKE problems from array accesses.

The universe elements are section descriptors (value numbers).  The
initial-variable rules follow §3.1:

READ (BEFORE) problem:

* every non-owned reference *takes* its descriptor;
* every definition of a distributed array *steals* all conflicting
  descriptors of that array (their communicated copies go stale) —
  except its own descriptor, which it *gives* when the defining
  processor keeps the fresh values (no owner-computes rule);
* every definition of an array used as an indirection array *steals*
  the indirect descriptors built on it (``x(a(k))`` changes meaning
  when ``a`` changes, §4.1).

WRITE (AFTER) problem:

* every non-owned definition *takes* its descriptor (it must be written
  back to the owner);
* conflicting definitions and indirection-array definitions *steal*
  write-backs the same way (a deferred write-back must not cross them).
"""

from repro.core.problem import Direction, Problem
from repro.analysis.sections import IndirectSection, section_conflicts


def communicated_descriptors(accesses, ownership):
    """All descriptors over distributed arrays, in first-seen order."""
    result = []
    seen = set()
    for access in accesses:
        if not ownership.is_communicated_array(access.array):
            continue
        if access.descriptor not in seen:
            seen.add(access.descriptor)
            result.append(access.descriptor)
    return result


def build_read_problem(accesses, ownership, refine=True):
    """The READ instance over the program's accesses.

    ``refine`` enables symbolic disjointness when computing which
    portions a definition invalidates (the paper's §6 refinement of the
    initial variables by dependence analysis)."""
    problem = Problem(direction=Direction.BEFORE)
    universe_elements = communicated_descriptors(accesses, ownership)
    for descriptor in universe_elements:
        problem.universe.add(descriptor)

    for access in accesses:
        if ownership.read_needs_communication(access):
            problem.add_take(access.node, access.descriptor)
        if access.is_def:
            gives = ownership.def_gives_locally(access)
            # Under owner-computes the definition happens at the owner:
            # previously communicated copies of the *same* portion are
            # stale too, so the own descriptor is stolen, not given.
            steal_own = (
                not gives and ownership.is_communicated_array(access.array)
            )
            _apply_def_effects(problem, access, universe_elements,
                               gives=gives, steal_own=steal_own,
                               refine=refine)
    return problem


def build_write_problem(accesses, ownership, read_placement=None, refine=True):
    """The WRITE instance over the program's accesses.

    ``read_placement`` (the solved READ placement) enables the C3
    coupling of §3.2: data must be written back to its owner *before*
    an overlapping portion is fetched from that owner, i.e. before the
    corresponding ``READ_Send``.  Each read-send site steals the
    conflicting write-backs, so the WRITE region cannot be deferred
    across it — this is what puts ``WRITE_Recv`` right before the
    ``READ_Send`` blocks in Figures 3 and 14.
    """
    problem = Problem(direction=Direction.AFTER)
    write_elements = []
    reduction_ops = {}
    for access in accesses:
        if ownership.def_needs_writeback(access):
            if access.descriptor not in write_elements:
                write_elements.append(access.descriptor)
                problem.universe.add(access.descriptor)
                reduction_ops[access.descriptor] = access.reduction
            elif reduction_ops.get(access.descriptor) != access.reduction:
                # mixed plain/reduction definitions: fall back to a
                # plain (overwriting) write-back
                reduction_ops[access.descriptor] = None
    #: descriptor -> reduction name (or None) for the annotator
    problem.reduction_ops = {d: op for d, op in reduction_ops.items() if op}

    for access in accesses:
        if ownership.def_needs_writeback(access):
            problem.add_take(access.node, access.descriptor)
        if access.is_def:
            _apply_def_effects(problem, access, write_elements,
                               gives=False, steal_own=False, refine=refine)

    if read_placement is not None:
        _couple_reads(problem, write_elements, read_placement, refine)
    return problem


def _couple_reads(problem, write_elements, read_placement, refine=True):
    from repro.core.problem import Timing

    reductions = getattr(problem, "reduction_ops", {})
    for production in read_placement.productions(Timing.EAGER):
        for write_descriptor in write_elements:
            # A read of the *same* portion is normally satisfied locally
            # by the give-for-free coupling and needs no ordering — but
            # a reduction write-back gives nothing (the local value is
            # partial), so even the same-portion read must wait for it.
            if any(
                (write_descriptor != read_descriptor
                 or write_descriptor in reductions)
                and section_conflicts(write_descriptor, read_descriptor,
                                      refine=refine)
                for read_descriptor in production.elements
            ):
                problem.add_steal(production.node, write_descriptor)


def _apply_def_effects(problem, access, universe_elements, gives, steal_own,
                       refine=True):
    """Steals (and optionally a give) induced by one definition."""
    elements = set(universe_elements)
    for descriptor in universe_elements:
        if _def_invalidates(access, descriptor, refine):
            problem.add_steal(access.node, descriptor)
    if steal_own and access.descriptor in elements:
        problem.add_steal(access.node, access.descriptor)
    if gives and access.descriptor in elements:
        problem.add_give(access.node, access.descriptor)


def _def_invalidates(access, descriptor, refine=True):
    """Whether defining ``access`` makes ``descriptor`` stale."""
    if isinstance(descriptor, IndirectSection) and descriptor.index_array == access.array:
        return True  # the indirection array changed: x(a(...)) moved
    if descriptor.array != access.array:
        return False
    if descriptor == access.descriptor:
        return False  # own portion: refreshed, not destroyed (the give)
    return section_conflicts(access.descriptor, descriptor, refine=refine)
