"""Inserting communication statements into the program (Figure 14 style).

Productions live at flow-graph nodes; this module maps them back to AST
positions and splices :class:`repro.lang.ast.Comm` statements in:

* statement/header nodes → directly before/after the statement;
* label nodes (goto targets) → before the labeled statement, *moving
  the label onto the first communication* so jumps execute it too
  (Figure 14's ``77 READ_Recv{...}``);
* goto landing pads → a new block around the jump: ``if c goto L``
  becomes ``if c then; <comms>; goto L; endif``, with section ranges
  narrowed to the iterations actually completed (``y(a(1:i))``);
* synthetic nodes on branch edges → a new (or extended) ``else`` branch,
  as in Figure 3;
* synthetic nodes on loop-exit edges → after the loop;
* anything else → nearest real neighbor (best effort).

The annotator mutates the program AST it was given; the pipeline owns a
private parse, so callers never see their input changed.
"""

from repro.core.placement import Position
from repro.core.problem import Direction, Timing
from repro.graph.cfg import NodeKind
from repro.graph.interval_graph import EdgeType
from repro.lang import ast


class Annotator:
    """Splices the productions of placements into a program AST."""

    def __init__(self, analyzed):
        self.analyzed = analyzed
        self.ifg = analyzed.ifg
        self.program = analyzed.program
        self._goto_blocks = {}  # id(original IfGoto) -> replacement If

    # -- public -----------------------------------------------------------

    def apply(self, placement, kind, atomic=False, reduce_ops=None,
              one_per_section=False):
        """Insert the productions of ``placement`` as ``kind`` ("read"
        or "write") communication.

        With ``atomic=True`` only the LAZY solution is emitted, as single
        un-split operations (e.g. for a library call, §6).  ``reduce_ops``
        maps descriptors to reduction names (``"sum"``...): those are
        emitted as combining writes (``WRITE_Sum_...``), grouped apart
        from plain ones.  ``one_per_section`` emits a separate statement
        per descriptor instead of one vectorized statement (cache
        prefetches complete independently; messages do not).
        """
        direction = placement.problem.direction
        send_timing = (Timing.EAGER if direction is Direction.BEFORE
                       else Timing.LAZY)
        phased = []
        for production in placement.productions():
            if atomic:
                if production.timing is not Timing.LAZY:
                    continue
                phased.append((production, None))
            else:
                phase = "send" if production.timing is send_timing else "recv"
                phased.append((production, phase))
        # Emit sends before receives so that co-located pairs read
        # Send-then-Recv, as in the paper's figures.
        phased.sort(key=lambda item: item[1] == "recv")
        reduce_ops = reduce_ops or {}
        for production, phase in phased:
            groups = {}
            for descriptor in production.elements:
                groups.setdefault(reduce_ops.get(descriptor), []).append(descriptor)
            for reduce_name in sorted(groups, key=lambda r: (r is not None, str(r))):
                descriptors = sorted(groups[reduce_name], key=str)
                batches = ([[d] for d in descriptors] if one_per_section
                           else [descriptors])
                for batch in batches:
                    self._place(production.node, production.position, kind,
                                phase, batch, reduce=reduce_name,
                                timing=production.timing.name)

    def apply_timing(self, placement, kind, timing, one_per_section=False):
        """Insert only one timing's productions, as phase-less statements.

        Register promotion uses this: the EAGER solution of the load
        problem *is* the ``LOAD``, the EAGER solution of the store
        problem *is* the ``STORE`` — the matching LAZY points carry no
        code (the register itself).
        """
        for production in placement.productions(timing):
            descriptors = sorted(production.elements, key=str)
            batches = ([[d] for d in descriptors] if one_per_section
                       else [descriptors])
            for batch in batches:
                self._place(production.node, production.position, kind,
                            None, batch, timing=production.timing.name)

    # -- placement dispatch ---------------------------------------------------

    def _place(self, node, position, kind, phase, descriptors, reduce=None,
               timing=None):
        local_vars = self._local_vars(node)
        args = [d.format(local_vars=local_vars) for d in descriptors]
        comm = ast.Comm(kind, phase, args, reduce=reduce, timing=timing)
        self._dispatch(node, position, comm,
                       synthetic=lambda: self._place_synthetic(
                           node, kind, phase, descriptors, comm, reduce))

    def place_statement(self, node, position, stmt):
        """Insert an arbitrary prebuilt statement at a placement point —
        the seam the PRE transformer uses to splice ``t = a + b``
        assignments instead of communication."""
        self._dispatch(node, position, stmt,
                       synthetic=lambda: self._place_synthetic_statement(
                           node, stmt))

    def _place_synthetic_statement(self, node, stmt):
        """Synthetic-node strategies for plain statements: same landing
        pad / branch-edge / loop-exit handling, no partial sections."""
        preds = self.ifg.cfg.preds(node)
        jump_preds = [p for p in preds
                      if self.ifg.edge_type(p, node) is EdgeType.JUMP]
        if jump_preds:
            source_stmt = _stmt_of(jump_preds[0])
            if isinstance(source_stmt, ast.IfGoto):
                block = self._goto_blocks.get(id(source_stmt))
                if block is not None:
                    block.then_body.insert(len(block.then_body) - 1, stmt)
                    return
                body_list, index = self._locate(source_stmt)
                replacement = ast.If(source_stmt.cond,
                                     [stmt, ast.Goto(source_stmt.target)], [],
                                     label=source_stmt.label,
                                     line=source_stmt.line)
                body_list[index] = replacement
                self._goto_blocks[id(source_stmt)] = replacement
                return
            if isinstance(source_stmt, ast.Goto):
                self._insert_before(source_stmt, stmt)
                return
        self._place_synthetic(node, None, None, [], stmt)

    def _dispatch(self, node, position, stmt, synthetic):
        if node.kind in (NodeKind.STMT, NodeKind.HEADER) and node.stmt is not None:
            if position is Position.BEFORE:
                self._insert_before(node.stmt, stmt)
            else:
                self._insert_after(node.stmt, stmt)
        elif node.kind is NodeKind.LABEL:
            target = self._label_target(node)
            self._insert_before(target, stmt, take_label=True)
        elif node.kind is NodeKind.ENTRY:
            self._insert_at_program_start(stmt)
        elif node.kind is NodeKind.EXIT:
            self.program.body.append(stmt)
        elif node.synthetic:
            synthetic()
        else:
            self._place_fallback(node, stmt)

    def _place_synthetic(self, node, kind, phase, descriptors, comm, reduce=None):
        preds = self.ifg.cfg.preds(node)
        jump_preds = [p for p in preds
                      if self.ifg.edge_type(p, node) is EdgeType.JUMP]
        if jump_preds:
            self._place_on_landing_pad(node, jump_preds[0], kind, phase,
                                       descriptors, reduce,
                                       timing=comm.timing)
            return
        if len(preds) == 1 and isinstance(_stmt_of(preds[0]), ast.If):
            self._place_on_branch_edge(preds[0], comm)
            return
        if len(preds) == 1 and preds[0].kind is NodeKind.HEADER:
            self._insert_after(preds[0].stmt, comm)  # loop-exit edge
            return
        if node.kind is NodeKind.LATCH:
            # End of the loop body: executes once per iteration.
            header = next(
                (s for s in self.ifg.cfg.succs(node)
                 if s.kind is NodeKind.HEADER and isinstance(s.stmt, ast.Do)),
                None,
            )
            if header is not None:
                header.stmt.body.append(comm)
                return
        self._place_fallback(node, comm)

    # -- specific strategies -----------------------------------------------------

    def _place_on_landing_pad(self, node, jump_source, kind, phase,
                              descriptors, reduce=None, timing=None):
        """Wrap the jump in a block holding the communication.

        Section ranges over the loops being exited are narrowed to the
        completed iterations (``lo:var``)."""
        partial_vars = set()
        for header in self.ifg.forest.enclosing_headers(jump_source):
            if not self.ifg.in_interval(header, node):
                stmt = header.stmt
                if isinstance(stmt, ast.Do):
                    partial_vars.add(stmt.var)
        args = [d.format(partial_vars=frozenset(partial_vars)) for d in descriptors]
        comm = ast.Comm(kind, phase, args, reduce=reduce, timing=timing)

        source_stmt = _stmt_of(jump_source)
        if isinstance(source_stmt, ast.IfGoto):
            block = self._goto_blocks.get(id(source_stmt))
            if block is not None:
                # A previous pass already wrapped this jump: insert the
                # communication before the goto, after earlier comms.
                block.then_body.insert(len(block.then_body) - 1, comm)
                return
            body_list, index = self._locate(source_stmt)
            replacement = ast.If(
                source_stmt.cond,
                [comm, ast.Goto(source_stmt.target)],
                [],
                label=source_stmt.label,
                line=source_stmt.line,
            )
            body_list[index] = replacement
            self._goto_blocks[id(source_stmt)] = replacement
        elif isinstance(source_stmt, ast.Goto):
            self._insert_before(source_stmt, comm)
        else:
            self._place_fallback(node, comm)

    def _place_on_branch_edge(self, branch_node, comm):
        """The synthetic node sits on an ``if``'s empty-branch edge:
        materialize/extend that branch (Figure 3's new ``else``)."""
        if_stmt = _stmt_of(branch_node)
        if if_stmt.then_body and not if_stmt.else_body:
            if_stmt.else_body.append(comm)
        elif if_stmt.else_body and not if_stmt.then_body:
            if_stmt.then_body.append(comm)
        else:
            if_stmt.else_body.append(comm)

    def _place_fallback(self, node, comm):
        """Best effort: before the nearest real statement downstream."""
        current, seen = node, set()
        while current is not None and current not in seen:
            seen.add(current)
            if current.stmt is not None:
                self._insert_before(current.stmt, comm)
                return
            if current.kind is NodeKind.EXIT:
                self.program.body.append(comm)
                return
            if current.kind is NodeKind.LABEL:
                self._insert_before(self._label_target(current), comm,
                                    take_label=True)
                return
            succs = self.ifg.cfg.succs(current)
            current = succs[0] if succs else None
        self.program.body.append(comm)

    # -- AST surgery -----------------------------------------------------------

    def _insert_before(self, stmt, comm, take_label=False):
        body_list, index = self._locate(stmt)
        if take_label and stmt.label is not None:
            comm.label = stmt.label
            stmt.label = None
        elif stmt.label is not None:
            # Jumps to this label must execute the communication too.
            comm.label = stmt.label
            stmt.label = None
        body_list.insert(index, comm)

    def _insert_after(self, stmt, comm):
        body_list, index = self._locate(stmt)
        # keep send-before-recv order for multiple after-insertions
        position = index + 1
        while position < len(body_list) and isinstance(body_list[position], ast.Comm) \
                and getattr(body_list[position], "_anchored_after", None) is stmt:
            position += 1
        comm._anchored_after = stmt
        body_list.insert(position, comm)

    def _insert_at_program_start(self, comm):
        body = self.program.body
        index = 0
        while index < len(body) and isinstance(
                body[index], (ast.Declaration, ast.ParameterDef, ast.Distribute,
                              ast.Comm)):
            index += 1
        body.insert(index, comm)

    def _local_vars(self, node):
        """Loop variables of the loops enclosing ``node``: descriptors
        whose substituted loops all enclose the placement point render
        in their per-iteration form (``x(i)``, not ``x(1:n)``)."""
        variables = set()
        for header in self.ifg.forest.enclosing_headers(node):
            if isinstance(header.stmt, ast.Do):
                variables.add(header.stmt.var)
        return frozenset(variables)

    def _locate(self, stmt):
        """Find the body list containing ``stmt`` (by identity)."""
        for body in _all_bodies(self.program):
            for index, candidate in enumerate(body):
                if candidate is stmt:
                    return body, index
        raise LookupError(f"statement {stmt!r} is not in the program")

    def _label_target(self, label_node):
        """The statement carrying the label of a LABEL node."""
        succs = self.ifg.cfg.succs(label_node)
        for succ in succs:
            if succ.stmt is not None:
                return succ.stmt
        raise LookupError(f"label node {label_node} has no statement successor")


def _stmt_of(node):
    return node.stmt


def _is_goto_block(if_stmt, target):
    """Whether ``if_stmt`` is a block we already created around a goto."""
    return (bool(if_stmt.then_body)
            and isinstance(if_stmt.then_body[-1], ast.Goto)
            and if_stmt.then_body[-1].target == target
            and not if_stmt.else_body)


def _all_bodies(program):
    """Yield every statement list in the program, outermost first."""
    stack = [program.body]
    while stack:
        body = stack.pop()
        yield body
        for stmt in body:
            if isinstance(stmt, ast.Do):
                stack.append(stmt.body)
            elif isinstance(stmt, ast.If):
                stack.append(stmt.then_body)
                stack.append(stmt.else_body)
