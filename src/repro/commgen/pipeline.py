"""The end-to-end communication generation pipeline.

The pipeline has two phases with very different mutation behavior:

* :func:`prepare_communication` — parse, build/normalize the flow
  graph, collect accesses, build and solve both GIVE-N-TAKE problems,
  run the synthetic-node post-pass.  Nothing here mutates the program
  AST, so the resulting :class:`PreparedCommunication` is the state the
  batch layer's content-addressed cache stores (``repro.batch``).
* :func:`annotate_prepared` — splice the solved placements into the
  AST as READ/WRITE statements.  This *mutates* ``analyzed.program`` in
  place, which is exactly why cached state must be snapshotted before
  this phase runs.

:func:`generate_communication` chains the two, preserving the original
one-call API.
"""

from repro.analysis.ownership import OwnershipModel
from repro.analysis.references import collect_accesses
from repro.commgen.annotate import Annotator
from repro.commgen.problems import build_read_problem, build_write_problem
from repro.core.placement import Placement
from repro.core.postpass import shift_synthetic_productions
from repro.core.solver import solve
from repro.lang.parser import parse
from repro.lang.printer import format_program
from repro.lang.symbols import SymbolTable
from repro.testing.programs import AnalyzedProgram


class PreparedCommunication:
    """Everything the pipeline computed *before* annotation.

    The contained ``analyzed.program`` AST is still pristine — no
    communication statements have been spliced in — so this object is
    safe to serialize and reuse (each reuse must still work on a private
    copy, since :func:`annotate_prepared` mutates it)."""

    def __init__(self, analyzed, symbols, accesses, read_problem,
                 read_solution, read_placement, write_problem,
                 write_solution, write_placement):
        self.analyzed = analyzed
        self.symbols = symbols
        self.accesses = accesses
        self.read_problem = read_problem
        self.read_solution = read_solution
        self.read_placement = read_placement
        self.write_problem = write_problem
        self.write_solution = write_solution
        self.write_placement = write_placement


class CommunicationResult:
    """Everything the pipeline produced for one program."""

    def __init__(self, analyzed, symbols, accesses, read_problem,
                 read_solution, read_placement, write_problem,
                 write_solution, write_placement):
        self.analyzed = analyzed
        self.symbols = symbols
        self.accesses = accesses
        self.read_problem = read_problem
        self.read_solution = read_solution
        self.read_placement = read_placement
        self.write_problem = write_problem
        self.write_solution = write_solution
        self.write_placement = write_placement
        self._annotated_text = None

    @property
    def annotated_program(self):
        """The (mutated) AST with communication statements spliced in."""
        return self.analyzed.program

    def annotated_source(self):
        """The annotated program as source text."""
        if self._annotated_text is None:
            self._annotated_text = format_program(self.analyzed.program)
        return self._annotated_text

    def communication_count(self):
        """(reads, writes) placement counts — production sites, before
        vectorization multiplies anything by trip counts."""
        return (self.read_placement.production_count(),
                self.write_placement.production_count())


def prepare_communication(source, owner_computes=False, postpass=True,
                          hoist_zero_trip=True, after_jumps="optimistic",
                          refine_sections=True, split_irreducible=False,
                          max_splits=None, check_paths=150,
                          solver_rounds=None, solver_backend=None,
                          memo=None):
    """Run everything up to (but excluding) annotation; return a
    :class:`PreparedCommunication`.

    ``source`` may be source text, a parsed Program, or an already
    analyzed :class:`~repro.testing.programs.AnalyzedProgram` (the batch
    layer reuses cached frontends this way).  Parameter semantics match
    :func:`generate_communication`.

    All solves on one graph — the READ solve and up to two WRITE solves
    — share one forward and one backward compiled
    :class:`~repro.core.kernel.plan.SolverPlan` (cached on the graph, so
    it also survives into the batch layer's pipeline-cache snapshots).

    ``memo`` — an optional
    :class:`~repro.core.kernel.incremental.IncrementalSolveMemo`: every
    solve (and the optimistic write-check verdict) is replayed from the
    memo's content-addressed cache when possible and recorded into it
    otherwise, turning an edit recompile into work proportional to the
    changed intervals.  Results are bit-identical with or without it.
    """
    if isinstance(source, AnalyzedProgram):
        analyzed = source
    else:
        program = parse(source) if isinstance(source, str) else source
        analyzed = AnalyzedProgram(program,
                                   split_irreducible=split_irreducible,
                                   max_splits=max_splits)
    symbols = SymbolTable.from_program(analyzed.program)
    ownership = OwnershipModel(symbols, owner_computes=owner_computes)
    accesses, _ = collect_accesses(analyzed, symbols)

    read_problem = build_read_problem(accesses, ownership,
                                      refine=refine_sections)
    read_problem.hoist_zero_trip = hoist_zero_trip
    read_problem.freeze()
    read_solution = _solve(analyzed.ifg, read_problem, None, solver_rounds,
                           solver_backend, memo)
    read_placement = Placement(analyzed.ifg, read_problem, read_solution)

    if postpass:
        shift_synthetic_productions(read_placement)

    write_problem = build_write_problem(accesses, ownership,
                                        read_placement=read_placement,
                                        refine=refine_sections)
    write_problem.hoist_zero_trip = hoist_zero_trip
    write_problem.freeze()
    write_solution, write_placement = _solve_write(
        analyzed, write_problem, after_jumps, check_paths, solver_rounds,
        solver_backend, memo)

    if postpass:
        shift_synthetic_productions(write_placement)

    return PreparedCommunication(
        analyzed, symbols, accesses,
        read_problem, read_solution, read_placement,
        write_problem, write_solution, write_placement,
    )


def annotate_prepared(prepared, split_messages=True):
    """Splice ``prepared``'s placements into its program AST and return
    the :class:`CommunicationResult`.

    This mutates ``prepared.analyzed.program`` in place — never feed it
    a :class:`PreparedCommunication` that something else still needs in
    pristine form (the batch cache hands out private copies for exactly
    this reason)."""
    annotator = Annotator(prepared.analyzed)
    # WRITEs first so that at shared points data is written back before
    # a READ fetches it (Figure 3's then branch ordering).
    annotator.apply(prepared.write_placement, "write",
                    atomic=not split_messages,
                    reduce_ops=getattr(prepared.write_problem,
                                       "reduction_ops", {}))
    annotator.apply(prepared.read_placement, "read",
                    atomic=not split_messages)

    return CommunicationResult(
        prepared.analyzed, prepared.symbols, prepared.accesses,
        prepared.read_problem, prepared.read_solution,
        prepared.read_placement, prepared.write_problem,
        prepared.write_solution, prepared.write_placement,
    )


def generate_communication(source, owner_computes=False, split_messages=True,
                           postpass=True, hoist_zero_trip=True,
                           after_jumps="optimistic", refine_sections=True,
                           split_irreducible=False, max_splits=None,
                           check_paths=150, solver_rounds=None,
                           solver_backend=None):
    """Compile ``source`` (mini-Fortran text or a parsed Program) into an
    annotated program with balanced READ/WRITE placement.

    * ``owner_computes`` — strict owner-computes rule: no WRITE problem
      and no give-for-free coupling (§2);
    * ``split_messages=False`` — place atomic READ/WRITE operations (the
      LAZY solutions) instead of send/recv pairs (§6);
    * ``postpass`` — shift production off synthetic nodes where a
      conflict-free neighbor exists (§5.4);
    * ``hoist_zero_trip`` — hoist communication out of potentially
      zero-trip loops (§4.1; the paper's default for communication);
    * ``after_jumps`` — how the WRITE (AFTER) problem treats loops that
      jumps leave (§5.3): ``"conservative"`` always blocks production
      regions at their boundary; ``"optimistic"`` (default) first solves
      without blocking, keeps the result when the path checker confirms
      balance and sufficiency (this reproduces Figure 14's hoisted write
      placement), and falls back to the conservative solution otherwise.
      The optimistic retry is the "more thorough treatment of jumps out
      of loops for AFTER problems" the paper lists as an extension (§6);
    * ``refine_sections`` — prove symbolic disjointness of sections when
      computing steals (the §6 dependence-analysis refinement); disable
      for the fully conservative instance;
    * ``split_irreducible`` — repair irreducible control flow by node
      splitting (§3.3, [CM69]) instead of raising
      :class:`~repro.util.errors.IrreducibleGraphError`;
    * ``check_paths`` — path-enumeration cap for the optimistic-mode
      certification checker;
    * ``solver_rounds`` — iteration guard on the solver's backward
      consumption fixpoint (see :func:`repro.core.solver.solve`);
    * ``solver_backend`` — ``"planned"`` (compiled schedules, the
      default), ``"vector"`` (level-batched bit-matrix kernels,
      word-parallel when NumPy is available) or ``"reference"`` (the
      original per-equation solver); all bit-identical
      (``docs/scaling.md``).
    """
    prepared = prepare_communication(
        source,
        owner_computes=owner_computes,
        postpass=postpass,
        hoist_zero_trip=hoist_zero_trip,
        after_jumps=after_jumps,
        refine_sections=refine_sections,
        split_irreducible=split_irreducible,
        max_splits=max_splits,
        check_paths=check_paths,
        solver_rounds=solver_rounds,
        solver_backend=solver_backend,
    )
    return annotate_prepared(prepared, split_messages=split_messages)


def _solve(ifg, problem, view, solver_rounds, solver_backend, memo):
    """One solve, replayed through ``memo`` when it applies to the
    requested backend (the reference oracle always computes fresh)."""
    if memo is not None and memo.applies(solver_backend):
        return memo.solve(ifg, problem, view=view, max_rounds=solver_rounds,
                          backend=solver_backend)
    return solve(ifg, problem, view=view, max_rounds=solver_rounds,
                 backend=solver_backend)


def _solve_write(analyzed, write_problem, after_jumps, check_paths=150,
                 solver_rounds=None, solver_backend=None, memo=None):
    """Solve the AFTER problem per the requested jump treatment."""
    from repro.core.checker import check_placement_dual
    from repro.graph.views import cached_view

    has_jumps = bool(analyzed.ifg.jump_edges())
    if after_jumps == "optimistic" and has_jumps and write_problem.annotated_nodes():
        view = cached_view(analyzed.ifg, "after", blocked=False)
        solution = _solve(analyzed.ifg, write_problem, view, solver_rounds,
                          solver_backend, memo)
        placement = Placement(analyzed.ifg, write_problem, solution)
        accept = None
        if memo is not None and memo.applies(solver_backend):
            # The dual check's verdict is a pure function of (graph,
            # problem, solution, check_paths) — the same contents the
            # solve key addresses — so a warm delta replays the verdict
            # instead of re-enumerating paths, which dominates cold
            # compile time on jumpy programs.
            accept = memo.write_verdict(analyzed.ifg, write_problem, view,
                                        solver_rounds, check_paths)
        if accept is None:
            # One path enumeration and replay serves both verdicts:
            # balance over all bounded paths, sufficiency over the
            # min-trip subset (previously two separate check_placement
            # calls doubled the check_paths-bounded work on every
            # optimistic solve).
            full, min_trip = check_placement_dual(
                analyzed.ifg, write_problem, placement, max_paths=check_paths)
            balanced = not full.by_kind("balance")
            sufficient = min_trip.ok(ignore=("safety", "redundant"))
            accept = balanced and sufficient
            if memo is not None and memo.applies(solver_backend):
                memo.store_write_verdict(analyzed.ifg, write_problem, view,
                                         solver_rounds, check_paths, accept)
        if accept:
            return solution, placement
    solution = _solve(analyzed.ifg, write_problem, None, solver_rounds,
                      solver_backend, memo)
    return solution, Placement(analyzed.ifg, write_problem, solution)
