"""Small shared utilities: error types, ordered sets, formatting helpers."""

from repro.util.errors import (
    ReproError,
    ParseError,
    GraphError,
    IrreducibleGraphError,
    SolverError,
    SolverBudgetError,
    AnalysisError,
    ExecutionError,
    CommunicationTimeoutError,
    FaultSpecError,
)
from repro.util.orderedset import OrderedSet
from repro.util.text import indent_block, format_set

__all__ = [
    "ReproError",
    "ParseError",
    "GraphError",
    "IrreducibleGraphError",
    "SolverError",
    "SolverBudgetError",
    "AnalysisError",
    "ExecutionError",
    "CommunicationTimeoutError",
    "FaultSpecError",
    "OrderedSet",
    "indent_block",
    "format_set",
]
