"""Text formatting helpers used by the pretty printers."""


def indent_block(text, levels=1, width=4):
    """Indent every non-empty line of ``text`` by ``levels * width`` spaces."""
    pad = " " * (levels * width)
    lines = text.split("\n")
    return "\n".join(pad + line if line.strip() else line for line in lines)


def format_set(items, empty="{}"):
    """Render an iterable as ``{a, b, c}`` with elements in sorted str order.

    Used for printing dataflow sets and communication argument lists in a
    stable, diff-friendly way.
    """
    rendered = sorted(str(item) for item in items)
    if not rendered:
        return empty
    return "{" + ", ".join(rendered) + "}"
