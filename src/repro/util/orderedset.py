"""An insertion-ordered set.

Flow-graph algorithms in this package must be deterministic: tests assert
exact node numberings and placements, and the paper's figures use a
deterministic PREORDER numbering.  Plain ``set`` iteration order would make
results depend on hash seeds, so collections of nodes/edges use
:class:`OrderedSet`, which iterates in insertion order.
"""

from collections.abc import MutableSet


class OrderedSet(MutableSet):
    """A set that remembers insertion order.

    Backed by a dict (ordered since Python 3.7).  Supports the usual set
    operators; binary operations preserve the left operand's order first.
    """

    def __init__(self, iterable=()):
        self._items = dict.fromkeys(iterable)

    def __contains__(self, item):
        return item in self._items

    def __iter__(self):
        return iter(self._items)

    def __len__(self):
        return len(self._items)

    def add(self, item):
        self._items[item] = None

    def discard(self, item):
        self._items.pop(item, None)

    def update(self, iterable):
        for item in iterable:
            self.add(item)

    def copy(self):
        return OrderedSet(self._items)

    def first(self):
        """Return the first (oldest) element; raise KeyError if empty."""
        for item in self._items:
            return item
        raise KeyError("first() on an empty OrderedSet")

    def __repr__(self):
        return f"OrderedSet({list(self._items)!r})"

    def __eq__(self, other):
        if isinstance(other, (OrderedSet, set, frozenset)):
            return set(self._items) == set(other)
        return NotImplemented

    def __hash__(self):
        raise TypeError("OrderedSet is unhashable (it is mutable)")
