"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single handler.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ParseError(ReproError):
    """Raised by the mini-Fortran lexer/parser on malformed input.

    Carries the 1-based source line and column of the offending token when
    they are known.
    """

    def __init__(self, message, line=None, column=None):
        self.line = line
        self.column = column
        if line is not None:
            location = f"line {line}"
            if column is not None:
                location += f", column {column}"
            message = f"{location}: {message}"
        super().__init__(message)


class GraphError(ReproError):
    """Raised for structurally invalid flow graphs (bad edges, missing root,
    violated normalization invariants)."""


class IrreducibleGraphError(GraphError):
    """Raised when a control flow graph is irreducible and the caller asked
    for strict treatment (no node splitting)."""

    def __init__(self, message, offending_nodes=()):
        self.offending_nodes = tuple(offending_nodes)
        super().__init__(message)


class SolverError(ReproError):
    """Raised when the GIVE-N-TAKE solver is misconfigured (e.g. initial
    variables referencing unknown nodes or universe elements)."""


class SolverBudgetError(SolverError):
    """Raised when the solver's consumption fixpoint does not converge
    within an explicitly requested iteration budget (``max_rounds``)."""


class AnalysisError(ReproError):
    """Raised by the reference/ownership analyses on unsupported input."""


class ExecutionError(ReproError):
    """Raised by the machine simulator when an annotated program cannot
    be executed to completion."""


class CommunicationTimeoutError(ExecutionError):
    """Raised when a receive exhausts its retries: every (re)transmitted
    message was lost by the fault plan within the retry budget."""


class FaultSpecError(ReproError):
    """Raised for malformed fault-plan specifications (bad keys, values
    outside [0, 1], negative durations)."""
