"""Task-DAG extraction from an annotated program.

The builder *runs* the annotated program through the
:class:`~repro.machine.executor.Simulator`'s control-flow machinery —
loops unrolled under the bindings, branches resolved by the
:class:`~repro.machine.executor.ConditionPolicy` — but records tasks
instead of spending time: one compute task per work unit, one send task
per ``*_Send`` statement, one receive task per ``*_Recv``.  Section
descriptors are concretized under the environment at trace time
(``x(11:n + 10)`` at ``n=32`` becomes ``x(11:42)``), so a task list can
later be replayed without re-evaluating the program.

The DAG encodes the paper's legal windows:

* compute tasks form a chain — the scheduler reorders communication
  around the computation stream, never the computation itself;
* a send is pinned *after* the compute task that precedes it in trace
  order (its EAGER point: the annotator already placed the send at the
  earliest legal statement, so hoisting further would cross the point
  where its data becomes available);
* every communication task is pinned *before* the first later compute
  task touching one of its arrays (for a receive this is its LAZY
  point — the consumer needs the data; for a send it is the point its
  data could be overwritten);
* each receive depends on the send(s) of its message, and two
  communication tasks on overlapping arrays keep their trace order, so
  partial-section pairing stays FIFO per array.

The span between a message's send and its first receive is the
EAGER/LAZY *slack window*; :meth:`TaskGraph.windows` reports each
window's width in work units — the computation available for hiding
that message's latency.
"""

from dataclasses import dataclass, field, replace

from repro.lang import ast
from repro.machine.executor import ConditionPolicy, Simulator
from repro.util.errors import AnalysisError

__all__ = ["Task", "MessageGroup", "TaskGraph", "build_task_graph"]


@dataclass
class Task:
    """One schedulable unit: a work quantum, a message issue, or a
    message completion.  ``index`` is the trace position; transformed
    copies keep the index of their earliest constituent and use ``sub``
    to order split chunks."""

    index: int
    kind: str                 # "compute" | "send" | "recv"
    comm_kind: str = None     # "read" | "write" | "prefetch" | …
    args: tuple = ()          # canonical section descriptors
    volume: float = 0.0
    groups: tuple = ()        # message-group ids (send: one; recv: >= 1)
    arrays: frozenset = field(default_factory=frozenset)
    timing: str = None        # "EAGER"/"LAZY" placement provenance
    pin_after: int = None     # compute task this send is pinned after
    consumers: tuple = ()     # compute tasks this comm must precede
    sub: int = 0              # chunk ordinal after a split

    def is_comm(self):
        return self.kind != "compute"


@dataclass
class MessageGroup:
    """One traced message: a send task, the receive task(s) that
    consume its sections, and the EAGER/LAZY slack window between."""

    id: int
    kind: str
    send: int                 # send task index
    recvs: tuple              # receive task indices, trace order
    sections: tuple           # canonical section descriptors
    volume: float
    timing: str = None
    slack_work: float = 0.0   # work units inside the window

    @property
    def eager_index(self):
        return self.send

    @property
    def lazy_index(self):
        return min(self.recvs) if self.recvs else None


@dataclass
class TaskGraph:
    """The traced task list with its dependence edges."""

    program: object
    env: dict
    tasks: list
    groups: dict              # id -> MessageGroup
    preds: dict               # task index -> frozenset of task indices
    succs: dict
    compute_spine: tuple      # compute task indices, trace order
    natural_gap: dict         # comm task index -> naive gap number

    @property
    def spine_position(self):
        """Compute task index -> position in the spine."""
        return {index: pos for pos, index in enumerate(self.compute_spine)}

    def comm_tasks(self):
        return [t for t in self.tasks if t.is_comm()]

    def windows(self):
        """Slack-window report: one row per message group."""
        return [
            {
                "group": group.id,
                "kind": group.kind,
                "sections": list(group.sections),
                "volume": group.volume,
                "timing": group.timing,
                "eager_index": group.eager_index,
                "lazy_index": group.lazy_index,
                "slack_work": group.slack_work,
            }
            for group in self.groups.values()
        ]


def _expression_names(expr):
    for sub in ast.walk_expressions(expr):
        if isinstance(sub, ast.Var):
            yield sub.name
        elif isinstance(sub, ast.ArrayRef):
            yield sub.name


def _statement_names(stmt):
    names = set()
    for expr in ast.statement_expressions(stmt):
        names.update(_expression_names(expr))
    return frozenset(names)


class _TraceBuilder(Simulator):
    """A Simulator that records tasks instead of advancing the clock."""

    def __init__(self, program, machine=None, bindings=None, policy=None):
        super().__init__(program, machine, bindings, policy)
        self.trace = []
        self.raw_groups = {}
        self._group_sequence = 0
        self._current = None

    def _finish_run(self):
        pass  # tracing spends no time; no occupancy event

    def _execute(self, stmt):
        self._current = stmt
        super()._execute(stmt)

    def _work(self):
        self.trace.append(Task(index=len(self.trace), kind="compute",
                               arrays=_statement_names(self._current)))

    def _issue(self, kind, args):
        sections = [(self._descriptor_size(arg), self.canonical_argument(arg))
                    for arg in args]
        volume = float(sum(size for size, _ in sections))
        canonical = tuple(c for _, c in sections)
        self._group_sequence += 1
        group_id = self._group_sequence
        timing = getattr(self._current, "timing", None)
        index = len(self.trace)
        self.trace.append(Task(
            index=index, kind="send", comm_kind=kind, args=canonical,
            volume=volume, groups=(group_id,), timing=timing,
            arrays=frozenset(c.split("(", 1)[0] for c in canonical)))
        self.raw_groups[group_id] = {
            "id": group_id, "kind": kind, "send": index, "recvs": [],
            "sections": canonical, "volume": volume, "timing": timing,
        }
        for arg, (_, c) in zip(args, sections):
            self._outstanding.append({
                "kind": kind, "arg": arg, "canonical": c,
                "array": arg.split("(", 1)[0], "group": group_id,
            })

    def _complete(self, kind, args):
        matched = []
        for arg in args:
            entry = self._find_entry(kind, arg)
            if entry is not None:
                self._outstanding.remove(entry)
                matched.append(entry)
        if not matched:
            raise AnalysisError(
                f"receive of {kind} {sorted(args)} without an outstanding send"
            )
        index = len(self.trace)
        canonical = tuple(entry["canonical"] for entry in matched)
        group_ids = tuple(dict.fromkeys(entry["group"] for entry in matched))
        self.trace.append(Task(
            index=index, kind="recv", comm_kind=kind, args=canonical,
            groups=group_ids, timing=getattr(self._current, "timing", None),
            arrays=frozenset(c.split("(", 1)[0] for c in canonical)))
        for group_id in group_ids:
            self.raw_groups[group_id]["recvs"].append(index)


def build_task_graph(program, machine=None, bindings=None, policy=None):
    """Trace ``program`` under ``bindings``/``policy`` and assemble the
    task DAG.  ``policy`` resolves opaque branches exactly as the naive
    simulation would (same mode and seed → same trace)."""
    if policy is None:
        policy = ConditionPolicy()
    tracer = _TraceBuilder(program, machine, bindings, policy)
    tracer.run()
    tasks = tracer.trace

    preds = {t.index: set() for t in tasks}
    succs = {t.index: set() for t in tasks}

    def edge(a, b):
        if a != b:
            succs[a].add(b)
            preds[b].add(a)

    spine = tuple(t.index for t in tasks if t.kind == "compute")
    for a, b in zip(spine, spine[1:]):
        edge(a, b)

    # natural (naive) gap: number of compute tasks preceding the task
    natural_gap = {}
    seen_compute = 0
    for t in tasks:
        if t.kind == "compute":
            seen_compute += 1
        else:
            natural_gap[t.index] = seen_compute

    comms = [t for t in tasks if t.is_comm()]

    # EAGER pin: a send stays after the compute that precedes it
    for t in comms:
        if t.kind == "send" and natural_gap[t.index] > 0:
            t.pin_after = spine[natural_gap[t.index] - 1]
            edge(t.pin_after, t.index)

    # array-contact pin: every comm task precedes the first later
    # compute touching one of its arrays (the receive's LAZY consumer;
    # for a send, the point its data could be overwritten)
    for t in comms:
        for later in tasks[t.index + 1:]:
            if later.kind == "compute" and later.arrays & t.arrays:
                t.consumers = (later.index,)
                edge(t.index, later.index)
                break

    # message edges: a receive needs its send
    groups = {}
    for raw in tracer.raw_groups.values():
        for r in raw["recvs"]:
            edge(raw["send"], r)
        first_recv = min(raw["recvs"]) if raw["recvs"] else None
        slack = 0.0
        if first_recv is not None:
            unit = tracer.machine.work_unit
            slack = (natural_gap[first_recv]
                     - natural_gap[raw["send"]]) * unit
        groups[raw["id"]] = MessageGroup(
            id=raw["id"], kind=raw["kind"], send=raw["send"],
            recvs=tuple(raw["recvs"]), sections=raw["sections"],
            volume=raw["volume"], timing=raw["timing"], slack_work=slack)

    # trace order between communication tasks on overlapping arrays:
    # keeps partial-section pairing FIFO and read-after-writeback order
    for i, a in enumerate(comms):
        for b in comms[i + 1:]:
            if a.arrays & b.arrays:
                edge(a.index, b.index)

    return TaskGraph(
        program=program,
        env=dict(tracer.env),
        tasks=tasks,
        groups=groups,
        preds={k: frozenset(v) for k, v in preds.items()},
        succs={k: frozenset(v) for k, v in succs.items()},
        compute_spine=spine,
        natural_gap=natural_gap,
    )


def copy_task(task, **changes):
    """A transformed copy of ``task`` (schedules never mutate the
    traced graph)."""
    return replace(task, **changes)
