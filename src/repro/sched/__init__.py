"""repro.sched — the latency-hiding overlap scheduler.

Turns an annotated program's EAGER/LAZY slack into measured makespan
wins: :func:`build_task_graph` traces the program into a task DAG with
explicit slack windows, :func:`overlap_schedule` hoists sends, sinks
receives, coalesces chatter, and splits bulk messages inside those
windows, :func:`certify_schedule` re-checks the result against C1/C3,
and :class:`ScheduleRunner` executes any schedule through the machine
simulator under the same fault/retry semantics as the naive run.  See
``docs/scheduling.md``.
"""

from repro.sched.certify import certify_schedule
from repro.sched.overlap import Schedule, naive_schedule, overlap_schedule
from repro.sched.runner import (
    OverlapComparison,
    ScheduleRunner,
    compare_schedules,
    run_schedule,
)
from repro.sched.taskgraph import MessageGroup, Task, TaskGraph, build_task_graph

__all__ = [
    "MessageGroup",
    "OverlapComparison",
    "Schedule",
    "ScheduleRunner",
    "Task",
    "TaskGraph",
    "build_task_graph",
    "certify_schedule",
    "compare_schedules",
    "naive_schedule",
    "overlap_schedule",
    "run_schedule",
]
