"""Executing a schedule on the machine model.

:class:`ScheduleRunner` *is* a :class:`~repro.machine.executor.Simulator`
— same clock, same message overhead and transfer model, same
FaultPlan/RetryPolicy recovery protocol, same obs timeline events —
except that instead of walking the AST it replays a task list.  Running
the naive schedule therefore reproduces the plain simulation exactly
(to the bit, fault rolls included), which is what makes the overlap
schedule's makespan and final machine state directly comparable.

:func:`compare_schedules` is the one-call differential harness: trace
the program, build the overlap schedule, certify it, run both schedules
under identical fault plans, and report makespans plus whether the
final machine states are identical.
"""

from dataclasses import dataclass

from repro.machine.executor import ConditionPolicy, Simulator
from repro.sched.certify import certify_schedule
from repro.sched.overlap import overlap_schedule
from repro.sched.taskgraph import build_task_graph

__all__ = ["ScheduleRunner", "run_schedule", "OverlapComparison",
           "compare_schedules"]


class ScheduleRunner(Simulator):
    """Drives a :class:`~repro.sched.overlap.Schedule` through the
    simulator's issue/complete machinery in schedule order."""

    def __init__(self, schedule, machine=None, faults=None, retry=None):
        super().__init__(schedule.graph.program, machine,
                         dict(schedule.graph.env), None, faults, retry)
        self.schedule = schedule

    def run(self):
        for task in self.schedule.tasks:
            if task.kind == "compute":
                self._work()
            elif task.kind == "send":
                self._issue(task.comm_kind, list(task.args))
            else:
                self._complete(task.comm_kind, list(task.args))
        self._finish_run()
        return self.metrics


def run_schedule(schedule, machine=None, faults=None, retry=None):
    """Run ``schedule``; return the finished runner (metrics on
    ``.metrics``, observable state via ``.machine_state()``)."""
    runner = ScheduleRunner(schedule, machine, faults, retry)
    runner.run()
    return runner


@dataclass
class OverlapComparison:
    """Differential result of overlap-vs-naive under one fault plan."""

    naive: object             # ExecutionMetrics
    overlap: object           # ExecutionMetrics
    naive_state: dict
    overlap_state: dict
    schedule: object
    certification: object     # CheckReport

    @property
    def states_match(self):
        return self.naive_state == self.overlap_state

    @property
    def certified(self):
        return self.certification.ok()

    @property
    def speedup(self):
        if self.overlap.total_time == 0:
            return 1.0 if self.naive.total_time == 0 else float("inf")
        return self.naive.total_time / self.overlap.total_time

    def summary(self):
        verdict = "identical" if self.states_match else "DIVERGED"
        certified = "ok" if self.certified else "VIOLATED"
        line = (
            f"makespan {self.overlap.total_time:.0f} vs "
            f"{self.naive.total_time:.0f} naive ({self.speedup:.2f}x) "
            f"hidden={self.overlap.hidden_latency:.0f} "
            f"exposed={self.overlap.exposed_latency:.0f} "
            f"wire_busy={self.overlap.wire_busy_time:.0f} "
            f"state={verdict} certified={certified}"
        )
        stats = self.schedule.stats
        if stats:
            line += " " + " ".join(f"{k}={v}" for k, v in sorted(stats.items()))
        return line


def compare_schedules(program, machine=None, bindings=None, *,
                      branch="never", seed=0, faults=None, retry=None,
                      coalesce=True, split=True, split_threshold=None,
                      max_chunks=16):
    """Build, certify, and differentially run the overlap schedule.

    The trace and the naive simulation get separately-constructed
    :class:`ConditionPolicy` instances with the same mode and seed, so
    both resolve opaque branches identically; ``faults`` (a
    :class:`~repro.machine.faults.FaultPlan`) seeds a fresh fault
    stream for each run.
    """
    graph = build_task_graph(program, machine, bindings,
                             ConditionPolicy(branch, seed))
    schedule = overlap_schedule(graph, machine, coalesce=coalesce,
                                split=split, split_threshold=split_threshold,
                                max_chunks=max_chunks)
    certification = certify_schedule(schedule)
    naive_sim = Simulator(program, machine, bindings,
                          ConditionPolicy(branch, seed), faults, retry)
    naive_metrics = naive_sim.run()
    runner = ScheduleRunner(schedule, machine, faults, retry)
    overlap_metrics = runner.run()
    return OverlapComparison(
        naive=naive_metrics,
        overlap=overlap_metrics,
        naive_state=naive_sim.machine_state(),
        overlap_state=runner.machine_state(),
        schedule=schedule,
        certification=certification,
    )
