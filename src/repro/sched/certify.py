"""Re-certification of transformed schedules.

A schedule produced by :func:`~repro.sched.overlap.overlap_schedule`
is checked against the paper's balance and sufficiency criteria at the
task level, reusing the checker's
:class:`~repro.core.checker.Violation` / ``CheckReport`` vocabulary:

* **C1 (balance)** — every traced message still has all its send
  chunks exactly once, its receives exactly once, and no receive runs
  before the last send of its message;
* **C3 (sufficiency)** — the compute spine is intact and in order, no
  send issues before the compute its EAGER point pins it behind, every
  receive completes before each compute that consumes its data, two
  communications on a shared array keep their trace order, and the
  delivered element footprint per (kind, array) is exactly the traced
  one (missing data is a C3 violation; extra data is an O1 redundancy).

The placement-level C1/C3 path replay
(:func:`~repro.core.checker.check_placement`) still certifies the
underlying placements; this module certifies what the scheduler did
*after* them.
"""

from collections import Counter

from repro.core.checker import CheckReport, Violation
from repro.machine.executor import argument_elements

__all__ = ["certify_schedule"]


def _footprint(comm_kind, args):
    counter = Counter()
    for arg in args:
        array, elements = argument_elements(arg)
        counter.update(((comm_kind, array), element) for element in elements)
    return counter


def certify_schedule(schedule):
    """Check ``schedule`` against C1/C3; return a ``CheckReport``."""
    graph = schedule.graph
    tasks = schedule.tasks
    violations = []

    def violate(kind, criterion, element, message):
        violations.append(Violation(kind=kind, criterion=criterion,
                                    element=element, node=None,
                                    message=message, path_index=0))

    # C3: the compute spine is preserved, in order
    scheduled_spine = [t.index for t in tasks if t.kind == "compute"]
    if tuple(scheduled_spine) != graph.compute_spine:
        violate("sufficiency", "C3", "<spine>",
                "compute tasks were reordered, dropped, or duplicated")

    spine_position = {}
    for position, task in enumerate(tasks):
        if task.kind == "compute":
            spine_position[task.index] = position

    sends_of = {gid: [] for gid in graph.groups}
    recvs_of = {gid: [] for gid in graph.groups}
    for position, task in enumerate(tasks):
        if not task.is_comm():
            continue
        for gid in task.groups:
            if gid not in graph.groups:
                violate("balance", "C1", gid,
                        f"schedule references unknown message group {gid}")
                continue
            (sends_of if task.kind == "send" else recvs_of)[gid].append(
                (position, task))

    for gid, group in graph.groups.items():
        sends = sends_of.get(gid, [])
        recvs = recvs_of.get(gid, [])
        if not sends:
            violate("balance", "C1", group.sections,
                    f"message {gid} lost its send")
            continue
        if len(recvs) != len(group.recvs):
            violate("balance", "C1", group.sections,
                    f"message {gid} has {len(recvs)} receives in the "
                    f"schedule but {len(group.recvs)} in the trace")
        if recvs and max(p for p, _ in sends) > min(p for p, _ in recvs):
            violate("balance", "C1", group.sections,
                    f"a receive of message {gid} runs before its send")
        # C3: the EAGER pin — no send chunk before the pinned compute
        pin = graph.tasks[group.send].pin_after
        if pin is not None and pin in spine_position:
            if min(p for p, _ in sends) < spine_position[pin]:
                violate("sufficiency", "C3", group.sections,
                        f"a send of message {gid} was hoisted past its "
                        f"EAGER point")

    # C3: the LAZY pin — a receive completes before its consumers
    for position, task in enumerate(tasks):
        if task.kind != "recv":
            continue
        for consumer in task.consumers:
            consumer_position = spine_position.get(consumer)
            if consumer_position is not None and position > consumer_position:
                violate("sufficiency", "C3", task.args,
                        f"receive at slot {position} runs after its "
                        f"consumer compute task {consumer}")

    # C3: trace order between communications on a shared array.  A
    # task's slots are found by its preserved index (split chunks share
    # it); a send merged away by coalescing is found through its
    # message group instead.  Group keys alone would conflate the
    # partial receives of one message into a single slot range.
    by_index = {}
    by_group = {}
    for position, task in enumerate(tasks):
        if not task.is_comm():
            continue
        by_index.setdefault((task.kind, task.index), []).append(position)
        for gid in task.groups:
            by_group.setdefault((gid, task.kind), []).append(position)

    def slots_of(task):
        direct = by_index.get((task.kind, task.index))
        if direct:
            return direct
        return [position for gid in task.groups
                for position in by_group.get((gid, task.kind), ())]

    original = graph.comm_tasks()
    for i, a in enumerate(original):
        for b in original[i + 1:]:
            if not (a.arrays & b.arrays):
                continue
            a_slots = slots_of(a)
            b_slots = slots_of(b)
            a_last = max(a_slots) if a_slots else -1
            b_first = min(b_slots) if b_slots else len(tasks)
            if a_last > b_first:
                violate("sufficiency", "C3",
                        (a.args, b.args),
                        f"communication order on shared arrays "
                        f"{sorted(a.arrays & b.arrays)} was inverted")

    # C1/O1: delivered element footprint preserved, per kind and phase
    for phase, tag in (("send", "sent"), ("recv", "received")):
        scheduled = Counter()
        reference = Counter()
        for task in tasks:
            if task.kind == phase:
                scheduled += _footprint(task.comm_kind, task.args)
        for task in graph.tasks:
            if task.kind == phase:
                reference += _footprint(task.comm_kind, task.args)
        missing = reference - scheduled
        extra = scheduled - reference
        for key, count in sorted(missing.items()):
            violate("sufficiency", "C3", key,
                    f"{count} traced element(s) no longer {tag}")
        for key, count in sorted(extra.items()):
            violate("redundant", "O1", key,
                    f"{count} element(s) {tag} beyond the trace")

    return CheckReport(violations, paths_checked=1)
