"""The overlap benchmark suite.

Each :class:`Scenario` is a mini-Fortran program plus the machine it is
latency-bound on, chosen so the suite exercises every scheduler
transformation honestly:

* ``bulk`` — one producer loop writing a large section; the write-back
  transfer dwarfs the machine latency, so **split** pipelines it;
* ``fan`` — several producer loops each feeding a point consumer at the
  end; the annotator pins each write-back right after its loop, so
  **sink** moves the write-back/read chains into the consumers' slack;
* ``gather`` — many producers feeding one vectorized read at a single
  consumer on a high-overhead machine, so **coalesce** merges the
  per-producer point sends that all terminate at the shared receive;
* ``pipeline`` — a tight produce/consume chain with no slack: a control
  row where the scheduler must not help much but must never hurt;
* ``fig11`` — the paper's running example as a second control row.

Control rows carry ``latency_bound=False`` and are excluded from the
speedup gate (they still must pass the state-identical and
never-slower gates).  Every scenario also re-runs under its seeded
:class:`~repro.machine.faults.FaultPlan` variants, where the
identical-final-state gate really bites: transformed schedules issue a
different message sequence, so the fault stream diverges while the
delivered data must not.
"""

from dataclasses import dataclass, field

from repro.commgen import generate_communication
from repro.machine.faults import FaultPlan
from repro.machine.model import MachineModel
from repro.sched.runner import compare_schedules
from repro.testing.programs import FIG11_SOURCE

__all__ = ["Scenario", "SCENARIOS", "run_scenario"]


@dataclass(frozen=True)
class Scenario:
    """One benchmark program with its machine and fault variants."""

    name: str
    title: str
    source: str
    machine: dict                  # MachineModel(**machine)
    bindings: dict
    latency_bound: bool = True
    faults: tuple = ()             # FaultPlan spec dicts, one row each
    branch: str = "never"
    seed: int = 0

    def machine_model(self):
        return MachineModel(**self.machine)

    def fault_plans(self):
        """``[(label, FaultPlan | None)]`` — the clean run first."""
        plans = [("none", None)]
        for spec in self.faults:
            label = ",".join(f"{k}={v}" for k, v in sorted(spec.items()))
            plans.append((label, FaultPlan(**spec)))
        return plans


def _producers(count):
    return "".join(
        f"    do i = 1, n\n        x{j}(i) = ...\n    enddo\n"
        for j in range(1, count + 1)
    )


def _decls(count):
    reals = "\n".join(f"real x{j}(4096)" for j in range(1, count + 1))
    dists = "\n".join(f"distribute x{j}(block)" for j in range(1, count + 1))
    return f"{reals}\n{dists}\n"


BULK_SOURCE = _decls(1) + _producers(1) + "    s = x1(2) + 1\n"

FAN_SOURCE = _decls(4) + _producers(4) + "".join(
    f"    s{j} = x{j}(2) + 1\n" for j in range(1, 5)
)

GATHER_SOURCE = _decls(6) + _producers(6) + (
    "    w = " + " + ".join(f"x{j}(2)" for j in range(1, 7)) + "\n"
)

PIPELINE_SOURCE = """
real x(4096)
real y(4096)
distribute x(block)
distribute y(block)
    do i = 1, n
        x(i) = ...
    enddo
    do j = 1, n
        y(j) = x(j) + 1
    enddo
    s = y(2) + 1
"""

_MILD_FAULTS = (
    {"drop_probability": 0.05, "seed": 7},
    {"delay_jitter": 30.0, "seed": 11},
    {"duplicate_probability": 0.1, "seed": 3},
)

SCENARIOS = [
    Scenario(
        name="bulk",
        title="bulk write-back split into pipelined chunks",
        source=BULK_SOURCE,
        machine={"latency": 400.0, "time_per_element": 4.0},
        bindings={"n": 1024},
        faults=_MILD_FAULTS,
    ),
    Scenario(
        name="fan",
        title="per-loop write-backs sunk into end-consumer slack",
        source=FAN_SOURCE,
        machine={"latency": 400.0},
        bindings={"n": 64},
        faults=_MILD_FAULTS,
    ),
    Scenario(
        name="gather",
        title="point sends coalesced into the shared vectorized receive",
        source=GATHER_SOURCE,
        machine={"latency": 200.0, "message_overhead": 120.0},
        bindings={"n": 64},
        faults=_MILD_FAULTS,
    ),
    Scenario(
        name="pipeline",
        title="tight produce/consume chain (control: no slack)",
        source=PIPELINE_SOURCE,
        machine={"latency": 100.0},
        bindings={"n": 32},
        latency_bound=False,
        faults=_MILD_FAULTS,
    ),
    Scenario(
        name="fig11",
        title="paper Figure 11 running example (control)",
        source=FIG11_SOURCE,
        machine={"latency": 100.0},
        bindings={"n": 16},
        latency_bound=False,
        faults=({"drop_probability": 0.05, "seed": 7},),
    ),
]


def run_scenario(scenario):
    """Run one scenario under each of its fault variants.

    Returns ``[(label, OverlapComparison)]``; the communication
    pipeline runs once, the schedule comparison once per variant."""
    result = generate_communication(scenario.source)
    program = result.annotated_program
    machine = scenario.machine_model()
    rows = []
    for label, plan in scenario.fault_plans():
        rows.append((label, compare_schedules(
            program, machine, dict(scenario.bindings),
            branch=scenario.branch, seed=scenario.seed, faults=plan)))
    return rows
