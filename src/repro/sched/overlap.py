"""Schedule transformations over the task DAG.

:func:`overlap_schedule` list-schedules a :class:`TaskGraph` around its
fixed compute spine.  Positions are *gaps*: gap ``g`` executes after
compute ``g - 1`` and before compute ``g`` (gap ``len(spine)`` is the
end of the program).  Four transformations fall out of the placement:

* **hoist** — a send issues at its EAGER gap (right after the compute
  it is pinned behind), even when the naive order parked a receive in
  front of it, so independent messages are all in flight before the
  first blocking receive;
* **sink** — a receive completes at its *latest* legal gap: just
  before its first consumer compute, its earliest dependent
  communication, or the end of the program, so all computation inside
  its EAGER/LAZY window runs while the message is on the wire;
* **coalesce** — small same-kind messages whose sections are consumed
  by one shared receive merge into a single send at the latest
  member's gap, amortizing ``message_overhead`` across the batch;
* **split** — a message whose transfer time dwarfs the machine latency
  is cut into chunks that travel concurrently, so the wire pipelines
  instead of serializing one bulk transfer (chunk count balances the
  per-chunk overhead against the divided transfer:
  ``k* = sqrt(volume * time_per_element / overhead)``).

Placement runs two sweeps.  Backward, every communication task gets its
``latest`` legal gap (min over its array-contact cap and its
successors' latest).  Forward, sends place at the max of their EAGER
gap and their predecessors' placements — as early as legal — while
receives place at their ``latest`` — as late as legal.  Within a gap, a
topological order (sends preferred first) settles ties.  The result is
deterministic for a given graph.
"""

import math
import re
from collections import defaultdict
from dataclasses import dataclass, field

from repro.machine.model import MachineModel
from repro.sched.taskgraph import copy_task
from repro.util.errors import AnalysisError

__all__ = ["Schedule", "naive_schedule", "overlap_schedule"]

_RANGE = re.compile(r"^([A-Za-z_]\w*)\((\d+):(\d+)\)$")


@dataclass
class Schedule:
    """An executable task order plus how it was derived."""

    name: str
    tasks: list
    graph: object
    stats: dict = field(default_factory=dict)

    def summary(self):
        parts = [f"schedule={self.name}", f"tasks={len(self.tasks)}"]
        parts.extend(f"{key}={value}"
                     for key, value in sorted(self.stats.items()))
        return " ".join(parts)


def naive_schedule(graph):
    """The trace order itself — what the plain Simulator executes."""
    return Schedule(name="naive", tasks=list(graph.tasks), graph=graph)


def overlap_schedule(graph, machine=None, *, coalesce=True, split=True,
                     split_threshold=None, max_chunks=16,
                     max_coalesce=8):
    """List-schedule ``graph`` for latency hiding under ``machine``."""
    machine = machine if machine is not None else MachineModel()
    tasks = graph.tasks
    spine_pos = graph.spine_position
    end_gap = len(graph.compute_spine)
    comms = graph.comm_tasks()

    def contact_cap(task):
        if task.consumers:
            return min(spine_pos[c] for c in task.consumers)
        return end_gap

    # backward sweep: the latest gap each comm task may occupy
    latest = {}
    for task in reversed(comms):
        cap = contact_cap(task)
        for succ in graph.succs[task.index]:
            if tasks[succ].is_comm():
                cap = min(cap, latest[succ])
        latest[task.index] = cap

    # forward sweep: sends as early as legal, receives as late as legal
    placed = {}
    earliest = {}
    for task in comms:
        pred_gaps = [placed[p] for p in graph.preds[task.index]
                     if tasks[p].is_comm()]
        floor = max(pred_gaps, default=0)
        if task.kind == "send":
            floor = max(floor, graph.natural_gap[task.index])
        earliest[task.index] = floor
        gap = floor if task.kind == "send" else latest[task.index]
        if gap < floor or gap > latest[task.index]:
            raise AnalysisError(
                f"infeasible window for task {task.index}: "
                f"floor={floor} latest={latest[task.index]}")
        placed[task.index] = gap

    stats = {
        "sunk": sum(1 for t in comms if t.kind == "recv"
                    and placed[t.index] > graph.natural_gap[t.index]),
        "coalesced": 0,
        "split_chunks": 0,
    }

    # working copies: (task copy, gap)
    items = [(copy_task(t), placed[t.index]) for t in comms]

    if coalesce:
        items = _coalesce(items, graph, machine, earliest, latest,
                          max_coalesce, stats)
    if split:
        items = _split(items, graph, machine, split_threshold, max_chunks,
                       stats)

    order = _emit(items, graph, end_gap)
    return Schedule(name="overlap", tasks=order, graph=graph, stats=stats)


# -- coalescing ---------------------------------------------------------------

def _exclusive_single_recv(task, graph):
    """The receive task index if this send's message is consumed by
    exactly one receive that consumes nothing else."""
    if task.kind != "send" or len(task.groups) != 1:
        return None
    group = graph.groups[task.groups[0]]
    if len(group.recvs) != 1:
        return None
    recv = graph.tasks[group.recvs[0]]
    if recv.groups != task.groups:
        return None
    return recv.index

def _shared_recv(task, graph):
    """The receive task index if this send's whole message is consumed
    by exactly one receive and the send feeds nothing else — the shape
    the annotator leaves behind when it vectorizes the receive side of
    several point productions but keeps their sends at distinct EAGER
    points."""
    if task.kind != "send" or len(task.groups) != 1:
        return None
    group = graph.groups[task.groups[0]]
    if len(group.recvs) != 1:
        return None
    recv_index = group.recvs[0]
    comm_succs = [s for s in graph.succs[task.index]
                  if graph.tasks[s].is_comm()]
    if any(s != recv_index for s in comm_succs):
        return None
    return recv_index

def _coalesce(items, graph, machine, earliest, latest, max_coalesce, stats):
    """Merge small same-kind sends that share one receive task into one
    message, amortizing ``message_overhead`` across the batch.

    The shared receive already lists every member's sections (the
    annotator vectorized it), so only the send side changes.  The
    merged send is placed at the latest member's gap and keyed at the
    *largest* member index, so the within-gap order still runs every
    member's communication predecessors (e.g. the write-backs that pin
    the sends) first."""
    del earliest  # receives are not moved by this transformation
    by_index = {item[0].index: item for item in items}
    small = machine.latency / max(machine.time_per_element, 1e-9)

    buckets = defaultdict(list)  # (comm_kind, recv index) -> [(task, gap)]
    for task, gap in items:
        if task.kind != "send" or task.volume > small:
            continue
        recv_index = _shared_recv(task, graph)
        if recv_index is not None:
            buckets[(task.comm_kind, recv_index)].append((task, gap))

    merged_away = set()
    replacements = []
    for (comm_kind, recv_index), members in sorted(buckets.items()):
        del comm_kind
        recv_gap = by_index[recv_index][1]
        while len(members) > 1:
            chunk, members = members[:max_coalesce], members[max_coalesce:]
            if len(chunk) < 2:
                break
            send_gap = max(gap for _, gap in chunk)
            if send_gap > recv_gap or any(
                    latest[t.index] < send_gap for t, _ in chunk):
                continue
            # separate messages travel concurrently (transfer paced by
            # the largest), one merged message serializes the volumes:
            # merge only when the amortized overheads beat that penalty
            volumes = [t.volume for t, _ in chunk]
            saved = (len(chunk) - 1) * machine.message_overhead
            penalty = machine.time_per_element * (sum(volumes) - max(volumes))
            if saved <= penalty:
                continue
            sends = [t for t, _ in chunk]
            merged = copy_task(
                sends[-1],
                index=max(s.index for s in sends),
                args=tuple(a for s in sends for a in s.args),
                volume=sum(s.volume for s in sends),
                groups=tuple(g for s in sends for g in s.groups),
                arrays=frozenset().union(*(s.arrays for s in sends)),
                pin_after=max((s.pin_after for s in sends
                               if s.pin_after is not None), default=None),
                consumers=tuple(sorted({c for s in sends
                                        for c in s.consumers})),
            )
            merged_away.update(s.index for s in sends)
            replacements.append((merged, send_gap))
            stats["coalesced"] += len(sends) - 1

    if not replacements:
        return items
    kept = [item for item in items if item[0].index not in merged_away]
    return sorted(kept + replacements, key=lambda item: item[0].index)


# -- splitting ----------------------------------------------------------------

def _simple_ranges(args):
    """``[(array, lo, hi)]`` when every section is a concrete
    one-dimensional range, else ``None``."""
    out = []
    for arg in args:
        match = _RANGE.match(arg.replace(" ", ""))
        if match is None:
            return None
        out.append((match.group(1), int(match.group(2)), int(match.group(3))))
    return out

def _split(items, graph, machine, threshold, max_chunks, stats):
    """Cut oversized messages into concurrently-travelling chunks."""
    if threshold is None:
        threshold = 2.0 * machine.latency
    by_index = {item[0].index: item for item in items}
    out = []
    recv_patch = {}  # recv index -> (old group args replaced by chunks)
    for task, gap in items:
        recv_index = _exclusive_single_recv(task, graph)
        ranges = _simple_ranges(task.args) if recv_index is not None else None
        transfer = task.volume * machine.time_per_element
        if ranges is None or transfer < threshold:
            out.append((task, gap))
            continue
        total = int(sum(hi - lo + 1 for _, lo, hi in ranges))
        chunks = int(round(math.sqrt(
            max(transfer / max(machine.message_overhead, 1e-9), 0.0))))
        chunks = max(2, min(chunks, max_chunks, total))
        if chunks < 2 or total < 2:
            out.append((task, gap))
            continue
        per = -(-total // chunks)  # ceil
        chunk_args = []
        current = []
        room = per
        for array, lo, hi in ranges:
            position = lo
            while position <= hi:
                take = min(room, hi - position + 1)
                current.append(f"{array}({position}:{position + take - 1})")
                position += take
                room -= take
                if room == 0:
                    chunk_args.append(tuple(current))
                    current = []
                    room = per
        if current:
            chunk_args.append(tuple(current))
        for sub, args in enumerate(chunk_args):
            volume = float(sum(
                int(m.group(3)) - int(m.group(2)) + 1
                for m in (_RANGE.match(a) for a in args)))
            out.append((copy_task(task, args=args, volume=volume, sub=sub),
                        gap))
        recv_patch[recv_index] = (tuple(task.args),
                                  tuple(a for args in chunk_args
                                        for a in args))
        stats["split_chunks"] += len(chunk_args)

    if not recv_patch:
        return out
    patched = []
    for task, gap in out:
        patch = recv_patch.get(task.index) if task.kind == "recv" else None
        if patch is not None:
            old, new = patch
            remaining = [a for a in task.args if a not in old]
            patched.append((copy_task(task, args=tuple(new) + tuple(remaining)),
                            gap))
        else:
            patched.append((task, gap))
    return patched


# -- emission -----------------------------------------------------------------

def _must_precede(a, b):
    """Within-gap ordering: a send before the receive of its message,
    and trace order between tasks on overlapping arrays."""
    if (a.kind == "send" and b.kind == "recv"
            and set(a.groups) & set(b.groups)):
        return True
    if a.arrays & b.arrays and (a.index, a.sub) < (b.index, b.sub):
        return True
    return False

def _topsort_gap(bucket):
    pending = list(bucket)
    order = []
    while pending:
        ready = [t for t in pending
                 if not any(_must_precede(o, t) for o in pending if o is not t)]
        if not ready:
            raise AnalysisError("cyclic within-gap communication order")
        ready.sort(key=lambda t: (t.kind != "send", t.index, t.sub))
        chosen = ready[0]
        order.append(chosen)
        pending.remove(chosen)
    return order

def _emit(items, graph, end_gap):
    by_gap = defaultdict(list)
    for task, gap in items:
        by_gap[gap].append(task)
    order = []
    for gap in range(end_gap + 1):
        order.extend(_topsort_gap(by_gap[gap]))
        if gap < end_gap:
            order.append(graph.tasks[graph.compute_spine[gap]])
    return order
