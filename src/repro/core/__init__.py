"""The GIVE-N-TAKE framework itself (paper §3–§5).

* :mod:`repro.core.lattice` — the dataflow universe (interned elements,
  bitset sets).
* :mod:`repro.core.problem` — problem description: direction
  (BEFORE/AFTER), initial variables ``TAKE_init`` / ``STEAL_init`` /
  ``GIVE_init``, zero-trip hoisting control.
* :mod:`repro.core.equations` — the fifteen dataflow equations.
* :mod:`repro.core.solver` — algorithm *GiveNTake* (Figure 15): four
  passes, each equation evaluated exactly once per node.
* :mod:`repro.core.placement` — EAGER/LAZY production placements in
  program positions.
* :mod:`repro.core.paths` + :mod:`repro.core.checker` — bounded path
  enumeration and ground-truth validation of the correctness criteria
  C1 (balance), C2 (safety), C3 (sufficiency) and optimality O1.
* :mod:`repro.core.postpass` — shifting production off synthetic nodes
  (§5.4).
"""

from repro.core.lattice import Universe
from repro.core.problem import Direction, Timing, Problem
from repro.core.solution import Solution
from repro.core.solver import solve, GiveNTakeSolver
from repro.core.placement import Placement, Production
from repro.core.paths import enumerate_paths
from repro.core.checker import check_placement, CheckReport, Violation
from repro.core.postpass import shift_synthetic_productions
from repro.core.pressure import limit_production_span, measure_spans
from repro.core.regions import Region, extract_regions, region_summary

__all__ = [
    "Universe",
    "Direction",
    "Timing",
    "Problem",
    "Solution",
    "solve",
    "GiveNTakeSolver",
    "Placement",
    "Production",
    "enumerate_paths",
    "check_placement",
    "CheckReport",
    "Violation",
    "shift_synthetic_productions",
    "limit_production_span",
    "measure_spans",
    "Region",
    "extract_regions",
    "region_summary",
]
