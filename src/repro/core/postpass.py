"""Shifting production off synthetic nodes (paper §5.4).

Production placed at a synthetic node requires a new basic block at code
generation time (a landing pad, a fresh ``else`` branch).  Often the
production can instead be merged into an adjacent real node without
changing the set of paths it executes on:

* into ``BEFORE(succ)`` when the synthetic node is the successor's only
  non-back-edge predecessor (all executions of ``succ``'s preheader
  position pass through the synthetic node), or
* into ``AFTER(pred)`` when the synthetic node is the predecessor's only
  successor.

The pass runs backward over the graph, mirroring the paper's
implementation, and leaves productions in place when no conflict-free
shift exists (the annotator then materializes a block).
"""

from repro.core.placement import Position
from repro.core.problem import Timing
from repro.graph.interval_graph import EdgeType


def shift_synthetic_productions(placement):
    """Shift productions off synthetic nodes where possible, in place.

    Returns the list of (synthetic_node, target_node) moves performed.
    """
    ifg = placement.ifg
    cfg = ifg.cfg
    moves = []
    for node in reversed(cfg.nodes()):
        if not node.synthetic:
            continue
        has_production = any(
            placement.bits_at(node, position, timing)
            for position in Position
            for timing in Timing
        )
        if not has_production:
            continue
        target = _shift_target(ifg, node)
        if target is None:
            continue
        target_node, target_position = target
        for position in Position:
            for timing in Timing:
                placement.move(node, position, timing, target_node, target_position)
        moves.append((node, target_node))
    return moves


def _shift_target(ifg, node):
    """Where production at synthetic ``node`` may move, or None.

    Synthetic nodes from critical-edge splits have exactly one real
    predecessor and one real successor; both positions of the empty node
    denote the same execution point, so any qualifying neighbor works.
    """
    cfg = ifg.cfg
    succs = cfg.succs(node)
    preds = cfg.preds(node)
    if len(succs) == 1:
        succ = succs[0]
        non_cycle_preds = [
            p for p in cfg.preds(succ)
            if ifg.edge_type(p, succ) is not EdgeType.CYCLE
        ]
        if non_cycle_preds == [node]:
            return succ, Position.BEFORE
    if len(preds) == 1:
        pred = preds[0]
        if cfg.succs(pred) == [node]:
            return pred, Position.AFTER
    return None
