"""The fifteen GIVE-N-TAKE equations (paper Figure 13).

Each function computes one equation for one node, reading already-computed
neighbor values from the :class:`~repro.core.solution.Solution` store.
The solver (Figure 15) guarantees the evaluation order makes every right
hand side fully known, so each function is called exactly once per node.

Notation: ``view`` supplies the neighbor relations (``succs(n, "FJS")`` is
``SUCCS^{FJS}(n)``), ``sol`` the variable store, ``problem`` the initial
variables.  All set values are bitsets.
"""

from repro.core.lattice import meet_over, union_over

#: Paper equation number of the variable each equation defines — the key
#: under which the solver's tracer counts evaluations (one entry per
#: solution variable; see ``repro.obs``).
EQUATION_NUMBERS = {
    "STEAL": 1,
    "GIVE": 2,
    "BLOCK": 3,
    "TAKEN_out": 4,
    "TAKE": 5,
    "TAKEN_in": 6,
    "BLOCK_loc": 7,
    "TAKE_loc": 8,
    "GIVE_loc": 9,
    "STEAL_loc": 10,
    "GIVEN_in": 11,
    "GIVEN": 12,
    "GIVEN_out": 13,
    "RES_in": 14,
    "RES_out": 15,
}

# --------------------------------------------------------------------------
# S1 — propagating consumption (Equations 1..8), evaluated in
# REVERSEPREORDER (backward + upward).
# --------------------------------------------------------------------------


def eq1_steal(problem, view, sol, n):
    """STEAL(n) = STEAL_init(n) ∪ STEAL_loc(LASTCHILD(n)).

    Two blocking mechanisms inject a whole-universe steal here, both the
    paper's own prescription of "accordingly initializing STEAL_init":

    * AFTER problems: headers of loops containing a JUMP source — under
      reversal those jumps enter the loop mid-body, so no production
      region may span the loop (§5.3);
    * ``hoist_zero_trip=False``: every loop header, so nothing is ever
      produced on a zero-trip path (§4.1).  Seeding STEAL (rather than
      merely skipping Eq 5's hoist terms) blocks the EAGER and LAZY
      solutions symmetrically, which is what keeps them balanced (C1).
    """
    bits = problem.steal_init(n)
    blocked = view.steal_all(n) or (
        not problem.hoist_zero_trip
        and n is not view.root
        and view.is_header(n)
    )
    if blocked:
        bits |= problem.universe.top
    lastchild = view.lastchild(n)
    if lastchild is not None:
        bits |= sol.bits("STEAL_loc", lastchild)
    return bits


def eq2_give(problem, view, sol, n):
    """GIVE(n) = GIVE_init(n) ∪ GIVE_loc(LASTCHILD(n)).

    With ``trust_loop_side_effects=False`` the LASTCHILD term is dropped:
    a potentially zero-trip body's productions are not guaranteed to have
    happened, so they must not count as available past the loop."""
    bits = problem.give_init(n)
    if problem.trust_loop_side_effects:
        lastchild = view.lastchild(n)
        if lastchild is not None:
            bits |= sol.bits("GIVE_loc", lastchild)
    return bits


def eq3_block(problem, view, sol, n):
    """BLOCK(n) = STEAL(n) ∪ GIVE(n) ∪ ⋃_{s ∈ SUCCS^E(n)} BLOCK_loc(s)."""
    bits = sol.bits("STEAL", n) | sol.bits("GIVE", n)
    bits |= union_over(sol.bits("BLOCK_loc", s) for s in view.succs(n, "E"))
    return bits


def eq4_taken_out(problem, view, sol, n):
    """TAKEN_out(n) = ⋂_{s ∈ SUCCS^{FJS}(n)} TAKEN_in(s).

    SYNTHETIC successors participate so that jumps out of loops cannot
    skip the only consumer of a hoisted production (safety)."""
    return meet_over(sol.bits("TAKEN_in", s) for s in view.succs(n, "FJS"))


def eq5_take(problem, view, sol, n):
    """TAKE(n) = TAKE_init(n)
               ∪ (⋃_{s ∈ SUCCS^E(n)} TAKEN_in(s) − STEAL(n))
               ∪ ((TAKEN_out(n) ∩ ⋃_{s ∈ SUCCS^E(n)} TAKE_loc(s)) − BLOCK(n)).

    The two ENTRY-successor terms hoist consumption out of the loop body
    into the header.  Hoist *blocking* (zero-trip loops, §4.1; reversed
    jumps, §5.3) happens via whole-universe STEAL seeding in Eq 1, which
    makes both terms vanish here."""
    bits = problem.take_init(n)
    entry_succs = view.succs(n, "E")
    guaranteed = union_over(sol.bits("TAKEN_in", s) for s in entry_succs)
    bits |= guaranteed & ~sol.bits("STEAL", n)
    possible = union_over(sol.bits("TAKE_loc", s) for s in entry_succs)
    bits |= (sol.bits("TAKEN_out", n) & possible) & ~sol.bits("BLOCK", n)
    return bits


def eq6_taken_in(problem, view, sol, n):
    """TAKEN_in(n) = TAKE(n) ∪ (TAKEN_out(n) − BLOCK(n))."""
    return sol.bits("TAKE", n) | (sol.bits("TAKEN_out", n) & ~sol.bits("BLOCK", n))


def eq7_block_loc(problem, view, sol, n):
    """BLOCK_loc(n) = (BLOCK(n) ∪ ⋃_{s ∈ SUCCS^F(n)} BLOCK_loc(s)) − TAKE(n)."""
    bits = sol.bits("BLOCK", n)
    bits |= union_over(sol.bits("BLOCK_loc", s) for s in view.succs(n, "F"))
    return bits & ~sol.bits("TAKE", n)


def eq8_take_loc(problem, view, sol, n):
    """TAKE_loc(n) = TAKE(n) ∪ (⋃_{s ∈ SUCCS^{EF}(n)} TAKE_loc(s) − BLOCK(n))."""
    bits = union_over(sol.bits("TAKE_loc", s) for s in view.succs(n, "EF"))
    return sol.bits("TAKE", n) | (bits & ~sol.bits("BLOCK", n))


# --------------------------------------------------------------------------
# S2 — blocking consumption (Equations 9, 10), evaluated for the children
# of each interval in FORWARD order, inside the REVERSEPREORDER sweep.
# --------------------------------------------------------------------------


def eq9_give_loc(problem, view, sol, n):
    """GIVE_loc(n) = (GIVE(n) ∪ TAKE(n) ∪ ⋂_{p ∈ PREDS^{FJ}(n)} GIVE_loc(p))
                    − STEAL(n).

    Consumed items count as produced: consumption is guaranteed to be
    satisfied by a production (C3).

    The predecessor letters come from the view: "FJ" forward; "F" only
    in the backward view, where reversed jumps are not same-interval
    flow (see BackwardView.loc_pred_letters)."""
    bits = sol.bits("GIVE", n) | sol.bits("TAKE", n)
    bits |= meet_over(
        sol.bits("GIVE_loc", p) for p in view.preds(n, view.loc_pred_letters)
    )
    return bits & ~sol.bits("STEAL", n)


def eq10_steal_loc(problem, view, sol, n):
    """STEAL_loc(n) = STEAL(n)
                    ∪ ⋃_{p ∈ PREDS^{FJ}(n)} (STEAL_loc(p) − GIVE_loc(p))
                    ∪ ⋃_{p ∈ PREDS^S(n)} STEAL_loc(p).

    A SYNTHETIC predecessor is the header of a loop that was jumped out
    of: the loop may have been left mid-iteration, so items it resupplies
    (GIVE_loc) cannot be excluded.

    As in Eq 9, the edge letters come from the view."""
    bits = sol.bits("STEAL", n)
    for p in view.preds(n, view.loc_pred_letters):
        bits |= sol.bits("STEAL_loc", p) & ~sol.bits("GIVE_loc", p)
    for p in view.preds(n, view.loc_synthetic_letters):
        bits |= sol.bits("STEAL_loc", p)
    return bits


# --------------------------------------------------------------------------
# S3 — placing production (Equations 11..13), evaluated in PREORDER
# (forward + downward), once per timing.
# --------------------------------------------------------------------------


def eq11_given_in(problem, view, sol, n, timing):
    """GIVEN_in(n) = GIVEN(HEADER(n))
                   ∪ ⋂_{p ∈ PREDS^{FJ}(n)} GIVEN_out(p)
                   ∪ (TAKEN_in(n) ∩ ⋃_{q ∈ PREDS^{FJ}(n)} GIVEN_out(q)).

    The last term makes items available that only *some* predecessors
    produced, provided they are guaranteed to be consumed — Eq 15 then
    patches the other predecessors' exits (RES_out) to restore C3.

    Deviation from the paper's literal text (documented in DESIGN.md):
    the header term subtracts STEAL(HEADER(n)).  Availability inherited
    from the header holds on the *first* iteration only; an element the
    loop body steals without resupplying is gone on every later
    iteration, so passing it into the body violates sufficiency (C3) on
    multi-trip paths.  STEAL(h) (Eq 1) summarizes exactly the body's
    unresupplied kills, and the subtraction leaves all of the paper's §4
    example values unchanged."""
    header = view.header_of(n)
    bits = 0
    if header is not None:
        bits = sol.bits("GIVEN", header, timing) & ~sol.bits("STEAL", header)
    fj_preds = view.preds(n, "FJ")
    bits |= meet_over(sol.bits("GIVEN_out", p, timing) for p in fj_preds)
    some = union_over(sol.bits("GIVEN_out", q, timing) for q in fj_preds)
    bits |= sol.bits("TAKEN_in", n) & some
    return bits


def eq12_given(problem, view, sol, n, timing, root):
    """GIVEN(n) = GIVEN_in(n) ∪ TAKEN_in(n)   (EAGER)
                = GIVEN_in(n) ∪ TAKE(n)        (LAZY).

    ROOT is not a program point: nothing can be produced there, so its
    GIVEN is just GIVEN_in (empty) and production lands at the program
    entry node instead — this is why the paper's §4 examples exclude ROOT.
    """
    from repro.core.problem import Timing

    bits = sol.bits("GIVEN_in", n, timing)
    if n is root:
        return bits
    if timing is Timing.EAGER:
        return bits | sol.bits("TAKEN_in", n)
    return bits | sol.bits("TAKE", n)


def eq13_given_out(problem, view, sol, n, timing):
    """GIVEN_out(n) = (GIVE(n) ∪ GIVEN(n)) − STEAL(n)."""
    bits = sol.bits("GIVE", n) | sol.bits("GIVEN", n, timing)
    return bits & ~sol.bits("STEAL", n)


# --------------------------------------------------------------------------
# S4 — result variables (Equations 14, 15), any order after S1 and S3.
# --------------------------------------------------------------------------


def eq14_res_in(problem, view, sol, n, timing):
    """RES_in(n) = GIVEN(n) − GIVEN_in(n): production generated at the
    entry of n (exit for AFTER problems)."""
    return sol.bits("GIVEN", n, timing) & ~sol.bits("GIVEN_in", n, timing)


def eq15_res_out(problem, view, sol, n, timing):
    """RES_out(n) = ⋃_{s ∈ SUCCS^{FJ}(n)} GIVEN_in(s) − GIVEN_out(n):
    production at the exit of n for items a *sibling* predecessor of a
    successor made available (balance patching; see Eq 11)."""
    bits = union_over(sol.bits("GIVEN_in", s, timing) for s in view.succs(n, "FJ"))
    return bits & ~sol.bits("GIVEN_out", n, timing)
