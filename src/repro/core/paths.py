"""Bounded execution-path enumeration.

The checker validates placements by *replaying* them along actual control
flow paths.  :func:`enumerate_paths` yields entry→exit node sequences over
the real CFG edges, visiting each node at most ``max_node_visits`` times
per path (so every loop is exercised with 0, 1, … trips) and yielding at
most ``max_paths`` paths.

Paths are deterministic: successors are explored in edge insertion order.
"""


def enumerate_paths(ifg, max_paths=200, max_node_visits=3, min_trips=0):
    """List of entry→exit paths (each a list of nodes) of ``ifg``'s CFG.

    ``min_trips=1`` restricts to paths on which every loop that is
    *entered* executes its body at least once — the paths on which the
    paper's loop-parametric availability claims are exact (a zero-trip
    loop's sections are empty, see DESIGN.md).
    """
    cfg = ifg.cfg
    forest = ifg.forest
    paths = []
    counts = {node: 0 for node in cfg.nodes()}
    path = [cfg.entry]
    counts[cfg.entry] = 1

    def allowed_succs(node, arrived_externally):
        succs = cfg.succs(node)
        if min_trips and forest.is_header(node) and arrived_externally:
            # Fresh loop entry: force at least one trip through the body.
            return [s for s in succs if forest.contains(node, s)]
        return succs

    def explore(node):
        if len(paths) >= max_paths:
            return
        if node is cfg.exit:
            paths.append(list(path))
            return
        previous = path[-2] if len(path) > 1 else None
        arrived_externally = previous is None or not forest.contains(node, previous)
        for succ in allowed_succs(node, arrived_externally):
            if counts[succ] >= max_node_visits:
                continue
            counts[succ] += 1
            path.append(succ)
            explore(succ)
            path.pop()
            counts[succ] -= 1

    explore(cfg.entry)
    return paths


def path_edge_types(ifg, path):
    """Edge types along a path: ``types[i]`` is the type of the edge
    ``(path[i], path[i+1])``."""
    return [ifg.edge_type(path[i], path[i + 1]) for i in range(len(path) - 1)]
