"""Human-readable reports of solved instances.

Renders the §4-style listings the paper uses (``y_b ∈ STEAL({2,3})``),
the production placements, and the region spans — the debugging view a
compiler writer wants when adopting the framework.
"""

from repro.core.pressure import measure_spans
from repro.core.problem import Timing
from repro.core.solution import SHARED_VARIABLES, TIMED_VARIABLES


def membership_listing(analyzed, solution, variables=None, timings=None):
    """Paper-style membership lines: ``element ∈ VAR({nodes...})``."""
    universe = solution.problem.universe
    variables = variables or (list(SHARED_VARIABLES) + list(TIMED_VARIABLES))
    lines = []
    for name in variables:
        timed = name in TIMED_VARIABLES
        for timing in (timings or list(Timing)) if timed else [None]:
            for element in universe:
                nodes = solution.nodes_with(name, element, timing)
                numbers = analyzed.numbers(nodes)
                if not numbers:
                    continue
                tag = f"{name}^{timing.value}" if timing else name
                joined = ", ".join(str(n) for n in numbers)
                lines.append(f"{element} ∈ {tag}({{{joined}}})")
    return lines


def placement_listing(analyzed, placement):
    """One line per production: where, when, what."""
    lines = []
    for production in placement.productions():
        number = analyzed.numbering.get(production.node, "?")
        elements = ", ".join(sorted(str(e) for e in production.elements))
        lines.append(
            f"node {number:>3} {production.position.value:<6} "
            f"{production.timing.value:<5} {{{elements}}}  "
            f"[{production.node.name}]"
        )
    return lines


def span_listing(analyzed, placement):
    """Region spans per element (EAGER start → LAZY end, PREORDER
    distance) — what the §6 pressure heuristic caps."""
    lines = []
    for element, (span, eager_node, lazy_node) in sorted(
            measure_spans(analyzed.ifg, placement).items(), key=lambda i: str(i[0])):
        eager = analyzed.numbering.get(eager_node, "?")
        lazy = analyzed.numbering.get(lazy_node, "?")
        lines.append(f"{element}: span {span} (node {eager} → node {lazy})")
    return lines


def solution_report(analyzed, problem, solution, placement=None, title=""):
    """The full report as one string."""
    sections = []
    if title:
        sections.append(f"=== {title} ===")
    sections.append("universe: "
                    + (", ".join(str(e) for e in problem.universe) or "(empty)"))

    init_lines = []
    for node in problem.annotated_nodes():
        number = analyzed.numbering.get(node, "?")
        parts = []
        for label, bits in (("take", problem.take_init(node)),
                            ("steal", problem.steal_init(node)),
                            ("give", problem.give_init(node))):
            if bits:
                parts.append(f"{label}={problem.universe.format(bits)}")
        init_lines.append(f"  node {number:>3} [{node.name}]: " + " ".join(parts))
    sections.append("initial variables:\n" + ("\n".join(init_lines) or "  (none)"))

    memberships = membership_listing(
        analyzed, solution,
        variables=["STEAL", "GIVE", "TAKE", "TAKEN_in", "GIVEN", "RES_in",
                   "RES_out"])
    sections.append("dataflow (paper-style listings):\n"
                    + ("\n".join("  " + line for line in memberships) or "  (none)"))

    if placement is not None:
        placements = placement_listing(analyzed, placement)
        sections.append("placements:\n"
                        + ("\n".join("  " + line for line in placements)
                           or "  (none)"))
        spans = span_listing(analyzed, placement)
        sections.append("region spans:\n"
                        + ("\n".join("  " + line for line in spans) or "  (none)"))
    return "\n".join(sections) + "\n"
