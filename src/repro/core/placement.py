"""Program-position production placements.

The solver's result variables are relative to the *view* direction: for a
BEFORE problem ``RES_in`` is production at a node's entry, but for an
AFTER problem the in/out subscripts denote exit/entry (paper §4).
:class:`Placement` normalizes both into program positions: a production
either happens ``BEFORE`` a node executes or ``AFTER`` it.

Semantics at loop headers (used by the checker and code generation): a
production *before* a header executes when the loop is entered from
outside (not on the back edge) — textually above the ``do`` statement;
a production *after* a header executes when the loop exits.
"""

from dataclasses import dataclass
from enum import Enum

from repro.core.problem import Direction, Timing


class Position(Enum):
    BEFORE = "before"
    AFTER = "after"


@dataclass(frozen=True)
class Production:
    """One placed production: ``elements`` produced at ``position`` of
    ``node`` in the ``timing`` solution."""

    node: object
    position: Position
    timing: Timing
    elements: frozenset

    def __str__(self):
        inner = ", ".join(sorted(str(e) for e in self.elements))
        return f"{self.timing.value}@{self.position.value}({self.node}): {{{inner}}}"


class Placement:
    """Both timings' productions of one solved problem, in program
    positions, mutable so the synthetic-node post-pass can shift them."""

    def __init__(self, ifg, problem, solution):
        self.ifg = ifg
        self.problem = problem
        self.solution = solution
        self._bits = {}  # (node, position, timing) -> bitset
        before_key, after_key = ("RES_in", "RES_out")
        if problem.direction is Direction.AFTER:
            before_key, after_key = after_key, before_key
        for node in ifg.real_nodes():
            for timing in Timing:
                self._set(node, Position.BEFORE, timing,
                          solution.bits(before_key, node, timing))
                self._set(node, Position.AFTER, timing,
                          solution.bits(after_key, node, timing))

    @classmethod
    def empty(cls, ifg, problem):
        """An empty placement to be filled with :meth:`add` — used for
        hand-written placements (naive baselines, negative checker
        tests)."""
        placement = cls.__new__(cls)
        placement.ifg = ifg
        placement.problem = problem
        placement.solution = None
        placement._bits = {}
        return placement

    def add(self, node, position, timing, *elements):
        """Add a production of ``elements`` at (node, position, timing)."""
        bits = self.problem.universe.bits(elements)
        key = (node, position, timing)
        self._bits[key] = self._bits.get(key, 0) | bits

    def _set(self, node, position, timing, bits):
        key = (node, position, timing)
        if bits:
            self._bits[key] = bits
        else:
            self._bits.pop(key, None)

    # -- queries -------------------------------------------------------------

    def bits_at(self, node, position, timing):
        return self._bits.get((node, position, timing), 0)

    def at(self, node, position, timing):
        """Elements produced at (node, position) in the given timing."""
        return self.problem.universe.frozen(self.bits_at(node, position, timing))

    def productions(self, timing=None):
        """All nonempty productions, deterministic order (graph order,
        BEFORE then AFTER, EAGER then LAZY)."""
        result = []
        for node in self.ifg.real_nodes():
            for position in (Position.BEFORE, Position.AFTER):
                for t in Timing:
                    if timing is not None and t is not timing:
                        continue
                    bits = self.bits_at(node, position, t)
                    if bits:
                        result.append(
                            Production(node, position, t,
                                       self.problem.universe.frozen(bits))
                        )
        return result

    def production_count(self, timing=None):
        """Number of (node, position) placements with production."""
        return len(self.productions(timing))

    def sites_for(self, element, timing=None):
        """The (node, position) pairs where ``element`` is produced."""
        bit = self.problem.universe.bit(element)
        result = []
        for (node, position, t), bits in self._bits.items():
            if timing is not None and t is not timing:
                continue
            if bits & bit:
                result.append((node, position))
        order = {n: i for i, n in enumerate(self.ifg.real_nodes())}
        result.sort(key=lambda pair: (order.get(pair[0], -1), pair[1].value))
        return result

    def move(self, node, position, timing, new_node, new_position):
        """Merge the production at (node, position) into
        (new_node, new_position) — used by the synthetic-node post-pass."""
        key = (node, position, timing)
        bits = self._bits.pop(key, 0)
        if not bits:
            return
        new_key = (new_node, new_position, timing)
        self._bits[new_key] = self._bits.get(new_key, 0) | bits

    def __str__(self):
        return "\n".join(str(p) for p in self.productions())


def placement_from(ifg, problem, solution):
    """Convenience constructor mirroring :func:`repro.core.solver.solve`."""
    return Placement(ifg, problem, solution)
