"""Word-parallel bitset storage: struct-of-arrays bit matrices.

The planned backend stores each dataflow variable as a ``list[int]``
column — one arbitrary-precision bitset per slot.  The vector backend
(``repro.core.kernel.vector``) instead keeps every variable group as one
contiguous *bit matrix*: a ``(variables, slots, words)`` tensor of
``uint64`` words, so an S1–S4 equation can evaluate as a handful of
word-wide ``|``/``&``/``&~`` operations across all slots of an interval
level at once.

This module is the storage layer and the NumPy seam:

* :func:`numpy` returns the (optionally gated) NumPy module or ``None``
  — NumPy is an *optional* accelerator (the ``kernels`` extra), and
  setting ``REPRO_NO_NUMPY=1`` hides it even when installed, which is
  how CI proves the pure-``int`` fallback path;
* :func:`words_for` / :func:`pack_int` / :func:`unpack_row` /
  :func:`pack_column` / :func:`unpack_column` convert between Python
  ``int`` bitsets and little-endian ``uint64`` word rows,
  bit-identically in both directions (word-boundary universes — 63, 64,
  65 elements — round-trip exactly; see ``tests/core/test_bitmatrix.py``);
* :class:`NumpyColumn` wraps one ``(slots, words)`` matrix in the
  sequence protocol the rest of the codebase already speaks
  (``column[slot]``, ``column[:] = values``, ``list(column)``), so the
  incremental memo and every report path consume matrix-backed columns
  exactly like list columns.
"""

import os

try:  # pragma: no cover - exercised via the REPRO_NO_NUMPY CI leg
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

if os.environ.get("REPRO_NO_NUMPY"):
    _np = None

#: Bits per storage word.
WORD_BITS = 64


def numpy():
    """The NumPy module, or ``None`` when absent or explicitly hidden
    (``REPRO_NO_NUMPY=1``).  All vector-kernel call sites go through
    this accessor, so tests can monkeypatch ``bitmatrix._np`` to prove
    the fallback path."""
    return _np


def words_for(n_bits):
    """Words needed to hold ``n_bits`` (at least one, so a zero-element
    universe still has a well-formed row)."""
    return max(1, (n_bits + WORD_BITS - 1) // WORD_BITS)


def pack_int(bits, words):
    """A nonnegative ``int`` bitset as ``words`` little-endian words."""
    return bits.to_bytes(words * 8, "little")


def unpack_row(row):
    """One matrix row (``uint64`` array) back to an ``int`` bitset."""
    return int.from_bytes(row.tobytes(), "little")


def pack_column(values, words):
    """A ``list[int]`` column as an ``(len(values), words)`` matrix."""
    np = _np
    data = b"".join(bits.to_bytes(words * 8, "little") for bits in values)
    return np.frombuffer(data, dtype=np.uint64).reshape(len(values), words).copy()


def unpack_column(matrix):
    """An ``(n, words)`` matrix back to a ``list[int]`` column."""
    raw = matrix.tobytes()
    stride = matrix.shape[1] * 8
    return [int.from_bytes(raw[i:i + stride], "little")
            for i in range(0, len(raw), stride)]


class NumpyColumn:
    """Sequence-protocol view over one ``(slots, words)`` bit matrix.

    Reads yield Python ``int`` bitsets; writes pack them back into the
    underlying words — so matrix-backed :class:`~repro.core.kernel
    .slots.SlotSolution` columns round-trip bit-identically through
    every consumer of the list-column API (``column[slot]``,
    ``column[:] = stored``, ``list(column)``)."""

    __slots__ = ("rows",)

    def __init__(self, rows):
        self.rows = rows

    def __len__(self):
        return self.rows.shape[0]

    def __iter__(self):
        raw = self.rows.tobytes()
        stride = self.rows.shape[1] * 8
        for i in range(0, len(raw), stride):
            yield int.from_bytes(raw[i:i + stride], "little")

    def __getitem__(self, index):
        if isinstance(index, slice):
            return unpack_column(self.rows[index])
        return int.from_bytes(self.rows[index].tobytes(), "little")

    def __setitem__(self, index, value):
        np = _np
        words = self.rows.shape[1]
        if isinstance(index, slice):
            target = self.rows[index]
            data = b"".join(bits.to_bytes(words * 8, "little")
                            for bits in value)
            target[:] = np.frombuffer(data, dtype=np.uint64).reshape(
                target.shape[0], words)
            return
        self.rows[index] = np.frombuffer(
            value.to_bytes(words * 8, "little"), dtype=np.uint64)

    def __eq__(self, other):
        if isinstance(other, NumpyColumn):
            other = list(other)
        if isinstance(other, (list, tuple)):
            return list(self) == list(other)
        return NotImplemented

    def __repr__(self):
        return f"NumpyColumn({list(self)!r})"
