"""The vector solver: S1–S4 as word-parallel bit-matrix kernels.

Same equations, same budget semantics, bit-identical results as the
planned backend — but instead of one Python bitwise op per equation per
slot, each :class:`~repro.core.kernel.plan.SolverPlan` is compiled once
into a *level schedule* whose steps evaluate every S1–S4 equation as a
handful of word-wide ``|``/``&``/``&~`` operations across all slots of
an interval level at once, against the struct-of-arrays
:mod:`~repro.core.kernel.bitmatrix` storage.

Scheduling
----------
The S1/S2 sweep is split into *units*: one ``loc`` unit per child (Eqs
9/10) and one ``core`` unit per node (Eqs 1–8), ranked in the exact
sequential evaluation order (:meth:`SolverPlan.unit_sequence`).  Every
cross-unit operand is an edge; every edge — read *and* anti-dependence
— is directed from lower to higher rank, so longest-path leveling
yields a schedule where each unit sees exactly the operand values the
sequential sweep would have seen: level execution is *state-equivalent
to the sequential sweep, bit for bit*, including reads of not-yet-
written values (jumps against sweep order), which see their pre-sweep
state in both.  S3 (Eqs 11–13) is leveled the same way over ascending
slots; S4 (14/15) is two whole-matrix steps.

Backward fixpoint
-----------------
For backward views with jumps, rounds re-evaluate only *dirty* units —
those whose inputs changed — as level-batched dirty-slot masks: a
max-heap keyed by level pops all dirty units of one level at a time and
evaluates them as one word-parallel batch, with changed units flagging
their readers (later levels join the current round, earlier levels the
next — exactly the planned backend's round boundary, so round counts,
budget outcomes and the final convergence probe all match it and the
reference solver).  Batches below :data:`SCALAR_BATCH_MAX` fall back to
the shared scalar unit kernels (:mod:`~repro.core.kernel.planned`) —
the dirty-mask machinery is used only where it is profitable.

NumPy is optional (the ``kernels`` extra): without it the same schedule
executes through the scalar unit kernels over plain ``list[int]``
columns — identical values, identical budget semantics, no third code
path for the equations themselves.
"""

import heapq

from repro.core.kernel import bitmatrix
from repro.core.kernel.plan import plan_for
from repro.core.kernel.planned import (build_operand_columns, core_stale,
                                       core_values, loc_stale, loc_values)
from repro.core.kernel.slots import SHARED_INDEX, TIMED_INDEX, SlotSolution
from repro.core.problem import Timing
from repro.core.solution import SHARED_VARIABLES
from repro.obs.collector import current_collector
from repro.util.errors import SolverBudgetError, SolverError

_ST = SHARED_INDEX["STEAL"]
_GV = SHARED_INDEX["GIVE"]
_BL = SHARED_INDEX["BLOCK"]
_TO = SHARED_INDEX["TAKEN_out"]
_TK = SHARED_INDEX["TAKE"]
_TI = SHARED_INDEX["TAKEN_in"]
_BLl = SHARED_INDEX["BLOCK_loc"]
_TKl = SHARED_INDEX["TAKE_loc"]
_GVl = SHARED_INDEX["GIVE_loc"]
_STl = SHARED_INDEX["STEAL_loc"]

_GIVEN_in = TIMED_INDEX["GIVEN_in"]
_GIVEN = TIMED_INDEX["GIVEN"]
_GIVEN_out = TIMED_INDEX["GIVEN_out"]
_RES_in = TIMED_INDEX["RES_in"]
_RES_out = TIMED_INDEX["RES_out"]

#: Dirty batches smaller than this run through the scalar unit kernels
#: instead of the word-parallel path — per-dispatch overhead beats the
#: word parallelism on one or two rows.
SCALAR_BATCH_MAX = 3

#: Auto-engine cutover, in slot·words.  Below this the whole instance
#: runs the scalar ``"int"`` engine even when NumPy is installed: the
#: matrix path pays a fixed NumPy-dispatch cost per schedule level, and
#: on small instances (every level a handful of rows, one or two words)
#: that overhead swamps the word parallelism — measured ~10x slower
#: than the scalar path at 640 nodes and 8 elements, break-even around
#: a few tens of thousands of slot·words (``docs/scaling.md``).
AUTO_MATRIX_THRESHOLD = 32768


class VectorSchedule:
    """The problem-independent level schedule for one plan.

    Unit ids: ``s`` for the core unit of slot ``s`` (Eqs 1–8),
    ``plan.n + c`` for the loc unit of child slot ``c`` (Eqs 9/10).
    """

    def __init__(self, plan):
        n = plan.n
        self.plan = plan
        self.loc0 = loc0 = n

        rank = [-1] * (2 * n)
        units = []
        for kind, x in plan.unit_sequence():
            u = x if kind == "core" else loc0 + x
            rank[u] = len(units)
            units.append(u)
        self.units = tuple(units)
        self.rank = rank

        reads = [()] * (2 * n)
        for s in range(n):
            rd = set()
            lc = plan.lastchild[s]
            if lc >= 0:
                rd.add(loc0 + lc)
            for rel in (plan.succs_e, plan.succs_fjs, plan.succs_f,
                        plan.succs_ef):
                for t in rel[s]:
                    if t != s:
                        rd.add(t)
            reads[s] = tuple(rd)
            for c in plan.children[s]:
                rd2 = {c}
                for p in plan.preds_loc[c]:
                    rd2.add(loc0 + p)
                for p in plan.preds_syn[c]:
                    rd2.add(loc0 + p)
                rd2.discard(loc0 + c)
                reads[loc0 + c] = tuple(rd2)
        self.reads = tuple(reads)

        readers = [[] for _ in range(2 * n)]
        for u in units:
            for v in reads[u]:
                readers[v].append(u)
        self.readers = tuple(tuple(r) for r in readers)

        # Longest path over read and anti edges, both directed from
        # lower to higher rank; processing in rank order makes this one
        # linear pass.
        level = [0] * (2 * n)
        for u in units:
            ru = rank[u]
            best = 0
            for v in reads[u]:
                if rank[v] < ru and level[v] > best:
                    best = level[v]
            for v in readers[u]:
                if rank[v] < ru and level[v] > best:
                    best = level[v]
            level[u] = best + 1
        self.level = level
        n_levels = max((level[u] for u in units), default=0)
        loc_levels = [[] for _ in range(n_levels)]
        core_levels = [[] for _ in range(n_levels)]
        for u in units:
            if u >= loc0:
                loc_levels[level[u] - 1].append(u - loc0)
            else:
                core_levels[level[u] - 1].append(u)
        self.s1_levels = tuple(
            (tuple(lo), tuple(co))
            for lo, co in zip(loc_levels, core_levels))

        #: Units with a read *against* sweep order — the only values the
        #: leveled sweep (like the sequential one) cannot have made
        #: current; the backward fixpoint's complete initial worklist.
        self.seeds = tuple(u for u in units
                           if any(rank[v] > rank[u] for v in reads[u]))

        # S3: ascending slots, reads = header + FJ predecessors, again
        # with both edge directions strict (a predecessor at a higher
        # slot must be read *before* it is written — it contributes its
        # pre-sweep value, exactly as in the sequential sweep).
        reads3 = [()] * n
        for s in range(n):
            rd = set()
            h = plan.header[s]
            if h >= 0 and h != s:
                rd.add(h)
            for p in plan.preds_fj[s]:
                if p != s:
                    rd.add(p)
            reads3[s] = tuple(rd)
        readers3 = [[] for _ in range(n)]
        for s in range(n):
            for v in reads3[s]:
                readers3[v].append(s)
        level3 = [0] * n
        for s in range(n):
            best = 0
            for v in reads3[s]:
                if v < s and level3[v] > best:
                    best = level3[v]
            for v in readers3[s]:
                if v < s and level3[v] > best:
                    best = level3[v]
            level3[s] = best + 1
        n_levels3 = max(level3, default=0)
        s3 = [[] for _ in range(n_levels3)]
        for s in range(n):
            s3[level3[s] - 1].append(s)
        self.s3_levels = tuple(tuple(lv) for lv in s3)


def schedule_for(plan):
    """The (plan-cached) :class:`VectorSchedule`."""
    cached = plan.__dict__.get("_vector_schedule")
    if cached is None:
        cached = plan.__dict__["_vector_schedule"] = VectorSchedule(plan)
    return cached


# -- numpy step compilation ---------------------------------------------------

def _pos(np, targets, make_idx):
    """Per-position gather descriptors for a ragged relation: for each
    position ``k``, the member rows having a ``k``-th target and the
    (stacked) flat tensor indices to gather for them."""
    out = []
    k = 0
    while True:
        rows = [i for i, t in enumerate(targets) if len(t) > k]
        if not rows:
            break
        slots = [targets[i][k] for i in rows]
        out.append((np.asarray(rows, dtype=np.intp),
                    np.asarray(make_idx(slots), dtype=np.intp)))
        k += 1
    return tuple(out)


def _compile_loc(np, plan, children):
    """Gather/scatter index arrays for one batch of loc units."""
    n = plan.n
    C = list(children)
    gts_idx = np.asarray([_GV * n + c for c in C]
                         + [_TK * n + c for c in C]
                         + [_ST * n + c for c in C], dtype=np.intp)
    predloc = _pos(np, [plan.preds_loc[c] for c in C],
                   lambda ss: [_GVl * n + p for p in ss]
                   + [_STl * n + p for p in ss])
    syn = _pos(np, [plan.preds_syn[c] for c in C],
               lambda ss: [_STl * n + p for p in ss])
    scatter = np.asarray([_GVl * n + c for c in C]
                         + [_STl * n + c for c in C], dtype=np.intp)
    return (np.asarray(C, dtype=np.intp), gts_idx, predloc, syn, scatter)


def _compile_core(np, plan, slots):
    """Gather/scatter index arrays for one batch of core units."""
    n = plan.n
    S = list(slots)
    op_idx = np.asarray([0 * n + s for s in S] + [1 * n + s for s in S]
                        + [2 * n + s for s in S], dtype=np.intp)
    lc_rows = [i for i, s in enumerate(S) if plan.lastchild[s] >= 0]
    lc_slots = [plan.lastchild[S[i]] for i in lc_rows]
    lc = (np.asarray(lc_rows, dtype=np.intp),
          np.asarray([_STl * n + c for c in lc_slots]
                     + [_GVl * n + c for c in lc_slots], dtype=np.intp))
    entry = _pos(np, [plan.succs_e[s] for s in S],
                 lambda ss: [_BLl * n + t for t in ss]
                 + [_TI * n + t for t in ss]
                 + [_TKl * n + t for t in ss])
    fjs = _pos(np, [plan.succs_fjs[s] for s in S],
               lambda ss: [_TI * n + t for t in ss])
    f = _pos(np, [plan.succs_f[s] for s in S],
             lambda ss: [_BLl * n + t for t in ss])
    ef = _pos(np, [plan.succs_ef[s] for s in S],
              lambda ss: [_TKl * n + t for t in ss])
    scatter = np.asarray(
        [v * n + s for v in (_ST, _GV, _BL, _TO, _TK, _TI, _BLl, _TKl)
         for s in S], dtype=np.intp)
    return (np.asarray(S, dtype=np.intp), op_idx, lc, entry, fjs, ef, f,
            scatter)


def _compile_s3(np, plan, slots):
    """Index arrays for one batch of S3 units (Eqs 11–13)."""
    n = plan.n
    S = list(slots)
    hdr_rows = [i for i, s in enumerate(S) if plan.header[s] >= 0]
    hdr_slots = [plan.header[S[i]] for i in hdr_rows]
    hdr = (np.asarray(hdr_rows, dtype=np.intp),
           np.asarray([_GIVEN * n + h for h in hdr_slots], dtype=np.intp),
           np.asarray([_ST * n + h for h in hdr_slots], dtype=np.intp))
    fj = _pos(np, [plan.preds_fj[s] for s in S],
              lambda ss: [_GIVEN_out * n + p for p in ss])
    self_idx = np.asarray([_TI * n + s for s in S] + [_TK * n + s for s in S]
                          + [_GV * n + s for s in S]
                          + [_ST * n + s for s in S], dtype=np.intp)
    try:
        root_row = S.index(plan.root_slot)
    except ValueError:
        root_row = -1
    scatter = np.asarray([_GIVEN_in * n + s for s in S]
                         + [_GIVEN * n + s for s in S]
                         + [_GIVEN_out * n + s for s in S], dtype=np.intp)
    return (np.asarray(S, dtype=np.intp), hdr, fj, self_idx, root_row,
            scatter)


class _CompiledKernel:
    """The schedule's per-level index arrays, built once per plan."""

    def __init__(self, schedule, np):
        plan = schedule.plan
        self.s1 = tuple(
            (_compile_loc(np, plan, loc) if loc else None,
             _compile_core(np, plan, core) if core else None)
            for loc, core in schedule.s1_levels)
        self.s3 = tuple(_compile_s3(np, plan, lv)
                        for lv in schedule.s3_levels)
        self.fj_succs = _pos(np, plan.succs_fj,
                             lambda ss: list(ss))


def compiled_for(plan, np):
    """The (plan-cached) :class:`_CompiledKernel`."""
    cached = plan.__dict__.get("_vector_compiled")
    if cached is None:
        cached = plan.__dict__["_vector_compiled"] = _CompiledKernel(
            schedule_for(plan), np)
    return cached


# -- the solver ---------------------------------------------------------------

class VectorSolver:
    """Level-batched solver; :func:`repro.core.solver.solve` with
    ``backend="vector"`` is the usual entry point.

    ``max_rounds`` and ``preset`` have exactly the
    :class:`~repro.core.kernel.planned.PlannedSolver` semantics —
    identical budget outcomes, identical error types, bit-identical
    values.

    ``engine`` picks the arithmetic: ``"numpy"`` runs the word-parallel
    bit-matrix kernels over a matrix-backed solution, ``"int"`` runs the
    same schedule through the scalar unit kernels over list columns.
    The default (``None``) auto-selects: the matrix path only pays for
    its per-level dispatch on bulk instances, so small solves take the
    scalar path even when NumPy is installed
    (:data:`AUTO_MATRIX_THRESHOLD`, measured in slot·words).  Both
    engines are bit-identical with identical budget semantics.
    """

    def __init__(self, view, problem, max_rounds=None, plan=None,
                 preset=None, engine=None):
        self.view = view
        self.problem = problem
        self.max_rounds = max_rounds
        problem.validate_against(view)
        self.plan = plan if plan is not None else plan_for(view)
        if preset and self.plan.requires_iteration:
            raise SolverError(
                "preset consumption values require a non-iterating plan "
                "(the sparse fixpoint may revisit preset bundles)")
        self.preset = dict(preset) if preset else {}
        np = bitmatrix.numpy()
        if engine not in (None, "numpy", "int"):
            raise SolverError(f"unknown vector engine {engine!r}")
        if engine == "numpy" and np is None:
            raise SolverError(
                "vector engine 'numpy' requested but NumPy is unavailable")
        if engine is None:
            words = bitmatrix.words_for(len(problem.universe))
            bulk = self.plan.n * words >= AUTO_MATRIX_THRESHOLD
            engine = "numpy" if (np is not None and bulk) else "int"
        self._np = np if engine == "numpy" else None
        self.engine = engine
        self.schedule = schedule_for(self.plan)
        self.solution = SlotSolution(
            problem, view, self.plan,
            engine="numpy" if self._np is not None else "list")
        self._obs = current_collector()
        self._full_sweeps = 0
        self._sparse_rounds = 0
        self._sparse_bundles = 0
        self._sparse_children = 0
        self._row_writes = 0

    # -- driver --------------------------------------------------------------

    def run(self):
        obs = self._obs
        start = obs.clock() if obs.enabled else 0.0
        plan = self.plan
        np = self._np
        sol = self.solution

        take0, give0, steal0 = build_operand_columns(plan, self.problem)
        self._operands = (take0, give0, steal0)
        self._trust = self.problem.trust_loop_side_effects
        self._cols = tuple(sol.column(name) for name in SHARED_VARIABLES)
        if np is not None:
            words = sol.words
            self._words = words
            self._flat10 = sol.shared_tensor.reshape(
                10 * plan.n, words)
            opm = np.concatenate([
                bitmatrix.pack_column(take0, words),
                bitmatrix.pack_column(give0, words),
                bitmatrix.pack_column(steal0, words)])
            self._opflat = opm
            self._kernel = compiled_for(plan, np)
        else:
            self._words = bitmatrix.words_for(len(self.problem.universe))

        excluded = set()
        if self.preset:
            columns = tuple(self._cols)
            for s, values in self.preset.items():
                for column, bits in zip(columns, values):
                    column[s] = bits
                excluded.add(s)
                for c in plan.children[s]:
                    excluded.add(self.schedule.loc0 + c)

        natural = budget = None
        checked = False
        self._sweep_s1(excluded)
        converged = True
        if plan.requires_iteration:
            natural = plan.natural_bound
            budget = natural if self.max_rounds is None else self.max_rounds
            converged, checked = self._fixpoint(budget)
            if not converged:
                if self.max_rounds is not None:
                    raise SolverBudgetError(
                        f"consumption fixpoint not reached within "
                        f"{budget} rounds (natural bound {natural})"
                    )
                raise SolverError(
                    f"consumption fixpoint not reached within the "
                    f"natural bound of {natural} rounds"
                )
        for timing in Timing:
            self._sweep_production(timing)
            self._sweep_results(timing)
        if obs.enabled:
            self._emit_run_event(start, natural, budget, converged, checked)
        return self.solution

    # -- S1/S2 ---------------------------------------------------------------

    def _sweep_s1(self, excluded):
        """One whole-graph S1/S2 sweep over the level schedule (preset
        units replay their spliced values and are skipped)."""
        obs = self._obs
        sweep_start = obs.clock() if obs.enabled else 0.0
        plan = self.plan
        if self._np is None:
            loc0 = self.schedule.loc0
            for kind, x in plan.unit_sequence():
                u = x if kind == "core" else loc0 + x
                if u in excluded:
                    continue
                if kind == "loc":
                    self._eval_scalar([x], ())
                else:
                    self._eval_scalar((), [x])
        elif not excluded:
            for loc_level, core_level in self._kernel.s1:
                if loc_level is not None:
                    gvl, stl = self._loc_batch(loc_level)
                    self._scatter(loc_level[4], (gvl, stl))
                if core_level is not None:
                    new = self._core_batch(core_level)
                    self._scatter(core_level[7], new)
            self._row_writes += 2 * (plan.n - 1) + 8 * plan.n
        else:
            loc0 = self.schedule.loc0
            for loc, core in self.schedule.s1_levels:
                loc = [c for c in loc if loc0 + c not in excluded]
                core = [s for s in core if s not in excluded]
                self._eval_batch(loc, core, detect=False)
        self._full_sweeps += 1
        if obs.enabled:
            obs.event("solver", "sweep", kind="consumption",
                      index=self._full_sweeps, changed=True,
                      duration_s=obs.clock() - sweep_start)
            obs.count("sweeps", "consumption")

    def _loc_batch(self, compiled):
        """Eqs 9/10 for one batch of loc units, word-parallel."""
        np = self._np
        F = self._flat10
        C, gts_idx, predloc, syn, _scatter = compiled
        m = len(C)
        vals = np.take(F, gts_idx, axis=0)
        gv_c, tk_c, st_c = vals[:m], vals[m:2 * m], vals[2 * m:]
        acc = np.zeros_like(gv_c)
        stl = st_c.copy()
        for j, (rows, idx2) in enumerate(predloc):
            v = np.take(F, idx2, axis=0)
            k = len(rows)
            gvl_p, stl_p = v[:k], v[k:]
            if j == 0:
                acc[rows] = gvl_p
            else:
                acc[rows] &= gvl_p
            stl[rows] |= stl_p & ~gvl_p
        gvl = (gv_c | tk_c | acc) & ~st_c
        for rows, idx in syn:
            stl[rows] |= np.take(F, idx, axis=0)
        return gvl, stl

    def _core_batch(self, compiled):
        """Eqs 1–8 for one batch of core units, word-parallel, with the
        sequential in-unit propagation (each equation sees the earlier
        ones' new values through the batch-local arrays)."""
        np = self._np
        F = self._flat10
        S, op_idx, lc, entry, fjs, ef, f, _scatter = compiled
        m = len(S)
        ops = np.take(self._opflat, op_idx, axis=0)
        take0, give0, steal0 = ops[:m], ops[m:2 * m], ops[2 * m:]
        # Eq 1/2
        st = steal0.copy()
        gv = give0 if not self._trust else give0.copy()
        lc_rows, lc_idx = lc
        if len(lc_rows):
            vals = np.take(F, lc_idx, axis=0)
            k = len(lc_rows)
            st[lc_rows] |= vals[:k]
            if self._trust:
                gv[lc_rows] |= vals[k:]
        # Eq 3 (+ Eq 5's ENTRY gathers, same positions)
        bl = st | gv
        guaranteed = possible = None
        if entry:
            guaranteed = np.zeros_like(st)
            possible = np.zeros_like(st)
            for rows, idx3 in entry:
                vals = np.take(F, idx3, axis=0)
                k = len(rows)
                bl[rows] |= vals[:k]
                guaranteed[rows] |= vals[k:2 * k]
                possible[rows] |= vals[2 * k:]
        # Eq 4 (meet over FJS; empty meet = ⊥ = the zero rows)
        to = np.zeros_like(st)
        for j, (rows, idx) in enumerate(fjs):
            vals = np.take(F, idx, axis=0)
            if j == 0:
                to[rows] = vals
            else:
                to[rows] &= vals
        # Eq 5
        if guaranteed is not None:
            tk = take0 | (guaranteed & ~st)
            tk |= (to & possible) & ~bl
        else:
            tk = take0
        # Eq 6
        ti = tk | (to & ~bl)
        # Eq 7
        bll = bl.copy()
        for rows, idx in f:
            bll[rows] |= np.take(F, idx, axis=0)
        bll &= ~tk
        # Eq 8
        if ef:
            acc = np.zeros_like(st)
            for rows, idx in ef:
                acc[rows] |= np.take(F, idx, axis=0)
            tkl = tk | (acc & ~bl)
        else:
            tkl = tk
        return st, gv, bl, to, tk, ti, bll, tkl

    def _scatter(self, scatter_idx, arrays):
        self._flat10[scatter_idx] = self._np.concatenate(arrays)

    def _eval_batch(self, loc_slots, core_slots, detect=True):
        """Evaluate an ad-hoc batch of units (one level's dirty set);
        returns the changed unit ids when ``detect``.

        Small batches go through the scalar unit kernels — the
        dirty-mask machinery only where it is profitable."""
        if not loc_slots and not core_slots:
            return []
        np = self._np
        if np is None or len(loc_slots) + len(core_slots) <= SCALAR_BATCH_MAX:
            return self._eval_scalar(loc_slots, core_slots, detect)
        plan = self.plan
        F = self._flat10
        changed = []
        if loc_slots:
            compiled = _compile_loc(np, plan, loc_slots)
            gvl, stl = self._loc_batch(compiled)
            new = np.concatenate((gvl, stl))
            if detect:
                old = np.take(F, compiled[4], axis=0)
                diff = (old != new).any(axis=1).reshape(2, len(loc_slots))
                loc0 = self.schedule.loc0
                changed.extend(loc0 + c for c, hit
                               in zip(loc_slots, diff.any(axis=0)) if hit)
            F[compiled[4]] = new
        if core_slots:
            compiled = _compile_core(np, plan, core_slots)
            new = np.concatenate(self._core_batch(compiled))
            if detect:
                old = np.take(F, compiled[7], axis=0)
                diff = (old != new).any(axis=1).reshape(8, len(core_slots))
                changed.extend(s for s, hit
                               in zip(core_slots, diff.any(axis=0)) if hit)
            F[compiled[7]] = new
        self._row_writes += 2 * len(loc_slots) + 8 * len(core_slots)
        return changed

    def _eval_scalar(self, loc_slots, core_slots, detect=True):
        """The same batch through the shared scalar unit kernels."""
        plan = self.plan
        cols = self._cols
        GVl_col, STl_col = cols[_GVl], cols[_STl]
        loc0 = self.schedule.loc0
        changed = []
        for c in loc_slots:
            gvl, stl = loc_values(plan, cols, c)
            hit = False
            if GVl_col[c] != gvl:
                GVl_col[c] = gvl
                hit = True
            if STl_col[c] != stl:
                STl_col[c] = stl
                hit = True
            if hit and detect:
                changed.append(loc0 + c)
        for s in core_slots:
            new = core_values(plan, self._operands, self._trust, cols, s)
            hit = False
            for column, bits in zip(cols, new):
                if column[s] != bits:
                    column[s] = bits
                    hit = True
            if hit and detect:
                changed.append(s)
        self._row_writes += 2 * len(loc_slots) + 8 * len(core_slots)
        return changed

    # -- backward fixpoint ---------------------------------------------------

    def _fixpoint(self, budget):
        """Dirty-unit rounds to the consumption fixpoint; returns
        ``(converged, checked)`` with the planned/reference budget
        semantics (round ``k`` is state-equivalent to dense sweep
        ``k+1``)."""
        obs = self._obs
        schedule = self.schedule
        level = schedule.level
        rank = schedule.rank
        readers = schedule.readers
        dirty = set(schedule.seeds)
        converged = False
        for _ in range(budget):
            round_start = obs.clock() if obs.enabled else 0.0
            self._sparse_rounds += 1
            heap = [(level[u], u) for u in dirty]
            heapq.heapify(heap)
            queued = set(dirty)
            next_dirty = set()
            evaluated = 0
            changed_any = False
            while heap:
                lv = heap[0][0]
                loc_slots = []
                core_slots = []
                while heap and heap[0][0] == lv:
                    _, u = heapq.heappop(heap)
                    if u >= schedule.loc0:
                        loc_slots.append(u - schedule.loc0)
                    else:
                        core_slots.append(u)
                evaluated += len(loc_slots) + len(core_slots)
                self._sparse_bundles += len(core_slots)
                self._sparse_children += len(loc_slots)
                for u in self._eval_batch(loc_slots, core_slots):
                    changed_any = True
                    for r in readers[u]:
                        if rank[r] > rank[u]:
                            if r not in queued:
                                queued.add(r)
                                heapq.heappush(heap, (level[r], r))
                        else:
                            next_dirty.add(r)
            if obs.enabled:
                obs.event("solver", "sweep", kind="consumption_sparse",
                          index=self._sparse_rounds, changed=changed_any,
                          evaluated=evaluated,
                          duration_s=obs.clock() - round_start)
                obs.count("sweeps", "consumption_sparse")
            if not changed_any:
                converged = True
                break
            dirty = next_dirty
        checked = False
        if not converged:
            # Budget exhausted with every round still changing: decide
            # with the side-effect-free probe over the pending dirty
            # units — everything else was evaluated against its current
            # inputs and is stable by construction.
            checked = True
            converged = not any(self._unit_stale(u)
                                for u in sorted(dirty, reverse=True))
            if obs.enabled:
                obs.event("solver", "convergence_check", converged=converged)
        return converged, checked

    def _unit_stale(self, u):
        plan = self.plan
        if u >= self.schedule.loc0:
            return loc_stale(plan, self._cols, u - self.schedule.loc0)
        return core_stale(plan, self._operands, self._trust, self._cols, u)

    # -- S3/S4 ---------------------------------------------------------------

    def _sweep_production(self, timing):
        obs = self._obs
        sweep_start = obs.clock() if obs.enabled else 0.0
        plan = self.plan
        if self._np is None:
            self._production_scalar(timing)
        else:
            self._production_vector(timing)
        self._row_writes += 3 * plan.n
        if obs.enabled:
            obs.event("solver", "sweep", kind="production",
                      timing=timing.value,
                      duration_s=obs.clock() - sweep_start)
            obs.count("sweeps", "production")

    def _production_vector(self, timing):
        np = self._np
        F = self._flat10
        plan = self.plan
        eager = timing is Timing.EAGER
        T5 = self.solution.timed_tensor[timing]
        t5flat = T5.reshape(5 * plan.n, self._words)
        for S, hdr, fj, self_idx, root_row, scatter in self._kernel.s3:
            m = len(S)
            vals = np.take(F, self_idx, axis=0)
            ti, tkv = vals[:m], vals[m:2 * m]
            gvv, stv = vals[2 * m:3 * m], vals[3 * m:]
            # Eq 11
            bits = np.zeros_like(ti)
            hrows, gidx, sidx = hdr
            if len(hrows):
                bits[hrows] = (np.take(t5flat, gidx, axis=0)
                               & ~np.take(F, sidx, axis=0))
            meet = np.zeros_like(ti)
            some = np.zeros_like(ti)
            for j, (rows, goidx) in enumerate(fj):
                v = np.take(t5flat, goidx, axis=0)
                if j == 0:
                    meet[rows] = v
                else:
                    meet[rows] &= v
                some[rows] |= v
            bits |= meet
            bits |= ti & some
            # Eq 12
            produced = bits | (ti if eager else tkv)
            if root_row >= 0:
                produced[root_row] = bits[root_row]
            # Eq 13
            gout = (gvv | produced) & ~stv
            t5flat[scatter] = np.concatenate((bits, produced, gout))

    def _production_scalar(self, timing):
        plan = self.plan
        sol = self.solution
        ST, GV = self._cols[_ST], self._cols[_GV]
        TK, TI = self._cols[_TK], self._cols[_TI]
        given_in = sol.column("GIVEN_in", timing)
        given = sol.column("GIVEN", timing)
        given_out = sol.column("GIVEN_out", timing)
        eager = timing is Timing.EAGER
        root_slot = plan.root_slot
        headers = plan.header
        preds_fj = plan.preds_fj
        for s in range(plan.n):
            # Eq 11
            h = headers[s]
            bits = given[h] & ~ST[h] if h >= 0 else 0
            preds = preds_fj[s]
            if preds:
                meet = some = given_out[preds[0]]
                for p in preds[1:]:
                    value = given_out[p]
                    meet &= value
                    some |= value
            else:
                meet = some = 0
            bits |= meet
            bits |= TI[s] & some
            given_in[s] = bits
            # Eq 12
            if s == root_slot:
                produced = bits
            elif eager:
                produced = bits | TI[s]
            else:
                produced = bits | TK[s]
            given[s] = produced
            # Eq 13
            given_out[s] = (GV[s] | produced) & ~ST[s]

    def _sweep_results(self, timing):
        obs = self._obs
        sweep_start = obs.clock() if obs.enabled else 0.0
        plan = self.plan
        sol = self.solution
        np = self._np
        if np is not None:
            T5 = sol.timed_tensor[timing]
            given_in, given, given_out = T5[_GIVEN_in], T5[_GIVEN], T5[_GIVEN_out]
            # Eq 14
            T5[_RES_in] = given & ~given_in
            # Eq 15
            acc = np.zeros_like(given_in)
            for rows, idx in self._kernel.fj_succs:
                acc[rows] |= np.take(given_in, idx, axis=0)
            T5[_RES_out] = acc & ~given_out
        else:
            given_in = sol.column("GIVEN_in", timing)
            given = sol.column("GIVEN", timing)
            given_out = sol.column("GIVEN_out", timing)
            res_in = sol.column("RES_in", timing)
            res_out = sol.column("RES_out", timing)
            succs_fj = plan.succs_fj
            for s in range(plan.n):
                res_in[s] = given[s] & ~given_in[s]
                acc = 0
                for t in succs_fj[s]:
                    acc |= given_in[t]
                res_out[s] = acc & ~given_out[s]
        self._row_writes += 2 * plan.n
        if obs.enabled:
            obs.event("solver", "sweep", kind="results",
                      timing=timing.value,
                      duration_s=obs.clock() - sweep_start)
            obs.count("sweeps", "results")

    # -- observability -------------------------------------------------------

    def _emit_run_event(self, start, natural, budget, converged, checked):
        obs = self._obs
        plan = self.plan
        n = plan.n
        preset_bundles = len(self.preset)
        preset_children = sum(len(plan.children[s]) for s in self.preset)
        counts = {}
        for number in range(1, 9):
            counts[number] = ((n - preset_bundles) * self._full_sweeps
                              + self._sparse_bundles)
        for number in (9, 10):
            counts[number] = ((n - 1 - preset_children) * self._full_sweeps
                              + self._sparse_children)
        for number in range(11, 16):
            counts[number] = n * 2
        sweeps = self._full_sweeps + self._sparse_rounds
        obs.event(
            "solver", "run",
            direction=self.view.direction,
            backend="vector",
            engine=self.engine,
            nodes=n,
            consumption_sweeps=sweeps,
            rounds=sweeps - 1,
            natural_bound=natural,
            budget=budget,
            converged=converged,
            convergence_checked=checked,
            full_sweeps=self._full_sweeps,
            preset_bundles=preset_bundles,
            sparse_rounds=self._sparse_rounds,
            sparse_evaluations={"bundles": self._sparse_bundles,
                                "children": self._sparse_children},
            equation_evaluations={
                str(number): count
                for number, count in sorted(counts.items())
            },
            words=self._words,
            word_ops=self._row_writes * self._words,
            schedule_levels={"s1": len(self.schedule.s1_levels),
                             "s3": len(self.schedule.s3_levels)},
            duration_s=obs.clock() - start,
        )
        for number, count in counts.items():
            obs.count("equation_evaluations", number, n=count)
