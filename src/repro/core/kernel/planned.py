"""The planned solver: sweeps S1–S4 as tight loops over slot columns.

Algorithm *GiveNTake* (Figure 15) unchanged — same equations, same
evaluation order, bit-identical results — but executed against a
compiled :class:`~repro.core.kernel.plan.SolverPlan`:

* one full S1/S2 *bundle* sweep in descending slot order
  (REVERSEPREORDER), each bundle inlining Equations 9/10 for the
  node's children (FORWARD order) followed by Equations 1–8;
* for backward views with jumps, a **sparse worklist fixpoint** instead
  of whole-graph re-sweeps: only the plan's ``seeds`` (bundles with an
  order-violating read) are re-evaluated, and a change propagates to
  the changed bundle's dependents — lower-slot dependents join the
  current round, higher-slot ones the next.  Round ``k`` leaves the
  store exactly as dense sweep ``k+1`` would (each round evaluates, in
  descending order, precisely the bundles whose inputs changed — the
  rest are re-evaluation no-ops the dense sweep wastes time on), so
  convergence decisions, budget semantics and final values all match
  the reference solver;
* S3 (Equations 11–13) and S4 (14/15) in ascending slot order, once
  per timing.

Per-equation counts still prove the §5.2 claim: the run event reports
the honest totals (full sweeps plus sparse re-evaluations) together
with ``full_sweeps``/``sparse_rounds``/``sparse_evaluations`` so
:func:`repro.obs.profile.run_satisfies_each_equation_once` can verify
*each equation at most once per node per round* for this backend too.
"""

import heapq

from repro.core.kernel.plan import plan_for
from repro.core.kernel.slots import SlotSolution
from repro.core.problem import Timing
from repro.obs.collector import current_collector
from repro.util.errors import SolverBudgetError, SolverError


def build_operand_columns(plan, problem):
    """Static per-slot operand bitsets for ``problem`` over ``plan``:
    ``(take0, give0, steal0)`` with the whole-universe blocking terms of
    Eq 1 (``steal_all`` headers, zero-trip blocking) baked into
    ``steal0``.

    Shared between the solver's own run and the incremental memo, which
    keys cached solutions by exactly these baked operands — so ⊤ from
    ``steal_all`` or disabled hoisting is already expanded to concrete
    elements before any fingerprinting happens."""
    take0 = [problem.take_init(node) for node in plan.nodes]
    give0 = [problem.give_init(node) for node in plan.nodes]
    top = problem.universe.top
    hoist = problem.hoist_zero_trip
    root_slot = plan.root_slot
    is_header = plan.is_header
    steal_all = plan.steal_all
    steal0 = []
    for s, node in enumerate(plan.nodes):
        bits = problem.steal_init(node)
        if steal_all[s] or (not hoist and s != root_slot and is_header[s]):
            bits |= top
        steal0.append(bits)
    return take0, give0, steal0


def loc_values(plan, cols, c):
    """Equations 9/10 for child slot ``c`` against the stored state:
    the new ``(GIVE_loc, STEAL_loc)`` pair, computed without writing.

    ``cols`` is the ten shared columns in ``SHARED_VARIABLES`` order —
    any slot-indexed sequences (list columns or matrix column views), so
    the planned probe, the vector backend's scalar engine and its
    convergence probe all share one definition of the equations."""
    ST, GV, _BL, _TO, TK, _TI, _BLl, _TKl, GVl, STl = cols
    preds = plan.preds_loc[c]
    if preds:
        acc = GVl[preds[0]]
        for p in preds[1:]:
            acc &= GVl[p]
    else:
        acc = 0
    gvl = (GV[c] | TK[c] | acc) & ~ST[c]
    stl = ST[c]
    for p in preds:
        stl |= STl[p] & ~GVl[p]
    for p in plan.preds_syn[c]:
        stl |= STl[p]
    return gvl, stl


def core_values(plan, operands, trust, cols, s):
    """Equations 1–8 for slot ``s``: the new eight-tuple in equation
    order, with in-unit propagation (each equation sees the earlier
    ones' new values, the reference ``put`` behavior), without writing.

    ``operands`` is ``(take0, give0, steal0)`` from
    :func:`build_operand_columns`."""
    take0, give0, steal0 = operands
    ST, GV, BL, TO, TK, TI, BLl, TKl, GVl, STl = cols
    lc = plan.lastchild[s]
    # Eq 1: STEAL
    st = steal0[s]
    if lc >= 0:
        st |= STl[lc]
    # Eq 2: GIVE
    gv = give0[s]
    if trust and lc >= 0:
        gv |= GVl[lc]
    # Eq 3: BLOCK
    entry = plan.succs_e[s]
    bl = st | gv
    for e in entry:
        bl |= BLl[e]
    # Eq 4: TAKEN_out (meet over FJS successors; empty meet = ⊥)
    fjs = plan.succs_fjs[s]
    if fjs:
        to = TI[fjs[0]]
        for t in fjs[1:]:
            to &= TI[t]
    else:
        to = 0
    # Eq 5: TAKE
    tk = take0[s]
    guaranteed = 0
    possible = 0
    for e in entry:
        guaranteed |= TI[e]
        possible |= TKl[e]
    tk |= guaranteed & ~st
    tk |= (to & possible) & ~bl
    # Eq 6: TAKEN_in
    ti = tk | (to & ~bl)
    # Eq 7: BLOCK_loc
    bll = bl
    for t in plan.succs_f[s]:
        bll |= BLl[t]
    bll &= ~tk
    # Eq 8: TAKE_loc
    acc = 0
    for t in plan.succs_ef[s]:
        acc |= TKl[t]
    tkl = tk | (acc & ~bl)
    return st, gv, bl, to, tk, ti, bll, tkl


def loc_stale(plan, cols, c):
    """Whether Eq 9 or 10 of child ``c``, recomputed against the stored
    state, would change its stored value (first mismatch wins)."""
    ST, GV, _BL, _TO, TK, _TI, _BLl, _TKl, GVl, STl = cols
    preds = plan.preds_loc[c]
    if preds:
        acc = GVl[preds[0]]
        for p in preds[1:]:
            acc &= GVl[p]
    else:
        acc = 0
    if GVl[c] != (GV[c] | TK[c] | acc) & ~ST[c]:
        return True
    bits = ST[c]
    for p in preds:
        bits |= STl[p] & ~GVl[p]
    for p in plan.preds_syn[c]:
        bits |= STl[p]
    return STl[c] != bits


def core_stale(plan, operands, trust, cols, s):
    """Whether any of Eqs 1–8 of slot ``s``, recomputed against the
    stored state (no in-unit propagation — the reference convergence
    probe's semantics), would change its stored value."""
    take0, give0, steal0 = operands
    ST, GV, BL, TO, TK, TI, BLl, TKl, GVl, STl = cols
    lc = plan.lastchild[s]
    bits = steal0[s]
    if lc >= 0:
        bits |= STl[lc]
    if ST[s] != bits:
        return True
    bits = give0[s]
    if trust and lc >= 0:
        bits |= GVl[lc]
    if GV[s] != bits:
        return True
    entry = plan.succs_e[s]
    bits = ST[s] | GV[s]
    for e in entry:
        bits |= BLl[e]
    if BL[s] != bits:
        return True
    fjs = plan.succs_fjs[s]
    if fjs:
        acc = TI[fjs[0]]
        for t in fjs[1:]:
            acc &= TI[t]
    else:
        acc = 0
    if TO[s] != acc:
        return True
    bits = take0[s]
    guaranteed = 0
    possible = 0
    for e in entry:
        guaranteed |= TI[e]
        possible |= TKl[e]
    bits |= guaranteed & ~ST[s]
    bits |= (TO[s] & possible) & ~BL[s]
    if TK[s] != bits:
        return True
    if TI[s] != TK[s] | (TO[s] & ~BL[s]):
        return True
    bits = BL[s]
    for t in plan.succs_f[s]:
        bits |= BLl[t]
    if BLl[s] != bits & ~TK[s]:
        return True
    acc = 0
    for t in plan.succs_ef[s]:
        acc |= TKl[t]
    return TKl[s] != TK[s] | (acc & ~BL[s])


class PlannedSolver:
    """Plan-driven solver; :func:`repro.core.solver.solve` with
    ``backend="planned"`` is the usual entry point.

    ``max_rounds`` has the reference semantics: an explicit budget on
    the backward consumption iteration, :class:`SolverBudgetError` when
    it is exhausted short of the fixpoint; ``None`` applies the natural
    bound and raises :class:`SolverError` if even that fails.

    ``preset`` maps slots to 10-tuples of consumption bitsets (in
    ``SHARED_VARIABLES`` order) whose bundles are *replayed* rather than
    evaluated: their values are written before the sweep and their
    bundles skipped during it.  This is the splice half of the
    incremental memo (``core.kernel.incremental``) — only sound when
    the preset values are a fixpoint of the skipped bundles' equations
    under the current operands, which the memo guarantees by keying
    fragments on the subtree's structure and baked operands.  Presets
    require a non-iterating plan (forward, or backward without jumps).
    """

    def __init__(self, view, problem, max_rounds=None, plan=None,
                 preset=None):
        self.view = view
        self.problem = problem
        self.max_rounds = max_rounds
        problem.validate_against(view)
        self.plan = plan if plan is not None else plan_for(view)
        if preset and self.plan.requires_iteration:
            raise SolverError(
                "preset consumption values require a non-iterating plan "
                "(the sparse fixpoint may revisit preset bundles)")
        self.preset = dict(preset) if preset else {}
        self.solution = SlotSolution(problem, view, self.plan)
        self._obs = current_collector()
        self._full_sweeps = 0
        self._sparse_rounds = 0
        self._sparse_bundles = 0
        self._sparse_children = 0

    # -- operand columns -----------------------------------------------------

    def _build_operands(self):
        """Static per-node operand bitsets for this problem (see
        :func:`build_operand_columns`)."""
        take0, give0, steal0 = build_operand_columns(self.plan, self.problem)
        self._take0 = take0
        self._give0 = give0
        self._steal0 = steal0
        self._trust = self.problem.trust_loop_side_effects

    # -- driver --------------------------------------------------------------

    def run(self):
        obs = self._obs
        start = obs.clock() if obs.enabled else 0.0
        plan = self.plan
        self._build_operands()
        sol = self.solution
        self._ST = sol.column("STEAL")
        self._GV = sol.column("GIVE")
        self._BL = sol.column("BLOCK")
        self._TO = sol.column("TAKEN_out")
        self._TK = sol.column("TAKE")
        self._TI = sol.column("TAKEN_in")
        self._BLl = sol.column("BLOCK_loc")
        self._TKl = sol.column("TAKE_loc")
        self._GVl = sol.column("GIVE_loc")
        self._STl = sol.column("STEAL_loc")

        if self.preset:
            columns = (self._ST, self._GV, self._BL, self._TO, self._TK,
                       self._TI, self._BLl, self._TKl, self._GVl, self._STl)
            for s, values in self.preset.items():
                for column, bits in zip(columns, values):
                    column[s] = bits

        natural = budget = None
        checked = False
        self._full_sweep()
        converged = True
        if plan.requires_iteration:
            natural = plan.natural_bound
            budget = natural if self.max_rounds is None else self.max_rounds
            converged, checked = self._sparse_fixpoint(budget)
            if not converged:
                if self.max_rounds is not None:
                    raise SolverBudgetError(
                        f"consumption fixpoint not reached within "
                        f"{budget} rounds (natural bound {natural})"
                    )
                raise SolverError(
                    f"consumption fixpoint not reached within the "
                    f"natural bound of {natural} rounds"
                )
        for timing in Timing:
            self._sweep_production(timing)
            self._sweep_results(timing)
        if obs.enabled:
            self._emit_run_event(start, natural, budget, converged, checked)
        return self.solution

    def _emit_run_event(self, start, natural, budget, converged, checked):
        obs = self._obs
        plan = self.plan
        n = plan.n
        preset_bundles = len(self.preset)
        preset_children = sum(len(plan.children[s]) for s in self.preset)
        counts = {}
        for number in range(1, 9):
            counts[number] = ((n - preset_bundles) * self._full_sweeps
                              + self._sparse_bundles)
        for number in (9, 10):
            counts[number] = ((n - 1 - preset_children) * self._full_sweeps
                              + self._sparse_children)
        for number in range(11, 16):
            counts[number] = n * 2
        sweeps = self._full_sweeps + self._sparse_rounds
        obs.event(
            "solver", "run",
            direction=self.view.direction,
            backend="planned",
            nodes=n,
            consumption_sweeps=sweeps,
            rounds=sweeps - 1,
            natural_bound=natural,
            budget=budget,
            converged=converged,
            convergence_checked=checked,
            full_sweeps=self._full_sweeps,
            preset_bundles=preset_bundles,
            sparse_rounds=self._sparse_rounds,
            sparse_evaluations={"bundles": self._sparse_bundles,
                                "children": self._sparse_children},
            equation_evaluations={
                str(number): count
                for number, count in sorted(counts.items())
            },
            duration_s=obs.clock() - start,
        )
        for number, count in counts.items():
            obs.count("equation_evaluations", number, n=count)

    # -- S1/S2: consumption --------------------------------------------------

    def _eval_bundle(self, s):
        """Evaluate bundle ``s``: Eqs 9/10 for its children in FORWARD
        order, then Eqs 1–8 for the node itself.  Values are written as
        they are computed (the reference ``put`` behavior), so later
        equations of the same bundle see the new ones.  Returns whether
        anything changed."""
        plan = self.plan
        ST, GV, BL = self._ST, self._GV, self._BL
        TO, TK, TI = self._TO, self._TK, self._TI
        BLl, TKl, GVl, STl = self._BLl, self._TKl, self._GVl, self._STl
        changed = False

        for c in plan.children[s]:
            preds = plan.preds_loc[c]
            # Eq 9: GIVE_loc
            if preds:
                acc = GVl[preds[0]]
                for p in preds[1:]:
                    acc &= GVl[p]
            else:
                acc = 0
            bits = (GV[c] | TK[c] | acc) & ~ST[c]
            if GVl[c] != bits:
                GVl[c] = bits
                changed = True
            # Eq 10: STEAL_loc
            bits = ST[c]
            for p in preds:
                bits |= STl[p] & ~GVl[p]
            for p in plan.preds_syn[c]:
                bits |= STl[p]
            if STl[c] != bits:
                STl[c] = bits
                changed = True

        # Eq 1: STEAL
        lc = plan.lastchild[s]
        bits = self._steal0[s]
        if lc >= 0:
            bits |= STl[lc]
        if ST[s] != bits:
            ST[s] = bits
            changed = True
        # Eq 2: GIVE
        bits = self._give0[s]
        if self._trust and lc >= 0:
            bits |= GVl[lc]
        if GV[s] != bits:
            GV[s] = bits
            changed = True
        # Eq 3: BLOCK
        entry = plan.succs_e[s]
        bits = ST[s] | GV[s]
        for e in entry:
            bits |= BLl[e]
        if BL[s] != bits:
            BL[s] = bits
            changed = True
        # Eq 4: TAKEN_out (meet over FJS successors; empty meet = ⊥)
        fjs = plan.succs_fjs[s]
        if fjs:
            acc = TI[fjs[0]]
            for t in fjs[1:]:
                acc &= TI[t]
        else:
            acc = 0
        if TO[s] != acc:
            TO[s] = acc
            changed = True
        # Eq 5: TAKE
        bits = self._take0[s]
        guaranteed = 0
        possible = 0
        for e in entry:
            guaranteed |= TI[e]
            possible |= TKl[e]
        bits |= guaranteed & ~ST[s]
        bits |= (TO[s] & possible) & ~BL[s]
        if TK[s] != bits:
            TK[s] = bits
            changed = True
        # Eq 6: TAKEN_in
        bits = TK[s] | (TO[s] & ~BL[s])
        if TI[s] != bits:
            TI[s] = bits
            changed = True
        # Eq 7: BLOCK_loc
        bits = BL[s]
        for t in plan.succs_f[s]:
            bits |= BLl[t]
        bits &= ~TK[s]
        if BLl[s] != bits:
            BLl[s] = bits
            changed = True
        # Eq 8: TAKE_loc
        acc = 0
        for t in plan.succs_ef[s]:
            acc |= TKl[t]
        bits = TK[s] | (acc & ~BL[s])
        if TKl[s] != bits:
            TKl[s] = bits
            changed = True
        return changed

    def _bundle_stale(self, s):
        """Whether re-evaluating bundle ``s`` would change anything —
        computed without writing (the reference convergence probe's
        semantics: every equation checked against the stored state,
        first mismatch wins), via the shared scalar unit kernels."""
        plan = self.plan
        cols = (self._ST, self._GV, self._BL, self._TO, self._TK,
                self._TI, self._BLl, self._TKl, self._GVl, self._STl)
        for c in plan.children[s]:
            if loc_stale(plan, cols, c):
                return True
        operands = (self._take0, self._give0, self._steal0)
        return core_stale(plan, operands, self._trust, cols, s)

    def _full_sweep(self):
        """One whole-graph S1/S2 sweep in descending slot order (preset
        bundles replay their spliced values and are skipped)."""
        obs = self._obs
        sweep_start = obs.clock() if obs.enabled else 0.0
        changed = False
        eval_bundle = self._eval_bundle
        preset = self.preset
        for s in range(self.plan.n - 1, -1, -1):
            if s in preset:
                continue
            if eval_bundle(s):
                changed = True
        self._full_sweeps += 1
        if obs.enabled:
            obs.event("solver", "sweep", kind="consumption",
                      index=self._full_sweeps, changed=changed,
                      duration_s=obs.clock() - sweep_start)
            obs.count("sweeps", "consumption")
        return changed

    def _sparse_fixpoint(self, budget):
        """Drive the backward consumption iteration to the fixpoint with
        a sparse worklist; returns ``(converged, checked)``.

        Each round pops dirty bundles from a max-heap (descending slot,
        the dense sweep's order).  When a bundle changes, dependents at
        lower slots are evaluated later *this* round — exactly when the
        dense sweep would reach them — and dependents at higher slots
        (already passed) carry to the next round.  Each bundle is
        evaluated at most once per round, so round ``k`` is
        state-equivalent to dense sweep ``k+1`` and the budget, the
        round count and the final probe all behave identically to the
        reference solver.
        """
        obs = self._obs
        plan = self.plan
        dependents = plan.dependents
        eval_bundle = self._eval_bundle
        dirty = set(plan.seeds)
        converged = False
        for _ in range(budget):
            round_start = obs.clock() if obs.enabled else 0.0
            self._sparse_rounds += 1
            heap = [-s for s in dirty]
            heapq.heapify(heap)
            queued = set(dirty)
            next_dirty = set()
            evaluated = 0
            changed = False
            while heap:
                s = -heapq.heappop(heap)
                evaluated += 1
                self._sparse_bundles += 1
                self._sparse_children += len(plan.children[s])
                if eval_bundle(s):
                    changed = True
                    for t in dependents[s]:
                        if t < s:
                            if t not in queued:
                                queued.add(t)
                                heapq.heappush(heap, -t)
                        else:
                            next_dirty.add(t)
            if obs.enabled:
                obs.event("solver", "sweep", kind="consumption_sparse",
                          index=self._sparse_rounds, changed=changed,
                          evaluated=evaluated,
                          duration_s=obs.clock() - round_start)
                obs.count("sweeps", "consumption_sparse")
            if not changed:
                converged = True
                break
            dirty = next_dirty
        checked = False
        if not converged:
            # Budget exhausted with every round still changing: decide
            # with the side-effect-free probe.  Bundles outside the
            # pending dirty set were evaluated against their current
            # inputs and are stable by construction, so probing the
            # dirty ones decides the whole graph.
            checked = True
            converged = not any(self._bundle_stale(s)
                                for s in sorted(dirty, reverse=True))
            if obs.enabled:
                obs.event("solver", "convergence_check", converged=converged)
        return converged, checked

    # -- S3/S4: production and results ---------------------------------------

    def _sweep_production(self, timing):
        obs = self._obs
        sweep_start = obs.clock() if obs.enabled else 0.0
        plan = self.plan
        sol = self.solution
        ST, GV, TK, TI = self._ST, self._GV, self._TK, self._TI
        given_in = sol.column("GIVEN_in", timing)
        given = sol.column("GIVEN", timing)
        given_out = sol.column("GIVEN_out", timing)
        eager = timing is Timing.EAGER
        root_slot = plan.root_slot
        headers = plan.header
        preds_fj = plan.preds_fj
        for s in range(plan.n):
            # Eq 11: GIVEN_in
            h = headers[s]
            bits = given[h] & ~ST[h] if h >= 0 else 0
            preds = preds_fj[s]
            if preds:
                meet = some = given_out[preds[0]]
                for p in preds[1:]:
                    value = given_out[p]
                    meet &= value
                    some |= value
            else:
                meet = some = 0
            bits |= meet
            bits |= TI[s] & some
            given_in[s] = bits
            # Eq 12: GIVEN
            if s == root_slot:
                produced = bits
            elif eager:
                produced = bits | TI[s]
            else:
                produced = bits | TK[s]
            given[s] = produced
            # Eq 13: GIVEN_out
            given_out[s] = (GV[s] | produced) & ~ST[s]
        if obs.enabled:
            obs.event("solver", "sweep", kind="production",
                      timing=timing.value,
                      duration_s=obs.clock() - sweep_start)
            obs.count("sweeps", "production")

    def _sweep_results(self, timing):
        obs = self._obs
        sweep_start = obs.clock() if obs.enabled else 0.0
        plan = self.plan
        sol = self.solution
        given_in = sol.column("GIVEN_in", timing)
        given = sol.column("GIVEN", timing)
        given_out = sol.column("GIVEN_out", timing)
        res_in = sol.column("RES_in", timing)
        res_out = sol.column("RES_out", timing)
        succs_fj = plan.succs_fj
        for s in range(plan.n):
            # Eq 14: RES_in
            res_in[s] = given[s] & ~given_in[s]
            # Eq 15: RES_out
            acc = 0
            for t in succs_fj[s]:
                acc |= given_in[t]
            res_out[s] = acc & ~given_out[s]
        if obs.enabled:
            obs.event("solver", "sweep", kind="results",
                      timing=timing.value,
                      duration_s=obs.clock() - sweep_start)
            obs.count("sweeps", "results")
