"""The planned solver backend: compile-once equation schedules.

The reference :class:`~repro.core.solver.GiveNTakeSolver` pays a large
Python constant factor on the paper's O(E) bound: one function call per
equation per node, dict-of-dicts variable lookups, and traversal lists
rebuilt per solve.  This package removes those constants without
touching the algorithm:

* :class:`~repro.core.kernel.plan.SolverPlan` — compiled once per
  ``(interval flow graph, direction)`` and cached on the graph: nodes
  mapped to dense integer *slots* (slot order = the view's PREORDER),
  children/adjacency/headers flattened to tuples of slot indices, and
  the static dependency structure (which bundles read which) that
  drives the sparse backward fixpoint.
* :class:`~repro.core.kernel.slots.SlotSolution` — the same
  ``bits``/``elements``/``nodes_with`` API as
  :class:`~repro.core.solution.Solution`, but stored as flat
  ``list[int]`` bitset columns indexed by slot.
* :class:`~repro.core.kernel.planned.PlannedSolver` — sweeps S1–S4 as
  tight loops over those columns, with the backward consumption
  iteration replaced by a sparse worklist that re-evaluates only the
  bundles whose inputs changed.

The planned backend is bit-identical to the reference solver for all
fifteen variables (``tests/core/test_kernel_equivalence.py``); pick it
with ``solve(..., backend="planned")`` — the default — or fall back to
``backend="reference"`` (see ``docs/scaling.md``).
"""

from repro.core.kernel.plan import SolverPlan, plan_for
from repro.core.kernel.planned import PlannedSolver
from repro.core.kernel.slots import SlotSolution

__all__ = ["SolverPlan", "plan_for", "PlannedSolver", "SlotSolution"]
