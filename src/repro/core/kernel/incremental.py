"""Interval-scoped memoization for the planned solver.

Production traffic against the compile service is *edit* traffic: the
same program resubmitted with a small diff.  The whole-text
``PipelineCache`` namespaces (``"analyzed"``, ``"prepared"``) are
all-or-nothing — one changed byte misses everything — so an edited
program pays a full re-solve even though the paper's own structure says
it shouldn't: Tarjan intervals are independent solve regions, and the
S1/S2 consumption values of a subtree depend only on that subtree's
shape and operands.

:class:`IncrementalSolveMemo` exploits that in two content-addressed
layers, both stored in a :class:`~repro.batch.cache.PipelineCache`:

* **Whole-solve entries** (namespace ``"interval-solve"``) — the full
  :class:`~repro.core.kernel.slots.SlotSolution` column store, keyed by
  the graph signature, the view shape, the ordered universe, and the
  *baked* per-slot operand bitsets (⊤ from ``steal_all`` headers or
  disabled hoisting already expanded to elements).  Statement text is
  deliberately **not** part of the key: an edit that rewrites a scalar
  right-hand side changes the source but neither the graph nor any
  operand bit, so the edited program replays the base program's solve.

* **Interval fragments** (namespace ``"interval-frag"``) — per eligible
  interval ``T(h)``, the ten consumption variables of the slots
  *strictly* inside the subtree, keyed Merkle-style by the subtree's own
  local structure rows plus its baked operands (which fold in every
  child's contribution).  When the whole-solve key misses — the edit
  touched *some* interval — untouched intervals still hit their
  fragment keys and are spliced into the new solve as ``preset``
  bundles, so only changed intervals are actually re-evaluated.

Fragment values are stored as *sorted element reprs*, not raw bits:
an edit elsewhere can grow or reorder the universe, so bit positions
are remapped through the new universe on splice (a repr the new
universe lacks simply misses).  Soundness of the splice rests on a
closure check, not on trust: a header is fragment-eligible only when
every equation operand of every strict-subtree bundle resolves inside
the subtree (jumps or synthetic edges crossing the boundary fail the
check), and fragments are disabled entirely for iterating plans
(backward views with jumps), where the sparse fixpoint may revisit
preset bundles.

The memo also caches the **optimistic write verdict**: whether the
unblocked AFTER solve passed :func:`~repro.core.checker
.check_placement_dual`.  The checker is the dominant cost of compiling
jumpy programs, and its verdict is a pure function of the solve key
(placement is deterministic from graph + problem + solution), so a warm
delta skips path enumeration entirely.
"""

import hashlib

from repro.core.kernel.plan import plan_for
from repro.core.kernel.planned import PlannedSolver, build_operand_columns
from repro.core.kernel.slots import SlotSolution
from repro.core.kernel.vector import VectorSolver
from repro.core.problem import Timing
from repro.core.solution import SHARED_VARIABLES, TIMED_VARIABLES
from repro.core.solver import DEFAULT_BACKEND, make_view

#: Folded into every key; bump when key composition or payload layout
#: changes so stale entries miss instead of splicing garbage.
INCR_SCHEMA = "repro-incremental/1"

#: PipelineCache namespace for whole-solve columns and write verdicts.
SOLVE_NAMESPACE = "interval-solve"

#: PipelineCache namespace for per-interval consumption fragments.
FRAGMENT_NAMESPACE = "interval-frag"


def _digest(payload):
    """Stable content address of a nested tuple of primitives."""
    return hashlib.sha256(repr(payload).encode()).hexdigest()


def graph_signature(ifg):
    """A content address of the interval flow graph's *shape*: node
    kinds and the full CEFJS edge relation over the deterministic node
    order — everything the solver plans, the placement, and the path
    checker consult about the graph, and nothing about statement text.

    Cached on the graph instance (the graph is immutable once built).
    """
    cached = ifg.__dict__.get("_incr_graph_signature")
    if cached is None:
        nodes = ifg.nodes()
        index = {node: i for i, node in enumerate(nodes)}
        kinds = tuple(node.kind.value for node in nodes)
        edges = tuple(sorted(
            (index[src], index[dst], edge_type.value)
            for src, dst, edge_type in ifg.edges("CEFJS")))
        cached = ifg.__dict__["_incr_graph_signature"] = (kinds, edges)
    return cached


def _sorted_reprs(universe, bits):
    """A bitset as canonically ordered element reprs — stable across
    universes that intern the same elements in different orders."""
    return tuple(sorted(repr(e) for e in universe.members(bits)))


def fragment_regions(plan):
    """``(header_slot, strict_subtree_slots)`` for every
    fragment-eligible interval of ``plan``.

    Eligibility is decided by a mechanical closure check: every slot an
    equation of a strict-subtree bundle reads (E/FJS successors, and the
    local-chain predecessors of its children) must itself lie strictly
    inside the subtree.  A jump or synthetic edge crossing the interval
    boundary fails the check and the interval is skipped — its values
    may depend on context outside the subtree.  Iterating plans
    (backward with jumps) have no eligible intervals at all.  The root
    pseudo-interval is skipped too: its "fragment" would be the whole
    program, which the whole-solve entry already covers.
    """
    cached = plan.__dict__.get("_fragment_regions")
    if cached is not None:
        return cached
    regions = []
    if not plan.requires_iteration:
        for h in range(plan.n):
            if not plan.is_header[h] or h == plan.root_slot:
                continue
            strict = []
            stack = list(plan.children[h])
            while stack:
                s = stack.pop()
                strict.append(s)
                stack.extend(plan.children[s])
            if not strict:
                continue
            inside = set(strict)
            closed = True
            for s in strict:
                for group in (plan.succs_e[s], plan.succs_fjs[s]):
                    if any(t not in inside for t in group):
                        closed = False
                        break
                if not closed:
                    break
                for c in plan.children[s]:
                    if (any(p not in inside for p in plan.preds_loc[c])
                            or any(p not in inside
                                   for p in plan.preds_syn[c])):
                        closed = False
                        break
                if not closed:
                    break
            if closed:
                regions.append((h, tuple(sorted(inside))))
    cached = plan.__dict__["_fragment_regions"] = tuple(regions)
    return cached


def _local_rows(plan, strict, local):
    """The subtree's structure rows with slots remapped to subtree-local
    indices: everything a strict bundle's equations consult about the
    plan, independent of where the subtree sits in the program."""
    rows = []
    for s in strict:
        lastchild = plan.lastchild[s]
        rows.append((
            local[s],
            tuple(local[c] for c in plan.children[s]),
            local[lastchild] if lastchild >= 0 else -1,
            tuple(local[t] for t in plan.succs_e[s]),
            tuple(local[t] for t in plan.succs_f[s]),
            tuple(local[t] for t in plan.succs_ef[s]),
            tuple(local[t] for t in plan.succs_fj[s]),
            tuple(local.get(t, -1) for t in plan.succs_fjs[s]),
            tuple(local.get(p, -1) for p in plan.preds_loc[s]),
            tuple(local.get(p, -1) for p in plan.preds_syn[s]),
        ))
    return tuple(rows)


class IncrementalSolveMemo:
    """Content-addressed replay of planned solves, interval fragments,
    and optimistic write verdicts through a ``PipelineCache``.

    One memo instance accompanies one compile; its :attr:`stats` dict is
    surfaced as the ``incremental`` block of the compile result.  The
    ``"planned"`` and ``"vector"`` kernels are memoized — they are
    bit-identical by contract, so they share one key space: a solve
    cached under either backend replays for both, and fragment splices
    round-trip through the vector backend's matrix columns bit for bit
    (``list()`` on store, slot assignment on splice).  The reference
    backend is the differential oracle and must keep computing from
    scratch.
    """

    def __init__(self, cache):
        self.cache = cache
        self.stats = {
            "whole_hits": 0,
            "whole_misses": 0,
            "interval_hits": 0,
            "interval_misses": 0,
            "intervals_reused": 0,
            "intervals_solved": 0,
            "fragments_stored": 0,
            "verdict_hits": 0,
            "verdict_misses": 0,
        }

    @staticmethod
    def applies(backend):
        return (backend or DEFAULT_BACKEND) in ("planned", "vector")

    # -- keying --------------------------------------------------------------

    def _solve_key(self, ifg, view, problem, operands, max_rounds):
        take0, give0, steal0 = operands
        return _digest((
            INCR_SCHEMA, "solve",
            graph_signature(ifg),
            view.plan_key,
            problem.direction.value,
            bool(problem.trust_loop_side_effects),
            bool(problem.hoist_zero_trip),
            tuple(repr(e) for e in problem.universe),
            tuple(take0), tuple(give0), tuple(steal0),
            max_rounds,
        ))

    def _fragment_key(self, view, plan, problem, operands, strict, local):
        take0, give0, steal0 = operands
        universe = problem.universe
        operand_rows = tuple(
            (_sorted_reprs(universe, take0[s]),
             _sorted_reprs(universe, give0[s]),
             _sorted_reprs(universe, steal0[s]))
            for s in strict)
        return _digest((
            INCR_SCHEMA, "fragment",
            view.plan_key,
            problem.direction.value,
            bool(problem.trust_loop_side_effects),
            _local_rows(plan, strict, local),
            operand_rows,
        ))

    # -- solving -------------------------------------------------------------

    def solve(self, ifg, problem, view=None, max_rounds=None, backend=None):
        """Solve ``problem`` on ``ifg`` with the planned (default) or
        vector kernel, replaying cached whole solves and interval
        fragments.  Replays always rebuild the list-engine column store
        — the backends are bit-identical, so a replay serves either."""
        if view is None:
            view = make_view(ifg, problem.direction)
        plan = plan_for(view)
        operands = build_operand_columns(plan, problem)
        key = self._solve_key(ifg, view, problem, operands, max_rounds)
        entry = self.cache.get(SOLVE_NAMESPACE, key)
        solution = self._replay_whole(entry, problem, view, plan)
        if solution is not None:
            self.stats["whole_hits"] += 1
            self.stats["intervals_reused"] += len(fragment_regions(plan))
            return solution
        self.stats["whole_misses"] += 1
        preset, covered = self._probe_fragments(view, plan, problem, operands)
        solver_cls = (VectorSolver if (backend or DEFAULT_BACKEND) == "vector"
                      else PlannedSolver)
        solver = solver_cls(view, problem, max_rounds=max_rounds,
                            plan=plan, preset=preset)
        solution = solver.run()
        self._store(key, solution, view, plan, problem, operands, covered)
        return solution

    def _replay_whole(self, entry, problem, view, plan):
        """A fresh :class:`SlotSolution` from a stored column payload,
        or ``None`` when the payload is absent or malformed."""
        if not isinstance(entry, dict):
            return None
        shared = entry.get("shared")
        timed = entry.get("timed")
        if not isinstance(shared, dict) or not isinstance(timed, dict):
            return None
        solution = SlotSolution(problem, view, plan)
        try:
            for name in SHARED_VARIABLES:
                column = shared[name]
                if len(column) != plan.n:
                    return None
                solution.column(name)[:] = column
            for timing in Timing:
                stored = timed[timing.value]
                for name in TIMED_VARIABLES:
                    column = stored[name]
                    if len(column) != plan.n:
                        return None
                    solution.column(name, timing)[:] = column
        except (KeyError, TypeError):
            return None
        return solution

    def _probe_fragments(self, view, plan, problem, operands):
        """Look up every eligible interval's fragment; return the
        ``preset`` dict for :class:`PlannedSolver` and the set of header
        slots whose subtree was fully covered by a hit (outermost hits
        shadow nested ones)."""
        preset = {}
        covered = set()
        repr_bits = None
        for h, strict in fragment_regions(plan):
            if strict[0] in preset:
                # An enclosing interval already spliced this subtree.
                covered.add(h)
                continue
            local = {h: 0}
            for position, s in enumerate(strict, start=1):
                local[s] = position
            key = self._fragment_key(view, plan, problem, operands,
                                     strict, local)
            entry = self.cache.get(FRAGMENT_NAMESPACE, key)
            values = entry.get("values") if isinstance(entry, dict) else None
            if values is None or len(values) != len(strict):
                self.stats["interval_misses"] += 1
                self.stats["intervals_solved"] += 1
                continue
            if repr_bits is None:
                repr_bits = {repr(e): 1 << i
                             for i, e in enumerate(problem.universe)}
            spliced = self._remap(values, repr_bits)
            if spliced is None:
                self.stats["interval_misses"] += 1
                self.stats["intervals_solved"] += 1
                continue
            for s, columns in zip(strict, spliced):
                preset[s] = columns
            covered.add(h)
            self.stats["interval_hits"] += 1
            self.stats["intervals_reused"] += 1
        return preset, covered

    @staticmethod
    def _remap(values, repr_bits):
        """Fragment element reprs -> bitsets of the *current* universe;
        ``None`` when any stored element no longer exists."""
        spliced = []
        try:
            for per_slot in values:
                if len(per_slot) != len(SHARED_VARIABLES):
                    return None
                columns = []
                for reprs in per_slot:
                    bits = 0
                    for text in reprs:
                        bit = repr_bits.get(text)
                        if bit is None:
                            return None
                        bits |= bit
                    columns.append(bits)
                spliced.append(tuple(columns))
        except TypeError:
            return None
        return spliced

    def _store(self, key, solution, view, plan, problem, operands, covered):
        """Persist the whole-solve columns and every eligible interval's
        fragment (fragments that just hit are not rewritten)."""
        payload = {
            "shared": {name: list(solution.column(name))
                       for name in SHARED_VARIABLES},
            "timed": {timing.value: {name: list(solution.column(name, timing))
                                     for name in TIMED_VARIABLES}
                      for timing in Timing},
        }
        self.cache.put(SOLVE_NAMESPACE, key, payload)
        universe = problem.universe
        columns = [solution.column(name) for name in SHARED_VARIABLES]
        for h, strict in fragment_regions(plan):
            if h in covered:
                continue
            local = {h: 0}
            for position, s in enumerate(strict, start=1):
                local[s] = position
            fragment_key = self._fragment_key(view, plan, problem, operands,
                                              strict, local)
            values = tuple(
                tuple(_sorted_reprs(universe, column[s])
                      for column in columns)
                for s in strict)
            self.cache.put(FRAGMENT_NAMESPACE, fragment_key,
                           {"values": values})
            self.stats["fragments_stored"] += 1

    # -- optimistic write verdicts -------------------------------------------

    def _verdict_key(self, ifg, view, problem, operands, max_rounds,
                     check_paths):
        solve_key = self._solve_key(ifg, view, problem, operands, max_rounds)
        return _digest((INCR_SCHEMA, "verdict", solve_key, check_paths))

    def write_verdict(self, ifg, problem, view, max_rounds, check_paths):
        """The cached accept/reject verdict of the optimistic write
        check for this exact solve, or ``None`` when unknown."""
        plan = plan_for(view)
        operands = build_operand_columns(plan, problem)
        key = self._verdict_key(ifg, view, problem, operands, max_rounds,
                                check_paths)
        entry = self.cache.get(SOLVE_NAMESPACE, key)
        if isinstance(entry, dict) and "accept" in entry:
            self.stats["verdict_hits"] += 1
            return bool(entry["accept"])
        self.stats["verdict_misses"] += 1
        return None

    def store_write_verdict(self, ifg, problem, view, max_rounds,
                            check_paths, accept):
        plan = plan_for(view)
        operands = build_operand_columns(plan, problem)
        key = self._verdict_key(ifg, view, problem, operands, max_rounds,
                                check_paths)
        self.cache.put(SOLVE_NAMESPACE, key, {"accept": bool(accept)})
