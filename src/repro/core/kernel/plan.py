"""Compile-once solver plans: slot schedules and flattened adjacency.

A :class:`SolverPlan` is everything about one ``(graph, direction)``
pair that the GIVE-N-TAKE equations consult repeatedly but that never
depends on the problem being solved: traversal orders, children,
headers, per-letter neighbor sets, and the static read/dependent
structure between *bundles* (see below).  It is built once per view
shape and cached on the interval flow graph itself
(:func:`plan_for`), so all problems and timings solved on one graph —
the READ solve plus both WRITE solves of
:func:`~repro.commgen.pipeline.prepare_communication` — share one
forward and one backward plan, and the plans travel with the graph
through :class:`~repro.batch.cache.PipelineCache` snapshots.

Slots
-----
``nodes[slot]`` lists the view's nodes in PREORDER, so *slot order is
schedule order*: the S1/S2 consumption sweep runs slots in descending
order (REVERSEPREORDER), S3/S4 in ascending order.  Every per-node
datum becomes a tuple indexed by slot; every neighbor set becomes a
tuple of slot indices.

Bundles
-------
The S1/S2 sweep's unit of work at node ``n`` is one *bundle*:
Equations 9/10 for each child of ``n`` (in FORWARD order) followed by
Equations 1–8 for ``n`` itself.  ``reads[s]`` is the set of other
bundles whose values bundle ``s`` consumes; ``dependents`` is its
inverse.  ``seeds`` are the bundles with at least one read from a
*lower* slot — the only evaluations the descending sweep order cannot
have made current — and therefore the complete initial worklist of the
sparse backward fixpoint (``docs/scaling.md`` has the argument).
"""

from repro.obs.collector import current_collector


class SolverPlan:
    """The compiled, problem-independent schedule for one view shape."""

    def __init__(self, view):
        nodes = tuple(view.nodes_preorder())
        slot_of = {node: index for index, node in enumerate(nodes)}
        n = len(nodes)

        def slots(sequence):
            return tuple(slot_of[node] for node in sequence)

        self.direction = view.direction
        self.key = view.plan_key
        self.nodes = nodes
        self.slot_of = slot_of
        self.n = n
        self.root_slot = slot_of[view.root]

        self.children = tuple(slots(view.children(node)) for node in nodes)
        parent = [-1] * n
        for s, kids in enumerate(self.children):
            for c in kids:
                parent[c] = s
        self.parent = tuple(parent)

        def optional_slot(node):
            return -1 if node is None else slot_of[node]

        self.lastchild = tuple(optional_slot(view.lastchild(node))
                               for node in nodes)
        self.header = tuple(optional_slot(view.header_of(node))
                            for node in nodes)
        self.is_header = tuple(view.is_header(node) for node in nodes)
        self.steal_all = tuple(view.steal_all(node) for node in nodes)

        self.succs_e = tuple(slots(view.succs(node, "E")) for node in nodes)
        self.succs_f = tuple(slots(view.succs(node, "F")) for node in nodes)
        self.succs_ef = tuple(slots(view.succs(node, "EF")) for node in nodes)
        self.succs_fj = tuple(slots(view.succs(node, "FJ")) for node in nodes)
        self.succs_fjs = tuple(slots(view.succs(node, "FJS"))
                               for node in nodes)
        self.preds_fj = tuple(slots(view.preds(node, "FJ")) for node in nodes)
        self.preds_loc = tuple(slots(view.preds(node, view.loc_pred_letters))
                               for node in nodes)
        self.preds_syn = tuple(
            slots(view.preds(node, view.loc_synthetic_letters))
            if view.loc_synthetic_letters else ()
            for node in nodes
        )

        self.requires_iteration = view.requires_consumption_iteration
        self.natural_bound = (
            max((view.ifg.level(m) for m, _ in view.ifg.jump_edges()),
                default=0) + 1
            if self.requires_iteration else None
        )

        self._compute_dependencies()

        obs = current_collector()
        if obs.enabled:
            obs.event("solver", "plan",
                      direction=self.direction,
                      nodes=n,
                      seeds=len(self.seeds),
                      requires_iteration=self.requires_iteration,
                      natural_bound=self.natural_bound)
            obs.count("solver_plans", "compiled")

    def _compute_dependencies(self):
        """Cross-bundle reads, their inverse, and the sweep-order seeds.

        Ownership: Equations 1–8 of node ``x`` belong to bundle ``x``;
        Equations 9/10 of ``x`` (the ``_loc`` chain values) belong to
        bundle ``parent(x)``, which evaluates them.  The read sets below
        enumerate every cross-bundle operand of Figure 13's S1/S2
        equations; same-bundle reads are resolved within one bundle
        evaluation and need no tracking.
        """
        n = self.n
        parent = self.parent
        reads = [set() for _ in range(n)]
        for s in range(n):
            owners = reads[s]
            # Eq 3 (BLOCK_loc of ENTRY succs), Eq 5 (TAKEN_in/TAKE_loc
            # of ENTRY succs), Eq 4 (TAKEN_in of FJS succs), Eq 7
            # (BLOCK_loc of F succs), Eq 8 (TAKE_loc of EF succs):
            # those variables belong to the successor's own bundle.
            owners.update(self.succs_e[s])
            owners.update(self.succs_fjs[s])
            owners.update(self.succs_f[s])
            owners.update(self.succs_ef[s])
            for c in self.children[s]:
                # Eqs 9/10 read GIVE/TAKE/STEAL of the child itself ...
                owners.add(c)
                # ... and the _loc values of its FJ/S predecessors,
                # owned by whichever bundle evaluates them.  (Synthetic
                # predecessors are headers of *inner* loops, so this is
                # genuinely cross-bundle for multi-level jumps.)
                for p in self.preds_loc[c]:
                    if parent[p] >= 0:
                        owners.add(parent[p])
                for p in self.preds_syn[c]:
                    if parent[p] >= 0:
                        owners.add(parent[p])
            owners.discard(s)

        dependents = [[] for _ in range(n)]
        for s, owners in enumerate(reads):
            for d in owners:
                dependents[d].append(s)
        self.reads = tuple(frozenset(owners) for owners in reads)
        self.dependents = tuple(tuple(sorted(deps)) for deps in dependents)
        # Descending, matching the round's evaluation order.
        self.seeds = tuple(sorted(
            (s for s in range(n) if any(d < s for d in reads[s])),
            reverse=True,
        ))


    def unit_sequence(self):
        """The S1/S2 sweep at *unit* granularity: ``("loc", c)`` /
        ``("core", s)`` pairs in exact evaluation order (descending
        bundle slot; within a bundle, Eqs 9/10 for each child in FORWARD
        order, then Eqs 1–8 for the node).  This is the sequential order
        every backend's sweep must be state-equivalent to; the vector
        backend's level scheduler consumes it as the rank order.
        Cached on the plan."""
        cached = self.__dict__.get("_unit_sequence")
        if cached is None:
            sequence = []
            for s in range(self.n - 1, -1, -1):
                for c in self.children[s]:
                    sequence.append(("loc", c))
                sequence.append(("core", s))
            cached = self.__dict__["_unit_sequence"] = tuple(sequence)
        return cached


def plan_for(view):
    """The (cached) :class:`SolverPlan` for ``view``.

    Plans are keyed by ``view.plan_key`` and stored on the interval
    flow graph instance, so every view of the same shape — and every
    solve on the same graph — reuses one compiled plan, and pickling
    the graph (batch cache snapshots) carries the plans along.
    """
    ifg = view.ifg
    plans = ifg.__dict__.get("_solver_plans")
    if plans is None:
        plans = ifg.__dict__["_solver_plans"] = {}
    key = view.plan_key
    plan = plans.get(key)
    if plan is None:
        plan = plans[key] = SolverPlan(view)
    return plan
