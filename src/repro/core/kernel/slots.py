"""Slot-indexed solution storage for the planned backend.

A :class:`SlotSolution` stores each of the fifteen variables as one
flat ``list[int]`` bitset column indexed by plan slot, instead of the
reference :class:`~repro.core.solution.Solution`'s dict-of-dicts.  The
public API (``bits`` / ``set_bits`` / ``elements`` / ``nodes_with`` /
``format_node``) is identical, so placements, reports and tests consume
either interchangeably; the planned solver's sweeps additionally grab
whole columns via :meth:`column` and index them by slot directly.
"""

from repro.core.problem import Timing
from repro.core.solution import SHARED_VARIABLES, TIMED_VARIABLES


class SlotSolution:
    """All dataflow variables of one solved instance, as slot columns."""

    def __init__(self, problem, view, plan):
        self.problem = problem
        self.view = view
        self.plan = plan
        n = plan.n
        self._shared = {name: [0] * n for name in SHARED_VARIABLES}
        self._timed = {
            timing: {name: [0] * n for name in TIMED_VARIABLES}
            for timing in Timing
        }

    def _store(self, name, timing):
        if name in self._shared:
            return self._shared[name]
        if timing is None:
            raise KeyError(f"variable {name} requires a timing")
        return self._timed[timing][name]

    def column(self, name, timing=None):
        """The raw slot-indexed bitset column (the solver's hot path)."""
        return self._store(name, timing)

    def set_bits(self, name, node, bits, timing=None):
        self._store(name, timing)[self.plan.slot_of[node]] = bits

    def bits(self, name, node, timing=None):
        """Bitset value of variable ``name`` at ``node``."""
        slot = self.plan.slot_of.get(node)
        if slot is None:
            return 0
        return self._store(name, timing)[slot]

    def elements(self, name, node, timing=None):
        """Value as a frozenset of universe elements (for tests/printing)."""
        return self.problem.universe.frozen(self.bits(name, node, timing))

    def nodes_with(self, name, element, timing=None):
        """All nodes whose variable ``name`` contains ``element``."""
        bit = self.problem.universe.bit(element)
        store = self._store(name, timing)
        return [node for node, bits in zip(self.plan.nodes, store)
                if bits & bit]

    def format_node(self, node, timing=None):
        """Multi-line dump of every variable at ``node`` (debugging)."""
        universe = self.problem.universe
        lines = [f"node {node}:"]
        for name in SHARED_VARIABLES:
            lines.append(f"  {name:10} = {universe.format(self.bits(name, node))}")
        for t in Timing if timing is None else (timing,):
            for name in TIMED_VARIABLES:
                value = universe.format(self.bits(name, node, t))
                lines.append(f"  {name}^{t.value:5} = {value}")
        return "\n".join(lines)
