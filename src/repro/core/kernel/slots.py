"""Slot-indexed solution storage for the kernel backends.

A :class:`SlotSolution` stores each of the fifteen variables as one
slot-indexed bitset column instead of the reference
:class:`~repro.core.solution.Solution`'s dict-of-dicts.  The public API
(``bits`` / ``set_bits`` / ``elements`` / ``nodes_with`` /
``format_node``) is identical, so placements, reports and tests consume
either interchangeably; the kernel solvers additionally grab whole
columns via :meth:`column` and index them by slot directly.

Two storage engines back the same API:

* ``"list"`` — one ``list[int]`` per variable (the planned backend's
  hot path: plain C-speed list indexing);
* ``"numpy"`` — one struct-of-arrays *bit matrix* per variable group
  (``repro.core.kernel.bitmatrix``): the ten shared variables as a
  ``(10, slots, words)`` ``uint64`` tensor and the five timed variables
  as a ``(5, slots, words)`` tensor per timing, with :meth:`column`
  returning a :class:`~repro.core.kernel.bitmatrix.NumpyColumn` view —
  same values bit for bit, but the vector backend can run word-wide
  operations across whole interval levels of the tensor at once.

Contract notes shared by *all* solution stores (reference included):

* ``set_bits`` accepts any node.  Nodes outside the plan land in a side
  table instead of raising — the reference store has always accepted
  arbitrary nodes, and the solvers only ever write plan nodes, so the
  side table exists purely to keep the stores drop-in interchangeable
  for consumers that annotate extra nodes.
* ``nodes_with`` returns nodes in deterministic *view preorder* (plan
  slot order), with any side-table nodes appended in insertion order —
  reports and placements render identically regardless of backend.
"""

from repro.core.kernel import bitmatrix
from repro.core.kernel.bitmatrix import NumpyColumn
from repro.core.problem import Timing
from repro.core.solution import SHARED_VARIABLES, TIMED_VARIABLES

#: Tensor row index of each shared (S1/S2) variable, in equation order.
SHARED_INDEX = {name: i for i, name in enumerate(SHARED_VARIABLES)}

#: Tensor row index of each timed (S3/S4) variable.
TIMED_INDEX = {name: i for i, name in enumerate(TIMED_VARIABLES)}


class SlotSolution:
    """All dataflow variables of one solved instance, as slot columns."""

    def __init__(self, problem, view, plan, engine="list"):
        self.problem = problem
        self.view = view
        self.plan = plan
        self.engine = engine
        n = plan.n
        self._extra = {}
        if engine == "numpy":
            np = bitmatrix.numpy()
            if np is None:
                raise ValueError(
                    "numpy storage engine requested but NumPy is "
                    "unavailable (install the 'kernels' extra)")
            words = bitmatrix.words_for(len(problem.universe))
            self.words = words
            self.shared_tensor = np.zeros((len(SHARED_VARIABLES), n, words),
                                          dtype=np.uint64)
            self.timed_tensor = {
                timing: np.zeros((len(TIMED_VARIABLES), n, words),
                                 dtype=np.uint64)
                for timing in Timing
            }
            self._shared = {
                name: NumpyColumn(self.shared_tensor[i])
                for name, i in SHARED_INDEX.items()
            }
            self._timed = {
                timing: {name: NumpyColumn(self.timed_tensor[timing][i])
                         for name, i in TIMED_INDEX.items()}
                for timing in Timing
            }
        else:
            self._shared = {name: [0] * n for name in SHARED_VARIABLES}
            self._timed = {
                timing: {name: [0] * n for name in TIMED_VARIABLES}
                for timing in Timing
            }

    def _store(self, name, timing):
        if name in self._shared:
            return self._shared[name]
        if timing is None:
            raise KeyError(f"variable {name} requires a timing")
        return self._timed[timing][name]

    def _extra_store(self, name, timing):
        key = (name, None if name in self._shared else timing)
        store = self._extra.get(key)
        if store is None:
            store = self._extra[key] = {}
        return store

    def column(self, name, timing=None):
        """The raw slot-indexed bitset column (the solver's hot path)."""
        return self._store(name, timing)

    def set_bits(self, name, node, bits, timing=None):
        store = self._store(name, timing)  # unknown *names* still raise
        slot = self.plan.slot_of.get(node)
        if slot is None:
            # Same contract as the reference store: any node is
            # accepted; non-plan nodes live in the side table.
            self._extra_store(name, timing)[node] = bits
            return
        store[slot] = bits

    def bits(self, name, node, timing=None):
        """Bitset value of variable ``name`` at ``node``."""
        slot = self.plan.slot_of.get(node)
        if slot is None:
            key = (name, None if name in self._shared else timing)
            return self._extra.get(key, {}).get(node, 0)
        return self._store(name, timing)[slot]

    def elements(self, name, node, timing=None):
        """Value as a frozenset of universe elements (for tests/printing)."""
        return self.problem.universe.frozen(self.bits(name, node, timing))

    def nodes_with(self, name, element, timing=None):
        """All nodes whose variable ``name`` contains ``element``, in
        deterministic view preorder (side-table nodes appended in
        insertion order)."""
        bit = self.problem.universe.bit(element)
        store = self._store(name, timing)
        found = [node for node, bits in zip(self.plan.nodes, store)
                 if bits & bit]
        key = (name, None if name in self._shared else timing)
        extra = self._extra.get(key)
        if extra:
            found.extend(node for node, bits in extra.items() if bits & bit)
        return found

    def format_node(self, node, timing=None):
        """Multi-line dump of every variable at ``node`` (debugging)."""
        universe = self.problem.universe
        lines = [f"node {node}:"]
        for name in SHARED_VARIABLES:
            lines.append(f"  {name:10} = {universe.format(self.bits(name, node))}")
        for t in Timing if timing is None else (timing,):
            for name in TIMED_VARIABLES:
                value = universe.format(self.bits(name, node, t))
                lines.append(f"  {name}^{t.value:5} = {value}")
        return "\n".join(lines)
