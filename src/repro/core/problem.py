"""Problem descriptions for the GIVE-N-TAKE solver.

A :class:`Problem` bundles the dataflow universe, the problem direction,
and the three *initial variables* of §4.1:

* ``TAKE_init(n)`` — the consumers at node ``n``;
* ``STEAL_init(n)`` — elements whose production is voided at ``n``
  (destroyers, and optionally zero-trip-hoisting blockers at headers);
* ``GIVE_init(n)`` — elements produced at ``n`` for free (side effects).

Timing (EAGER vs LAZY) is not part of the problem: the solver always
computes both solutions, since balance (C1) is defined between them.
"""

from enum import Enum

from repro.core.lattice import Universe
from repro.util.errors import SolverError


class Direction(Enum):
    """BEFORE: produce before consumption (fetch-like, e.g. READs).
    AFTER: produce after consumption (store-like, e.g. WRITEs)."""

    BEFORE = "before"
    AFTER = "after"


class Timing(Enum):
    """EAGER: production as early as possible (e.g. sends, for BEFORE).
    LAZY: production as late as possible (e.g. receives, for BEFORE)."""

    EAGER = "eager"
    LAZY = "lazy"


class Problem:
    """One GIVE-N-TAKE instance over an interval flow graph's nodes."""

    def __init__(self, universe=None, direction=Direction.BEFORE,
                 hoist_zero_trip=True, trust_loop_side_effects=True):
        self.universe = universe if universe is not None else Universe()
        self.direction = direction
        #: Hoist consumption out of potentially zero-trip loops (§4.1).
        #: When False, every loop header behaves as if production were
        #: blocked there, so nothing is produced on zero-trip paths
        #: (strict C2) at the cost of producing inside loops.
        self.hoist_zero_trip = hoist_zero_trip
        #: Treat production happening inside a loop body (GIVEs and
        #: satisfied consumption) as available after the loop.  True
        #: matches the paper, whose universe elements are loop-parametric
        #: (a zero-trip loop's sections are empty, so the claim is
        #: vacuously safe).  Set False for atomic elements to get strict
        #: sufficiency (C3) even on zero-trip paths.
        self.trust_loop_side_effects = trust_loop_side_effects
        self._take_init = {}
        self._steal_init = {}
        self._give_init = {}
        self._steal_all = set()  # nodes stealing the *whole* universe,
        # resolved lazily so the universe may keep growing after the call

    # -- population -------------------------------------------------------

    def add_take(self, node, *elements):
        """Record consumption of ``elements`` at ``node``."""
        self._add(self._take_init, node, elements)

    def add_steal(self, node, *elements):
        """Record destruction of ``elements`` at ``node``."""
        self._add(self._steal_init, node, elements)

    def add_give(self, node, *elements):
        """Record free production of ``elements`` at ``node``."""
        self._add(self._give_init, node, elements)

    def _add(self, store, node, elements):
        bits = 0
        for element in elements:
            self.universe.add(element)
            bits |= self.universe.bit(element)
        store[node] = store.get(node, 0) | bits

    def block_hoisting(self, header, elements=None):
        """Prevent hoisting production out of the loop headed by
        ``header`` (paper §4.1): seed ``STEAL_init(header)`` with
        ``elements`` (default: the whole universe).

        Use this to disable zero-trip hoisting case-by-case when
        producing on a zero-trip path would be unsafe rather than merely
        wasteful.
        """
        if elements is None:
            self._steal_all.add(header)
        else:
            self._add(self._steal_init, header, elements)

    def freeze(self):
        """Seal the universe once the initial variables are fully built
        (see :meth:`repro.core.lattice.Universe.freeze`): a late
        ``add_take``/``add_steal``/``add_give`` of an unseen element
        raises :class:`~repro.util.errors.SolverError` instead of
        silently invalidating bitsets already baked into solutions.
        Existing elements may still be referenced.  Returns ``self``."""
        self.universe.freeze()
        return self

    # -- access -------------------------------------------------------------

    def take_init(self, node):
        return self._take_init.get(node, 0)

    def steal_init(self, node):
        bits = self._steal_init.get(node, 0)
        if node in self._steal_all:
            bits |= self.universe.top
        return bits

    def give_init(self, node):
        return self._give_init.get(node, 0)

    def annotated_nodes(self):
        """All nodes with a nonempty initial variable."""
        nodes = []
        seen = set()
        for store in (self._take_init, self._steal_init, self._give_init):
            for node, bits in store.items():
                if bits and node not in seen:
                    seen.add(node)
                    nodes.append(node)
        for node in self._steal_all:
            if node not in seen:
                seen.add(node)
                nodes.append(node)
        return nodes

    def validate_against(self, view):
        """Check every annotated node belongs to the analyzed graph."""
        known = set(view.nodes_preorder())
        for node in self.annotated_nodes():
            if node not in known:
                raise SolverError(f"initial variables reference foreign node {node}")
